.PHONY: all build test lint analyze chaos crash-chaos check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`),
# plus the SQL string literals embedded in the test/ and examples/
# OCaml drivers (extracted-literal mode).
lint:
	dune build @lint

# Abstract interpretation over the example corpus (`rfview analyze`):
# fails on any RF2xx diagnostic — statically-empty predicates,
# guaranteed division by zero, NULL-poisoned aggregates, cumulative-SUM
# overflow risk — and prints derivability certificates for each query.
analyze:
	dune build @analyze

# Fault-injection sweep: the chaos harness plus the rollback/quarantine
# suite (test/test_fault.ml) against every registered site.
chaos:
	dune exec test/test_fault.exe

# Crash-recovery chaos: the durability suite (test/test_crash.ml) — WAL
# round trips, torn tails, checkpoint/recovery faults, and the seed
# matrix of randomized crash streams against the shadow oracle.
crash-chaos:
	dune exec test/test_crash.exe

check: build test lint analyze chaos crash-chaos

clean:
	dune clean
