.PHONY: all build test lint chaos crash-chaos check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`).
lint:
	dune build @lint

# Fault-injection sweep: the chaos harness plus the rollback/quarantine
# suite (test/test_fault.ml) against every registered site.
chaos:
	dune exec test/test_fault.exe

# Crash-recovery chaos: the durability suite (test/test_crash.ml) — WAL
# round trips, torn tails, checkpoint/recovery faults, and the seed
# matrix of randomized crash streams against the shadow oracle.
crash-chaos:
	dune exec test/test_crash.exe

check: build test lint chaos crash-chaos

clean:
	dune clean
