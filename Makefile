.PHONY: all build test lint analyze chaos crash-chaos replica-chaos storage-chaos scrub-smoke mvcc-chaos serve-smoke bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`),
# plus the SQL string literals embedded in the test/ and examples/
# OCaml drivers (extracted-literal mode).
lint:
	dune build @lint

# Abstract interpretation over the example corpus (`rfview analyze`):
# fails on any RF2xx diagnostic — statically-empty predicates,
# guaranteed division by zero, NULL-poisoned aggregates, cumulative-SUM
# overflow risk — and prints derivability certificates for each query.
analyze:
	dune build @analyze

# Fault-injection sweep: the chaos harness plus the rollback/quarantine
# suite (test/test_fault.ml) against every registered site.
chaos:
	dune exec test/test_fault.exe

# Crash-recovery chaos: the durability suite (test/test_crash.ml) — WAL
# round trips, torn tails, checkpoint/recovery faults, and the seed
# matrix of randomized crash streams against the shadow oracle.
crash-chaos:
	dune exec test/test_crash.exe

# Replication chaos: the replica suite (test/test_replica.ml) —
# compression/pack round trips, the prefix-monotone WAL replay
# property, checkpoint-epoch crash protocol, stale-bounded reads,
# quarantine/resync, promotion, and the multi-seed replica chaos
# matrix (kills, feed corruption, lag, primary crashes, failover; every
# served read must be a true historical state at its reported LSN).
replica-chaos:
	dune exec test/test_replica.exe

# Storage-fault chaos: the storage suite (test/test_storage.ml) — the
# simulated disk (ENOSPC byte budgets with torn writes, EIO, seeded bit
# flips, power cuts losing unsynced bytes), disk-full degraded mode and
# the space-probe resume, the io.* fault-site sweep, the scrub property,
# cross-source WAL repair with bit-identity, and the multi-seed
# storage-chaos matrix against the shadow oracle.
storage-chaos:
	dune exec test/test_storage.exe

# End-to-end scrub/repair smoke over a real fixture: build a durable
# database from the quickstart script, corrupt one WAL byte with dd,
# and check that `rfview scrub` flags it (exit 1), `--repair` heals it,
# and a final scrub comes back clean.
scrub-smoke:
	rm -rf _scrub_smoke
	dune exec bin/rfview.exe -- run examples/sql/quickstart.sql \
	  --db _scrub_smoke > /dev/null
	printf '\377' | dd of=_scrub_smoke/log.wal bs=1 seek=20 \
	  conv=notrunc status=none
	@if dune exec bin/rfview.exe -- scrub _scrub_smoke; then \
	  echo "scrub missed the corrupted WAL byte"; exit 1; fi
	dune exec bin/rfview.exe -- scrub _scrub_smoke --repair
	dune exec bin/rfview.exe -- scrub _scrub_smoke
	rm -rf _scrub_smoke

# MVCC + server suites at 1 and 4 worker domains: snapshot isolation,
# the retained-version window, the concurrent snapshot chaos matrix
# (every read a true historical state at its reported LSN), the domain
# pool, and socket round-trips with concurrent clients.
mvcc-chaos:
	RFVIEW_TEST_DOMAINS=1 dune exec test/test_mvcc.exe
	RFVIEW_TEST_DOMAINS=1 dune exec test/test_server.exe
	RFVIEW_TEST_DOMAINS=4 dune exec test/test_mvcc.exe
	RFVIEW_TEST_DOMAINS=4 dune exec test/test_server.exe

# End-to-end server smoke over a real durable fixture: build a database
# from the quickstart script, serve it on a fixed port, run three
# client round-trips (`rfview call`), and shut the server down cleanly.
serve-smoke:
	rm -rf _serve_smoke
	dune build bin/rfview.exe
	./_build/default/bin/rfview.exe run examples/sql/quickstart.sql \
	  --db _serve_smoke > /dev/null
	./_build/default/bin/rfview.exe serve _serve_smoke --port 7491 & \
	  srv=$$!; \
	  for i in 1 2 3 4 5 6 7 8 9 10; do \
	    if ./_build/default/bin/rfview.exe call 7491 ping \
	      >/dev/null 2>&1; then break; fi; sleep 0.5; \
	  done; \
	  ./_build/default/bin/rfview.exe call 7491 ping status \
	    "query SELECT * FROM seq" && \
	  ./_build/default/bin/rfview.exe call 7491 shutdown && \
	  wait $$srv
	rm -rf _serve_smoke

# Scaled-down run of the delta-maintenance experiment (batched vs
# per-row vs full-refresh propagation): asserts the modes agree
# bit-for-bit, writes BENCH_delta.json, and fails unless the report is
# well-formed.  Then the generalized-IVM experiment (derived delta
# plans vs full refresh on join/GROUP BY views), writing BENCH_IVM.json,
# the scan-sharing experiment (certified shared base scans vs per-view
# batched maintenance, bit-identical fingerprints), writing
# BENCH_share.json, the replica experiment, and the concurrent-serving
# experiment (snapshot-read fan-out + wrong-read chaos), writing
# BENCH_serve.json, all under the same checks.
bench-smoke:
	dune exec bench/main.exe -- delta --smoke
	@grep -q '"acceptance"' BENCH_delta.json && grep -q '"speedup"' BENCH_delta.json \
	  && echo "BENCH_delta.json well-formed"
	dune exec bench/main.exe -- delta-ivm --smoke
	@grep -q '"acceptance"' BENCH_IVM.json && grep -q '"speedup"' BENCH_IVM.json \
	  && echo "BENCH_IVM.json well-formed"
	dune exec bench/main.exe -- share --smoke
	@grep -q '"acceptance"' BENCH_share.json && grep -q '"speedup"' BENCH_share.json \
	  && echo "BENCH_share.json well-formed"
	dune exec bench/main.exe -- replica --smoke
	@grep -q '"acceptance"' BENCH_replica.json && grep -q '"speedup"' BENCH_replica.json \
	  && echo "BENCH_replica.json well-formed"
	dune exec bench/main.exe -- serve --smoke
	@grep -q '"acceptance"' BENCH_serve.json && grep -q '"speedup"' BENCH_serve.json \
	  && echo "BENCH_serve.json well-formed"

check: build test lint analyze chaos crash-chaos replica-chaos storage-chaos scrub-smoke mvcc-chaos serve-smoke bench-smoke

clean:
	dune clean
