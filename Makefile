.PHONY: all build test lint analyze chaos crash-chaos replica-chaos bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`),
# plus the SQL string literals embedded in the test/ and examples/
# OCaml drivers (extracted-literal mode).
lint:
	dune build @lint

# Abstract interpretation over the example corpus (`rfview analyze`):
# fails on any RF2xx diagnostic — statically-empty predicates,
# guaranteed division by zero, NULL-poisoned aggregates, cumulative-SUM
# overflow risk — and prints derivability certificates for each query.
analyze:
	dune build @analyze

# Fault-injection sweep: the chaos harness plus the rollback/quarantine
# suite (test/test_fault.ml) against every registered site.
chaos:
	dune exec test/test_fault.exe

# Crash-recovery chaos: the durability suite (test/test_crash.ml) — WAL
# round trips, torn tails, checkpoint/recovery faults, and the seed
# matrix of randomized crash streams against the shadow oracle.
crash-chaos:
	dune exec test/test_crash.exe

# Replication chaos: the replica suite (test/test_replica.ml) —
# compression/pack round trips, the prefix-monotone WAL replay
# property, checkpoint-epoch crash protocol, stale-bounded reads,
# quarantine/resync, promotion, and the multi-seed replica chaos
# matrix (kills, feed corruption, lag, primary crashes, failover; every
# served read must be a true historical state at its reported LSN).
replica-chaos:
	dune exec test/test_replica.exe

# Scaled-down run of the delta-maintenance experiment (batched vs
# per-row vs full-refresh propagation): asserts the modes agree
# bit-for-bit, writes BENCH_delta.json, and fails unless the report is
# well-formed.  Then the generalized-IVM experiment (derived delta
# plans vs full refresh on join/GROUP BY views), writing BENCH_IVM.json
# under the same checks.
bench-smoke:
	dune exec bench/main.exe -- delta --smoke
	@grep -q '"acceptance"' BENCH_delta.json && grep -q '"speedup"' BENCH_delta.json \
	  && echo "BENCH_delta.json well-formed"
	dune exec bench/main.exe -- delta-ivm --smoke
	@grep -q '"acceptance"' BENCH_IVM.json && grep -q '"speedup"' BENCH_IVM.json \
	  && echo "BENCH_IVM.json well-formed"
	dune exec bench/main.exe -- replica --smoke
	@grep -q '"acceptance"' BENCH_replica.json && grep -q '"speedup"' BENCH_replica.json \
	  && echo "BENCH_replica.json well-formed"

check: build test lint analyze chaos crash-chaos replica-chaos bench-smoke

clean:
	dune clean
