.PHONY: all build test lint chaos check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`).
lint:
	dune build @lint

# Fault-injection sweep: the chaos harness plus the rollback/quarantine
# suite (test/test_fault.ml) against every registered site.
chaos:
	dune exec test/test_fault.exe

check: build test lint chaos

clean:
	dune clean
