.PHONY: all build test lint check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the example SQL corpus with the plan checker (`rfview lint`).
lint:
	dune build @lint

check: build test lint

clean:
	dune clean
