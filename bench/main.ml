(* Benchmark harness reproducing the paper's evaluation (§7).

   Experiments (see DESIGN.md §5 for the per-experiment index):

   - Table 1: computing sequence data from raw values — native reporting
     functionality vs. the Fig. 2 self-join simulation, with and without
     an ordered index on the sequence position.
   - Table 2: deriving a sliding-window query from a materialized
     sequence view — MaxOA vs. MinOA, each as a single disjunctive-
     predicate query and as a union of simple-predicate queries
     (primary-key index present, as in the paper).
   - Ablations: (A) pipelined vs. naive window computation (§2.2);
     (B) incremental maintenance vs. recomputation (§2.3);
     (C) core-level MaxOA vs. MinOA vs. recompute-from-raw (§4/§5).

   Absolute numbers are not comparable to the paper's DB2-on-PII-466
   setting; the *shape* (who wins, crossovers, super-linear growth of the
   unindexed self join) is what EXPERIMENTS.md records.

   - Delta maintenance: per-row vs batched vs full-refresh view
     maintenance under bulk inserts (writes BENCH_delta.json).
   - Generalized IVM: derived delta-plan maintenance of join/GROUP BY
     views vs full refresh (writes BENCH_IVM.json).
   - Scan sharing: certificate-gated shared base scans for same-keyed
     sequence views vs per-view batched maintenance (writes
     BENCH_share.json).

   - Concurrent serving: MVCC snapshot-read fan-out across reader
     domains, wire round-trips, and a wrong-read chaos check (writes
     BENCH_serve.json).

   Usage: main.exe
   [table1|table2|ablations|delta|delta-ivm|share|replica|serve|bechamel|all]
   [--full] [--smoke]
   --full uses the paper's original row counts (slow: the unindexed self
   join is quadratic); --smoke shrinks the delta experiment to a
   seconds-long CI check. *)

module Core = Rfview_core
module Config = Rfview.Config
module Session = Rfview.Session
module Snapshot = Rfview.Snapshot
module Fault = Rfview_engine.Fault
module Seqgen = Rfview_workload.Seqgen
module Chaos = Rfview_workload.Chaos
module Prng = Rfview_workload.Prng
open Rfview_relalg

(* The bench drives the typed façade only; the engine handle stays
   behind [Session]. *)
let ok = function
  | Ok v -> v
  | Error e -> failwith (Session.describe_error e)

let sexec s sql = ignore (ok (Session.exec s sql))
let squery s sql = ok (Session.query s sql)

(* ---- Timing ---- *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-k wall clock; k adapts so fast operations are repeated and slow
   ones run once. *)
let measure ?(budget = 2.0) (f : unit -> 'a) : float =
  let _, first = time_once f in
  if first >= budget then first
  else begin
    let runs = max 2 (min 9 (int_of_float (budget /. Float.max 1e-6 first))) in
    let best = ref first in
    for _ = 2 to runs do
      let _, t = time_once f in
      if t < !best then best := t
    done;
    !best
  end

let fmt_time s =
  if s < 1e-3 then Printf.sprintf "%8.3fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%8.3fms" (s *. 1e3)
  else Printf.sprintf "%8.3fs " s

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_line cells = print_endline (String.concat " | " cells)

(* ---- Table 1: computing sequence data ---- *)

(* The paper's query: a centered sliding window of size 3 over a (pos,
   val) table (Fig. 2), SUM aggregate. *)
let table1_frame = Core.Frame.sliding ~l:1 ~h:1

let expected_seq values =
  Core.Compute.sequence table1_frame (Core.Seqdata.raw_of_array values)

let verify_table1 values (r : Relation.t) =
  let expected = expected_seq values in
  let schema = Relation.schema r in
  let pos_col = Schema.find schema "pos" in
  let val_col = if pos_col = 0 then 1 else 0 in
  Relation.iter
    (fun row ->
      let k = Value.to_int (Row.get row pos_col) in
      let v = Value.to_float (Row.get row val_col) in
      if Float.abs (v -. Core.Seqdata.get expected k) > 1e-6 then
        failwith (Printf.sprintf "table1 verification failed at position %d" k))
    r

let run_table1 ~sizes =
  header
    "Table 1: Computing Sequence Data (SUM OVER ROWS BETWEEN 1 PRECEDING AND 1 \
     FOLLOWING)";
  Printf.printf
    "columns: native reporting functionality vs. self-join simulation (Fig. 2),\n\
     each without / with an ordered index on seq.pos\n\n";
  row_line
    [ Printf.sprintf "%7s" "n"; "reporting func."; "self join      ";
      "rep. func (idx)"; "self join (idx)" ];
  List.iter
    (fun n ->
      let values = Seqgen.raw_values ~seed:(1000 + n) n in
      let native_sql = Core.Sqlgen.native_window table1_frame in
      let self_sql = Core.Sqlgen.fig2_self_join table1_frame in
      let with_db ~indexed f =
        let s = Session.open_in_memory () in
        Seqgen.create_seq_table_session ~indexed s values;
        Fun.protect ~finally:(fun () -> Session.close s) (fun () -> f s)
      in
      let t_native =
        with_db ~indexed:false (fun s ->
            verify_table1 values (squery s native_sql);
            measure (fun () -> squery s native_sql))
      in
      let t_self =
        with_db ~indexed:false (fun s ->
            verify_table1 values (squery s self_sql);
            measure (fun () -> squery s self_sql))
      in
      let t_native_idx =
        with_db ~indexed:true (fun s -> measure (fun () -> squery s native_sql))
      in
      let t_self_idx =
        with_db ~indexed:true (fun s ->
            verify_table1 values (squery s self_sql);
            measure (fun () -> squery s self_sql))
      in
      row_line
        [ Printf.sprintf "%7d" n; "  " ^ fmt_time t_native; "  " ^ fmt_time t_self;
          "  " ^ fmt_time t_native_idx; "  " ^ fmt_time t_self_idx ];
      Printf.printf
        "        self-join/native = %.1fx (no index), %.1fx (with index)\n%!"
        (t_self /. t_native) (t_self_idx /. t_native_idx))
    sizes

(* ---- Table 2: deriving sequence data from a materialized view ---- *)

(* View x~ = (2,1); query y~ = (4,1): MaxOA applies (shared h, ∆l = 2 <=
   lx+h = 3, within the paper's precondition ly <= h-1+2lx = 4) and MinOA
   applies unconditionally.  Primary-key (ordered) index on matseq.pos, as
   in the paper's setup. *)
let t2_view_frame = Core.Frame.sliding ~l:2 ~h:1
let t2_lx, t2_hx = (2, 1)
let t2_ly, t2_hy = (4, 1)

let t2_sql = function
  | `Maxoa_disj -> Core.Sqlgen.maxoa ~lx:t2_lx ~h:t2_hx ~ly:t2_ly `Disjunctive
  | `Maxoa_union -> Core.Sqlgen.maxoa ~lx:t2_lx ~h:t2_hx ~ly:t2_ly `Union
  | `Minoa_disj ->
    Core.Sqlgen.minoa ~lx:t2_lx ~hx:t2_hx ~ly:t2_ly ~hy:t2_hy `Disjunctive
  | `Minoa_union -> Core.Sqlgen.minoa ~lx:t2_lx ~hx:t2_hx ~ly:t2_ly ~hy:t2_hy `Union

let verify_table2 values (r : Relation.t) =
  let raw = Core.Seqdata.raw_of_array values in
  let target = Core.Compute.sequence (Core.Frame.sliding ~l:t2_ly ~h:t2_hy) raw in
  let n = Array.length values in
  Relation.iter
    (fun row ->
      let k = Value.to_int (Row.get row 0) in
      if k >= 1 && k <= n then begin
        let v = Value.to_float (Row.get row 1) in
        if Float.abs (v -. Core.Seqdata.get target k) > 1e-6 then
          failwith (Printf.sprintf "table2 verification failed at position %d" k)
      end)
    r

let run_table2_variant ~sizes ~hash_joins =
  row_line
    [ Printf.sprintf "%7s" "n"; "MaxOA disj.    "; "MaxOA union    ";
      "MinOA disj.    "; "MinOA union    " ];
  List.iter
    (fun n ->
      let values = Seqgen.raw_values ~seed:(2000 + n) n in
      let raw = Core.Seqdata.raw_of_array values in
      let view = Core.Compute.sequence t2_view_frame raw in
      let run variant =
        let s =
          Session.open_in_memory
            ~config:
              {
                Config.default with
                hash_join = hash_joins;
                index_join = hash_joins;
              }
            ()
        in
        Seqgen.create_matseq_table_session ~indexed:true s view;
        let sql = t2_sql variant in
        verify_table2 values (squery s sql);
        Fun.protect ~finally:(fun () -> Session.close s)
          (fun () -> measure (fun () -> squery s sql))
      in
      let tmd = run `Maxoa_disj in
      let tmu = run `Maxoa_union in
      let tnd = run `Minoa_disj in
      let tnu = run `Minoa_union in
      row_line
        [ Printf.sprintf "%7d" n; "  " ^ fmt_time tmd; "  " ^ fmt_time tmu;
          "  " ^ fmt_time tnd; "  " ^ fmt_time tnu ];
      Printf.printf "%!")
    sizes

let run_table2 ~sizes =
  header
    "Table 2: Deriving Sequence Data from a Materialized View (x~=(2,1) -> y~=(4,1))";
  Printf.printf
    "MaxOA and MinOA, each as one disjunctive-predicate query and as a union of\n\
     simple-predicate queries; ordered index on matseq.pos\n\n";
  Printf.printf
    "(a) plain execution: hash and index joins disabled, every self join runs as\n\
    \    a nested loop (one pass for the disjunctive form, two passes for the\n\
    \    union form)\n\n";
  run_table2_variant ~sizes ~hash_joins:false;
  Printf.printf
    "\n(b) with the optimizer on: the union branches hash-join on their MOD\n\
    \    residue classes (or index-probe the position bound); the disjunctive\n\
    \    form cannot and stays a nested loop\n\n";
  run_table2_variant ~sizes ~hash_joins:true

(* ---- Ablations ---- *)

let run_ablations () =
  header "Ablation A: pipelined vs. naive sequence computation (paper §2.2)";
  Printf.printf
    "n = 200000; the pipelined recursion does 3 ops/position regardless of w\n\n";
  let n = 200_000 in
  let values = Seqgen.raw_values ~seed:3 n in
  let raw = Core.Seqdata.raw_of_array values in
  row_line [ Printf.sprintf "%14s" "window"; "naive          "; "pipelined      " ];
  List.iter
    (fun (l, h) ->
      let frame = Core.Frame.sliding ~l ~h in
      let t_naive = measure (fun () -> Core.Compute.naive frame raw) in
      let t_pipe = measure (fun () -> Core.Compute.pipelined frame raw) in
      row_line
        [ Printf.sprintf "%14s" (Core.Frame.to_string frame);
          "  " ^ fmt_time t_naive; "  " ^ fmt_time t_pipe ])
    [ (1, 1); (5, 5); (50, 50) ];
  (* the naive cumulative form is O(n^2); run it at n/10 *)
  let small = Core.Seqdata.raw_of_array (Seqgen.raw_values ~seed:3 (n / 10)) in
  let t_naive = measure (fun () -> Core.Compute.naive Core.Frame.Cumulative small) in
  let t_pipe = measure (fun () -> Core.Compute.pipelined Core.Frame.Cumulative small) in
  row_line
    [ Printf.sprintf "%14s" "cumul. (n/10)"; "  " ^ fmt_time t_naive;
      "  " ^ fmt_time t_pipe ];

  header "Ablation B: incremental maintenance vs. recomputation (paper §2.3)";
  Printf.printf "n = 200000, window (5,2), single raw-value update at n/2\n\n";
  let frame = Core.Frame.sliding ~l:5 ~h:2 in
  let seq = Core.Compute.sequence frame raw in
  let edit = Core.Maintain.Update { k = n / 2; value = 42. } in
  let scratch =
    Core.Seqdata.make frame Core.Agg.Sum ~n ~lo:(Core.Seqdata.stored_lo seq)
      (Core.Seqdata.to_array seq)
  in
  let t_inplace =
    measure (fun () -> Core.Maintain.apply_update_delta scratch ~k:(n / 2) ~delta:1.)
  in
  let t_copy = measure (fun () -> Core.Maintain.apply seq raw edit) in
  let t_recompute = measure (fun () -> Core.Maintain.recompute seq raw edit) in
  row_line [ "update, in place (O(w) touched)  "; fmt_time t_inplace ];
  row_line [ "update, fresh copy (O(n) copy)   "; fmt_time t_copy ];
  row_line [ "full recomputation               "; fmt_time t_recompute ];
  let ins = Core.Maintain.Insert { k = n / 2; value = 1. } in
  let t_ins = measure (fun () -> Core.Maintain.apply seq raw ins) in
  let t_ins_re = measure (fun () -> Core.Maintain.recompute seq raw ins) in
  row_line [ "insert, incremental (blit)       "; fmt_time t_ins ];
  row_line [ "insert, recomputation            "; fmt_time t_ins_re ];

  header "Ablation C: core-level derivation algorithms (paper §4/§5, §7 discussion)";
  Printf.printf
    "n = 20000, view (2,1); deriving (2+dl, 1): explicit forms are the paper's\n\
     relational patterns, the recursive/telescoped forms are the cached-engine\n\
     variants\n\n";
  let n = 20_000 in
  let values = Seqgen.raw_values ~seed:4 n in
  let raw = Core.Seqdata.raw_of_array values in
  let view = Core.Compute.sequence (Core.Frame.sliding ~l:2 ~h:1) raw in
  row_line
    [ Printf.sprintf "%4s" "dl"; "MaxOA recursive"; "MaxOA explicit ";
      "MinOA telescope"; "MinOA explicit "; "recompute      " ];
  List.iter
    (fun dl ->
      let ly = 2 + dl in
      let t_maxr = measure (fun () -> Core.Maxoa.derive_left view ~ly) in
      let t_maxe = measure (fun () -> Core.Maxoa.derive_left_explicit view ~ly) in
      let t_minf = measure (fun () -> Core.Minoa.derive view ~l:ly ~h:1) in
      let t_mine = measure (fun () -> Core.Minoa.derive_explicit view ~l:ly ~h:1) in
      let t_re =
        measure (fun () -> Core.Compute.sequence (Core.Frame.sliding ~l:ly ~h:1) raw)
      in
      row_line
        [ Printf.sprintf "%4d" dl; "  " ^ fmt_time t_maxr; "  " ^ fmt_time t_maxe;
          "  " ^ fmt_time t_minf; "  " ^ fmt_time t_mine; "  " ^ fmt_time t_re ])
    [ 1; 2; 3 ]

(* ---- Delta maintenance: per-row vs batched vs full refresh ----

   The batched delta engine's experiment: apply B inserts to a base
   table carrying V materialized sequence views, as (a) B single-row
   statements (one propagation per view per statement), (b) one
   [with_batch] scope (one propagation per view per batch), (c) with
   propagation quarantined and a full REFRESH per view at the end.
   Strategies (a) and (b) must land on bit-identical states
   (Chaos.fingerprint); results go to BENCH_delta.json. *)

let delta_view_sqls =
  [
    ("v_cum",
     "CREATE MATERIALIZED VIEW v_cum AS SELECT pos, SUM(val) OVER (ORDER BY \
      pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
    ("v_s21",
     "CREATE MATERIALIZED VIEW v_s21 AS SELECT pos, SUM(val) OVER (ORDER BY \
      pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
    ("v_min",
     "CREATE MATERIALIZED VIEW v_min AS SELECT pos, MIN(val) OVER (ORDER BY \
      pos ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS m FROM seq");
    ("v_avg",
     "CREATE MATERIALIZED VIEW v_avg AS SELECT pos, AVG(val) OVER (ORDER BY \
      pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS a FROM seq");
  ]

(* Integer-valued floats keep every aggregate exact, so per-row and
   batched maintenance can be compared bit for bit. *)
let delta_session ~views ~n0 ~seed =
  let s = Session.open_in_memory () in
  sexec s "CREATE TABLE seq (pos INT, val FLOAT)";
  let rng = Prng.create ~seed in
  let rows =
    Array.init n0 (fun i ->
        [|
          Value.Int (i + 1);
          Value.Float (float_of_int (Prng.int_range rng ~lo:(-50) ~hi:50));
        |])
  in
  Session.load_table s ~table:"seq" rows;
  List.iteri
    (fun i (_, sql) -> if i < views then sexec s sql)
    delta_view_sqls;
  s

(* The same statement stream feeds every strategy. *)
let delta_inserts ~n0 ~b ~seed =
  let rng = Prng.create ~seed:(seed * 31 + 7) in
  List.init b (fun _ ->
      let pos = Prng.int_range rng ~lo:1 ~hi:(n0 + b) in
      let v = Prng.int_range rng ~lo:(-50) ~hi:50 in
      Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" pos v)

(* Best-of-[repeat] wall clock over fresh sessions ([f] mutates state,
   so each run gets its own); returns one surviving session for the
   fingerprint comparison. *)
let delta_time ~repeat setup f =
  let best = ref infinity in
  let keep = ref None in
  for _ = 1 to repeat do
    let s = setup () in
    let (), t = time_once (fun () -> f s) in
    if t < !best then best := t;
    keep := Some s
  done;
  (!best, Option.get !keep)

let run_delta ~smoke =
  header "Delta maintenance: per-row vs batched vs full refresh";
  let n0 = if smoke then 300 else 5_000 in
  let repeat = if smoke then 1 else 3 in
  let batch_sizes = if smoke then [ 1; 10; 50 ] else [ 1; 10; 100; 1_000 ] in
  let accept_batch = if smoke then 50 else 1_000 in
  let fanout_batch = accept_batch in
  let view_counts = [ 1; 2; 4 ] in
  Printf.printf
    "base table: %d rows; views: cumulative SUM, SUM(2,1), MIN(3,0), AVG(1,1)\n\n"
    n0;
  let apply_per_row s stmts = List.iter (fun sql -> sexec s sql) stmts in
  let apply_batched s stmts =
    Session.with_batch s (fun () -> List.iter (fun sql -> sexec s sql) stmts)
  in
  let apply_full_refresh s stmts views =
    (* quarantine the views up front (armed propagation), then one full
       REFRESH per view at the end — the §2.3 baseline *)
    Fault.arm "database.propagate_view" Fault.Always;
    Fun.protect
      ~finally:(fun () -> Fault.disarm "database.propagate_view")
      (fun () -> List.iter (fun sql -> sexec s sql) stmts);
    List.iteri
      (fun i (name, _) ->
        if i < views then
          sexec s (Printf.sprintf "REFRESH MATERIALIZED VIEW %s" name))
      delta_view_sqls
  in
  let run_case ~b ~views =
    let seed = (1_000 * b) + views in
    let stmts = delta_inserts ~n0 ~b ~seed in
    let setup () = delta_session ~views ~n0 ~seed in
    let t_row, s_row =
      delta_time ~repeat setup (fun s -> apply_per_row s stmts)
    in
    let t_batch, s_batch =
      delta_time ~repeat setup (fun s -> apply_batched s stmts)
    in
    let t_full, s_full =
      delta_time ~repeat setup (fun s -> apply_full_refresh s stmts views)
    in
    (* per-row vs batched must be bit-identical, incremental states and
       all; the full-refresh baseline legitimately drops incremental
       state (quarantine + REFRESH), so it is compared logically *)
    let fp_row = Chaos.fingerprint_session s_row in
    let fp_batch = Chaos.fingerprint_session s_batch in
    if fp_row <> fp_batch then
      failwith
        (Printf.sprintf
           "delta: per-row and batched states differ (B=%d, views=%d)" b views);
    let logical s =
      let dump sql = Relation.render (Relation.sorted_by_all (squery s sql)) in
      dump "SELECT * FROM seq"
      ^ String.concat ""
          (List.filteri (fun i _ -> i < views) delta_view_sqls
          |> List.map (fun (name, _) -> dump ("SELECT * FROM " ^ name)))
    in
    if logical s_row <> logical s_full then
      failwith
        (Printf.sprintf
           "delta: per-row and full-refresh states differ (B=%d, views=%d)" b
           views);
    row_line
      [ Printf.sprintf "%6d" b; Printf.sprintf "%5d" views;
        "  " ^ fmt_time t_row; "  " ^ fmt_time t_batch; "  " ^ fmt_time t_full;
        Printf.sprintf "  %6.1fx" (t_row /. t_batch) ];
    Printf.printf "%!";
    (b, views, t_row, t_batch, t_full)
  in
  row_line
    [ Printf.sprintf "%6s" "B"; Printf.sprintf "%5s" "views"; "per-row    ";
      "  batched    "; "  full refresh"; "  speedup" ];
  (* left-to-right: batch-size sweep at full fan-out, then fan-out sweep *)
  let runs_sweep = List.map (fun b -> run_case ~b ~views:4) batch_sizes in
  let runs_fanout =
    List.map
      (fun v -> run_case ~b:fanout_batch ~views:v)
      (List.filter (fun v -> v <> 4) view_counts)
  in
  let runs = runs_sweep @ runs_fanout in
  (* acceptance: batched >= 5x faster than per-row at the large batch
     with full view fan-out *)
  let accept_speedup =
    match
      List.find_opt (fun (b, v, _, _, _) -> b = accept_batch && v = 4) runs
    with
    | Some (_, _, t_row, t_batch, _) -> t_row /. t_batch
    | None -> 0.
  in
  let required = 5.0 in
  let pass = (not smoke) && accept_speedup >= required in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"delta-maintenance\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf (Printf.sprintf "  \"base_rows\": %d,\n" n0);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (b, v, t_row, t_batch, t_full) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"batch\": %d, \"views\": %d, \"per_row_s\": %.6f, \
            \"batched_s\": %.6f, \"full_refresh_s\": %.6f, \"speedup\": %.2f, \
            \"identical\": true}%s\n"
           b v t_row t_batch t_full (t_row /. t_batch)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"batch\": %d, \"views\": 4, \"speedup\": %.2f, \
        \"required\": %.1f, \"pass\": %b}\n"
       accept_batch accept_speedup required
       (if smoke then accept_speedup >= 1.0 else pass));
  Buffer.add_string buf "}\n";
  let out = "BENCH_delta.json" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (* well-formedness self-check: reread and verify the keys and brace
     balance a consumer relies on *)
  let written =
    let ic = open_in out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let balanced =
    let d = ref 0 in
    String.iter (fun c -> if c = '{' then incr d else if c = '}' then decr d) written;
    !d = 0
  in
  if
    not
      (balanced
      && contains written "\"acceptance\""
      && contains written "\"runs\""
      && contains written "\"speedup\"")
  then failwith "BENCH_delta.json failed its well-formedness self-check";
  Printf.printf "\nwrote %s (acceptance speedup at B=%d, 4 views: %.1fx)\n%!" out
    accept_batch accept_speedup;
  if (not smoke) && not pass then begin
    Printf.eprintf "delta acceptance FAILED: %.1fx < %.1fx\n%!" accept_speedup
      required;
    exit 1
  end

(* ---- Generalized IVM: derived delta plans vs full refresh ----

   The deriver's experiment (DESIGN.md §14): a fact table joined to a
   small dimension table carries a derived join view and a derived
   GROUP BY view.  A stream of small DML statements runs twice, each
   statement followed by a probe read of both views so every strategy
   keeps them fresh at statement boundaries: (a) with derived
   maintenance active, (b) with the derived apply site fault-armed, so
   every maintenance attempt quarantines and the probe heals by full
   refresh — the engine without the deriver.  Final states must agree
   logically; results go to BENCH_IVM.json. *)

let ivm_view_sqls =
  [
    ("v_join",
     "CREATE MATERIALIZED VIEW v_join AS SELECT f.k AS k, d.label AS label, \
      f.amount AS amount FROM fact f JOIN dim d ON f.grp = d.g");
    ("v_grp",
     "CREATE MATERIALIZED VIEW v_grp AS SELECT grp, SUM(amount) AS total, \
      COUNT(*) AS n FROM fact GROUP BY grp");
  ]

(* Integer-valued floats keep the aggregates exact, so the two
   strategies' final states can be compared by rendered value. *)
let ivm_session ~views ~n0 ~seed =
  let s = Session.open_in_memory () in
  sexec s "CREATE TABLE fact (k INT, grp INT, amount FLOAT)";
  sexec s "CREATE TABLE dim (g INT, label VARCHAR)";
  let rng = Prng.create ~seed in
  let rows =
    Array.init n0 (fun i ->
        [|
          Value.Int (i + 1);
          Value.Int (Prng.int_range rng ~lo:0 ~hi:99);
          Value.Float (float_of_int (Prng.int_range rng ~lo:(-50) ~hi:50));
        |])
  in
  Session.load_table s ~table:"fact" rows;
  Session.load_table s ~table:"dim"
    (Array.init 100 (fun g -> [| Value.Int g; Value.String (Printf.sprintf "g%d" g) |]));
  List.iter (fun (_, sql) -> sexec s sql) views;
  List.iter
    (fun (name, _) ->
      if not (Session.is_derived_maintained s name) then
        failwith (Printf.sprintf "delta-ivm: %s did not derive" name))
    views;
  s

(* Mostly single-row inserts with an update and a delete mixed in per
   ten statements: updates/deletes pay an O(n) base-table predicate
   scan in *both* strategies, so an insert-heavy stream keeps the
   comparison about maintenance, not shared DML cost. *)
let ivm_dml ~n0 ~b ~seed =
  let rng = Prng.create ~seed:(seed * 37 + 11) in
  List.init b (fun i ->
      match i mod 10 with
      | 8 ->
        Printf.sprintf "UPDATE fact SET amount = amount + 1 WHERE k = %d"
          (Prng.int_range rng ~lo:1 ~hi:n0)
      | 9 ->
        Printf.sprintf "DELETE FROM fact WHERE k = %d"
          (Prng.int_range rng ~lo:1 ~hi:n0)
      | _ ->
        Printf.sprintf "INSERT INTO fact VALUES (%d, %d, %d)" (n0 + i + 1)
          (Prng.int_range rng ~lo:0 ~hi:99)
          (Prng.int_range rng ~lo:(-50) ~hi:50))

let run_delta_ivm ~smoke =
  header "Generalized IVM: derived delta plans vs full refresh";
  let n0 = if smoke then 300 else 16_000 in
  let b = if smoke then 8 else 30 in
  let repeat = if smoke then 1 else 3 in
  let seed = 42 in
  Printf.printf
    "fact: %d rows, dim: 100 rows; views: inner join (fan-out %d), GROUP BY \
     (100 groups); %d DML statements, views kept fresh per statement\n\n"
    n0 n0 b;
  let stmts = ivm_dml ~n0 ~b ~seed in
  (* one case per view shape: the n0-row join view is the paper-style
     large view that carries the acceptance bar; the 100-group GROUP BY
     view still pays one child scan per maintenance, so its win is the
     avoided aggregation and contents rebuild *)
  let run_case (name, sql) =
    let views = [ (name, sql) ] in
    let apply s = List.iter (fun sql -> sexec s sql) stmts in
    let setup () = ivm_session ~views ~n0 ~seed in
    let t_derived, s_derived = delta_time ~repeat setup apply in
    let t_full, s_full =
      delta_time ~repeat setup (fun s ->
          (* every derived apply faults -> quarantine, and an explicit
             REFRESH after each statement restores freshness: the same
             per-statement guarantee the deriver gives, minus the
             deriver *)
          Fault.arm "matview.apply_derived" Fault.Always;
          Fun.protect
            ~finally:(fun () -> Fault.disarm "matview.apply_derived")
            (fun () ->
              List.iter
                (fun sql ->
                  sexec s sql;
                  sexec s (Printf.sprintf "REFRESH MATERIALIZED VIEW %s" name))
                stmts))
    in
    let logical s =
      let dump sql = Relation.render (Relation.sorted_by_all (squery s sql)) in
      dump "SELECT * FROM fact" ^ dump ("SELECT * FROM " ^ name)
    in
    if logical s_derived <> logical s_full then
      failwith (Printf.sprintf "delta-ivm: %s derived and full-refresh states differ" name);
    let speedup = t_full /. t_derived in
    row_line
      [ Printf.sprintf "%-7s" name; fmt_time t_derived; fmt_time t_full;
        Printf.sprintf "  %6.1fx" speedup ];
    Printf.printf "%!";
    (name, t_derived, t_full, speedup)
  in
  row_line [ "view   "; "derived    "; "full refresh"; "  speedup" ];
  let runs = List.map run_case ivm_view_sqls in
  let speedup =
    match List.find_opt (fun (n, _, _, _) -> n = "v_join") runs with
    | Some (_, _, _, s) -> s
    | None -> 0.
  in
  let required = 5.0 in
  let pass = if smoke then speedup >= 1.0 else speedup >= required in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"delta-ivm\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf
    (Printf.sprintf "  \"fact_rows\": %d, \"dml_statements\": %d,\n" n0 b);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (name, t_derived, t_full, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"view\": \"%s\", \"derived_s\": %.6f, \"full_refresh_s\": \
            %.6f, \"speedup\": %.2f, \"identical\": true}%s\n"
           name t_derived t_full s
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"view\": \"v_join\", \"speedup\": %.2f, \
        \"required\": %.1f, \"pass\": %b}\n"
       speedup required pass);
  Buffer.add_string buf "}\n";
  let out = "BENCH_IVM.json" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let written =
    let ic = open_in out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let balanced =
    let d = ref 0 in
    String.iter (fun c -> if c = '{' then incr d else if c = '}' then decr d) written;
    !d = 0
  in
  if
    not
      (balanced
      && contains written "\"acceptance\""
      && contains written "\"runs\""
      && contains written "\"speedup\"")
  then failwith "BENCH_IVM.json failed its well-formedness self-check";
  Printf.printf "\nwrote %s (derived vs full refresh: %.1fx)\n%!" out speedup;
  if (not smoke) && not pass then begin
    Printf.eprintf "delta-ivm acceptance FAILED: %.1fx < %.1fx\n%!" speedup required;
    exit 1
  end

(* ---- Scan sharing: certificate-gated shared base scans ----

   The Analysis.Share experiment (writes BENCH_share.json): V sequence
   views share one (PARTITION BY grp ORDER BY pos) key over one base
   table, so batch maintenance can run the claim-matching merge once
   per class instead of once per view.  The same update/delete-heavy
   batched stream runs with [share_scans] on and off; claim matching is
   O(partition) per edit, so it dominates and the shared iterator's
   saving scales with fan-out.  Final states must be bit-identical
   (Chaos.fingerprint). *)

let share_view_sqls =
  [
    ("sv_cum",
     "CREATE MATERIALIZED VIEW sv_cum AS SELECT grp, pos, val, SUM(val) OVER \
      (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
    ("sv_avg",
     "CREATE MATERIALIZED VIEW sv_avg AS SELECT grp, pos, val, AVG(val) OVER \
      (PARTITION BY grp ORDER BY pos ROWS BETWEEN 3 PRECEDING AND CURRENT \
      ROW) AS a FROM seq");
    ("sv_min",
     "CREATE MATERIALIZED VIEW sv_min AS SELECT grp, pos, val, MIN(val) OVER \
      (PARTITION BY grp ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 \
      FOLLOWING) AS m FROM seq");
    ("sv_s21",
     "CREATE MATERIALIZED VIEW sv_s21 AS SELECT grp, pos, val, SUM(val) OVER \
      (PARTITION BY grp ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
      FOLLOWING) AS s FROM seq");
  ]

let share_groups = 4

(* Integer-valued floats keep every aggregate exact, so the two
   configurations' final states compare bit for bit. *)
let share_db ~share ~views ~n0 ~seed =
  let s =
    Session.open_in_memory
      ~config:{ Config.default with share_scans = share }
      ()
  in
  sexec s "CREATE TABLE seq (grp INT, pos INT, val FLOAT)";
  let rng = Prng.create ~seed in
  let rows =
    Array.init n0 (fun i ->
        [|
          Value.Int (i mod share_groups);
          Value.Int ((i / share_groups) + 1);
          Value.Float (float_of_int (Prng.int_range rng ~lo:(-50) ~hi:50));
        |])
  in
  Session.load_table s ~table:"seq" rows;
  List.iteri
    (fun i (_, sql) -> if i < views then sexec s sql)
    share_view_sqls;
  s

(* Update/delete-heavy, with multi-row statements: each range update
   pays one base-table predicate scan (shared work in both
   configurations) but yields [width] in-place edits, every one
   claim-matched against the partition state — the per-view cost the
   shared iterator factors out.  Deletes drop a thin range; inserts land
   at fresh positions (unique order keys, per the §2.3 contract). *)
let share_dml ~n0 ~b ~width ~seed =
  let rng = Prng.create ~seed:(seed * 53 + 17) in
  let per_grp = n0 / share_groups in
  let fresh = ref per_grp in
  List.init b (fun i ->
      let g = Prng.int_range rng ~lo:0 ~hi:(share_groups - 1) in
      match i mod 10 with
      | 7 ->
        let a = Prng.int_range rng ~lo:1 ~hi:per_grp in
        Printf.sprintf
          "DELETE FROM seq WHERE grp = %d AND pos >= %d AND pos < %d" g a
          (a + (width / 8) + 1)
      | 8 | 9 ->
        incr fresh;
        Printf.sprintf "INSERT INTO seq VALUES (%d, %d, %d)" g !fresh
          (Prng.int_range rng ~lo:(-50) ~hi:50)
      | _ ->
        let a = Prng.int_range rng ~lo:1 ~hi:(max 1 (per_grp - width)) in
        Printf.sprintf
          "UPDATE seq SET val = val + 1 WHERE grp = %d AND pos >= %d AND pos \
           < %d"
          g a (a + width))

let run_share ~smoke =
  header "Scan sharing: shared vs per-view batched maintenance";
  let n0 = if smoke then 400 else 8_000 in
  let b = if smoke then 40 else 200 in
  let width = if smoke then 6 else 40 in
  let chunks = if smoke then 2 else 4 in
  let repeat = if smoke then 1 else 3 in
  let view_counts = [ 2; 4 ] in
  Printf.printf
    "base table: %d rows in %d groups; views share PARTITION BY grp ORDER BY \
     pos; %d update/delete-heavy statements (range width %d) in %d batches\n\n"
    n0 share_groups b width chunks;
  let run_case ~views =
    let seed = 500 + views in
    let stmts = share_dml ~n0 ~b ~width ~seed in
    let chunk_size = (b + chunks - 1) / chunks in
    let batches =
      List.init chunks (fun c ->
          List.filteri
            (fun i _ -> i / chunk_size = c)
            stmts)
    in
    let apply s =
      List.iter
        (fun batch ->
          Session.with_batch s (fun () ->
              List.iter (fun sql -> sexec s sql) batch))
        batches
    in
    let time ~share =
      let best = ref infinity in
      let keep = ref None in
      for _ = 1 to repeat do
        let s = share_db ~share ~views ~n0 ~seed in
        let (), t = time_once (fun () -> apply s) in
        if t < !best then best := t;
        keep := Some s
      done;
      (!best, Option.get !keep)
    in
    let t_on, db_on = time ~share:true in
    let t_off, db_off = time ~share:false in
    (* certificate check: the class the engine maintains must be exactly
       the shared-key views *)
    let expect =
      List.filteri (fun i _ -> i < views) share_view_sqls
      |> List.map fst
      |> List.sort compare
    in
    (match Session.share_classes db_on ~table:"seq" with
     | [ members ] when List.sort compare members = expect -> ()
     | _ -> failwith "share: engine share class disagrees with the view set");
    if Chaos.fingerprint_session db_on <> Chaos.fingerprint_session db_off then
      failwith
        (Printf.sprintf "share: shared and per-view states differ (views=%d)"
           views);
    let speedup = t_off /. t_on in
    row_line
      [ Printf.sprintf "%5d" views; "  " ^ fmt_time t_on; "  " ^ fmt_time t_off;
        Printf.sprintf "  %6.2fx" speedup ];
    Printf.printf "%!";
    (views, t_on, t_off, speedup)
  in
  row_line
    [ Printf.sprintf "%5s" "views"; "shared     "; "  per-view   "; "  speedup" ];
  let runs = List.map (fun v -> run_case ~views:v) view_counts in
  let speedup =
    match List.find_opt (fun (v, _, _, _) -> v = 4) runs with
    | Some (_, _, _, s) -> s
    | None -> 0.
  in
  let required = 1.5 in
  let pass = if smoke then speedup >= 1.0 else speedup >= required in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"scan-sharing\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"base_rows\": %d, \"groups\": %d, \"dml_statements\": %d, \
        \"batches\": %d,\n"
       n0 share_groups b chunks);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (v, t_on, t_off, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"views\": %d, \"shared_s\": %.6f, \"per_view_s\": %.6f, \
            \"speedup\": %.2f, \"identical\": true}%s\n"
           v t_on t_off s
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"views\": 4, \"speedup\": %.2f, \"required\": \
        %.1f, \"pass\": %b}\n"
       speedup required pass);
  Buffer.add_string buf "}\n";
  let out = "BENCH_share.json" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let written =
    let ic = open_in out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let balanced =
    let d = ref 0 in
    String.iter (fun c -> if c = '{' then incr d else if c = '}' then decr d) written;
    !d = 0
  in
  if
    not
      (balanced
      && contains written "\"acceptance\""
      && contains written "\"runs\""
      && contains written "\"speedup\"")
  then failwith "BENCH_share.json failed its well-formedness self-check";
  Printf.printf "\nwrote %s (shared vs per-view at 4 views: %.2fx)\n%!" out
    speedup;
  if (not smoke) && not pass then begin
    Printf.eprintf "share acceptance FAILED: %.2fx < %.1fx\n%!" speedup required;
    exit 1
  end

(* ---- Replication: read fan-out and checkpoint-bounded bootstrap ----

   Two questions (writes BENCH_replica.json):

   1. Read throughput at 1/2/4 replicas vs the single-process primary.
      Replicas hold identical applied state, so in deployment each one
      runs on its own machine; the bench measures each handle's share of
      the query stream serially and models the parallel wall clock as
      the slowest share (max, not sum).  Reads go through the real
      stale-bounded [Replica.read] path with a zero-lag bound.
   2. Bootstrap cost with and without byte-triggered checkpoints: how
      many records a fresh replica must replay after the latest shipped
      artifact, and how long attach+poll takes.  Compaction must keep
      the replay suffix bounded. *)

let replica_dir_reset dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir)

let replica_setup_primary ~dir ~n0 ~writes ~checkpoint_bytes =
  replica_dir_reset dir;
  let s = ok (Session.open_durable dir) in
  (match checkpoint_bytes with
   | Some b -> Session.set_checkpoint_bytes s (Some b)
   | None -> ());
  sexec s "CREATE TABLE seq (pos INT, val FLOAT)";
  let rng = Prng.create ~seed:17 in
  Session.load_table s ~table:"seq"
    (Array.init n0 (fun i ->
         [|
           Value.Int (i + 1);
           Value.Float (float_of_int (Prng.int_range rng ~lo:(-50) ~hi:50));
         |]));
  sexec s
    "CREATE MATERIALIZED VIEW v_cum AS SELECT pos, val, SUM(val) OVER \
     (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
  for i = 1 to writes do
    sexec s
      (Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" (n0 + i)
         (Prng.int_range rng ~lo:(-50) ~hi:50))
  done;
  s

let replica_read_sql =
  "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS \
   s FROM seq"

let run_replica_bench ~smoke =
  header "Replication: read fan-out and checkpoint-bounded bootstrap";
  let n0 = if smoke then 200 else 2_000 in
  let writes = if smoke then 80 else 400 in
  let queries = if smoke then 64 else 400 in
  let repeat = if smoke then 2 else 3 in
  let ckpt_bytes = if smoke then 8 * 1024 else 64 * 1024 in
  let root = "bench_replica_db" in
  replica_dir_reset root;
  let pdir = Filename.concat root "primary" in
  let s = replica_setup_primary ~dir:pdir ~n0 ~writes ~checkpoint_bytes:None in
  let tip = Session.lsn s in
  Printf.printf "base: %d rows + %d writes (tip lsn %d); %d reads per case\n\n"
    n0 writes tip queries;
  (* single-process baseline: the primary answers every read itself *)
  let best f =
    let b = ref infinity in
    for _ = 1 to repeat do
      let (), t = time_once f in
      if t < !b then b := t
    done;
    !b
  in
  let t_base =
    best (fun () ->
        for _ = 1 to queries do
          ignore (squery s replica_read_sql)
        done)
  in
  let ship = ok (Session.shipper s) in
  let fanouts = [ 1; 2; 4 ] in
  let replicas =
    List.init 4 (fun i ->
        let name = Printf.sprintf "r%d" i in
        let path = Filename.concat root ("feed_" ^ name) in
        ok (Session.attach_feed ship ~name ~path);
        Session.open_replica ~name ~feed:path ())
  in
  ignore (ok (Session.ship ship));
  List.iter (fun r -> ignore (ok (Session.poll_replica r))) replicas;
  (* K replicas: each serves queries/K reads through the stale-bounded
     read path; wall clock = the slowest share *)
  let read_share r share =
    for _ = 1 to share do
      match Session.read_replica r ~tip ~max_records:0 replica_read_sql with
      | Ok _ -> ()
      | Error _ -> failwith "replica refused a fresh read"
    done
  in
  let run_fanout k =
    let chosen = List.filteri (fun i _ -> i < k) replicas in
    let share = (queries + k - 1) / k in
    let wall =
      best (fun () ->
          (* measure each share serially; the model's wall clock is the
             max share, which for identical shares is any one of them *)
          let slowest = ref 0. in
          List.iter
            (fun r ->
              let (), t = time_once (fun () -> read_share r share) in
              if t > !slowest then slowest := t)
            chosen;
          ignore !slowest)
    in
    (* [best] timed the sum of the shares; the parallel model divides by
       the fan-out (shares are identical by construction) *)
    let wall = wall /. float_of_int k in
    let qps = float_of_int queries /. wall in
    let speedup = t_base /. wall in
    row_line
      [ Printf.sprintf "%8d" k; "  " ^ fmt_time wall;
        Printf.sprintf "  %8.0f q/s" qps; Printf.sprintf "  %6.2fx" speedup ];
    Printf.printf "%!";
    (k, wall, qps, speedup)
  in
  row_line
    [ Printf.sprintf "%8s" "replicas"; "  wall       "; "  throughput ";
      "  speedup" ];
  row_line
    [ Printf.sprintf "%8s" "primary"; "  " ^ fmt_time t_base;
      Printf.sprintf "  %8.0f q/s" (float_of_int queries /. t_base); "  1.00x" ];
  let reads = List.map run_fanout fanouts in
  List.iter (fun r -> ignore (ok (Session.poll_replica r))) replicas;
  Session.close_shipper ship;
  Session.close s;
  (* bootstrap: a fresh replica against the same write history, with and
     without byte-triggered compaction *)
  let bootstrap ~checkpoint_bytes =
    let tag = match checkpoint_bytes with Some _ -> "ckpt" | None -> "plain" in
    let dir = Filename.concat root ("boot_" ^ tag) in
    let s = replica_setup_primary ~dir ~n0 ~writes ~checkpoint_bytes in
    let ship = ok (Session.shipper s) in
    let feed = Filename.concat root ("boot_feed_" ^ tag) in
    ok (Session.attach_feed ship ~name:"boot" ~path:feed);
    ignore (ok (Session.ship ship));
    let tip = Session.lsn s in
    let t_boot, applied =
      let b = ref infinity and applied = ref 0 in
      for _ = 1 to repeat do
        let r = Session.open_replica ~name:"boot" ~feed () in
        let n, t = time_once (fun () -> ok (Session.poll_replica r)) in
        if Session.replica_applied_lsn r <> tip then
          failwith "replica bootstrap did not reach the tip";
        if t < !b then b := t;
        applied := n
      done;
      (!b, !applied)
    in
    (* entries applied = artifact (when present) + record suffix *)
    let suffix =
      match checkpoint_bytes with Some _ -> applied - 1 | None -> applied
    in
    Session.close_shipper ship;
    Session.close s;
    Printf.printf "bootstrap (%s): %d entr(ies), replay suffix %d, %s\n%!"
      (match checkpoint_bytes with
       | Some b -> Printf.sprintf "checkpoint every %d bytes" b
       | None -> "no compaction")
      applied suffix (fmt_time t_boot);
    (suffix, t_boot)
  in
  Printf.printf "\n";
  let suffix_plain, t_plain = bootstrap ~checkpoint_bytes:None in
  let suffix_ckpt, t_ckpt = bootstrap ~checkpoint_bytes:(Some ckpt_bytes) in
  let speedup4 =
    match List.find_opt (fun (k, _, _, _) -> k = 4) reads with
    | Some (_, _, _, s) -> s
    | None -> 0.
  in
  let required = 2.0 in
  let bounded = suffix_ckpt < suffix_plain in
  let pass = speedup4 >= required && bounded in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"replica\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"base_rows\": %d, \"writes\": %d, \"queries\": %d, \"tip_lsn\": %d,\n"
       n0 writes queries tip);
  Buffer.add_string buf
    (Printf.sprintf "  \"primary\": {\"seconds\": %.6f, \"qps\": %.1f},\n"
       t_base
       (float_of_int queries /. t_base));
  Buffer.add_string buf "  \"reads\": [\n";
  List.iteri
    (fun i (k, wall, qps, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"replicas\": %d, \"wall_s\": %.6f, \"qps\": %.1f, \
            \"speedup\": %.2f}%s\n"
           k wall qps s
           (if i = List.length reads - 1 then "" else ",")))
    reads;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"bootstrap\": {\"no_compaction\": {\"replay_records\": %d, \
        \"seconds\": %.6f}, \"byte_checkpoints\": {\"checkpoint_bytes\": %d, \
        \"replay_records\": %d, \"seconds\": %.6f}},\n"
       suffix_plain t_plain ckpt_bytes suffix_ckpt t_ckpt);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"replicas\": 4, \"speedup\": %.2f, \"required\": \
        %.1f, \"bounded_replay\": %b, \"pass\": %b}\n"
       speedup4 required bounded pass);
  Buffer.add_string buf "}\n";
  let out = "BENCH_replica.json" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let written =
    let ic = open_in out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let balanced =
    let d = ref 0 in
    String.iter (fun c -> if c = '{' then incr d else if c = '}' then decr d) written;
    !d = 0
  in
  if
    not
      (balanced
      && contains written "\"acceptance\""
      && contains written "\"reads\""
      && contains written "\"bootstrap\"")
  then failwith "BENCH_replica.json failed its well-formedness self-check";
  Printf.printf
    "\nwrote %s (4-replica speedup %.1fx; replay suffix %d -> %d)\n%!" out
    speedup4 suffix_plain suffix_ckpt;
  if not pass then begin
    Printf.eprintf
      "replica acceptance FAILED: speedup %.1fx (need %.1fx), bounded %b\n%!"
      speedup4 required bounded;
    exit 1
  end

(* ---- Concurrent serving: snapshot-read fan-out, zero wrong reads ----

   The MVCC session server's experiment (writes BENCH_serve.json):

   1. Read throughput at 1/2/4 reader domains vs a single domain.
      Every server read pins an immutable snapshot (pointer capture, no
      writer coordination after the pin), so reader domains scale.
      This host has one core, so — exactly as the replica bench models
      machines — each domain's share of the query stream is measured
      serially and the parallel wall clock is the sum of the shares
      divided by the fan-out (shares are identical by construction).
   2. One section runs the real wire path: a server at 4 domains, one
      client, serial request/response round-trips over the loopback
      socket.
   3. Correctness under *true* concurrency: a writer domain committing
      single-row inserts while reader domains pin snapshots; every
      read must be a true historical state at its reported LSN (row
      count = commits at that LSN, and the snapshot's fingerprint must
      not move while the writer works).  Wrong reads fail the run. *)

let serve_read_sql =
  "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS \
   s FROM seq"

let run_serve_bench ~smoke =
  header "Concurrent serving: snapshot-read fan-out and wrong-read chaos";
  let n0 = if smoke then 200 else 2_000 in
  let queries = if smoke then 64 else 400 in
  let repeat = if smoke then 2 else 3 in
  let s = Session.open_in_memory () in
  sexec s "CREATE TABLE seq (pos INT, val FLOAT)";
  let rng = Prng.create ~seed:19 in
  Session.load_table s ~table:"seq"
    (Array.init n0 (fun i ->
         [|
           Value.Int (i + 1);
           Value.Float (float_of_int (Prng.int_range rng ~lo:(-50) ~hi:50));
         |]));
  Printf.printf "base: %d rows; %d snapshot reads per case\n\n" n0 queries;
  let best f =
    let b = ref infinity in
    for _ = 1 to repeat do
      let (), t = time_once f in
      if t < !b then b := t
    done;
    !b
  in
  (* the server's read path: pin a snapshot, query, release *)
  let read_share share =
    for _ = 1 to share do
      let sn = Snapshot.snapshot s in
      (match Snapshot.query sn serve_read_sql with
       | Ok _ -> ()
       | Error e -> failwith (Session.describe_error e));
      Snapshot.close sn
    done
  in
  let run_fanout k =
    let share = (queries + k - 1) / k in
    let wall =
      best (fun () ->
          for _ = 1 to k do
            read_share share
          done)
    in
    (* [best] timed the sum of the k shares; the parallel model divides
       by the fan-out (shares are identical by construction) *)
    let wall = wall /. float_of_int k in
    let qps = float_of_int queries /. wall in
    (k, wall, qps)
  in
  let reads = List.map run_fanout [ 1; 2; 4 ] in
  let wall1 =
    match reads with (1, w, _) :: _ -> w | _ -> assert false
  in
  row_line
    [ Printf.sprintf "%8s" "domains"; "  wall       "; "  throughput ";
      "  speedup" ];
  let reads =
    List.map
      (fun (k, wall, qps) ->
        let speedup = wall1 /. wall in
        row_line
          [ Printf.sprintf "%8d" k; "  " ^ fmt_time wall;
            Printf.sprintf "  %8.0f q/s" qps; Printf.sprintf "  %6.2fx" speedup ];
        (k, wall, qps, speedup))
      reads
  in
  Printf.printf "%!";
  (* the real wire path: one client, serial round-trips over loopback *)
  let sock_requests = if smoke then 32 else 200 in
  let srv = Rfview_server.Server.start ~domains:4 ~session:s ~port:0 () in
  let sock_qps =
    Fun.protect ~finally:(fun () -> Rfview_server.Server.stop srv)
      (fun () ->
        let c =
          Rfview_server.Server.Client.connect
            ~port:(Rfview_server.Server.port srv)
        in
        Fun.protect
          ~finally:(fun () -> Rfview_server.Server.Client.disconnect c)
          (fun () ->
            let t =
              best (fun () ->
                  for _ = 1 to sock_requests do
                    let resp =
                      Rfview_server.Server.Client.request c
                        ("query " ^ serve_read_sql)
                    in
                    if Rfview_server.Wire.field resp "ok" <> Some "true" then
                      failwith "serve: socket query refused"
                  done)
            in
            float_of_int sock_requests /. t))
  in
  Printf.printf "socket round-trips (4 domains, 1 client): %8.0f req/s\n%!"
    sock_qps;
  Session.close s;
  (* chaos: writer commits, readers must only see true commit points *)
  let reader_domains = 4 in
  let writes = if smoke then 100 else 400 in
  let cs = Session.open_in_memory () in
  sexec cs "CREATE TABLE t (a INT)";
  let base =
    let sn = Snapshot.snapshot cs in
    let l = Snapshot.lsn sn in
    Snapshot.close sn;
    l
  in
  let wrong = Atomic.make 0 and read_count = Atomic.make 0 in
  let finished = Atomic.make false in
  let reader () =
    while not (Atomic.get finished) do
      let sn = Snapshot.snapshot cs in
      let l = Snapshot.lsn sn in
      let fp1 = Snapshot.fingerprint sn in
      (match Snapshot.query sn "SELECT * FROM t" with
       | Ok rel -> if Relation.cardinality rel <> l - base then Atomic.incr wrong
       | Error _ -> Atomic.incr wrong);
      if Snapshot.fingerprint sn <> fp1 then Atomic.incr wrong;
      Snapshot.close sn;
      Atomic.incr read_count
    done
  in
  let ds = List.init reader_domains (fun _ -> Domain.spawn reader) in
  for i = 1 to writes do
    sexec cs (Printf.sprintf "INSERT INTO t VALUES (%d)" i);
    Domain.cpu_relax ()
  done;
  Atomic.set finished true;
  List.iter Domain.join ds;
  Session.close cs;
  let chaos_reads = Atomic.get read_count and wrong_reads = Atomic.get wrong in
  Printf.printf
    "chaos: %d reader domains, %d commits, %d snapshot reads, %d wrong\n%!"
    reader_domains writes chaos_reads wrong_reads;
  let speedup4 =
    match List.find_opt (fun (k, _, _, _) -> k = 4) reads with
    | Some (_, _, _, sp) -> sp
    | None -> 0.
  in
  let required = 2.0 in
  let pass = speedup4 >= required && wrong_reads = 0 && chaos_reads > 0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf "  \"cores\": 1,\n";
  Buffer.add_string buf
    "  \"model\": \"per-share fan-out: each domain's share measured serially, \
     wall = sum of shares / domains (shares identical by construction)\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"base_rows\": %d, \"queries\": %d,\n" n0 queries);
  Buffer.add_string buf "  \"reads\": [\n";
  List.iteri
    (fun i (k, wall, qps, sp) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"wall_s\": %.6f, \"qps\": %.1f, \
            \"speedup\": %.2f}%s\n"
           k wall qps sp
           (if i = List.length reads - 1 then "" else ",")))
    reads;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"socket\": {\"domains\": 4, \"requests\": %d, \"qps\": %.1f},\n"
       sock_requests sock_qps);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"chaos\": {\"reader_domains\": %d, \"writes\": %d, \"reads\": %d, \
        \"wrong_reads\": %d},\n"
       reader_domains writes chaos_reads wrong_reads);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"domains\": 4, \"speedup\": %.2f, \"required\": \
        %.1f, \"wrong_reads\": %d, \"pass\": %b}\n"
       speedup4 required wrong_reads pass);
  Buffer.add_string buf "}\n";
  let out = "BENCH_serve.json" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let written =
    let ic = open_in out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let balanced =
    let d = ref 0 in
    String.iter (fun c -> if c = '{' then incr d else if c = '}' then decr d) written;
    !d = 0
  in
  if
    not
      (balanced
      && contains written "\"acceptance\""
      && contains written "\"reads\""
      && contains written "\"chaos\""
      && contains written "\"speedup\"")
  then failwith "BENCH_serve.json failed its well-formedness self-check";
  Printf.printf
    "\nwrote %s (4-domain speedup %.1fx, %d wrong reads)\n%!" out speedup4
    wrong_reads;
  if not pass then begin
    Printf.eprintf
      "serve acceptance FAILED: speedup %.1fx (need %.1fx), wrong reads %d, \
       reads %d\n%!"
      speedup4 required wrong_reads chaos_reads;
    exit 1
  end

(* ---- Bechamel micro-benchmarks: one Test group per table ---- *)

let bechamel_tests () =
  let open Bechamel in
  (* Table 1 micro instance: n = 500 *)
  let n1 = 500 in
  let v1 = Seqgen.raw_values ~seed:11 n1 in
  let s_plain = Session.open_in_memory () in
  Seqgen.create_seq_table_session s_plain v1;
  let s_idx = Session.open_in_memory () in
  Seqgen.create_seq_table_session ~indexed:true s_idx v1;
  let native_sql = Core.Sqlgen.native_window table1_frame in
  let self_sql = Core.Sqlgen.fig2_self_join table1_frame in
  let table1 =
    Test.make_grouped ~name:"table1"
      [
        Test.make ~name:"native"
          (Staged.stage (fun () -> ignore (squery s_plain native_sql)));
        Test.make ~name:"self-join"
          (Staged.stage (fun () -> ignore (squery s_plain self_sql)));
        Test.make ~name:"self-join-indexed"
          (Staged.stage (fun () -> ignore (squery s_idx self_sql)));
      ]
  in
  (* Table 2 micro instance: n = 300 *)
  let n2 = 300 in
  let v2 = Seqgen.raw_values ~seed:12 n2 in
  let view = Core.Compute.sequence t2_view_frame (Core.Seqdata.raw_of_array v2) in
  let s2 = Session.open_in_memory () in
  Seqgen.create_matseq_table_session ~indexed:true s2 view;
  let table2 =
    Test.make_grouped ~name:"table2"
      [
        Test.make ~name:"maxoa-disjunctive"
          (Staged.stage (fun () -> ignore (squery s2 (t2_sql `Maxoa_disj))));
        Test.make ~name:"maxoa-union"
          (Staged.stage (fun () -> ignore (squery s2 (t2_sql `Maxoa_union))));
        Test.make ~name:"minoa-disjunctive"
          (Staged.stage (fun () -> ignore (squery s2 (t2_sql `Minoa_disj))));
        Test.make ~name:"minoa-union"
          (Staged.stage (fun () -> ignore (squery s2 (t2_sql `Minoa_union))));
      ]
  in
  [ table1; table2 ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel micro-benchmarks (one Test group per paper table)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
      List.iter
        (fun name ->
          match Analyze.OLS.estimates (Hashtbl.find results name) with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        (List.sort compare names))
    (bechamel_tests ());
  Printf.printf "%!"

(* ---- Entry point ---- *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let which =
    match
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (List.tl args)
    with
    | [] -> "all"
    | w :: _ -> w
  in
  let t1_sizes = if full then [ 5_000; 10_000; 15_000 ] else [ 1_000; 2_000; 4_000 ] in
  let t2_sizes =
    if full then [ 100; 500; 1_000; 1_500; 2_000; 3_000; 5_000 ]
    else [ 100; 500; 1_000; 1_500; 2_000 ]
  in
  let smoke = List.mem "--smoke" args in
  (match which with
   | "table1" -> run_table1 ~sizes:t1_sizes
   | "table2" -> run_table2 ~sizes:t2_sizes
   | "ablations" -> run_ablations ()
   | "delta" -> run_delta ~smoke
   | "delta-ivm" -> run_delta_ivm ~smoke
   | "share" -> run_share ~smoke
   | "replica" -> run_replica_bench ~smoke
   | "serve" -> run_serve_bench ~smoke
   | "bechamel" -> run_bechamel ()
   | "all" ->
     run_table1 ~sizes:t1_sizes;
     run_table2 ~sizes:t2_sizes;
     run_ablations ();
     run_delta ~smoke:(not full);
     run_delta_ivm ~smoke:(not full);
     run_share ~smoke:(not full);
     run_replica_bench ~smoke:(not full);
     run_serve_bench ~smoke:(not full);
     run_bechamel ()
   | other ->
     Printf.eprintf
       "unknown experiment %s (use \
        table1|table2|ablations|delta|delta-ivm|share|replica|serve|bechamel|all)\n"
       other;
     exit 1);
  Printf.printf "\ndone.\n"
