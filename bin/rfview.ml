(* rfview — command-line front end for the reporting-function engine.

   Built entirely on the stable [Rfview.Session] API — no subcommand
   reaches the engine handle directly.

   Subcommands:
     run FILE        execute a SQL script and print every result
     repl            interactive SQL shell (line-based; ';' terminates)
     demo            start the repl with the credit-card demo schema loaded
     lint FILE       run the plan checker and lint rules over a SQL script,
                     or over the SQL embedded in an OCaml driver (.ml)
     analyze FILE    abstract-interpret every query of a SQL script: print
                     the output abstraction, RF2xx diagnostics, and the
                     derivability certificates of matching views
     recover DIR     recover a durable database directory and report
     checkpoint DIR  recover DIR, then write a fresh checkpoint
     wal-info DIR    inspect DIR's WAL: record kinds, LSNs, byte offsets,
                     CRC status, torn tail (reported, never replayed)
     ship DIR FEED.. recover DIR and ship unshipped WAL records to feeds
     replica FEED    poll a feed, report applied LSN/status, serve a
                     stale-bounded read (--sql/--tip/--max-lag)
     promote FEED DIR  promote a feed's applied state into a new primary

   Options:
     --db DIR        (run, repl) open DIR as a durable database: recover
                     it first, write-ahead log every statement
     --batch N       (run) group-commit every N statements of the script
                     (default: the whole script is one batch)
     --self-join     execute reporting functions via the Fig. 2 self-join
                     simulation instead of the native window operator
     --naive-window  use the naive O(n·w) window strategy
     --verify-plans  checker-verify every plan and translation-validate
                     every rewrite pass while executing
     --inject SITE:POLICY (repeatable) arm a fault-injection site; POLICY
                     is always, nth=N or p=F[@SEED] (see Fault)
     --explain-diagnostics (lint) append the registry explanation to each
                     diagnostic; without FILE, print the whole registry
     --explain RFxxx (lint) print the registry entry for one code
     --codes-md      (lint) print the registry as a markdown table (the
                     generator behind the DESIGN.md diagnostics table) *)

module Session = Rfview.Session
module Config = Rfview.Config
module Fault = Rfview_engine.Fault
module Relation = Rfview_relalg.Relation
module Diag = Rfview_analysis.Diagnostic

let arm_injections specs =
  let fail spec msg ~hint =
    Printf.eprintf "rfview: bad --inject argument %S: %s\n%s%!" spec msg hint;
    exit 2
  in
  let known_sites =
    lazy
      ("known sites:\n"
      ^ String.concat "\n" (List.map (fun s -> "  " ^ s) (Fault.sites ()))
      ^ "\n")
  in
  let policy_help = "expected SITE:always, SITE:nth=N or SITE:p=F[@SEED]\n" in
  List.iter
    (fun spec ->
      match Fault.parse_spec spec with
      | Error msg -> fail spec msg ~hint:policy_help
      | Ok (site, policy) ->
        if not (List.mem site (Fault.sites ())) then
          fail spec
            (Printf.sprintf "unknown site %s" site)
            ~hint:(Lazy.force known_sites)
        else (
          try Fault.arm site policy
          with Invalid_argument msg -> fail spec msg ~hint:(Lazy.force known_sites)))
    specs

(* The execution knobs are fixed at open time now: flags become a config. *)
let build_config ~self_join ~naive_window =
  {
    Config.default with
    Config.window_mode = (if self_join then `Self_join else `Native);
    window_strategy =
      (if naive_window then Config.Naive else Config.Incremental);
  }

let configure ~verify ~inject =
  if verify then Rfview_analysis.Verify.enable ();
  arm_injections inject

let print_result = function
  | Session.Relation r ->
    Relation.print ~max_rows:100 r;
    Printf.printf "(%d rows)\n%!" (Relation.cardinality r)
  | Session.Done msg -> Printf.printf "%s\n%!" msg

(* [true] when the whole script succeeded *)
let run_script ?batch session sql =
  match Session.exec_script ?batch session sql with
  | Ok results ->
    List.iter print_result results;
    true
  | Error e ->
    Printf.printf "%s\n%!" (Session.describe_error e);
    false

let read_file file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let sql = really_input_string ic len in
  close_in ic;
  sql

let describe_recovery dir (r : Session.recovery_report) =
  Printf.printf "recovered %s: checkpoint %s, %d WAL record(s) replayed%s%s\n%!" dir
    (match r.Session.checkpoint_epoch with
     | None -> "none"
     | Some e -> Printf.sprintf "epoch %d" e)
    r.Session.replayed
    (if r.Session.torn then ", torn tail truncated" else "")
    (match r.Session.quarantined with
     | [] -> ""
     | q -> ", quarantined: " ^ String.concat ", " q)

(* Open the working session: durable (recovering [dir] first) when
   --db was given, in-memory otherwise. *)
let open_session ~config = function
  | None -> Session.open_in_memory ~config ()
  | Some dir ->
    (match Session.open_durable ~config dir with
     | Ok s ->
       (match Session.recovery s with
        | Some r
          when r.Session.replayed > 0 || r.Session.torn
               || r.Session.quarantined <> [] ->
          describe_recovery dir r
        | _ -> ());
       s
     | Error e ->
       Printf.eprintf "rfview: %s: %s\n" dir (Session.describe_error e);
       exit 1)

let cmd_run file db_dir batch self_join naive_window verify inject =
  (match batch with
   | Some n when n < 0 ->
     Printf.eprintf "rfview: --batch must be non-negative (got %d)\n" n;
     exit 2
   | _ -> ());
  configure ~verify ~inject;
  let s = open_session ~config:(build_config ~self_join ~naive_window) db_dir in
  let ok = run_script ?batch s (read_file file) in
  Session.close s;
  if not ok then exit 1

let cmd_recover dir =
  match Session.open_durable dir with
  | Ok s ->
    (match Session.recovery s with
     | Some r -> describe_recovery dir r
     | None -> ());
    Session.close s
  | Error e ->
    Printf.eprintf "rfview: %s: %s\n" dir (Session.describe_error e);
    exit 1

let cmd_checkpoint dir =
  match Session.open_durable dir with
  | Ok s ->
    (match Session.checkpoint s with
     | Ok () ->
       let epoch, replayed =
         match Session.recovery s with
         | Some r ->
           ((match r.Session.checkpoint_epoch with None -> 0 | Some e -> e) + 1,
            r.Session.replayed)
         | None -> (1, 0)
       in
       Printf.printf "checkpointed %s: epoch %d, %d WAL record(s) folded in\n%!"
         dir epoch replayed;
       Session.close s
     | Error e ->
       Printf.eprintf "rfview: %s: checkpoint failed: %s\n" dir
         (Session.describe_error e);
       Session.close s;
       exit 1)
  | Error e ->
    Printf.eprintf "rfview: %s: %s\n" dir (Session.describe_error e);
    exit 1

(* ---- wal-info ---- *)

module Wal = Rfview_engine.Wal
module CheckpointFile = Rfview_engine.Checkpoint

let cmd_wal_info dir =
  let path = Filename.concat dir "log.wal" in
  match Wal.scan_detail path with
  | exception Wal.Wal_error m ->
    Printf.eprintf "rfview: %s: %s\n" path m;
    exit 1
  | d ->
    (* LSNs continue from the checkpoint the log was installed after *)
    let base =
      match CheckpointFile.read ~dir with
      | Some snap -> snap.CheckpointFile.lsn
      | None -> 0
      | exception CheckpointFile.Corrupt m ->
        Printf.printf "note: checkpoint unreadable (%s); LSNs start at 0\n" m;
        0
    in
    Printf.printf "%-6s %-8s %-8s %-6s %-4s %s\n" "#" "offset" "bytes" "lsn"
      "crc" "record";
    let lsn = ref base in
    List.iter
      (fun (e : Wal.entry) ->
        let is_begin = match e.Wal.e_record with Some (Wal.Begin _) -> true | _ -> false in
        if not is_begin then incr lsn;
        Printf.printf "%-6d %-8d %-8d %-6s %-4s %s\n" e.Wal.e_index
          e.Wal.e_offset e.Wal.e_bytes
          (if is_begin then "-" else string_of_int !lsn)
          (if e.Wal.e_crc_ok then "ok" else "BAD")
          (match e.Wal.e_record with
           | Some r -> Wal.describe r
           | None when e.Wal.e_crc_ok -> "(payload does not decode)"
           | None -> "(crc mismatch)"))
      d.Wal.d_entries;
    (match d.Wal.d_torn with
     | Some off ->
       Printf.printf "torn tail at byte %d (%d trailing byte(s) not replayable)\n"
         off (d.Wal.d_size - off)
     | None -> ());
    Printf.printf "%d record(s), %d byte(s)%s\n%!" (List.length d.Wal.d_entries)
      d.Wal.d_size
      (if
         d.Wal.d_torn = None
         && List.for_all (fun (e : Wal.entry) -> e.Wal.e_crc_ok) d.Wal.d_entries
       then ""
       else " — DAMAGED")

(* ---- replication: ship / replica / promote ---- *)

let feed_name path = Filename.remove_extension (Filename.basename path)

let or_die ~what = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "rfview: %s: %s\n" what (Session.describe_error e);
    exit 1

let cmd_ship dir feeds =
  match Session.open_durable dir with
  | Error e ->
    Printf.eprintf "rfview: %s: %s\n" dir (Session.describe_error e);
    exit 1
  | Ok s ->
    let sh = or_die ~what:dir (Session.shipper s) in
    List.iter
      (fun path ->
        or_die ~what:path (Session.attach_feed sh ~name:(feed_name path) ~path))
      feeds;
    let n = or_die ~what:"pump" (Session.ship sh) in
    List.iter
      (fun path ->
        Printf.printf "%s: shipped through lsn %d\n" path
          (Session.shipped sh ~name:(feed_name path)))
      feeds;
    Printf.printf "%d deliver(ies); primary tip lsn %d\n%!" n (Session.lsn s);
    Session.close_shipper sh;
    Session.close s

(* ---- scrub / repair ---- *)

let print_scrub_report (r : Session.scrub_report) =
  List.iter
    (fun a -> Printf.printf "scanned %s\n" (Rfview_engine.Scrub.describe_artifact a))
    r.Rfview_engine.Scrub.scanned;
  (match r.Rfview_engine.Scrub.damage with
   | [] -> Printf.printf "clean\n%!"
   | ds ->
     List.iter
       (fun d ->
         Printf.printf "DAMAGE %s\n" (Rfview_engine.Scrub.describe_damage d))
       ds;
     Printf.printf "%d damaged artifact record(s)\n%!" (List.length ds))

let cmd_scrub dir feeds do_repair =
  if not do_repair then begin
    let report = Session.scrub_dir ~feeds dir in
    print_scrub_report report;
    if not (Rfview_engine.Scrub.clean report) then exit 1
  end
  else begin
    let outcome = Session.repair_dir ~feeds dir in
    List.iter
      (fun a ->
        Printf.printf "repair: %s\n"
          (Rfview_replica.Repair.describe_action a))
      outcome.Rfview_replica.Repair.o_actions;
    print_scrub_report outcome.Rfview_replica.Repair.o_after;
    if not (Rfview_engine.Scrub.clean outcome.Rfview_replica.Repair.o_after)
    then exit 1
  end

let print_replica_state r =
  Printf.printf "applied lsn %d (%s)\n%!" (Session.replica_applied_lsn r)
    (match Session.replica_status r with
     | `Syncing -> "syncing: nothing applied yet"
     | `Ready -> "ready"
     | `Quarantined (at, reason) ->
       Printf.sprintf "QUARANTINED at lsn %d: %s" at reason)

let cmd_replica feed sql tip max_lag =
  let r = Session.open_replica ~name:(feed_name feed) ~feed () in
  let n = or_die ~what:feed (Session.poll_replica r) in
  Printf.printf "%s: %d entr(ies) applied; " feed n;
  print_replica_state r;
  (match tip with
   | Some t ->
     let l = Session.replica_lag r ~tip:t in
     Printf.printf "lag vs tip %d: %d record(s), %d byte(s)\n%!" t
       l.Session.records l.Session.bytes
   | None -> ());
  match sql with
  | None -> ()
  | Some q ->
    let tip = Option.value tip ~default:(Session.replica_applied_lsn r) in
    (match Session.read_replica r ~tip ?max_records:max_lag q with
     | Ok (rel, at) ->
       Relation.print ~max_rows:100 rel;
       Printf.printf "(%d rows, at lsn %d)\n%!" (Relation.cardinality rel) at
     | Error e ->
       Printf.eprintf "rfview: %s\n" (Session.describe_error e);
       exit 1)

let cmd_promote feed dir =
  let r = Session.open_replica ~name:(feed_name feed) ~feed () in
  ignore (or_die ~what:feed (Session.poll_replica r));
  (match Session.replica_status r with
   | `Quarantined (at, reason) ->
     Printf.eprintf "rfview: %s: quarantined at lsn %d (%s); resync it first\n"
       feed at reason;
     exit 1
   | `Syncing | `Ready -> ());
  let s = or_die ~what:dir (Session.promote r ~dir) in
  Printf.printf "promoted %s at lsn %d into %s\n%!" feed (Session.lsn s) dir;
  Session.close s

(* ---- lint ---- *)

let print_registry () =
  List.iter
    (fun (i : Diag.info) ->
      Printf.printf "%s %-8s %s\n    %s\n" i.Diag.r_code
        (Diag.severity_name i.Diag.r_severity)
        i.Diag.r_title i.Diag.r_explanation)
    Diag.registry

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Bind errors carry a message but no code; recover the specific
   diagnostic where the message shape identifies it. *)
let bind_error_code m =
  if contains_sub m "is ill-typed" then "RF102"
  else if contains_sub m "cannot infer the type" then "RF105"
  else "RF100"

let cmd_lint file self_join explain explain_code codes_md =
  (match explain_code with
   | Some code ->
     print_endline (Diag.explain code);
     exit (match Diag.find_info code with Some _ -> 0 | None -> 2)
   | None -> ());
  if codes_md then begin
    print_string (Diag.registry_markdown ());
    exit 0
  end;
  match file with
  | None ->
    if explain then print_registry ()
    else begin
      prerr_endline
        "rfview lint: a FILE is required (or --explain-diagnostics alone to \
         print the rule registry)";
      exit 2
    end
  | Some file ->
    let module Check = Rfview_analysis.Check in
    let module Lint = Rfview_analysis.Lint in
    let module Ast = Rfview_sql.Ast in
    let seen = ref [] in
    let emit ~where d =
      seen := d :: !seen;
      Printf.printf "%s: %s\n" where (Diag.to_string d);
      if explain then Printf.printf "    %s\n" (Diag.explain d.Diag.code)
    in
    let finish () =
      let count s = List.length (List.filter (fun d -> d.Diag.severity = s) !seen) in
      Printf.printf "%s: %d error(s), %d warning(s), %d note(s)\n" file
        (count Diag.Error) (count Diag.Warning) (count Diag.Info);
      exit (if List.exists Diag.is_error !seen then 1 else 0)
    in
    let scratch = Session.open_in_memory () in
    let lint_query ?stmt where q =
      match
        Rfview_planner.Binder.bind_query ?stmt
          (Session.binder_catalog scratch) q
      with
      | plan -> List.iter (emit ~where) (Check.check plan @ Lint.plan ~self_join plan)
      | exception Rfview_planner.Binder.Bind_error m ->
        emit ~where
          (Diag.make ~code:(bind_error_code m) ~path:[] ("bind error: " ^ m))
    in
    if Filename.check_suffix file ".ml" then begin
      (* extracted mode: lint the SQL embedded in an OCaml driver.  The
         driver may create tables through non-SQL APIs (load_table), so
         an unknown relation is reported as a note, not an error. *)
      match Rfview_analysis.Extract.extract_file file with
      | exception e ->
        emit ~where:file
          (Diag.make ~code:"RF100" ~path:[]
             (Printf.sprintf "extraction failed: %s" (Printexc.to_string e)));
        finish ()
      | extracted ->
        List.iter
          (fun (x : Rfview_analysis.Extract.extracted) ->
            let where = Printf.sprintf "%s:%d" file x.Rfview_analysis.Extract.line in
            (match x.Rfview_analysis.Extract.stmt with
             | Ast.St_query q | Ast.St_create_view { query = q; _ } ->
               (match
                  Rfview_planner.Binder.bind_query
                    (Session.binder_catalog scratch) q
                with
                | plan ->
                  List.iter (emit ~where)
                    (Check.check plan @ Lint.plan ~self_join plan)
                | exception Rfview_planner.Binder.Bind_error m ->
                  (* missing context is expected in extracted snippets *)
                  emit ~where
                    { Diag.code = "RF100"; severity = Diag.Info;
                      message = "bind error (extracted snippet): " ^ m;
                      path = "plan" })
             | _ -> ());
            match x.Rfview_analysis.Extract.stmt with
            | Ast.St_query _ -> ()
            | st -> ignore (Session.exec_statement scratch st))
          extracted;
        Printf.printf "%s: %d embedded statement(s)\n" file (List.length extracted);
        finish ()
    end
    else
      (match Rfview_sql.Parser.statements (read_file file) with
       | exception e ->
         let msg =
           match e with
           | Rfview_sql.Lexer.Lex_error (m, off) ->
             Printf.sprintf "lex error at offset %d: %s" off m
           | Rfview_sql.Parser.Parse_error m -> Printf.sprintf "parse error: %s" m
           | e -> Printexc.to_string e
         in
         emit ~where:file (Diag.make ~code:"RF100" ~path:[] msg);
         finish ()
       | stmts ->
         List.iteri
           (fun i st ->
             let where = Printf.sprintf "%s:%d" file (i + 1) in
             (match st with
              | Ast.St_query q | Ast.St_create_view { query = q; _ } ->
                lint_query ~stmt:(i + 1) where q
              | _ -> ());
             (* execute everything but plain queries, so later statements
                see the tables and views this one defines *)
             match st with
             | Ast.St_query _ -> ()
             | st ->
               (match Session.exec_statement scratch st with
                | Ok _ -> ()
                | Error e ->
                  emit ~where
                    (Diag.make ~code:"RF100" ~path:[]
                       (Printf.sprintf "statement failed: %s"
                          (Session.describe_error e)))))
           stmts;
         finish ())

(* ---- analyze ---- *)

(* JSON emission for [analyze --json] (JSON Lines, one object per
   statement plus a trailing summary) — the same emitters the session
   server's wire format uses. *)
let jstr = Rfview_server.Wire.jstr
let jobj = Rfview_server.Wire.jobj
let jlist = Rfview_server.Wire.jlist
let jint_opt = function None -> "null" | Some n -> string_of_int n

let jcard (c : Rfview_analysis.Domain.Card.t) =
  jobj [ ("lo", string_of_int c.lo); ("hi", jint_opt c.hi) ]

let jdiag (d : Diag.t) =
  jobj
    [
      ("code", jstr d.Diag.code);
      ("severity", jstr (Diag.severity_name d.Diag.severity));
      ("path", jstr d.Diag.path);
      ("message", jstr d.Diag.message);
    ]

let jobligation (o : Rfview_analysis.Cert.obligation) =
  jobj
    [
      ("name", jstr o.ob_name);
      ("holds", string_of_bool o.ob_holds);
      ("detail", jstr o.ob_detail);
    ]

let cmd_analyze file json budget =
  let module Ast = Rfview_sql.Ast in
  let module Absint = Rfview_analysis.Absint in
  let module Cert = Rfview_analysis.Cert in
  let module Cost = Rfview_analysis.Cost in
  let module Share = Rfview_analysis.Share in
  let module Ivmcert = Rfview_analysis.Ivmcert in
  let module Advisor = Rfview_engine.Advisor in
  let rf2xx = ref 0 and errors = ref 0 in
  let shared_specs = ref [] in
  let count_rf2xx d =
    if String.length d.Diag.code >= 3 && d.Diag.code.[2] = '2' then incr rf2xx
  in
  (match Rfview_sql.Parser.statements (read_file file) with
   | exception e ->
     let msg = Printf.sprintf "cannot parse: %s" (Printexc.to_string e) in
     if json then
       print_endline (jobj [ ("file", jstr file); ("error", jstr msg) ])
     else Printf.printf "%s: %s\n" file msg;
     incr errors
   | stmts ->
     let scratch = Session.open_in_memory () in
     let analyze_query ~stmt ?ivm_view where q =
       match
         Rfview_planner.Binder.bind_query ~stmt
           (Session.binder_catalog scratch) q
       with
       | exception Rfview_planner.Binder.Bind_error m ->
         if json then
           print_endline
             (jobj
                [
                  ("statement", string_of_int stmt);
                  ("error", jstr ("bind error: " ^ m));
                ])
         else Printf.printf "%s: bind error: %s\n" where m;
         incr errors
       | plan ->
         let cat = Session.catalog_view scratch in
         let env name =
           try Some (cat.Rfview_planner.Physical.table_contents name)
           with _ -> None
         in
         let abs = Absint.analyze ~env plan in
         let diags = Absint.diagnostics ~env plan in
         let cost = Cost.analyze ~env ?budget plan in
         let ivm = Option.map (fun view -> Ivmcert.certify ~view plan) ivm_view in
         List.iter count_rf2xx diags;
         List.iter count_rf2xx cost.Cost.diags;
         if json then begin
           let fields =
             [ ("statement", string_of_int stmt) ]
             @ (match ivm_view with
                | Some v -> [ ("view", jstr v) ]
                | None -> [])
             @ [
                 ( "columns",
                   jlist
                     (List.map jstr
                        (Rfview_relalg.Schema.names
                           (Rfview_planner.Logical.schema plan))) );
                 ("rows", jcard abs.Rfview_analysis.Domain.rows);
                 ( "diagnostics",
                   jlist
                     (List.map jdiag
                        (diags
                        @ cost.Cost.diags
                        @
                        match ivm with
                        | Some c -> c.Ivmcert.diags
                        | None -> [])) );
                 ( "footprint",
                   jobj
                     [
                       ("total_bytes", jint_opt cost.Cost.total_bytes);
                       ( "ops",
                         jlist
                           (List.map
                              (fun (o : Cost.op_cost) ->
                                jobj
                                  [
                                    ("op", jstr o.Cost.oc_op);
                                    ("rows", jcard o.Cost.oc_rows);
                                    ("width", string_of_int o.Cost.oc_width);
                                    ("state_rows", jcard o.Cost.oc_state_rows);
                                    ("bytes", jint_opt o.Cost.oc_bytes);
                                  ])
                              cost.Cost.ops) );
                     ] );
               ]
             @
             match ivm with
             | Some c ->
               [
                 ( "ivm",
                   jobj
                     [
                       ("valid", string_of_bool (Ivmcert.valid c));
                       ( "obligations",
                         jlist (List.map jobligation c.Ivmcert.obligations) );
                     ] );
               ]
             | None -> []
           in
           print_endline (jobj fields)
         end
         else begin
           Printf.printf "-- %s\n" where;
           print_string (Absint.report ~env plan);
           List.iter (fun d -> Printf.printf "%s\n" (Diag.to_string d)) diags;
           (* resource analysis: footprint bound + RF402/RF403 *)
           print_string (Cost.to_string cost);
           List.iter
             (fun d -> Printf.printf "%s\n" (Diag.to_string d))
             cost.Cost.diags;
           (* derivability certificates of every matching materialized view *)
           List.iter
             (fun (view, certs) ->
               Printf.printf "derivability from %s:\n" view;
               List.iter (fun c -> print_string (Cert.to_string c)) certs)
             (Session.derivability_certificates scratch q);
           (* incrementality certificate of a materialized view: can the
              deriver maintain it by delta plan, and if not, why not
              (RF30x, warnings only — full refresh remains available) *)
           (match ivm with
            | None -> ()
            | Some cert ->
              print_string (Ivmcert.to_string cert);
              List.iter
                (fun d -> Printf.printf "%s\n" (Diag.to_string d))
                cert.Ivmcert.diags);
           print_newline ()
         end
     in
     List.iteri
       (fun i st ->
         let where = Printf.sprintf "%s:%d" file (i + 1) in
         (match st with
          | Ast.St_query q -> analyze_query ~stmt:(i + 1) where q
          | Ast.St_create_view { name; materialized; query = q } ->
            analyze_query ~stmt:(i + 1)
              ?ivm_view:(if materialized then Some name else None)
              where q;
            (* collect the scan footprint for the sharing report *)
            if materialized then
              Option.iter
                (fun sp -> shared_specs := sp :: !shared_specs)
                (Share.scan_spec ~view:name q)
          | _ -> ());
         match st with
         | Ast.St_query _ -> ()
         | st ->
           (match Session.exec_statement scratch st with
            | Ok _ -> ()
            | Error e ->
              let msg =
                Printf.sprintf "statement failed: %s"
                  (Session.describe_error e)
              in
              if json then
                print_endline
                  (jobj
                     [ ("statement", string_of_int (i + 1)); ("error", jstr msg) ])
              else Printf.printf "%s: %s\n" where msg;
              incr errors))
       stmts);
  (* scan-share classes over the script's materialized sequence views:
     which views the engine would drive from one shared base scan
     (RF401 advisories — informational, never exit-affecting) *)
  let groups = Rfview_analysis.Share.classify (List.rev !shared_specs) in
  let share_diags = Rfview_analysis.Share.diagnostics groups in
  if json then
    print_endline
      (jobj
         [
           ( "scan_sharing",
             jlist
               (List.map
                  (fun (g : Rfview_analysis.Share.group) ->
                    jobj
                      [
                        ("base", jstr g.g_base);
                        ("key", jstr (Rfview_analysis.Share.scan_key g));
                        ( "shared",
                          string_of_bool (Rfview_analysis.Share.shareable g) );
                        ( "views",
                          jlist
                            (List.map
                               (fun (sp : Rfview_analysis.Share.scan_spec) ->
                                 jstr sp.sp_view)
                               g.g_members) );
                        ( "obligations",
                          jlist (List.map jobligation g.g_obligations) );
                        ("diagnostics", jlist (List.map jdiag g.g_diags));
                      ])
                  groups) );
           ("rf2xx", string_of_int !rf2xx);
           ("errors", string_of_int !errors);
         ])
  else begin
    if groups <> [] then begin
      Printf.printf "-- scan sharing\n";
      List.iter
        (fun g -> print_string (Rfview_analysis.Share.to_string g))
        groups;
      List.iter (fun d -> Printf.printf "%s\n" (Diag.to_string d)) share_diags;
      print_newline ()
    end;
    Printf.printf "%s: %d RF2xx diagnostic(s), %d error(s)\n" file !rf2xx !errors
  end;
  exit (if !rf2xx > 0 || !errors > 0 then 1 else 0)

let repl session =
  Printf.printf
    "rfview SQL shell — terminate statements with ';', exit with \\q or Ctrl-D\n%!";
  let buf = Buffer.create 256 in
  let rec loop () =
    Printf.printf (if Buffer.length buf = 0 then "rfview> " else "   ...> ");
    Printf.printf "%!";
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "\\q" -> ()
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.contains line ';' then begin
        Buffer.clear buf;
        ignore (run_script session text)
      end;
      loop ()
  in
  loop ()

let cmd_repl db_dir self_join naive_window verify inject =
  configure ~verify ~inject;
  let s = open_session ~config:(build_config ~self_join ~naive_window) db_dir in
  repl s;
  Session.close s

let cmd_demo self_join naive_window verify inject =
  configure ~verify ~inject;
  let s =
    Session.open_in_memory ~config:(build_config ~self_join ~naive_window) ()
  in
  Rfview_workload.Transactions.load_session s;
  let count sql =
    match Session.query s sql with
    | Ok rel -> Relation.cardinality rel
    | Error e -> failwith (Session.describe_error e)
  in
  Printf.printf
    "loaded demo schema: c_transactions (%d rows), l_locations (%d rows)\n"
    (count "SELECT * FROM c_transactions")
    (count "SELECT * FROM l_locations");
  Printf.printf "try: %s;\n\n" (Rfview_workload.Transactions.intro_query ~custid:7 ());
  repl s

(* ---- serve / call ---- *)

let cmd_serve db_dir port domains self_join naive_window =
  if domains < 1 then begin
    Printf.eprintf "rfview: serve: --domains must be at least 1\n";
    exit 1
  end;
  let s =
    open_session ~config:(build_config ~self_join ~naive_window) (Some db_dir)
  in
  let srv = Rfview_server.Server.start ~domains ~session:s ~port () in
  Printf.printf "serving %s on 127.0.0.1:%d (%d reader domain(s))\n%!" db_dir
    (Rfview_server.Server.port srv)
    domains;
  Rfview_server.Server.wait srv;
  Session.close s

let cmd_call port lines =
  match Rfview_server.Server.Client.connect ~port with
  | exception Unix.Unix_error (err, _, _) ->
    Printf.eprintf "rfview: call: cannot connect to 127.0.0.1:%d: %s\n" port
      (Unix.error_message err);
    exit 1
  | c ->
    let ok = ref true in
    List.iter
      (fun line ->
        let resp = Rfview_server.Server.Client.request c line in
        print_endline resp;
        if Rfview_server.Wire.field resp "ok" <> Some "true" then ok := false)
      lines;
    Rfview_server.Server.Client.disconnect c;
    if not !ok then exit 1

open Cmdliner

let self_join =
  Arg.(value & flag & info [ "self-join" ] ~doc:"Execute reporting functions via the Fig. 2 self-join simulation.")

let naive_window =
  Arg.(value & flag & info [ "naive-window" ] ~doc:"Use the naive O(n*w) window evaluation strategy.")

let verify_plans =
  Arg.(value & flag & info [ "verify-plans" ]
    ~doc:"Checker-verify every bound and optimized plan and translation-validate every rewrite pass.")

let inject =
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SITE:POLICY"
    ~doc:"Arm a fault-injection site (repeatable). POLICY is $(b,always), \
          $(b,nth=N) or $(b,p=F[@SEED]); faulting statements roll back and \
          faulting view maintenance quarantines the view.")

let db_dir =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
    ~doc:"Open $(docv) as a durable database: recover it first (creating it if \
          missing), then write-ahead log and fsync every statement.")

let batch =
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"N"
    ~doc:"Group-commit every $(docv) statements: view deltas propagate once \
          per batch and the WAL is fsynced once per batch. Without this \
          option the whole script commits as one batch.")

let explain_diagnostics =
  Arg.(value & flag & info [ "explain-diagnostics" ]
    ~doc:"Append the registry explanation to each diagnostic; without FILE, print the whole rule registry.")

let explain_code =
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"RFxxx"
    ~doc:"Print the registry entry for one diagnostic code and exit.")

let codes_md =
  Arg.(value & flag & info [ "codes-md" ]
    ~doc:"Print the diagnostic code registry as a markdown table and exit \
          (the generator behind the DESIGN.md table).")

let run_t =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script")
    Term.(const cmd_run $ file $ db_dir $ batch $ self_join $ naive_window
          $ verify_plans $ inject)

let repl_t =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL shell")
    Term.(const cmd_repl $ db_dir $ self_join $ naive_window $ verify_plans $ inject)

let demo_t =
  Cmd.v (Cmd.info "demo" ~doc:"SQL shell with the credit-card demo schema")
    Term.(const cmd_demo $ self_join $ naive_window $ verify_plans $ inject)

let lint_t =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Check and lint the plans of a SQL script (or of the SQL embedded \
             in an OCaml driver) without running its queries")
    Term.(const cmd_lint $ file $ self_join $ explain_diagnostics $ explain_code
          $ codes_md)

let analyze_t =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag & info [ "json" ]
      ~doc:"Emit machine-readable output: one JSON object per analyzed \
            statement plus a trailing summary object with the scan-share \
            classes (JSON Lines).")
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"BYTES"
      ~doc:"Memory budget for the footprint analysis (default 64 MiB); plans \
            whose resident state exceeds or cannot be bounded against it get \
            an RF403 warning.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Abstract-interpret every query of a SQL script: print the output \
             abstraction, any RF2xx diagnostics, per-operator memory \
             footprint bounds (RF402/RF403), the derivability certificates \
             of matching materialized views, and the scan-share classes of \
             its materialized sequence views (RF401). Exit 1 on any RF2xx; \
             RF4xx are advisory.")
    Term.(const cmd_analyze $ file $ json $ budget)

let recover_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a durable database directory (checkpoint + WAL replay) and \
             report what recovery did")
    Term.(const cmd_recover $ dir)

let checkpoint_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Recover DIR, write a fresh checkpoint and truncate its WAL")
    Term.(const cmd_checkpoint $ dir)

let wal_info_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "wal-info"
       ~doc:"Inspect DIR's write-ahead log without recovering it: every \
             record's kind, LSN, byte span and CRC status, and any torn tail \
             (reported, never replayed)")
    Term.(const cmd_wal_info $ dir)

let ship_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let feeds =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"FEED"
      ~doc:"Per-replica feed file (repeatable); created and seeded when \
            missing, resumed when present.")
  in
  Cmd.v
    (Cmd.info "ship"
       ~doc:"Recover DIR and ship its unshipped WAL records to each FEED file")
    Term.(const cmd_ship $ dir $ feeds)

let scrub_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let feeds =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"FEED"
      ~doc:"Replication feed file to verify (and repair from/of); repeatable.")
  in
  let repair =
    Arg.(value & flag & info [ "repair" ]
      ~doc:"Repair what scrubbing finds: sweep stale temp files, rebuild a \
            damaged WAL from the longest fingerprint-verified record chain a \
            FEED carries, re-seed damaged feeds from the primary.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Verify every artifact of durable directory DIR — WAL frames, \
             checkpoint records, stray temp files, FEED entries and LSN \
             continuity — and report typed damage (exit 1 when damage \
             remains)")
    Term.(const cmd_scrub $ dir $ feeds $ repair)

let replica_sql =
  Arg.(value & opt (some string) None & info [ "sql" ] ~docv:"SQL"
    ~doc:"Run one query against the replica's applied state after polling.")

let replica_tip =
  Arg.(value & opt (some int) None & info [ "tip" ] ~docv:"LSN"
    ~doc:"The primary's tip LSN, for lag reporting and the staleness bound \
          (default: the replica's own applied LSN).")

let replica_max_lag =
  Arg.(value & opt (some int) None & info [ "max-lag" ] ~docv:"N"
    ~doc:"Refuse the --sql read when the replica trails --tip by more than \
          $(docv) records.")

let replica_t =
  let feed = Arg.(required & pos 0 (some string) None & info [] ~docv:"FEED") in
  Cmd.v
    (Cmd.info "replica"
       ~doc:"Poll FEED to its end, report the applied LSN and status, and \
             optionally serve a stale-bounded read")
    Term.(const cmd_replica $ feed $ replica_sql $ replica_tip $ replica_max_lag)

let promote_t =
  let feed = Arg.(required & pos 0 (some string) None & info [] ~docv:"FEED") in
  let dir = Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Poll FEED to its end and promote the applied state into a new \
             durable primary at DIR (failover: at most the never-shipped tail \
             of the old primary is lost)")
    Term.(const cmd_promote $ feed $ dir)

let serve_t =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let port =
    Arg.(value & opt int 7477 & info [ "port" ] ~docv:"PORT"
      ~doc:"Loopback TCP port to listen on (0 picks an ephemeral port).")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
      ~doc:"Reader domains serving snapshot queries (also the concurrent \
            connection bound).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Recover durable directory DIR and serve it concurrently on a \
             loopback port: reads run as MVCC snapshot queries on a domain \
             pool, writes are serialized through one writer. One request \
             line in, one JSON line out (ping/open/query/exec/batch/status/\
             close/quit/shutdown)")
    Term.(const cmd_serve $ dir $ port $ domains $ self_join $ naive_window)

let call_t =
  let port = Arg.(required & pos 0 (some int) None & info [] ~docv:"PORT") in
  let lines =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"REQUEST"
      ~doc:"Protocol request line (repeatable, sent in order).")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Send protocol request lines to a running rfview server on \
             127.0.0.1:PORT and print each JSON response (exit 1 when any \
             response is not ok)")
    Term.(const cmd_call $ port $ lines)

let main =
  Cmd.group
    (Cmd.info "rfview" ~version:"1.0.0"
       ~doc:"Reporting-function views in a data warehouse environment")
    [ run_t; repl_t; demo_t; lint_t; analyze_t; recover_t; checkpoint_t;
      wal_info_t; scrub_t; ship_t; replica_t; promote_t; serve_t; call_t ]

(* Exit codes: 0 success, 1 operational failure, 2 usage error.
   cmdliner reports usage errors as its own 124; normalize so scripts
   can tell "you called it wrong" (2) from "it ran and failed" (1). *)
let () =
  let code = Cmd.eval main in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
