(** Injection point for the plan verifier.

    The analysis library ([rfview_analysis]) depends on the planner, so
    the planner cannot call it directly.  Instead every rewrite pass
    reports its (before, after) plan pair here;
    [Rfview_analysis.Verify.enable] installs the translation validator.
    The default validator is a no-op, so un-verified runs pay nothing. *)

type validator = pass:string -> before:Logical.t -> after:Logical.t -> unit

val validator : validator ref

(** Invoke the installed validator. *)
val validate : validator

(** The differential sanitizer: given the execution catalog and a final
    logical plan, execute every sub-plan and check the concrete
    intermediate relations against the abstract interpreter's states
    ([Rfview_analysis.Sanitize.enable] installs it; the default is a
    no-op). *)
type sanitizer = catalog:Physical.catalog_view -> Logical.t -> unit

val sanitizer : sanitizer ref

(** Invoke the installed sanitizer. *)
val sanitize : sanitizer

(** The shared-scan differential validator: when the engine maintains a
    scan-share class of sequence views from one shared partition
    iterator, it reports, per view, the shared-scan rendering alongside
    a per-view-scan rendering of the same delta;
    [Rfview_analysis.Verify.enable] installs a comparator that raises
    unless the two are bit-identical.  The default is a no-op. *)
type shared_scan_validator =
  view:string ->
  shared:Rfview_relalg.Relation.t ->
  per_view:Rfview_relalg.Relation.t ->
  unit

val shared_scan_validator : shared_scan_validator ref

(** Invoke the installed shared-scan validator. *)
val validate_shared_scan : shared_scan_validator
