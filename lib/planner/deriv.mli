(** Algebraic delta-plan derivation: generalized incremental view
    maintenance beyond the paper's §2.3 sequence views.

    {!derive} statically analyses a view's logical plan and either
    produces executable per-operator delta rules or a structured list of
    rejection reasons:

    - select/project/UNION ALL commute with deltas (linear);
    - inner joins are bilinear — since base tables hold the {e post}
      state when maintenance runs, the rule used is
      [delta(A |x| B) = dA |x| B_new + A_new |x| dB - dA |x| dB];
    - GROUP BY localizes to the affected-key set: touched groups are
      removed by key and recomputed from the restricted post-state
      child, in child scan order, so float aggregates are bit-identical
      to a full refresh;
    - reporting-function (window) nodes localize to their PARTITION BY
      key and re-extend only the affected partitions.

    DISTINCT, LIMIT, ORDER BY, row numbering, outer joins and
    non-localizable grouping/window shapes are rejected; the engine
    keeps the full-refresh path for such views.  Each rule's
    precondition has a mirror obligation in [Rfview_analysis.Ivmcert]
    (the machine-checkable incrementality certificate); the engine only
    installs a derived plan whose certificate is valid, and the
    cert-iff-derive matrix in [test/test_ivm.ml] keeps the two walks in
    lockstep. *)

open Rfview_relalg

type reject_reason =
  | Nonlinear_op of string     (** operator with no delta rule (RF301) *)
  | Outer_join                 (** padding breaks bilinearity (RF302) *)
  | Group_nonlocal of string   (** GROUP BY not localizable (RF303) *)
  | Window_nonlocal of string  (** window not partition-local (RF304) *)

type reject = {
  rj_reason : reject_reason;
  rj_node : string;  (** offending operator, for reporting *)
}

val reject_to_string : reject -> string

(** A derived maintenance plan: delta rules plus the wrap chain back to
    the view's output rows. *)
type t

(** Base tables the plan reads (lowercased, deduplicated). *)
val sources : t -> string list

(** Does the plan contain a reporting-function node?  (The engine skips
    derivation under the self-join window mode: the rewritten refresh
    path and the native recompute could differ bit-wise.) *)
val has_window : t -> bool

(** Human-readable shape ("linear ...", "group-by regrouping ...") for
    [rfview analyze] reports. *)
val shape_name : t -> string

(** Statically derive the delta plan, or the reasons there is none. *)
val derive : Logical.t -> (t, reject list) result

(** {1 Evaluation}

    The engine supplies the batch delta and post-state sub-plan
    evaluation; the deriver stays free of engine dependencies. *)

type env = {
  delta_of : string -> (Row.t * int) list;
      (** signed consolidated delta of a base table: inserts [+1],
          deletes [-1], updates as delete(old) + insert(new) *)
  eval : Logical.t -> Relation.t;
      (** post-state evaluation of a sub-plan through the engine *)
  window_strategy : Window.strategy;
}

(** How the view's contents change under the delta. *)
type change = {
  ch_removes : Row.t list;  (** exact rows to remove (first match) *)
  ch_rekeys : (Expr.t list * Row.t list) option;
      (** (key exprs over the view schema, affected key tuples): drop
          every contents row whose key tuple is in the set *)
  ch_adds : Row.t list;  (** rows to append *)
}

val apply : env -> t -> change

(** Raised by {!splice} when an exact removal finds no matching row —
    the derived delta disagrees with the materialized contents.  The
    engine falls back to a full refresh. *)
exception Divergence of string

(** Apply a change to the view's contents: removals (exact, then
    keyed), then appends. *)
val splice : Relation.t -> change -> Relation.t
