(* Logical optimization: predicate pushdown.

   Comma joins bind as a cross join with the predicate in WHERE; pushing
   the conjuncts down into the join condition (and further into the join
   inputs) is what lets the physical planner pick hash or index join
   algorithms — without it every FROM a, b WHERE ... query would execute
   as a filtered cross product.

   Rules:
   - Filter over Filter: merge conjunct lists.
   - Filter over inner Join: conjuncts referencing only the left (right)
     side move into that input; the rest joins the ON condition.
   - Filter over a LEFT OUTER join: only left-side conjuncts may move (the
     preserved side); everything else stays above the join.
   - Filter over Alias/Sort/Limit-free unary nodes with unchanged column
     positions: push through. *)

open Rfview_relalg

let rec optimize_plan (plan : Logical.t) : Logical.t =
  match plan with
  | Logical.Scan _ -> plan
  | Logical.Filter { input; pred } ->
    push_filter (optimize_plan input) (Expr.conjuncts pred)
  | Logical.Project { input; exprs } ->
    Logical.Project { input = optimize_plan input; exprs }
  | Logical.Join { kind; left; right; cond } ->
    Logical.Join { kind; left = optimize_plan left; right = optimize_plan right; cond }
  | Logical.Aggregate { input; group; aggs } ->
    Logical.Aggregate { input = optimize_plan input; group; aggs }
  | Logical.Window_op { input; fns } ->
    Logical.Window_op { input = optimize_plan input; fns }
  | Logical.Number { input; partition; order; name } ->
    Logical.Number { input = optimize_plan input; partition; order; name }
  | Logical.Sort { input; keys } -> Logical.Sort { input = optimize_plan input; keys }
  | Logical.Distinct input -> Logical.Distinct (optimize_plan input)
  | Logical.Limit { input; n } -> Logical.Limit { input = optimize_plan input; n }
  | Logical.Union_all { left; right } ->
    Logical.Union_all { left = optimize_plan left; right = optimize_plan right }
  | Logical.Alias { input; rel } -> Logical.Alias { input = optimize_plan input; rel }

and push_filter (plan : Logical.t) (conjuncts : Expr.t list) : Logical.t =
  match conjuncts with
  | [] -> plan
  | _ ->
    (match plan with
     | Logical.Filter { input; pred } ->
       push_filter input (Expr.conjuncts pred @ conjuncts)
     | Logical.Alias { input; rel } ->
       Logical.Alias { input = push_filter input conjuncts; rel }
     | Logical.Join { kind = Joinop.Inner; left; right; cond } ->
       let la = Schema.arity (Logical.schema left) in
       let left_only, rest =
         List.partition
           (fun c -> List.for_all (fun i -> i < la) (Expr.columns c))
           conjuncts
       in
       let right_only, mixed =
         List.partition
           (fun c -> List.for_all (fun i -> i >= la) (Expr.columns c))
           rest
       in
       let left = push_filter left left_only in
       let right =
         push_filter right (List.map (Expr.map_cols (fun i -> i - la)) right_only)
       in
       let cond =
         match cond with
         | Expr.Const (Value.Bool true) -> Expr.conjoin mixed
         | c -> Expr.conjoin (Expr.conjuncts c @ mixed)
       in
       Logical.Join { kind = Joinop.Inner; left; right; cond }
     | Logical.Join { kind = Joinop.Left_outer; left; right; cond } ->
       let la = Schema.arity (Logical.schema left) in
       let left_only, rest =
         List.partition
           (fun c -> List.for_all (fun i -> i < la) (Expr.columns c))
           conjuncts
       in
       let join =
         Logical.Join
           { kind = Joinop.Left_outer; left = push_filter left left_only; right; cond }
       in
       if rest = [] then join
       else Logical.Filter { input = join; pred = Expr.conjoin rest }
     | other -> Logical.Filter { input = other; pred = Expr.conjoin conjuncts })

(* Translation-validated entry point: the installed verifier (if any)
   asserts the pass is schema-preserving and checker-clean. *)
let optimize (plan : Logical.t) : Logical.t =
  let optimized = optimize_plan plan in
  Hooks.validate ~pass:"Optimize.optimize" ~before:plan ~after:optimized;
  optimized
