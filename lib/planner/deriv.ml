(* Algebraic delta-plan derivation (generalized IVM).

   Given the logical plan of a materialized view and the consolidated
   delta of one batch, derive how the view's contents change without
   recomputing the whole query:

   - Select, project, inner join and UNION ALL are (bi)linear in their
     inputs, so their deltas are computed on *signed multisets* of rows
     (sign +1 inserts, -1 deletes).  Because the base tables already
     hold the post-batch state when maintenance runs, the join rule is
     the new-state form

       delta(A |x| B) = dA |x| B_new  +  A_new |x| dB  -  dA |x| dB

     (the cross term is subtracted: it is contained in both flanks).

   - GROUP BY does not commute with deltas, but it *localizes*: only
     groups whose key appears in the child delta can change.  The
     derived rule removes the view rows of those keys and recomputes
     the affected groups from the post-state child restricted to the
     key set — in child scan order, i.e. the exact fold order a full
     refresh would use, so recomputed float aggregates are bit-identical
     to recomputation.

   - Reporting-function (window) nodes localize to their PARTITION BY
     key the same way: affected partitions are re-extended from the
     restricted post-state child (§2.3 dirty-partition machinery, lifted
     from sequences to arbitrary partition-local window sets).

   Everything else (DISTINCT, LIMIT, ORDER BY, row numbering, outer
   joins, non-local grouping) is rejected at derivation time with a
   structured reason; the engine then keeps the full-refresh path.  The
   mirror image of each rule's precondition lives in
   Rfview_analysis.Ivmcert as a machine-checkable certificate; the two
   walks are kept in lockstep by the cert-iff-runtime matrix in
   test/test_ivm.ml. *)

open Rfview_relalg

(* ---- Rejection reasons (surfaced as RF3xx diagnostics) ---- *)

type reject_reason =
  | Nonlinear_op of string   (* DISTINCT/LIMIT/ORDER BY/NUMBER: no delta rule *)
  | Outer_join               (* padding rows break bilinearity *)
  | Group_nonlocal of string (* GROUP BY cannot be localized to a key set *)
  | Window_nonlocal of string (* window fns cannot be localized to partitions *)

type reject = {
  rj_reason : reject_reason;
  rj_node : string; (* operator description, for reporting *)
}

let reject_to_string r =
  let what =
    match r.rj_reason with
    | Nonlinear_op op -> Printf.sprintf "operator %s has no delta rule" op
    | Outer_join -> "outer join padding breaks bilinearity"
    | Group_nonlocal why -> Printf.sprintf "GROUP BY is not localizable: %s" why
    | Window_nonlocal why -> Printf.sprintf "window is not partition-local: %s" why
  in
  Printf.sprintf "%s (at %s)" what r.rj_node

(* ---- The linear fragment ----

   A tree of operators whose delta is computable on signed rows alone.
   Join nodes keep the logical plans of their flanks so the new-state
   rule can evaluate A_new / B_new through the engine. *)

type lin =
  | Lscan of { table : string }
  | Lfilter of { input : lin; pred : Expr.t }
  | Lproject of { input : lin; exprs : Expr.t list }
  | Ljoin of {
      left : lin;
      right : lin;
      cond : Expr.t;
      left_plan : Logical.t;
      right_plan : Logical.t;
    }
  | Lunion of { left : lin; right : lin }

(* Wrappers sitting between the localized node and the view's output:
   row-at-a-time transforms, applied innermost-first. *)
type wrap =
  | Wproject of Expr.t list
  | Wfilter of Expr.t

type shape =
  | Linear of lin
  | Grouped of {
      child : lin;              (* delta source *)
      child_plan : Logical.t;   (* post-state evaluation *)
      group : Expr.t list;      (* key exprs over the child schema *)
      aggs : Groupop.agg_spec list;
      out_keys : Expr.t list;   (* key exprs over the VIEW schema *)
    }
  | Windowed of {
      child : lin;
      child_plan : Logical.t;
      fns : Logical.window_fn list;
      partition : Expr.t list;  (* shared partition exprs, child schema *)
      out_keys : Expr.t list;   (* partition exprs over the VIEW schema *)
    }

type t = {
  shape : shape;
  wraps : wrap list;     (* innermost-first, from node output to view rows *)
  sources : string list; (* referenced base tables, lowercased, deduped *)
}

let sources t = t.sources

let has_window t = match t.shape with Windowed _ -> true | _ -> false

let shape_name t =
  match t.shape with
  | Linear _ -> "linear (select/project/join/union)"
  | Grouped _ -> "group-by regrouping over affected keys"
  | Windowed _ -> "window recompute over affected partitions"

(* ---- Derivation ---- *)

let node_name : Logical.t -> string = function
  | Logical.Scan { table; _ } -> "Scan " ^ table
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Join _ -> "Join"
  | Aggregate _ -> "Aggregate"
  | Window_op _ -> "Window"
  | Number _ -> "Number"
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Limit _ -> "Limit"
  | Union_all _ -> "UnionAll"
  | Alias { rel; _ } -> "Alias " ^ rel

let rej reason node = { rj_reason = reason; rj_node = node_name node }

(* Collect base tables of a linear tree. *)
let rec lin_sources acc = function
  | Lscan { table } -> String.lowercase_ascii table :: acc
  | Lfilter { input; _ } | Lproject { input; _ } -> lin_sources acc input
  | Ljoin { left; right; _ } | Lunion { left; right } ->
    lin_sources (lin_sources acc left) right

(* The linear fragment proper: anything outside it is a reject.  Alias
   nodes only re-qualify column names (positions are untouched), so they
   are transparent for row-level deltas. *)
let rec lin_of (plan : Logical.t) : (lin, reject list) result =
  match plan with
  | Scan { table; _ } -> Ok (Lscan { table })
  | Alias { input; _ } -> lin_of input
  | Filter { input; pred } ->
    Result.map (fun input -> Lfilter { input; pred }) (lin_of input)
  | Project { input; exprs } ->
    Result.map
      (fun input -> Lproject { input; exprs = List.map fst exprs })
      (lin_of input)
  | Join { kind = Joinop.Left_outer; _ } -> Error [ rej Outer_join plan ]
  | Join { kind = Joinop.Inner; left; right; cond } ->
    both
      (fun l r ->
        Ljoin { left = l; right = r; cond; left_plan = left; right_plan = right })
      (lin_of left) (lin_of right)
  | Union_all { left; right } ->
    both (fun l r -> Lunion { left = l; right = r }) (lin_of left) (lin_of right)
  | Aggregate _ ->
    Error [ rej (Group_nonlocal "GROUP BY below a join or union is not on the view's top spine") plan ]
  | Window_op _ ->
    Error [ rej (Window_nonlocal "window below a join or union is not on the view's top spine") plan ]
  | Number _ -> Error [ rej (Nonlinear_op "Number (row numbering)") plan ]
  | Sort _ -> Error [ rej (Nonlinear_op "Sort (ORDER BY)") plan ]
  | Distinct _ -> Error [ rej (Nonlinear_op "Distinct") plan ]
  | Limit _ -> Error [ rej (Nonlinear_op "Limit") plan ]

and both : 'a. (lin -> lin -> 'a) -> (lin, reject list) result ->
    (lin, reject list) result -> ('a, reject list) result =
 fun f l r ->
  match l, r with
  | Ok l, Ok r -> Ok (f l r)
  | Error e, Ok _ | Ok _, Error e -> Error e
  | Error e1, Error e2 -> Error (e1 @ e2)

(* A *local chain*: Filter/Project/Alias over a single Scan.  Localized
   recomputation (affected groups / partitions) re-evaluates the child,
   so the child must be cheap and its row order must be stable under
   DML elsewhere — a single-table chain guarantees both (deletes filter
   the row array, updates rewrite in place, inserts append, so the
   relative order of untouched rows never changes). *)
let rec local_chain = function
  | Logical.Scan _ -> true
  | Filter { input; _ } | Project { input; _ } | Alias { input; _ } ->
    local_chain input
  | _ -> false

(* Peel Filter/Project/Alias wrappers off the top of the plan, returning
   them innermost-first together with the node they sit on. *)
let rec peel wraps (plan : Logical.t) =
  match plan with
  | Filter { input; pred } -> peel (Wfilter pred :: wraps) input
  | Project { input; exprs } ->
    peel (Wproject (List.map fst exprs) :: wraps) input
  | Alias { input; _ } -> peel wraps input
  | node -> (wraps, node)

(* Rebase an expression over a node's output schema onto the view's
   output schema by pushing it through the wrap chain.  Only column
   renaming survives: every projection on the way up must consist of
   bare column references covering the expression's columns.  [None]
   means the key is not recoverable from view rows. *)
let remap_through_wraps (wraps : wrap list) (e : Expr.t) : Expr.t option =
  List.fold_left
    (fun acc w ->
      match acc, w with
      | None, _ -> None
      | Some e, Wfilter _ -> Some e
      | Some e, Wproject exprs ->
        let positions =
          List.mapi (fun i pe -> match pe with Expr.Col c -> Some (c, i) | _ -> None) exprs
        in
        let table = List.filter_map Fun.id positions in
        let ok = ref true in
        let e' =
          Expr.map_cols
            (fun c ->
              match List.assoc_opt c table with
              | Some i -> i
              | None ->
                ok := false;
                c)
            e
        in
        if !ok then Some e' else None)
    (Some e) wraps

let dedup_sources l = List.sort_uniq String.compare l

(* Structural equality of partition expression lists (Expr.t carries no
   functions, so OCaml structural equality is exact). *)
let same_partition (a : Expr.t list) (b : Expr.t list) = a = b

let derive (plan : Logical.t) : (t, reject list) result =
  let wraps, node = peel [] plan in
  let finish shape lin =
    Ok { shape; wraps; sources = dedup_sources (lin_sources [] lin) }
  in
  match node with
  | Logical.Aggregate { input; group; aggs } ->
    let errs = ref [] in
    if group = [] then
      errs := rej (Group_nonlocal "global aggregate has no grouping key to localize on") node :: !errs;
    if not (local_chain input) then
      errs :=
        rej
          (Group_nonlocal
             "the aggregate input is not a single-table select/project chain")
          node
        :: !errs;
    let out_keys =
      List.mapi (fun i _ -> remap_through_wraps wraps (Expr.Col i)) group
    in
    if List.exists Option.is_none out_keys then
      errs :=
        rej (Group_nonlocal "grouping keys are not preserved in the view output")
          node
        :: !errs;
    (match !errs, lin_of input with
     | [], Ok child ->
       finish
         (Grouped
            {
              child;
              child_plan = input;
              group;
              aggs;
              out_keys = List.filter_map Fun.id out_keys;
            })
         child
     | errs, Ok _ -> Error (List.rev errs)
     | errs, Error more -> Error (List.rev errs @ more))
  | Logical.Window_op { input; fns } ->
    let errs = ref [] in
    let partition =
      match fns with
      | [] -> []
      | f :: rest ->
        if f.Logical.partition = [] then
          errs :=
            rej
              (Window_nonlocal
                 "a window without PARTITION BY spans the whole relation")
              node
            :: !errs
        else if
          not (List.for_all (fun g -> same_partition g.Logical.partition f.Logical.partition) rest)
        then
          errs :=
            rej
              (Window_nonlocal
                 "window functions do not share one PARTITION BY key")
              node
            :: !errs;
        f.Logical.partition
    in
    if not (local_chain input) then
      errs :=
        rej
          (Window_nonlocal
             "the window input is not a single-table select/project chain")
          node
        :: !errs;
    (* partition exprs over the child schema stay valid over the window
       output (the window only appends columns), so they remap through
       the wraps directly *)
    let out_keys = List.map (remap_through_wraps wraps) partition in
    if List.exists Option.is_none out_keys then
      errs :=
        rej
          (Window_nonlocal
             "partition keys are not preserved in the view output")
          node
        :: !errs;
    (match !errs, lin_of input with
     | [], Ok child ->
       finish
         (Windowed
            {
              child;
              child_plan = input;
              fns;
              partition;
              out_keys = List.filter_map Fun.id out_keys;
            })
         child
     | errs, Ok _ -> Error (List.rev errs)
     | errs, Error more -> Error (List.rev errs @ more))
  | node -> Result.map (fun lin -> { shape = Linear lin; wraps; sources = dedup_sources (lin_sources [] lin) }) (lin_of node)

(* ---- Evaluation ---- *)

(* The engine supplies post-state evaluation and the batch delta; the
   deriver stays free of engine dependencies. *)
type env = {
  delta_of : string -> (Row.t * int) list;
      (* consolidated signed delta of a base table: inserts +1, deletes
         -1, updates as delete(old)+insert(new) *)
  eval : Logical.t -> Relation.t;
      (* post-state evaluation of a sub-plan through the engine *)
  window_strategy : Window.strategy;
}

type change = {
  ch_removes : Row.t list;  (* exact view rows to remove (first match) *)
  ch_rekeys : (Expr.t list * Row.t list) option;
      (* (key exprs over the view schema, affected key tuples): drop
         every contents row whose key tuple is in the set *)
  ch_adds : Row.t list;     (* rows to append, view schema *)
}

let empty_change = { ch_removes = []; ch_rekeys = None; ch_adds = [] }

let eval_exprs exprs row =
  Array.of_list (List.map (fun e -> Expr.eval row e) exprs)

(* Delta of a linear tree, as signed rows. *)
let rec lin_delta env = function
  | Lscan { table } -> env.delta_of table
  | Lfilter { input; pred } ->
    List.filter (fun (r, _) -> Expr.holds r pred) (lin_delta env input)
  | Lproject { input; exprs } ->
    List.map (fun (r, s) -> (eval_exprs exprs r, s)) (lin_delta env input)
  | Lunion { left; right } -> lin_delta env left @ lin_delta env right
  | Ljoin { left; right; cond; left_plan; right_plan } ->
    let dl = lin_delta env left in
    let dr = lin_delta env right in
    if dl = [] && dr = [] then []
    else begin
      let pairs (la : (Row.t * int) list) (ra : (Row.t * int) list) sign acc =
        List.fold_left
          (fun acc (lr, ls) ->
            List.fold_left
              (fun acc (rr, rs) ->
                let joined = Row.append lr rr in
                if Expr.holds joined cond then (joined, sign * ls * rs) :: acc
                else acc)
              acc ra)
          acc la
      in
      let signed_of rel = List.map (fun r -> (r, 1)) (Relation.to_list rel) in
      (* dA |x| B_new *)
      let acc =
        if dl = [] then []
        else pairs dl (signed_of (env.eval right_plan)) 1 []
      in
      (* A_new |x| dB *)
      let acc =
        if dr = [] then acc
        else pairs (signed_of (env.eval left_plan)) dr 1 acc
      in
      (* - dA |x| dB (counted in both flanks above) *)
      let acc = if dl = [] || dr = [] then acc else pairs dl dr (-1) acc in
      List.rev acc
    end

(* Run the wrap chain over one signed row; [None] when a filter drops it. *)
let wrap_row wraps (row : Row.t) : Row.t option =
  List.fold_left
    (fun acc w ->
      match acc, w with
      | None, _ -> None
      | Some r, Wproject exprs -> Some (eval_exprs exprs r)
      | Some r, Wfilter pred -> if Expr.holds r pred then Some r else None)
    (Some row) wraps

let key_row exprs row : Row.t = eval_exprs exprs row

let mem_key keys k = List.exists (Row.equal k) keys

(* Deduplicated affected-key set of a child delta. *)
let affected_keys group delta =
  List.fold_left
    (fun acc (r, _) ->
      let k = key_row group r in
      if mem_key acc k then acc else k :: acc)
    [] delta
  |> List.rev

let apply env t : change =
  match t.shape with
  | Linear lin ->
    let delta = lin_delta env lin in
    let adds = ref [] and removes = ref [] in
    List.iter
      (fun (row, s) ->
        match wrap_row t.wraps row with
        | None -> ()
        | Some out ->
          if s > 0 then adds := out :: !adds else removes := out :: !removes)
      delta;
    { ch_adds = List.rev !adds; ch_removes = List.rev !removes; ch_rekeys = None }
  | Grouped { child; child_plan; group; aggs; out_keys } ->
    let delta = lin_delta env child in
    if delta = [] then empty_change
    else begin
      let keys = affected_keys group delta in
      let rel = env.eval child_plan in
      let restricted =
        Array.of_list
          (List.filter
             (fun r -> mem_key keys (key_row group r))
             (Relation.to_list rel))
      in
      let grouped =
        Groupop.group_by ~group ~aggs
          (Relation.of_array (Relation.schema rel) restricted)
      in
      let adds =
        List.filter_map (wrap_row t.wraps) (Relation.to_list grouped)
      in
      { ch_adds = adds; ch_removes = []; ch_rekeys = Some (out_keys, keys) }
    end
  | Windowed { child; child_plan; fns; partition; out_keys } ->
    let delta = lin_delta env child in
    if delta = [] then empty_change
    else begin
      let keys = affected_keys partition delta in
      let rel = env.eval child_plan in
      let restricted =
        Array.of_list
          (List.filter
             (fun r -> mem_key keys (key_row partition r))
             (Relation.to_list rel))
      in
      let extended =
        Window.extend ~strategy:env.window_strategy
          (Relation.of_array (Relation.schema rel) restricted)
          (List.map Logical.to_relalg_fn fns)
      in
      let adds =
        List.filter_map (wrap_row t.wraps) (Relation.to_list extended)
      in
      { ch_adds = adds; ch_removes = []; ch_rekeys = Some (out_keys, keys) }
    end

(* ---- Splicing a change into view contents ---- *)

(* The incremental result drifted from reality: an exact row the delta
   says must leave the view is not present.  The engine catches this and
   falls back to a full refresh. *)
exception Divergence of string

let splice (contents : Relation.t) (ch : change) : Relation.t =
  let rows = ref (Relation.to_list contents) in
  (* exact removals, first match *)
  List.iter
    (fun victim ->
      let rec go acc = function
        | [] ->
          raise
            (Divergence
               (Printf.sprintf "derived delta removes a row not in the view: %s"
                  (Row.to_string victim)))
        | r :: rest when Row.equal r victim -> List.rev_append acc rest
        | r :: rest -> go (r :: acc) rest
      in
      rows := go [] !rows)
    ch.ch_removes;
  (* keyed removals *)
  (match ch.ch_rekeys with
   | None -> ()
   | Some (key_exprs, keys) ->
     rows :=
       List.filter (fun r -> not (mem_key keys (key_row key_exprs r))) !rows);
  Relation.make (Relation.schema contents) (!rows @ ch.ch_adds)
