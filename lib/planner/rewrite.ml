(* Query rewriting.

   [window_to_self_join] implements the paper's relational mapping of
   reporting functions (Fig. 2): simulate each window function with a self
   join on the sequence position plus a grouped aggregation.  The paper's
   mapping presumes a dense position column; we materialize one with the
   Number operator (a per-partition dense row number over the ORDER BY
   keys), which makes the rewrite applicable to any input.

   Shape for a window function agg(arg) OVER (PARTITION BY p ORDER BY o
   ROWS BETWEEN l PRECEDING AND h FOLLOWING) on input I with columns c*:

       Project c*, agg_val
         Aggregate group=[c*, pos] aggs=[agg(s2.arg)]
           Join s1.p = s2.p AND s2.pos BETWEEN s1.pos-l AND s1.pos+h
             Number(I) as s1
             Number(I) as s2

   Restriction (documented): the frame must contain the current row —
   otherwise rows with empty frames would vanish in the inner join.  All
   frames used in the paper (cumulative and (l, h) sliding windows)
   qualify. *)

open Rfview_relalg

exception Not_rewritable of string

let frame_contains_current (f : Window.frame) =
  let lo_ok =
    match f.Window.lo with
    | Window.Unbounded_preceding | Window.Preceding _ | Window.Current_row -> true
    | Window.Following n -> n = 0
    | Window.Unbounded_following -> false
  in
  let hi_ok =
    match f.Window.hi with
    | Window.Unbounded_following | Window.Following _ | Window.Current_row -> true
    | Window.Preceding n -> n = 0
    | Window.Unbounded_preceding -> false
  in
  lo_ok && hi_ok

(* Join predicate on the position columns implementing the frame.
   [s1_pos]/[s2_pos] are column indices in the combined schema. *)
let frame_predicate (f : Window.frame) ~s1_pos ~s2_pos : Expr.t =
  let p1 = Expr.Col s1_pos and p2 = Expr.Col s2_pos in
  let plus e n =
    if n = 0 then e
    else if n > 0 then Expr.Binop (Expr.Add, e, Expr.Const (Value.Int n))
    else Expr.Binop (Expr.Sub, e, Expr.Const (Value.Int (-n)))
  in
  let lo =
    match f.Window.lo with
    | Window.Unbounded_preceding -> None
    | Window.Preceding n -> Some (plus p1 (-n))
    | Window.Current_row -> Some p1
    | Window.Following n -> Some (plus p1 n)
    | Window.Unbounded_following -> None
  in
  let hi =
    match f.Window.hi with
    | Window.Unbounded_following -> None
    | Window.Following n -> Some (plus p1 n)
    | Window.Current_row -> Some p1
    | Window.Preceding n -> Some (plus p1 (-n))
    | Window.Unbounded_preceding -> None
  in
  match lo, hi with
  | Some lo, Some hi -> Expr.Between (p2, lo, hi)
  | Some lo, None -> Expr.Binop (Expr.Ge, p2, lo)
  | None, Some hi -> Expr.Binop (Expr.Le, p2, hi)
  | None, None -> Expr.Const (Value.Bool true)

(* Rewrite one window function over [input]; the result has the schema of
   [input] extended with one column [fn.name] (same contract as the native
   Window operator with a single function). *)
let rewrite_one (input : Logical.t) (fn : Logical.window_fn) : Logical.t =
  let agg_kind =
    match fn.func with
    | Window.Agg k -> k
    | Window.Row_number | Window.Rank | Window.Dense_rank
    | Window.Lag _ | Window.Lead _ | Window.First_value | Window.Last_value ->
      raise
        (Not_rewritable "only framed aggregates have a self-join simulation")
  in
  if fn.frame.Window.mode <> Window.Rows then
    raise (Not_rewritable "RANGE frames have no positional self-join simulation");
  if not (frame_contains_current fn.frame) then
    raise
      (Not_rewritable
         "self-join simulation requires the frame to contain the current row");
  let in_schema = Logical.schema input in
  let arity = Schema.arity in_schema in
  let numbered =
    Logical.Number
      { input; partition = fn.partition; order = fn.order; name = "$pos" }
  in
  (* combined schema: s1 (arity+1 cols) ++ s2 (arity+1 cols) *)
  let s1_pos = arity in
  let s2_pos = (2 * arity) + 1 in
  let partition_eq =
    List.map
      (fun e ->
        let lhs = e (* over s1 = same positions *) in
        let rhs = Expr.map_cols (fun c -> c + arity + 1) e in
        Expr.Binop (Expr.Eq, lhs, rhs))
      fn.partition
  in
  let cond =
    Expr.conjoin (partition_eq @ [ frame_predicate fn.frame ~s1_pos ~s2_pos ])
  in
  let join =
    Logical.Join { kind = Joinop.Inner; left = numbered; right = numbered; cond }
  in
  (* group by all s1 columns plus s1.$pos (unique per partition) *)
  let group = List.init (arity + 1) (fun i -> Expr.Col i) in
  let agg_arg = Expr.map_cols (fun c -> c + arity + 1) fn.arg in
  let agg =
    Logical.Aggregate
      {
        input = join;
        group;
        aggs = [ { Groupop.kind = agg_kind; arg = agg_arg; name = fn.name } ];
      }
  in
  (* drop $pos: keep original columns and the aggregate result *)
  let exprs =
    List.init arity (fun i -> (Expr.Col i, (Schema.col in_schema i).Schema.name))
    @ [ (Expr.Col (arity + 1), fn.name) ]
  in
  Logical.Project { input = agg; exprs }

(* A projection loses qualifiers; keep them by re-aliasing per column is
   not possible in general, so the rewrite is applied before projection
   naming matters (directly on Window_op nodes). *)

(* Replace every Window_op node in the plan by the self-join simulation. *)
let rec rewrite_windows (plan : Logical.t) : Logical.t =
  match plan with
  | Logical.Scan _ -> plan
  | Logical.Filter { input; pred } ->
    Logical.Filter { input = rewrite_windows input; pred }
  | Logical.Project { input; exprs } ->
    Logical.Project { input = rewrite_windows input; exprs }
  | Logical.Join { kind; left; right; cond } ->
    Logical.Join
      { kind; left = rewrite_windows left; right = rewrite_windows right; cond }
  | Logical.Aggregate { input; group; aggs } ->
    Logical.Aggregate { input = rewrite_windows input; group; aggs }
  | Logical.Window_op { input; fns } ->
    let input = rewrite_windows input in
    (* chain the functions; each rewrite preserves prior columns as a
       prefix, so the per-function expressions stay valid and the output
       column order matches the native operator *)
    List.fold_left rewrite_one input fns
  | Logical.Number { input; partition; order; name } ->
    Logical.Number { input = rewrite_windows input; partition; order; name }
  | Logical.Sort { input; keys } ->
    Logical.Sort { input = rewrite_windows input; keys }
  | Logical.Distinct input -> Logical.Distinct (rewrite_windows input)
  | Logical.Limit { input; n } -> Logical.Limit { input = rewrite_windows input; n }
  | Logical.Union_all { left; right } ->
    Logical.Union_all
      { left = rewrite_windows left; right = rewrite_windows right }
  | Logical.Alias { input; rel } ->
    Logical.Alias { input = rewrite_windows input; rel }

(* Translation-validated entry point: the simulation must produce the
   same output schema as the native window operator it replaces. *)
let window_to_self_join (plan : Logical.t) : Logical.t =
  let rewritten = rewrite_windows plan in
  Hooks.validate ~pass:"Rewrite.window_to_self_join" ~before:plan ~after:rewritten;
  rewritten

let has_window_op plan =
  let rec go = function
    | Logical.Window_op _ -> true
    | Logical.Scan _ -> false
    | Logical.Filter { input; _ }
    | Logical.Project { input; _ }
    | Logical.Number { input; _ }
    | Logical.Sort { input; _ }
    | Logical.Distinct input
    | Logical.Limit { input; _ }
    | Logical.Alias { input; _ } -> go input
    | Logical.Join { left; right; _ } | Logical.Union_all { left; right } ->
      go left || go right
    | Logical.Aggregate { input; _ } -> go input
  in
  go plan
