(** Logical query plans.

    Expressions are positional ({!Rfview_relalg.Expr}) over the input
    schema of their node; the binder produces these from the AST. *)

open Rfview_relalg

type window_fn = {
  func : Window.func;
  arg : Expr.t;
  partition : Expr.t list;
  order : Sortop.key list;
  frame : Window.frame;
  name : string;  (** output column name *)
}

type t =
  | Scan of { table : string; schema : Schema.t }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Join of { kind : Joinop.kind; left : t; right : t; cond : Expr.t }
  | Aggregate of { input : t; group : Expr.t list; aggs : Groupop.agg_spec list }
  | Window_op of { input : t; fns : window_fn list }
  | Number of {
      input : t;
      partition : Expr.t list;
      order : Sortop.key list;
      name : string;
    }  (** appends a dense 1-based row number per partition *)
  | Sort of { input : t; keys : Sortop.key list }
  | Distinct of t
  | Limit of { input : t; n : int }
  | Union_all of { left : t; right : t }
  | Alias of { input : t; rel : string }
      (** re-qualifies every output column with relation name [rel] *)

(** Convert a plan-level window function to the executor's form. *)
val to_relalg_fn : window_fn -> Window.fn

(** Raised by {!schema} when a projected expression has no inferable
    type (e.g. a bare NULL) — the output schema would be a guess.  The
    binder rejects such select items with a [Bind_error] before a plan
    is ever built. *)
exception Schema_error of string

(** The output schema of a plan (computed structurally).
    @raise Schema_error per above. *)
val schema : t -> Schema.t

(** EXPLAIN rendering. *)
val pp : ?indent:int -> Format.formatter -> t -> unit

val to_string : t -> string
