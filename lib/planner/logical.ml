(* Logical query plans.  Expressions are positional (Relalg.Expr) over the
   input schema of their node; the binder produces these from the AST. *)

open Rfview_relalg

type window_fn = {
  func : Window.func;
  arg : Expr.t;
  partition : Expr.t list;
  order : Sortop.key list;
  frame : Window.frame;
  name : string;
}

type t =
  | Scan of { table : string; schema : Schema.t }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Join of { kind : Joinop.kind; left : t; right : t; cond : Expr.t }
  | Aggregate of { input : t; group : Expr.t list; aggs : Groupop.agg_spec list }
  | Window_op of { input : t; fns : window_fn list }
  | Number of {
      input : t;
      partition : Expr.t list;
      order : Sortop.key list;
      name : string;
    } (* appends a dense 1-based row number per partition *)
  | Sort of { input : t; keys : Sortop.key list }
  | Distinct of t
  | Limit of { input : t; n : int }
  | Union_all of { left : t; right : t }
  | Alias of { input : t; rel : string }
      (* re-qualifies every output column with relation name [rel] *)

let to_relalg_fn (fn : window_fn) : Window.fn =
  {
    Window.func = fn.func;
    arg = fn.arg;
    spec = { Window.partition = fn.partition; order = fn.order; frame = fn.frame };
    name = fn.name;
  }

exception Schema_error of string

let rec schema : t -> Schema.t = function
  | Scan { schema; _ } -> schema
  | Filter { input; _ } -> schema input
  | Project { input; exprs } ->
    let in_schema = schema input in
    Schema.make
      (List.map
         (fun (e, name) ->
           (* A projection with no inferable type (e.g. a bare NULL) must
              not silently default — the binder rejects such select items
              up front, so reaching this is a broken plan rewrite. *)
           let ty =
             match Expr.infer_type in_schema e with
             | Some t -> t
             | None ->
               raise
                 (Schema_error
                    (Printf.sprintf
                       "cannot infer the type of projected column %s" name))
           in
           Schema.column name ty)
         exprs)
  | Join { left; right; _ } -> Schema.append (schema left) (schema right)
  | Aggregate { input; group; aggs } -> Groupop.output_schema (schema input) group aggs
  | Window_op { input; fns } ->
    Window.output_schema (schema input) (List.map to_relalg_fn fns)
  | Number { input; name; _ } ->
    Schema.append (schema input) (Schema.make [ Schema.column name Dtype.Int ])
  | Sort { input; _ } -> schema input
  | Distinct input -> schema input
  | Limit { input; _ } -> schema input
  | Union_all { left; _ } -> schema left
  | Alias { input; rel } -> Schema.with_rel rel (schema input)

(* ---- Pretty-printing (EXPLAIN LOGICAL) ---- *)

let pp_expr schema ppf e =
  let col i = Schema.qualified_name (Schema.col schema i) in
  Expr.pp_with ~col ppf e

let rec pp ?(indent = 0) ppf (t : t) =
  let pad = String.make (indent * 2) ' ' in
  let child = pp ~indent:(indent + 1) in
  let in_schema input = schema input in
  match t with
  | Scan { table; _ } -> Format.fprintf ppf "%sScan %s@." pad table
  | Filter { input; pred } ->
    Format.fprintf ppf "%sFilter %a@.%a" pad (pp_expr (in_schema input)) pred child
      input
  | Project { input; exprs } ->
    Format.fprintf ppf "%sProject %s@.%a" pad
      (String.concat ", "
         (List.map
            (fun (e, n) ->
              Format.asprintf "%a AS %s" (pp_expr (in_schema input)) e n)
            exprs))
      child input
  | Join { kind; left; right; cond } ->
    let s = Schema.append (in_schema left) (in_schema right) in
    Format.fprintf ppf "%s%s Join on %a@.%a%a" pad
      (match kind with Joinop.Inner -> "Inner" | Joinop.Left_outer -> "LeftOuter")
      (pp_expr s) cond child left child right
  | Aggregate { input; group; aggs } ->
    Format.fprintf ppf "%sAggregate group=[%s] aggs=[%s]@.%a" pad
      (String.concat ", "
         (List.map (Format.asprintf "%a" (pp_expr (in_schema input))) group))
      (String.concat ", "
         (List.map
            (fun a ->
              Format.asprintf "%s(%a)"
                (Aggregate.kind_name a.Groupop.kind)
                (pp_expr (in_schema input))
                a.Groupop.arg)
            aggs))
      child input
  | Window_op { input; fns } ->
    Format.fprintf ppf "%sWindow [%s]@.%a" pad
      (String.concat ", "
         (List.map
            (fun f ->
              Format.asprintf "%s(%a) AS %s" (Window.func_name f.func)
                (pp_expr (in_schema input))
                f.arg f.name)
            fns))
      child input
  | Number { input; name; _ } ->
    Format.fprintf ppf "%sNumber AS %s@.%a" pad name child input
  | Sort { input; keys } ->
    Format.fprintf ppf "%sSort [%s]@.%a" pad
      (String.concat ", "
         (List.map
            (fun k ->
              Format.asprintf "%a%s" (pp_expr (in_schema input)) k.Sortop.expr
                (if k.Sortop.asc then "" else " DESC"))
            keys))
      child input
  | Distinct input -> Format.fprintf ppf "%sDistinct@.%a" pad child input
  | Limit { input; n } -> Format.fprintf ppf "%sLimit %d@.%a" pad n child input
  | Union_all { left; right } ->
    Format.fprintf ppf "%sUnionAll@.%a%a" pad child left child right
  | Alias { input; rel } -> Format.fprintf ppf "%sAlias %s@.%a" pad rel child input

let to_string t = Format.asprintf "%a" (pp ~indent:0) t
