(* Injection point for the plan verifier — see the .mli.  Rewrite
   passes call [validate]; the analysis library installs the real
   validator at enable time. *)

type validator = pass:string -> before:Logical.t -> after:Logical.t -> unit

let validator : validator ref = ref (fun ~pass:_ ~before:_ ~after:_ -> ())

let validate ~pass ~before ~after = !validator ~pass ~before ~after

type sanitizer = catalog:Physical.catalog_view -> Logical.t -> unit

let sanitizer : sanitizer ref = ref (fun ~catalog:_ _ -> ())

let sanitize ~catalog plan = !sanitizer ~catalog plan
