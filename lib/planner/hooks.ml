(* Injection point for the plan verifier — see the .mli.  Rewrite
   passes call [validate]; the analysis library installs the real
   validator at enable time. *)

type validator = pass:string -> before:Logical.t -> after:Logical.t -> unit

let validator : validator ref = ref (fun ~pass:_ ~before:_ ~after:_ -> ())

let validate ~pass ~before ~after = !validator ~pass ~before ~after

type sanitizer = catalog:Physical.catalog_view -> Logical.t -> unit

let sanitizer : sanitizer ref = ref (fun ~catalog:_ _ -> ())

let sanitize ~catalog plan = !sanitizer ~catalog plan

type shared_scan_validator =
  view:string ->
  shared:Rfview_relalg.Relation.t ->
  per_view:Rfview_relalg.Relation.t ->
  unit

let shared_scan_validator : shared_scan_validator ref =
  ref (fun ~view:_ ~shared:_ ~per_view:_ -> ())

let validate_shared_scan ~view ~shared ~per_view =
  !shared_scan_validator ~view ~shared ~per_view
