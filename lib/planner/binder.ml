(* The binder: resolves names against the catalog and turns the SQL AST
   into a logical plan.

   Scoping follows SQL's evaluation order: FROM → WHERE → GROUP BY /
   aggregates → HAVING → window functions → SELECT list → DISTINCT →
   ORDER BY → LIMIT.  Aggregate calls, window functions and GROUP BY
   expressions are extracted from the select list by AST rewriting into
   references to synthetic scopes ($agg, $grp, $win), which are then bound
   positionally against the corresponding operator's output schema. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Pretty = Rfview_sql.Pretty

exception Bind_error of string

let bind_error fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

type catalog = {
  resolve_table : string -> Schema.t option;
  resolve_view : string -> Ast.query option;
}

let empty_catalog = { resolve_table = (fun _ -> None); resolve_view = (fun _ -> None) }

(* ---- AST utilities ---- *)

let ieq a b = String.lowercase_ascii a = String.lowercase_ascii b

let rec ast_equal (a : Ast.expr) (b : Ast.expr) =
  match a, b with
  | Ast.Lit x, Ast.Lit y -> x = y
  | Ast.Column (qa, na), Ast.Column (qb, nb) ->
    ieq na nb
    && (match qa, qb with
        | None, None -> true
        | Some x, Some y -> ieq x y
        | _ -> false)
  | Ast.Star, Ast.Star -> true
  | Ast.Binary (o1, a1, b1), Ast.Binary (o2, a2, b2) ->
    o1 = o2 && ast_equal a1 a2 && ast_equal b1 b2
  | Ast.Neg x, Ast.Neg y | Ast.Not x, Ast.Not y -> ast_equal x y
  | Ast.Case (w1, e1), Ast.Case (w2, e2) ->
    List.length w1 = List.length w2
    && List.for_all2 (fun (c1, v1) (c2, v2) -> ast_equal c1 c2 && ast_equal v1 v2) w1 w2
    && (match e1, e2 with
        | None, None -> true
        | Some x, Some y -> ast_equal x y
        | _ -> false)
  | Ast.Call (f1, a1), Ast.Call (f2, a2) ->
    ieq f1 f2 && List.length a1 = List.length a2 && List.for_all2 ast_equal a1 a2
  | Ast.In_list (x1, i1), Ast.In_list (x2, i2) ->
    ast_equal x1 x2 && List.length i1 = List.length i2 && List.for_all2 ast_equal i1 i2
  | Ast.Between (x1, l1, h1), Ast.Between (x2, l2, h2) ->
    ast_equal x1 x2 && ast_equal l1 l2 && ast_equal h1 h2
  | Ast.Is_null x, Ast.Is_null y | Ast.Is_not_null x, Ast.Is_not_null y -> ast_equal x y
  | _ -> false

let is_aggregate_name f =
  match Aggregate.kind_of_name f with Some _ -> true | None -> false

(* ---- Scalar expression binding ---- *)

let literal_value = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.String s
  | Ast.L_bool b -> Value.Bool b
  | Ast.L_null -> Value.Null
  | Ast.L_date s ->
    (match Value.parse_date s with
     | Some d -> Value.Date d
     | None -> bind_error "invalid date literal '%s'" s)

let rec bind_scalar (schema : Schema.t) (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Lit l -> Expr.Const (literal_value l)
  | Ast.Column (q, name) ->
    (try Expr.Col (Schema.find schema ?rel:q name) with
     | Schema.Unknown_column c -> bind_error "unknown column %s" c
     | Schema.Ambiguous_column c -> bind_error "ambiguous column %s" c)
  | Ast.Star -> bind_error "* is only valid as the argument of COUNT"
  | Ast.Binary (op, a, b) ->
    let op =
      match op with
      | Ast.Add -> Expr.Add
      | Ast.Sub -> Expr.Sub
      | Ast.Mul -> Expr.Mul
      | Ast.Div -> Expr.Div
      | Ast.Mod -> Expr.Mod
      | Ast.Eq -> Expr.Eq
      | Ast.Neq -> Expr.Neq
      | Ast.Lt -> Expr.Lt
      | Ast.Le -> Expr.Le
      | Ast.Gt -> Expr.Gt
      | Ast.Ge -> Expr.Ge
      | Ast.And -> Expr.And
      | Ast.Or -> Expr.Or
    in
    Expr.Binop (op, bind_scalar schema a, bind_scalar schema b)
  | Ast.Neg a -> Expr.Unop (Expr.Neg, bind_scalar schema a)
  | Ast.Not a -> Expr.Unop (Expr.Not, bind_scalar schema a)
  | Ast.Case (whens, els) ->
    Expr.Case
      ( List.map (fun (c, v) -> (bind_scalar schema c, bind_scalar schema v)) whens,
        Option.map (bind_scalar schema) els )
  | Ast.Call (f, args) when ieq f "mod" ->
    (match args with
     | [ a; b ] -> Expr.Binop (Expr.Mod, bind_scalar schema a, bind_scalar schema b)
     | _ -> bind_error "MOD takes two arguments")
  | Ast.Call (f, args) ->
    if is_aggregate_name f then
      bind_error "aggregate %s is not allowed here" (String.uppercase_ascii f)
    else begin
      match Expr.func_of_name f with
      | Some fn -> Expr.Call (fn, List.map (bind_scalar schema) args)
      | None -> bind_error "unknown function %s" f
    end
  | Ast.Window _ -> bind_error "window functions are not allowed here"
  | Ast.In_list (a, items) ->
    Expr.In_list (bind_scalar schema a, List.map (bind_scalar schema) items)
  | Ast.Between (a, lo, hi) ->
    Expr.Between (bind_scalar schema a, bind_scalar schema lo, bind_scalar schema hi)
  | Ast.Is_null a -> Expr.Is_null (bind_scalar schema a)
  | Ast.Is_not_null a -> Expr.Is_not_null (bind_scalar schema a)

(* ---- Window specification binding ---- *)

let bind_frame (w : Ast.window_fn) : Window.frame =
  let bound = function
    | Ast.Unbounded_preceding -> Window.Unbounded_preceding
    | Ast.Preceding n -> Window.Preceding n
    | Ast.Current_row -> Window.Current_row
    | Ast.Following n -> Window.Following n
    | Ast.Unbounded_following -> Window.Unbounded_following
  in
  match w.Ast.w_frame with
  | Some f ->
    {
      Window.lo = bound f.Ast.frame_lo;
      hi = bound f.Ast.frame_hi;
      mode =
        (match f.Ast.frame_mode with
         | Ast.Frame_rows -> Window.Rows
         | Ast.Frame_range -> Window.Range);
    }
  | None ->
    (* SQL default: cumulative when ordered, whole partition otherwise *)
    if w.Ast.w_order <> [] then Window.cumulative_frame
    else Window.whole_partition_frame

let bind_window_fn (schema : Schema.t) (w : Ast.window_fn) ~name : Logical.window_fn =
  let fname = String.uppercase_ascii w.Ast.w_func in
  let require_order func =
    if w.Ast.w_order = [] then
      bind_error "%s requires an ORDER BY clause" (Window.func_name func)
  in
  let reject_frame func =
    if w.Ast.w_frame <> None then
      bind_error "%s does not accept a frame clause" (Window.func_name func)
  in
  (* LAG/LEAD carry an offset and are resolved here; everything else by
     name. *)
  let func, arg =
    match fname, w.Ast.w_args with
    | ("LAG" | "LEAD"), (e :: rest) ->
      let offset =
        match rest with
        | [] -> 1
        | [ Ast.Lit (Ast.L_int k) ] when k >= 0 -> k
        | _ -> bind_error "%s offset must be a non-negative integer literal" fname
      in
      let func = if fname = "LAG" then Window.Lag offset else Window.Lead offset in
      require_order func;
      reject_frame func;
      (func, bind_scalar schema e)
    | ("LAG" | "LEAD"), [] -> bind_error "%s needs an argument" fname
    | _ ->
      (match Window.func_of_name fname with
       | None -> bind_error "%s is not a window function" fname
       | Some ((Window.Row_number | Window.Rank | Window.Dense_rank) as func) ->
         if w.Ast.w_args <> [] then
           bind_error "%s takes no arguments" (Window.func_name func);
         require_order func;
         reject_frame func;
         (func, Expr.Const (Value.Int 1))
       | Some ((Window.First_value | Window.Last_value) as func) ->
         (match w.Ast.w_args with
          | [ e ] -> (func, bind_scalar schema e)
          | _ -> bind_error "%s takes exactly one argument" (Window.func_name func))
       | Some (Window.Agg agg) ->
         (match w.Ast.w_args with
          | [ Ast.Star ] ->
            if agg <> Aggregate.Count then bind_error "* argument requires COUNT";
            (Window.Agg agg, Expr.Const (Value.Int 1))
          | [ e ] -> (Window.Agg agg, bind_scalar schema e)
          | _ ->
            bind_error "%s takes exactly one argument" (Aggregate.kind_name agg))
       | Some (Window.Lag _ | Window.Lead _) -> assert false)
  in
  {
    Logical.func;
    arg;
    partition = List.map (bind_scalar schema) w.Ast.w_partition;
    order =
      List.map
        (fun o -> { Sortop.expr = bind_scalar schema o.Ast.o_expr; asc = o.Ast.o_asc })
        w.Ast.w_order;
    frame = bind_frame w;
    name;
  }

(* ---- Extraction rewrites ---- *)

(* Replace window functions by $win.i references, collecting them. *)
let extract_windows (exprs : Ast.expr list) : Ast.expr list * Ast.window_fn list =
  let acc = ref [] in
  let replace e =
    match e with
    | Ast.Window w ->
      let idx = List.length !acc in
      acc := !acc @ [ w ];
      Ast.Column (Some "$win", string_of_int idx)
    | e -> e
  in
  let exprs = List.map (Ast.map_expr replace) exprs in
  (exprs, !acc)

(* Replace aggregate calls by $agg.i references, collecting (kind, arg);
   structurally identical aggregates share one slot. *)
let extract_aggregates (exprs : Ast.expr list) :
    Ast.expr list * (Aggregate.kind * Ast.expr) list =
  let acc = ref [] in
  let add kind arg =
    let rec find i = function
      | [] -> None
      | (k, a) :: rest -> if k = kind && ast_equal a arg then Some i else find (i + 1) rest
    in
    match find 0 !acc with
    | Some i -> i
    | None ->
      acc := !acc @ [ (kind, arg) ];
      List.length !acc - 1
  in
  let replace e =
    match e with
    | Ast.Call (f, args) when is_aggregate_name f ->
      let kind = Option.get (Aggregate.kind_of_name f) in
      let arg =
        match args with
        | [ a ] -> a
        | _ -> bind_error "%s takes exactly one argument" (String.uppercase_ascii f)
      in
      (match arg with
       | Ast.Star when kind <> Aggregate.Count -> bind_error "* argument requires COUNT"
       | _ -> ());
      Ast.Column (Some "$agg", string_of_int (add kind arg))
    | e -> e
  in
  let rewritten = List.map (Ast.map_expr replace) exprs in
  (rewritten, !acc)

(* Replace sub-expressions equal to a GROUP BY expression by $grp.j. *)
let replace_group_refs (group : Ast.expr list) (exprs : Ast.expr list) : Ast.expr list =
  let replace e =
    let rec find i = function
      | [] -> None
      | g :: rest -> if ast_equal g e then Some i else find (i + 1) rest
    in
    match e with
    | Ast.Column (Some "$agg", _) | Ast.Column (Some "$win", _) -> e
    | e ->
      (match find 0 group with
       | Some j -> Ast.Column (Some "$grp", string_of_int j)
       | None -> e)
  in
  List.map (Ast.map_expr replace) exprs

let contains_aggregate e =
  let found = ref false in
  let probe x =
    (match x with
     | Ast.Call (f, _) when is_aggregate_name f -> found := true
     | _ -> ());
    x
  in
  ignore (Ast.map_expr probe e);
  !found

(* ---- Naming of select items ---- *)

let item_name i (e : Ast.expr) (alias : string option) =
  match alias, e with
  | Some a, _ -> a
  | None, Ast.Column (_, name) -> name
  | None, Ast.Window _ -> Printf.sprintf "col_%d" (i + 1)
  | None, e ->
    let s = Pretty.expr e in
    if String.length s <= 40 then s else Printf.sprintf "col_%d" (i + 1)

(* ---- Query binding ---- *)

let rec bind_query ?stmt (cat : catalog) (q : Ast.query) : Logical.t =
  (* [stmt] is the 1-based statement index within a script: lint drivers
     pass it so binder diagnostics carry a source position (statement
     index + the offending column name already in the message) instead of
     only a plan path *)
  try
    let plan = bind_query_body cat q.Ast.body in
    bind_order_limit plan ~order_by:q.Ast.order_by ~limit:q.Ast.limit
  with Bind_error m when stmt <> None ->
    raise (Bind_error (Printf.sprintf "statement %d: %s" (Option.get stmt) m))

and bind_query_body (cat : catalog) (body : Ast.query_body) : Logical.t =
  match body with
  | Ast.Select s -> bind_select cat s
  | Ast.Union { all; left; right } ->
    let l = bind_query_body cat left and r = bind_query_body cat right in
    let sl = Logical.schema l and sr = Logical.schema r in
    if Schema.arity sl <> Schema.arity sr then
      bind_error "UNION operands have different numbers of columns (%d vs %d)"
        (Schema.arity sl) (Schema.arity sr);
    let u = Logical.Union_all { left = l; right = r } in
    if all then u else Logical.Distinct u

and bind_order_limit plan ~order_by ~limit =
  let plan = if order_by = [] then plan else bind_order plan order_by in
  match limit with None -> plan | Some n -> Logical.Limit { input = plan; n }

(* ORDER BY resolution: against the output schema (aliases, projected
   column names, ordinals) first; when an item only exists in the input of
   the final projection — SQL allows ordering by non-projected columns —
   the sort is pushed below the projection, with output references
   substituted by their defining projection expressions. *)
and bind_order plan order_by =
  let out = Logical.schema plan in
  let resolve_out (o : Ast.order_item) : Expr.t option =
    match o.Ast.o_expr with
    | Ast.Lit (Ast.L_int k) ->
      if k < 1 || k > Schema.arity out then
        bind_error "ORDER BY position %d out of range" k;
      Some (Expr.Col (k - 1))
    | e ->
      (try Some (bind_scalar out e) with
       | Bind_error _ ->
         (* projections drop qualifiers; accept a qualified reference when
            the bare name is unambiguous in the output *)
         (match e with
          | Ast.Column (Some _, n) ->
            (try Some (bind_scalar out (Ast.Column (None, n))) with Bind_error _ -> None)
          | _ -> None))
  in
  let resolved = List.map resolve_out order_by in
  if List.for_all Option.is_some resolved then
    Logical.Sort
      {
        input = plan;
        keys =
          List.map2
            (fun (o : Ast.order_item) e -> { Sortop.expr = Option.get e; asc = o.Ast.o_asc })
            order_by resolved;
      }
  else begin
    (* push the sort below the final projection *)
    let rec push plan =
      match plan with
      | Logical.Distinct input -> Logical.Distinct (push input)
      | Logical.Project { input; exprs } ->
        let in_schema = Logical.schema input in
        let proj = Array.of_list (List.map fst exprs) in
        let keys =
          List.map2
            (fun (o : Ast.order_item) res ->
              let expr =
                match res with
                | Some out_expr ->
                  (* rewrite output references into input expressions *)
                  Expr.map_cols (fun j -> j) out_expr |> fun e ->
                  substitute_projection proj e
                | None ->
                  (try bind_scalar in_schema o.Ast.o_expr with
                   | Bind_error _ ->
                     bind_error
                       "ORDER BY expression %s must appear in the select list or \
                        the FROM scope"
                       (Pretty.expr o.Ast.o_expr))
              in
              { Sortop.expr; asc = o.Ast.o_asc })
            order_by resolved
        in
        Logical.Project { input = Logical.Sort { input; keys }; exprs }
      | _ ->
        bind_error
          "ORDER BY expression must appear in the select list of a set operation"
    in
    push plan
  end

(* Replace output column references by the projection expressions that
   define them. *)
and substitute_projection proj (e : Expr.t) : Expr.t =
  let rec subst = function
    | Expr.Col j -> proj.(j)
    | Expr.Const _ as c -> c
    | Expr.Binop (op, a, b) -> Expr.Binop (op, subst a, subst b)
    | Expr.Unop (op, a) -> Expr.Unop (op, subst a)
    | Expr.Case (whens, els) ->
      Expr.Case (List.map (fun (c, v) -> (subst c, subst v)) whens, Option.map subst els)
    | Expr.Call (f, args) -> Expr.Call (f, List.map subst args)
    | Expr.In_list (a, items) -> Expr.In_list (subst a, List.map subst items)
    | Expr.Between (a, lo, hi) -> Expr.Between (subst a, subst lo, subst hi)
    | Expr.Is_null a -> Expr.Is_null (subst a)
    | Expr.Is_not_null a -> Expr.Is_not_null (subst a)
  in
  subst e

(* ---- FROM binding ---- *)

and bind_table_ref (cat : catalog) (t : Ast.table_ref) : Logical.t =
  match t with
  | Ast.Table { name; alias } ->
    let rel_name = Option.value ~default:name alias in
    (match cat.resolve_table name with
     | Some schema ->
       Logical.Alias
         { input = Logical.Scan { table = name; schema }; rel = rel_name }
     | None ->
       (match cat.resolve_view name with
        | Some q -> Logical.Alias { input = bind_query cat q; rel = rel_name }
        | None -> bind_error "unknown table %s" name))
  | Ast.Subquery { query; alias } ->
    Logical.Alias { input = bind_query cat query; rel = alias }
  | Ast.Join { kind; left; right; cond } ->
    let l = bind_table_ref cat left and r = bind_table_ref cat right in
    let joined_schema = Schema.append (Logical.schema l) (Logical.schema r) in
    let kind =
      match kind with Ast.Join_inner -> Joinop.Inner | Ast.Join_left -> Joinop.Left_outer
    in
    Logical.Join { kind; left = l; right = r; cond = bind_scalar joined_schema cond }

and bind_from (cat : catalog) (from : Ast.table_ref list) : Logical.t =
  match from with
  | [] -> bind_error "FROM clause is required"
  | first :: rest ->
    List.fold_left
      (fun acc t ->
        Logical.Join
          {
            kind = Joinop.Inner;
            left = acc;
            right = bind_table_ref cat t;
            cond = Expr.Const (Value.Bool true);
          })
      (bind_table_ref cat first) rest

(* ---- SELECT binding ---- *)

and bind_select (cat : catalog) (s : Ast.select) : Logical.t =
  let from_plan = bind_from cat s.Ast.from in
  let from_schema = Logical.schema from_plan in
  (* WHERE: no aggregates or windows allowed *)
  let plan =
    match s.Ast.where with
    | None -> from_plan
    | Some pred ->
      if contains_aggregate pred then bind_error "aggregates are not allowed in WHERE";
      if Ast.has_window pred then
        bind_error "window functions are not allowed in WHERE";
      Logical.Filter { input = from_plan; pred = bind_scalar from_schema pred }
  in
  (* Expand stars in the select list. *)
  let expanded_items =
    List.concat_map
      (fun item ->
        match item with
        | Ast.Sel_star ->
          Array.to_list from_schema
          |> List.map (fun c ->
                 Ast.Sel_expr (Ast.Column (c.Schema.rel, c.Schema.name), None))
        | Ast.Sel_table_star t ->
          let cols =
            Array.to_list from_schema
            |> List.filter (fun c ->
                   match c.Schema.rel with Some r -> ieq r t | None -> false)
          in
          if cols = [] then bind_error "unknown table %s in %s.*" t t;
          List.map
            (fun c -> Ast.Sel_expr (Ast.Column (c.Schema.rel, c.Schema.name), None))
            cols
        | Ast.Sel_expr _ -> [ item ])
      s.Ast.items
  in
  let item_exprs = List.map (function Ast.Sel_expr (e, _) -> e | _ -> assert false) expanded_items in
  let item_aliases =
    List.map (function Ast.Sel_expr (_, a) -> a | _ -> assert false) expanded_items
  in
  (* Extract window functions first (their internals are processed by the
     aggregate/group rewrites below when grouping is present). *)
  let item_exprs, window_asts = extract_windows item_exprs in
  let having_list = Option.to_list s.Ast.having in
  let grouping =
    s.Ast.group_by <> []
    || List.exists contains_aggregate item_exprs
    || List.exists contains_aggregate having_list
    || List.exists
         (fun (w : Ast.window_fn) ->
           List.exists contains_aggregate w.Ast.w_args
           || List.exists contains_aggregate w.Ast.w_partition
           || List.exists (fun o -> contains_aggregate o.Ast.o_expr) w.Ast.w_order)
         window_asts
  in
  if not grouping then begin
    (* No aggregation: bind windows over the FROM scope. *)
    let plan, scope = attach_windows plan from_schema window_asts in
    let exprs =
      List.mapi
        (fun i (e, alias) -> (bind_scalar scope e, item_name i e alias))
        (List.combine item_exprs item_aliases)
    in
    (match s.Ast.having with
     | Some _ -> bind_error "HAVING requires GROUP BY or aggregates"
     | None -> ());
    finish_select plan exprs ~distinct:s.Ast.distinct
  end
  else begin
    (* Aggregation path. *)
    let group_asts = s.Ast.group_by in
    (* rewrite windows' internals and items/having *)
    let rewrite_batch exprs =
      let exprs, aggs = extract_aggregates exprs in
      (replace_group_refs group_asts exprs, aggs)
    in
    (* We must collect aggregates across items, having and window internals
       into one shared list, so run extraction over the concatenation. *)
    let window_internal_exprs =
      List.concat_map
        (fun (w : Ast.window_fn) ->
          w.Ast.w_args @ w.Ast.w_partition
          @ List.map (fun o -> o.Ast.o_expr) w.Ast.w_order)
        window_asts
    in
    let all = item_exprs @ having_list @ window_internal_exprs in
    let all', aggs = rewrite_batch all in
    let n_items = List.length item_exprs in
    let n_having = List.length having_list in
    let items' = List.filteri (fun i _ -> i < n_items) all' in
    let having' =
      List.filteri (fun i _ -> i >= n_items && i < n_items + n_having) all'
    in
    let window_internals' =
      List.filteri (fun i _ -> i >= n_items + n_having) all'
    in
    (* Rebuild the window ASTs with rewritten internals. *)
    let window_asts' =
      let rec rebuild ws internals =
        match ws with
        | [] -> []
        | (w : Ast.window_fn) :: rest ->
          let na = List.length w.Ast.w_args in
          let n_int = na + List.length w.Ast.w_partition + List.length w.Ast.w_order in
          let mine = List.filteri (fun i _ -> i < n_int) internals in
          let rest_internals = List.filteri (fun i _ -> i >= n_int) internals in
          let args = List.filteri (fun i _ -> i < na) mine in
          let more = List.filteri (fun i _ -> i >= na) mine in
          let np = List.length w.Ast.w_partition in
          let partition = List.filteri (fun i _ -> i < np) more in
          let order_exprs = List.filteri (fun i _ -> i >= np) more in
          let order =
            List.map2
              (fun (o : Ast.order_item) e -> { o with Ast.o_expr = e })
              w.Ast.w_order order_exprs
          in
          { w with Ast.w_args = args; w_partition = partition; w_order = order }
          :: rebuild rest rest_internals
      in
      rebuild window_asts window_internals'
    in
    (* Build the aggregate node. *)
    let group_bound = List.map (bind_scalar from_schema) group_asts in
    let agg_specs =
      List.mapi
        (fun i (kind, arg_ast) ->
          let arg =
            match arg_ast with
            | Ast.Star -> Expr.Const (Value.Int 1)
            | e -> bind_scalar from_schema e
          in
          { Groupop.kind; arg; name = Printf.sprintf "agg_%d" i })
        aggs
    in
    let plan = Logical.Aggregate { input = plan; group = group_bound; aggs = agg_specs } in
    (* Scope after aggregation: $grp.j then $agg.i. *)
    let agg_out = Logical.schema plan in
    let scope =
      Schema.make
        (List.mapi
           (fun j _ ->
             Schema.column ~rel:"$grp" (string_of_int j) (Schema.col agg_out j).Schema.ty)
           group_asts
        @ List.mapi
            (fun i _ ->
              Schema.column ~rel:"$agg" (string_of_int i)
                (Schema.col agg_out (List.length group_asts + i)).Schema.ty)
            aggs)
    in
    (* HAVING *)
    let plan =
      match having' with
      | [] -> plan
      | [ h ] -> Logical.Filter { input = plan; pred = bind_scalar scope h }
      | _ -> assert false
    in
    (* Windows over the aggregated scope. *)
    let plan, scope = attach_windows plan scope window_asts' in
    let exprs =
      List.mapi
        (fun i (e, alias) ->
          let name =
            match alias with
            | Some a -> a
            | None ->
              (* name after the original (pre-rewrite) expression *)
              item_name i (List.nth item_exprs i) None
          in
          (bind_scalar scope e, name))
        (List.combine items' item_aliases)
    in
    finish_select plan exprs ~distinct:s.Ast.distinct
  end

(* Append window function columns; returns the new plan and the scope with
   $win.i names visible. *)
and attach_windows plan (scope : Schema.t) (window_asts : Ast.window_fn list) =
  if window_asts = [] then (plan, scope)
  else begin
    let fns =
      List.mapi
        (fun i w -> bind_window_fn scope w ~name:(Printf.sprintf "win_%d" i))
        window_asts
    in
    let plan = Logical.Window_op { input = plan; fns } in
    let out = Logical.schema plan in
    let base = Schema.arity scope in
    let scope =
      Schema.make
        (Array.to_list scope
        @ List.mapi
            (fun i _ ->
              Schema.column ~rel:"$win" (string_of_int i)
                (Schema.col out (base + i)).Schema.ty)
            window_asts)
    in
    (plan, scope)
  end

(* Every select item must have an inferable, consistent type — a silent
   String fallback in the output schema would mask binder bugs and
   mistype downstream consumers (ORDER BY, set operations, views). *)
and finish_select plan exprs ~distinct =
  let in_schema = Logical.schema plan in
  List.iter
    (fun (e, name) ->
      match Expr.infer_type in_schema e with
      | Some _ -> ()
      | None ->
        bind_error
          "cannot infer the type of select item %s; give a bare NULL a typed \
           context (e.g. COALESCE with a typed value)"
          name
      | exception Expr.Type_mismatch m ->
        bind_error "select item %s is ill-typed: %s" name m)
    exprs;
  let plan = Logical.Project { input = plan; exprs } in
  if distinct then Logical.Distinct plan else plan

(* Naming note: ORDER BY binds against the projected output schema, so it
   can reference select aliases, projected column names or ordinals. *)
