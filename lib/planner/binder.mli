(** The binder: resolves names against the catalog and turns the SQL AST
    into a logical plan.

    Scoping follows SQL's evaluation order: FROM → WHERE → GROUP BY /
    aggregates → HAVING → window functions → SELECT list → DISTINCT →
    ORDER BY → LIMIT.  ORDER BY resolves against the output schema
    (aliases, projected names, ordinals) and falls back to the FROM scope
    by pushing the sort below the final projection. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast

exception Bind_error of string

(** Name resolution hooks supplied by the engine: [resolve_table] answers
    base tables and materialized views (as stored relations);
    [resolve_view] answers plain views (as ASTs to inline). *)
type catalog = {
  resolve_table : string -> Schema.t option;
  resolve_view : string -> Ast.query option;
}

val empty_catalog : catalog

(** Bind a scalar expression against a schema: no aggregates, no window
    functions.  @raise Bind_error on unknown/ambiguous names. *)
val bind_scalar : Schema.t -> Ast.expr -> Expr.t

(** Bind a full query.  [stmt], when given, is the 1-based statement
    index within a script; binder errors are then prefixed with
    ["statement N: "] so lint diagnostics carry the source position
    (statement index + offending column name) rather than only a plan
    path.  @raise Bind_error on any scoping error. *)
val bind_query : ?stmt:int -> catalog -> Ast.query -> Logical.t

(** {2 Exposed for tests} *)

val ast_equal : Ast.expr -> Ast.expr -> bool
val extract_windows : Ast.expr list -> Ast.expr list * Ast.window_fn list

val extract_aggregates :
  Ast.expr list -> Ast.expr list * (Aggregate.kind * Ast.expr) list

val replace_group_refs : Ast.expr list -> Ast.expr list -> Ast.expr list
