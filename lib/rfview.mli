(** Stable public API of the reporting-function-view engine.

    This is the façade downstream code should program against: the
    [Rfview.Session] handle wraps the engine behind a result-typed
    surface with structured errors, [Rfview.Config] fixes all
    execution knobs at open time, and [Rfview.Snapshot] gives
    immutable point-in-time read handles safe to query from other
    domains.  Everything underneath ({!Session.Unsafe.database} and
    the [Rfview_*] libraries) remains reachable but is {e not} covered
    by the stability promise. *)

module Relation = Rfview_relalg.Relation

(** {1 Staleness}

    The one vocabulary every stale-bounded read tier speaks: replica
    reads ({!Session.read_replica}) and historical snapshot opens
    ({!Snapshot.at}) refuse with the same {!Staleness.violation}. *)

module Staleness : sig
  (** How far a read state trails the primary tip. *)
  type lag = Rfview_engine.Staleness.lag = {
    records : int;  (** LSNs behind the tip *)
    bytes : int;  (** feed bytes not yet consumed (0 where meaningless) *)
  }

  (** A refused stale read: the state at [applied_lsn] trails
      [tip_lsn] by more than the caller's bound. *)
  type violation = Rfview_engine.Staleness.violation = {
    applied_lsn : int;
    tip_lsn : int;
    lag : lag;
  }

  (** One line, human-readable. *)
  val describe : violation -> string
end

(** {1 Configuration} *)

module Config : sig
  (** Reporting functions execute through the native window operator
      ([`Native]) or the paper's Fig. 2 self-join simulation
      ([`Self_join]). *)
  type window_mode = Rfview_engine.Database.window_mode

  (** Per-partition window evaluation: the §2.2 naive form or the
      pipelined incremental computation. *)
  type window_strategy = Rfview_relalg.Window.strategy =
    | Naive
    | Incremental

  (** What happens when maintaining one materialized view fails mid
      statement: [`Quarantine] marks the view stale (healed on next
      read), [`Abort] rolls the statement back. *)
  type degradation = Rfview_engine.Database.degradation

  type t = Rfview_engine.Database.config = {
    window_mode : window_mode;
    window_strategy : window_strategy;
    hash_join : bool;
    index_join : bool;
    degradation : degradation;
    share_scans : bool;
        (** drive all sequence views of a certified scan-share class
            from one shared partition iterator during batch
            maintenance (see {!Rfview_engine.Database.share_classes}) *)
  }

  (** [`Native], [Incremental], hash and index joins on,
      [`Quarantine], scan sharing on. *)
  val default : t
end

(** {1 Sessions} *)

module Session : sig
  (** A handle on one open database (in-memory or durable). *)
  type t

  (** Alias of {!Staleness.lag}, kept for one release.
      @deprecated use {!Staleness.lag} *)
  type lag = Staleness.lag = {
    records : int;  (** LSNs behind the primary tip *)
    bytes : int;  (** feed bytes not yet consumed *)
  }

  (** Storage health of a durable session.  ENOSPC during a WAL commit
      or checkpoint never corrupts state: the session enters a
      read-only degraded mode (reads keep serving, writes fail with
      {!error.Degraded_mode}) and resumes automatically — via a
      backoff-probed space check — once the disk has room again. *)
  type health = Rfview_engine.Database.health =
    | Healthy
    | Degraded of { reason : string; rejected_writes : int }

  (** Structured failure of a session operation. *)
  type error =
    | Parse of string  (** the SQL text does not lex/parse *)
    | Bind of string  (** names/types do not resolve *)
    | Runtime of string  (** execution failed; the statement rolled back *)
    | Quarantined of { views : string list; detail : string }
        (** the failure quarantined materialized views (they heal by
            full refresh on their next read) *)
    | Recovery of string  (** a durable directory could not be recovered *)
    | Script of { index : int; sql : string; cause : error }
        (** statement [index] (1-based) of a script failed; prior
            statements committed *)
    | Stale of Staleness.violation
        (** a {!read_replica} or {!Snapshot.at} whose staleness bound
            could not be met; nothing was evaluated *)
    | Degraded_mode of { reason : string }
        (** the write was rejected: the session is in disk-full
            degraded mode (see {!health}); state is unchanged and reads
            keep serving *)

  (** One line, human-readable. *)
  val describe_error : error -> string

  type result = Rfview_engine.Database.result =
    | Relation of Relation.t
    | Done of string

  type recovery_report = Rfview_engine.Database.recovery_report = {
    checkpoint_epoch : int option;
    replayed : int;
    torn : bool;
    quarantined : string list;
    swept : string list;
        (** stale [*.tmp] files removed when the directory was opened *)
  }

  (** {2 Opening} *)

  val open_in_memory : ?config:Config.t -> unit -> t

  (** Open (creating if necessary) a durable database directory;
      [Error (Recovery _)] when it cannot be recovered. *)
  val open_durable : ?config:Config.t -> string -> (t, error) Stdlib.result

  (** What recovery did, for sessions opened with {!open_durable}. *)
  val recovery : t -> recovery_report option

  (** Close the underlying WAL writer (the handle stays usable in
      memory).  Idempotent. *)
  val close : t -> unit

  (** {2 Execution} *)

  (** Execute one statement. *)
  val exec : t -> string -> (result, error) Stdlib.result

  (** Execute a [;]-separated script.  By default the whole script is
      one batch (one view propagation per dependent view, one WAL
      fsync); [~batch:n] with [n >= 1] group-commits every [n]
      statements instead.  On [Error (Script _)], the statements before
      the failing one have committed. *)
  val exec_script : ?batch:int -> t -> string -> (result list, error) Stdlib.result

  (** Execute a query statement and return its rows.

      Sugar for "snapshot at tip": when the session is quiescent (no
      open batch, no quarantined views awaiting heal-on-read) the read
      runs against the freshest published MVCC version — exactly what
      a concurrent {!Snapshot.snapshot} taken now would see.  Inside
      {!with_batch} the direct path preserves read-your-writes; with
      stale views pending, the direct path heals them into the live
      database first. *)
  val query : t -> string -> (Relation.t, error) Stdlib.result

  (** Execute one already-parsed statement (the typed sibling of
      {!exec}, for tooling that iterates
      {!Rfview_sql.Parser.statements}). *)
  val exec_statement :
    t -> Rfview_sql.Ast.statement -> (result, error) Stdlib.result

  (** Bulk-load pre-built rows into a table (one batch commit);
      see {!Rfview_engine.Database.load_table}. *)
  val load_table : t -> table:string -> Rfview_relalg.Row.t array -> unit

  (** Run [f] inside a batch scope (see {!Rfview_engine.Database.with_batch}):
      deltas accumulate and propagate once per view at scope exit, with
      one group-commit fsync.  Exceptions from [f] roll the whole batch
      back and re-raise. *)
  val with_batch : t -> (unit -> 'a) -> 'a

  (** {2 Durability} *)

  val checkpoint : t -> (unit, error) Stdlib.result

  (** Checkpoint automatically once the WAL holds at least [n] records
      ([None] disables). *)
  val set_checkpoint_every : t -> int option -> unit

  (** Checkpoint automatically once the WAL file reaches [n] bytes
      ([None] disables) — the log-compaction trigger that keeps a
      replica's bootstrap replay suffix bounded. *)
  val set_checkpoint_bytes : t -> int option -> unit

  (** The session's log sequence number: the global count of WAL records
      since the database was created (0 when not durable).  This is the
      [tip] replicas measure their lag against. *)
  val lsn : t -> int

  (** {2 Replication}

      A durable session ships its WAL to per-replica feed files
      ({!shipper} side); a {!replica} consumes one feed and serves
      snapshot reads bounded in staleness.  See {!Rfview_replica} for
      the underlying machinery. *)

  (** The primary-side shipper fanning the session's log out to feeds. *)
  type shipper

  (** [Error (Runtime _)] when the session is not durable. *)
  val shipper : t -> (shipper, error) Stdlib.result

  (** Attach feed [path] under [name]: created (and seeded with the
      current checkpoint artifact) when the file does not exist,
      reopened — resuming where the previous shipper stopped — when it
      does. *)
  val attach_feed :
    shipper -> name:string -> path:string -> (unit, error) Stdlib.result

  (** Ship every unshipped record to every feed; the number of
      (record, feed) deliveries. *)
  val ship : shipper -> (int, error) Stdlib.result

  (** Checkpoint the primary and ship the artifact to the named feed —
      repairs a quarantined (diverged) replica. *)
  val resync_feed : shipper -> name:string -> (unit, error) Stdlib.result

  (** Highest LSN the named feed holds. *)
  val shipped : shipper -> name:string -> int

  val close_shipper : shipper -> unit

  (** A replica consuming one feed. *)
  type replica

  val open_replica :
    ?config:Config.t -> name:string -> feed:string -> unit -> replica

  (** Consume every complete feed entry not yet applied; the number of
      entries that advanced the state. *)
  val poll_replica : replica -> (int, error) Stdlib.result

  (** The LSN the replica's state corresponds to. *)
  val replica_applied_lsn : replica -> int

  (** Lag relative to a primary tip (see {!lsn}). *)
  val replica_lag : replica -> tip:int -> lag

  val replica_status :
    replica -> [ `Syncing | `Ready | `Quarantined of int * string ]

  (** Snapshot read against the replica's applied state, refused with
      [Error (Stale _)] when it trails [tip] by more than [max_records]
      LSNs or [max_bytes] unconsumed feed bytes (omitted bounds don't
      constrain).  [Ok (rows, lsn)] tags the rows with the LSN they
      reflect. *)
  val read_replica :
    replica ->
    tip:int ->
    ?max_records:int ->
    ?max_bytes:int ->
    string ->
    (Relation.t * int, error) Stdlib.result

  (** Promote the replica's applied state into a durable primary at
      [dir]; the returned session continues the shipped history's LSN
      sequence.  [Error (Runtime _)] when the replica is quarantined. *)
  val promote : replica -> dir:string -> (t, error) Stdlib.result

  (** {2 Storage health, scrubbing, repair} *)

  (** {!Healthy}, or the disk-full degraded mode the session is in
      (always {!Healthy} for in-memory sessions). *)
  val health : t -> health

  (** Typed damage report over a directory's artifacts; see
      {!Rfview_engine.Scrub}. *)
  type scrub_report = Rfview_engine.Scrub.report

  (** What a repair did; see {!Rfview_replica.Repair}. *)
  type repair_outcome = Rfview_replica.Repair.outcome

  (** Verify every artifact of the session's directory — WAL frames,
      checkpoint records, stray temp files, and (with [?feeds]) feed
      entries and their LSN continuity.  Read-only.  [Error (Runtime _)]
      when the session is not durable. *)
  val scrub : ?feeds:string list -> t -> (scrub_report, error) Stdlib.result

  (** {!scrub} over a directory nobody has open. *)
  val scrub_dir : ?feeds:string list -> string -> scrub_report

  (** Offline repair of a directory nobody has open: sweep stale temp
      files, rebuild a damaged WAL from the longest verifiable record
      chain any of [feeds] carries, re-seed damaged feeds from the
      primary.  See {!Rfview_replica.Repair.repair}. *)
  val repair_dir : ?feeds:string list -> string -> repair_outcome

  (** {2 Introspection} *)

  (** Names of quarantined views, sorted. *)
  val stale_views : t -> string list

  val config : t -> Config.t
  val reconfigure : t -> Config.t -> unit

  (** Canonical whole-state fingerprint (every table and materialized
      view rendered sorted); equal states render equal strings. *)
  val fingerprint : t -> string

  (** Whether the named view is kept fresh by delta propagation
      (vs re-render); see
      {!Rfview_engine.Database.is_derived_maintained}. *)
  val is_derived_maintained : t -> string -> bool

  (** Certified scan-share classes over [table]'s sequence views; see
      {!Rfview_engine.Database.share_classes}. *)
  val share_classes : t -> table:string -> string list list

  (** Per matching materialized view, the derivability certificate of
      every candidate strategy; see
      {!Rfview_engine.Advisor.certificates}. *)
  val derivability_certificates :
    t -> Rfview_sql.Ast.query -> (string * Rfview_analysis.Cert.t list) list

  (** A binder catalog over the session's current schema, for tooling
      that binds queries without executing them. *)
  val binder_catalog : t -> Rfview_planner.Binder.catalog

  (** A physical catalog view over current contents, for cost/abstract
      analysis against live cardinalities. *)
  val catalog_view : t -> Rfview_planner.Physical.catalog_view

  (** Escape hatch to the raw engine handle.  Anything reached through
      it bypasses the façade's result-typed error contract, the MVCC
      snapshot discipline, {e and} the stability promise — new code
      should use the typed surface above. *)
  module Unsafe : sig
    val database : t -> Rfview_engine.Database.t
    [@@alert
      unsafe
        "Session.Unsafe.database bypasses the stable façade; use the \
         typed Session/Snapshot API instead"]
  end
end

(** {1 Snapshots}

    Immutable point-in-time read handles over a session's MVCC version
    store.  A snapshot pins one published commit point (pointer
    capture — no copy) and serves queries against exactly that state,
    from any domain, while the owning session keeps writing.  The
    engine retains a bounded window of recent versions (default 8);
    pinned versions survive eviction until closed. *)

module Snapshot : sig
  type t

  (** Pin the freshest published version. *)
  val snapshot : Session.t -> t

  (** Pin the historical version at exactly [lsn];
      [Error (Stale _)] when it has left the retained window (or never
      existed), reporting how far behind the tip it is. *)
  val at : Session.t -> lsn:int -> (t, Session.error) Stdlib.result

  (** The commit point this snapshot reflects. *)
  val lsn : t -> int

  (** Evaluate a query against the pinned state.  Read-only: non-query
      statements are refused with [Error (Runtime _)].  Safe to call
      from any domain, concurrently with the writer. *)
  val query : t -> string -> (Relation.t, Session.error) Stdlib.result

  (** Canonical fingerprint of the pinned state — bit-identical to
      {!Session.fingerprint} of the live database at the same LSN. *)
  val fingerprint : t -> string

  (** Release the pin.  Idempotent; querying a closed snapshot is an
      error. *)
  val close : t -> unit

  val released : t -> bool

  (** LSNs currently snapshottable via {!at}, newest first. *)
  val retained : Session.t -> int list

  (** How many snapshots are currently open on the session. *)
  val open_count : Session.t -> int

  (** Resize the retained-version window (min 1; default 8). *)
  val set_retain : Session.t -> int -> unit
end
