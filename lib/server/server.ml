module Session = Rfview.Session
module Snapshot = Rfview.Snapshot
module Relation = Rfview_relalg.Relation

type t = {
  session : Session.t;
  pool : Pool.t;
  sock : Unix.file_descr;
  port : int;
  writer_mu : Mutex.t;
  stop_flag : bool Atomic.t;
  sock_closed : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
}

let port srv = srv.port

let close_sock srv =
  (* exactly-once: a double [Unix.close] could hit a reused descriptor *)
  if Atomic.compare_and_set srv.sock_closed false true then
    try Unix.close srv.sock with Unix.Unix_error _ -> ()

(* ---- per-connection protocol loop (runs on a pool worker) ---- *)

let render_result = function
  | Session.Relation rel -> Relation.render rel
  | Session.Done msg -> msg

let describe = Session.describe_error

let query_response rel ~lsn =
  Wire.ok_fields
    [
      ("lsn", Wire.jint lsn);
      ("rows", Wire.jint (Relation.cardinality rel));
      ("data", Wire.jstr (Relation.render ~max_rows:max_int rel));
    ]

let handle_conn srv fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let pinned = ref None in
  let release () =
    Option.iter Snapshot.close !pinned;
    pinned := None
  in
  let respond s =
    output_string oc s;
    output_char oc '\n';
    flush oc
  in
  let with_writer f =
    Mutex.lock srv.writer_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock srv.writer_mu) f
  in
  let do_open rest =
    match
      if rest = "" then Ok (Snapshot.snapshot srv.session)
      else
        match int_of_string_opt rest with
        | None -> Error (Session.Runtime ("open: not an lsn: " ^ rest))
        | Some lsn -> Snapshot.at srv.session ~lsn
    with
    | Ok sn ->
      release ();
      pinned := Some sn;
      respond (Wire.ok_fields [ ("lsn", Wire.jint (Snapshot.lsn sn)) ])
    | Error e -> respond (Wire.error (describe e))
  in
  let do_query sql =
    let answer sn =
      match Snapshot.query sn sql with
      | Ok rel -> respond (query_response rel ~lsn:(Snapshot.lsn sn))
      | Error e -> respond (Wire.error (describe e))
    in
    match !pinned with
    | Some sn -> answer sn
    | None ->
      let sn = Snapshot.snapshot srv.session in
      Fun.protect ~finally:(fun () -> Snapshot.close sn) (fun () -> answer sn)
  in
  let do_exec sql =
    match with_writer (fun () -> Session.exec srv.session sql) with
    | Ok r ->
      respond
        (Wire.ok_fields
           [
             ("result", Wire.jstr (render_result r));
             ("lsn", Wire.jint (Session.lsn srv.session));
           ])
    | Error e -> respond (Wire.error (describe e))
  in
  let do_batch rest =
    match int_of_string_opt rest with
    | None -> respond (Wire.error "batch: expected a statement count")
    | Some n when n <= 0 -> respond (Wire.error "batch: count must be positive")
    | Some n ->
      (* read the statements first: the writer lock is never held while
         blocked on the client *)
      let stmts = List.init n (fun _ -> input_line ic) in
      let results =
        with_writer (fun () ->
            Session.with_batch srv.session (fun () ->
                List.map (Session.exec srv.session) stmts))
      in
      let failed =
        List.filter_map (function Error e -> Some e | Ok _ -> None) results
      in
      let fields =
        [
          ("executed", Wire.jint (n - List.length failed));
          ("lsn", Wire.jint (Session.lsn srv.session));
        ]
      in
      (match failed with
       | [] -> respond (Wire.ok_fields fields)
       | e :: _ ->
         respond
           (Wire.ok_fields (fields @ [ ("first_error", Wire.jstr (describe e)) ])))
  in
  let do_status () =
    respond
      (Wire.ok_fields
         [
           ("lsn", Wire.jint (Session.lsn srv.session));
           ( "retained",
             Wire.jlist (List.map Wire.jint (Snapshot.retained srv.session)) );
           ("snapshots", Wire.jint (Snapshot.open_count srv.session));
           ("domains", Wire.jint (Pool.domains srv.pool));
         ])
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      let continue = ref true in
      (try
         match Wire.split line with
         | "", _ -> respond (Wire.error "empty request")
         | "ping", _ -> respond (Wire.ok_fields [ ("pong", "true") ])
         | "open", rest -> do_open rest
         | "query", sql -> do_query sql
         | "exec", sql -> do_exec sql
         | "batch", rest -> do_batch rest
         | "status", _ -> do_status ()
         | "close", _ ->
           release ();
           respond (Wire.ok_fields [])
         | "quit", _ ->
           respond (Wire.ok_fields []);
           continue := false
         | "shutdown", _ ->
           respond (Wire.ok_fields []);
           Atomic.set srv.stop_flag true;
           continue := false
         | verb, _ -> respond (Wire.error ("unknown verb: " ^ verb))
       with e -> (try respond (Wire.error (Printexc.to_string e)) with _ -> ()));
      if !continue then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      release ();
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* ---- acceptor ---- *)

(* Poll with a short select timeout so a shutdown requested from a
   connection handler (another domain) is noticed without relying on
   cross-domain close-while-blocked-in-accept semantics. *)
let rec accept_loop srv =
  if not (Atomic.get srv.stop_flag) then begin
    match Unix.select [ srv.sock ] [] [] 0.1 with
    | exception Unix.Unix_error _ -> ()
    | [], _, _ -> accept_loop srv
    | _ ->
      (match Unix.accept srv.sock with
       | fd, _ ->
         (try Pool.submit srv.pool (fun () -> handle_conn srv fd)
          with Invalid_argument _ -> Unix.close fd)
       | exception Unix.Unix_error _ -> Atomic.set srv.stop_flag true);
      accept_loop srv
  end

let start ?(domains = 4) ~session ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let srv =
    {
      session;
      pool = Pool.create ~domains;
      sock;
      port;
      writer_mu = Mutex.create ();
      stop_flag = Atomic.make false;
      sock_closed = Atomic.make false;
      acceptor = None;
    }
  in
  srv.acceptor <- Some (Domain.spawn (fun () -> accept_loop srv));
  srv

let wait srv =
  Option.iter Domain.join srv.acceptor;
  srv.acceptor <- None;
  Pool.shutdown srv.pool;
  close_sock srv

let stop srv =
  Atomic.set srv.stop_flag true;
  wait srv

(* ---- client ---- *)

module Client = struct
  type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect ~port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       Unix.close fd;
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
    }

  let request c line =
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic

  let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
