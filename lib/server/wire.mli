(** The session server's wire format: one request line in, one JSON
    object line out (JSON Lines).  The JSON emitters here are also what
    the CLI's [--json] modes print with — one definition of escaping.

    Requests: [VERB] or [VERB ARGS], case-sensitive, terminated by a
    newline.  Responses always carry an ["ok"] field; failures are
    [{"ok":false,"error":"..."}]. *)

(** {1 JSON emission} *)

val json_escape : string -> string

(** A quoted, escaped JSON string literal. *)
val jstr : string -> string

(** [jobj [(k, v); ...]] — values are already-rendered JSON. *)
val jobj : (string * string) list -> string

(** [jlist items] — items are already-rendered JSON. *)
val jlist : string list -> string

val jint : int -> string
val jbool : bool -> string

(** {1 Request parsing} *)

(** [split "query SELECT 1"] = [("query", "SELECT 1")]; the verb is
    everything before the first space, the rest is trimmed. *)
val split : string -> string * string

(** {1 Canned responses} *)

val ok_fields : (string * string) list -> string
val error : string -> string

(** [field json name] extracts the raw value of a top-level string or
    scalar field from one response line — a test/client helper, not a
    JSON parser (the protocol never nests what clients need). *)
val field : string -> string -> string option
