type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

(* Workers drain the queue even while stopping: shutdown means "no new
   jobs", not "drop pending ones". *)
let rec worker_loop p =
  Mutex.lock p.mu;
  while Queue.is_empty p.jobs && not p.stopping do
    Condition.wait p.nonempty p.mu
  done;
  if Queue.is_empty p.jobs then Mutex.unlock p.mu
  else begin
    let job = Queue.pop p.jobs in
    Mutex.unlock p.mu;
    (try job () with _ -> ());
    worker_loop p
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let p =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      workers = [];
      size = domains;
    }
  in
  p.workers <-
    List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let domains p = p.size

let submit p job =
  Mutex.lock p.mu;
  if p.stopping then begin
    Mutex.unlock p.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job p.jobs;
  Condition.signal p.nonempty;
  Mutex.unlock p.mu

type 'a promise = {
  pmu : Mutex.t;
  pdone : Condition.t;
  mutable outcome : ('a, exn) result option;
}

let async p f =
  let pr = { pmu = Mutex.create (); pdone = Condition.create (); outcome = None } in
  submit p (fun () ->
      let o = match f () with v -> Ok v | exception e -> Error e in
      Mutex.lock pr.pmu;
      pr.outcome <- Some o;
      Condition.broadcast pr.pdone;
      Mutex.unlock pr.pmu);
  pr

let await pr =
  Mutex.lock pr.pmu;
  while pr.outcome = None do
    Condition.wait pr.pdone pr.pmu
  done;
  let o = Option.get pr.outcome in
  Mutex.unlock pr.pmu;
  match o with Ok v -> v | Error e -> raise e

let shutdown p =
  Mutex.lock p.mu;
  p.stopping <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.mu;
  let ws = p.workers in
  p.workers <- [];
  List.iter Domain.join ws
