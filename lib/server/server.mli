(** The concurrent session server: one writer, many snapshot readers.

    [start] binds a loopback TCP socket and serves the line/JSON
    protocol of {!Wire} over one {!Rfview.Session}: every read runs
    against an MVCC snapshot on a {!Pool} worker domain, every write is
    serialized through one writer mutex.  A connection occupies its
    worker for its lifetime, so the pool size bounds concurrent
    connections.

    {2 Protocol}

    One request line in, one JSON object line out:

    {v
    ping                 {"ok":true,"pong":true}
    open [LSN]           pin a snapshot (at LSN, default tip) for this
                         connection → {"ok":true,"lsn":N}
    query SQL            evaluate against the pinned snapshot, or a
                         fresh tip snapshot when none is pinned
                         → {"ok":true,"lsn":N,"rows":R,"data":"..."}
    exec SQL             execute one statement (writer-serialized)
    batch N              read the next N lines as statements, execute
                         them in one batch scope (one group commit)
    status               {"ok":true,"lsn":N,"retained":[...],
                          "snapshots":K,"domains":D}
    close                release the pinned snapshot
    quit                 end this connection
    shutdown             stop the whole server
    v} *)

type t

(** Serve [session] on loopback [port] ([0] picks an ephemeral port —
    read it back with {!port}) with [domains] reader domains
    (default 4). *)
val start : ?domains:int -> session:Rfview.Session.t -> port:int -> unit -> t

val port : t -> int

(** Block until the server stops (a client sent [shutdown], or {!stop}
    was called), then drain and join every domain.  Idempotent with
    {!stop}. *)
val wait : t -> unit

(** Request shutdown and {!wait}. *)
val stop : t -> unit

(** {1 Client}

    A minimal blocking client for the protocol — what [rfview call]
    and the smoke tests use. *)

module Client : sig
  type conn

  val connect : port:int -> conn

  (** One round-trip: send the request line, read the response line. *)
  val request : conn -> string -> string

  val disconnect : conn -> unit
end
