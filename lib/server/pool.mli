(** A hand-rolled fixed-size domain pool (no external dependency):
    [domains] worker domains drain one FIFO job queue under a
    mutex/condition pair.

    Built for the session server's read path — every job is expected to
    be read-only with respect to shared state (snapshot queries), with
    the single writer serialized elsewhere.  The pool itself makes no
    such assumption; it just runs thunks. *)

type t

(** Spawn [domains] (>= 1) worker domains. *)
val create : domains:int -> t

val domains : t -> int

(** Enqueue a job; some worker runs it eventually.  Exceptions the job
    raises are swallowed (use {!async} to observe them).
    @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** A handle on one submitted job's outcome. *)
type 'a promise

(** Enqueue a job and get a handle on its result. *)
val async : t -> (unit -> 'a) -> 'a promise

(** Block until the job has run; re-raises whatever it raised. *)
val await : 'a promise -> 'a

(** Drain the queue, then stop and join every worker.  Idempotent. *)
val shutdown : t -> unit
