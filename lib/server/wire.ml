let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jlist items = "[" ^ String.concat "," items ^ "]"
let jint = string_of_int
let jbool = string_of_bool

let split line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let ok_fields fields = jobj (("ok", "true") :: fields)
let error msg = jobj [ ("ok", "false"); ("error", jstr msg) ]

(* Scan for  "name": <value>  at top level; value ends at the next
   unescaped ',' or '}' (strings keep their quotes stripped). *)
let field json name =
  let needle = "\"" ^ name ^ "\":" in
  let nlen = String.length needle and len = String.length json in
  let rec find i =
    if i + nlen > len then None
    else if String.sub json i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    if start < len && json.[start] = '"' then begin
      (* string value: scan to the closing unescaped quote *)
      let b = Buffer.create 16 in
      let rec scan i =
        if i >= len then None
        else
          match json.[i] with
          | '"' -> Some (Buffer.contents b)
          | '\\' when i + 1 < len ->
            (match json.[i + 1] with
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | c -> Buffer.add_char b c);
            scan (i + 2)
          | c ->
            Buffer.add_char b c;
            scan (i + 1)
      in
      scan (start + 1)
    end
    else begin
      let stop = ref start in
      while
        !stop < len && json.[!stop] <> ',' && json.[!stop] <> '}'
        && json.[!stop] <> ']'
      do
        incr stop
      done;
      Some (String.trim (String.sub json start (!stop - start)))
    end
