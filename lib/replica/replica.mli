(** The replica engine: consumes one {!Feed}, serves stale-bounded
    snapshot reads, and can be promoted on primary failure.

    Lifecycle: {!attach} (empty, LSN 0) → {!poll} repeatedly — the
    first checkpoint artifact bootstraps the state, records advance it
    one LSN at a time.  Every read is tagged with the LSN it reflects;
    a read whose staleness bound the replica cannot meet returns
    {!constructor-Stale} instead of silently serving old data.

    Divergence (a shipped fingerprint the applied state fails to
    reproduce), feed corruption, a feed gap, or an apply failure all
    {e quarantine} the replica: reads refuse, records are skipped, and
    the next checkpoint artifact (see {!Ship.resync}) re-bootstraps it.

    Fault-injection sites: [replica.apply], [replica.bootstrap] — both
    fire before state changes, so an interrupted {!poll} resumes
    exactly where it stopped. *)

open Rfview_engine

exception Replica_error of string

(** Alias of the shared staleness vocabulary ({!Staleness.lag}) both
    read tiers speak; kept for one release — new code should name
    [Staleness.lag] (or [Rfview.Staleness.lag]) directly.
    @deprecated use {!Staleness.lag} *)
type lag = Staleness.lag = {
  records : int;  (** LSNs behind the given primary tip *)
  bytes : int;  (** feed bytes not yet consumed *)
}

type status =
  | Syncing  (** attached, nothing applied yet: the state is LSN 0 *)
  | Ready
  | Quarantined of { at_lsn : int; reason : string }

type read_error =
  | Stale of Staleness.violation
      (** the staleness bound was not met; nothing was evaluated *)
  | Unavailable of string  (** quarantined — the state is not trusted *)

type t

val attach : ?config:Database.config -> name:string -> feed:string -> unit -> t

(** Apply every complete feed entry not yet consumed; returns how many
    advanced the state.  Safe to call at any time (an in-flight append
    shows up as a torn tail and is retried on the next poll).
    @raise Fault.Injected when a [replica.*] site is armed. *)
val poll : t -> int

val name : t -> string

(** The replica's in-memory database — direct read access for callers
    that manage staleness themselves (the bench does). *)
val database : t -> Database.t

(** The LSN the in-memory state corresponds to. *)
val applied_lsn : t -> int

val applied_epoch : t -> int
val status : t -> status

(** Byte offset of the next feed entry to consume. *)
val consumed : t -> int

(** Lag relative to a primary tip LSN (the caller supplies it — the
    replica only knows its feed). *)
val lag : t -> tip:int -> lag

(** Snapshot read: evaluate [sql] against the applied state iff the
    staleness bound holds ([max_records] in LSNs behind [tip],
    [max_bytes] in unconsumed feed bytes; omitted bounds don't
    constrain).  Returns the relation tagged with the applied LSN.
    Query errors (parse/bind/runtime) raise as {!Database.query} does. *)
val read :
  t ->
  tip:int ->
  ?max_records:int ->
  ?max_bytes:int ->
  string ->
  (Rfview_relalg.Relation.t * int, read_error) result

(** Promote the applied state into a durable primary at [dir] (see
    {!Database.make_durable}); returns the now-durable database.  The
    unshipped tail of the failed primary is lost — at most that.
    @raise Replica_error when quarantined. *)
val promote : t -> dir:string -> Database.t
