(** The primary-side WAL shipper: fans one durable primary's log out to
    per-replica {!Feed}s.

    Shipping is pull-free and synchronous: call {!pump} after commits
    (or on a timer) and every attached feed receives the records it is
    missing, each tagged with its global LSN.  A feed that has fallen
    behind the checkpoint horizon — log compaction discarded records it
    never got — is re-seeded with a checkpoint artifact instead.
    {!resync} forces a fresh checkpoint and ships it, which is how a
    divergent (quarantined) replica is repaired. *)

open Rfview_engine

exception Ship_error of string

type t

(** @raise Ship_error when the database is not durable. *)
val create : Database.t -> t

val primary : t -> Database.t

(** Attached feed names, sorted. *)
val feeds : t -> string list

(** Create feed [path] (truncating any previous file) and seed it with
    the primary's current checkpoint artifact, when one exists.
    @raise Ship_error on a duplicate name. *)
val attach : t -> name:string -> path:string -> unit

(** Reopen an existing feed after a shipper (or primary) restart: chops
    a torn tail, recovers the resume point from the feed's own entries,
    and resumes shipping where the previous writer stopped.
    @raise Ship_error on a duplicate name. *)
val reattach : t -> name:string -> path:string -> unit

(** Close and forget a feed (the file remains). *)
val detach : t -> name:string -> unit

(** Highest LSN the named feed holds. *)
val shipped : t -> name:string -> int

(** Ship every unshipped record to every feed; returns the number of
    (record, feed) deliveries.  Each feed is fsynced once per pump.
    @raise Ship_error mid-batch (the tip record is not sealed yet).
    @raise Fault.Injected when a [ship.*] site is armed (the partial
    entry is truncated back off the feed first). *)
val pump : t -> int

(** Checkpoint the primary and ship the artifact (carrying a tip
    fingerprint) to the named feed. *)
val resync : t -> name:string -> unit

val close : t -> unit
