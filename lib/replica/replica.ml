(* The replica engine.

   A replica consumes one feed: it bootstraps from the latest checkpoint
   artifact, applies shipped records through the engine's regular replay
   path (view maintenance and quarantine behave exactly as on the
   primary), and tracks the LSN its in-memory state corresponds to.
   Reads are snapshot reads tagged with that LSN, refused with a typed
   [Stale] error when the replica lags past the caller's bound.

   Divergence safety: whenever a shipped entry carries the primary's
   fingerprint, the replica recomputes its own after applying; a
   mismatch quarantines the replica — reads refuse, records are skipped
   — until a fresh checkpoint artifact (shipped by [Ship.resync])
   appears in the feed, from which it re-bootstraps.  Feed corruption
   and apply failures quarantine the same way, so a replica never
   serves a state it cannot vouch for.

   Fault-injection sites: [replica.apply] (before a record is applied)
   and [replica.bootstrap] (before a checkpoint artifact is restored).
   Both fire before any state changes and record application is atomic,
   so a poll interrupted by an injected fault resumes exactly where it
   stopped. *)

open Rfview_engine

exception Replica_error of string

let replica_error fmt = Format.kasprintf (fun s -> raise (Replica_error s)) fmt

let site_apply = Fault.define "replica.apply"
let site_bootstrap = Fault.define "replica.bootstrap"

type lag = Staleness.lag = { records : int; bytes : int }

type status =
  | Syncing  (** attached, nothing applied yet: the state is LSN 0 *)
  | Ready
  | Quarantined of { at_lsn : int; reason : string }

type read_error =
  | Stale of Staleness.violation
  | Unavailable of string

type t = {
  name : string;
  feed : string;
  config : Database.config option;
  mutable db : Database.t;
  mutable applied_lsn : int;
  mutable applied_epoch : int;
  mutable offset : int; (* resume point in the feed *)
  mutable status : status;
}

let attach ?config ~name ~feed () =
  {
    name;
    feed;
    config;
    db = Database.create ?config ();
    applied_lsn = 0;
    applied_epoch = 0;
    offset = 0;
    status = Syncing;
  }

let name r = r.name
let database r = r.db
let applied_lsn r = r.applied_lsn
let applied_epoch r = r.applied_epoch
let status r = r.status
let consumed r = r.offset

let quarantine r ~at reason = r.status <- Quarantined { at_lsn = at; reason }

let fp_of db = Wal.crc32 (Database.fingerprint db)

(* Compare against the primary's shipped fingerprint, when present. *)
let check_fp r ~lsn = function
  | None -> ()
  | Some fp ->
    if fp <> fp_of r.db then
      quarantine r ~at:lsn "state fingerprint diverges from the primary"

let apply_item r (item : Feed.item) : bool =
  match item with
  | Feed.Damage { offset } ->
    quarantine r ~at:r.applied_lsn
      (Printf.sprintf "feed entry at byte %d is corrupt" offset);
    false
  | Feed.Entry (Feed.Artifact { lsn; epoch; fp; data }) ->
    let want =
      match r.status with
      | Quarantined _ | Syncing -> true
      | Ready -> lsn > r.applied_lsn
    in
    if not want then false
    else begin
      Fault.hit site_bootstrap;
      match
        let snap = Checkpoint.read_bytes ~name:(r.feed ^ " artifact") data in
        Database.restore_snapshot ?config:r.config snap
      with
      | db, _quarantined_views ->
        r.db <- db;
        r.applied_lsn <- lsn;
        r.applied_epoch <- epoch;
        r.status <- Ready;
        check_fp r ~lsn fp;
        true
      | exception Checkpoint.Corrupt m ->
        quarantine r ~at:r.applied_lsn ("artifact: " ^ m);
        false
      | exception Database.Recovery_error m ->
        quarantine r ~at:r.applied_lsn ("artifact: " ^ m);
        false
    end
  | Feed.Entry (Feed.Record { lsn; epoch; fp; record }) ->
    (match r.status with
     | Quarantined _ -> false (* wait for a fresh artifact *)
     | Syncing | Ready ->
       if lsn <= r.applied_lsn then false (* duplicate delivery *)
       else if lsn > r.applied_lsn + 1 then begin
         quarantine r ~at:r.applied_lsn
           (Printf.sprintf "feed gap: record lsn %d after applied %d" lsn
              r.applied_lsn);
         false
       end
       else begin
         Fault.hit site_apply;
         match Database.apply_record r.db record with
         | () ->
           r.applied_lsn <- lsn;
           r.applied_epoch <- epoch;
           r.status <- Ready;
           check_fp r ~lsn fp;
           true
         | exception (Fault.Injected _ as e) -> raise e
         | exception e when Database.recoverable_exn e ->
           quarantine r ~at:r.applied_lsn ("apply: " ^ Printexc.to_string e);
           false
       end)

let poll r : int =
  let items, _torn = Feed.read_from r.feed ~offset:r.offset in
  let applied = ref 0 in
  List.iter
    (fun (item, finish) ->
      if apply_item r item then incr applied;
      r.offset <- finish)
    items;
  !applied

(* ---- Stale-bounded snapshot reads ---- *)

let lag r ~tip =
  Staleness.lag ~applied_lsn:r.applied_lsn ~tip_lsn:tip
    ~bytes:(Feed.size r.feed - r.offset)

let read r ~tip ?max_records ?max_bytes sql :
    (Rfview_relalg.Relation.t * int, read_error) result =
  match r.status with
  | Quarantined { reason; _ } -> Error (Unavailable ("quarantined: " ^ reason))
  | Syncing | Ready ->
    (match
       Staleness.admit ?max_records ?max_bytes ~applied_lsn:r.applied_lsn
         ~tip_lsn:tip
         ~bytes:(Feed.size r.feed - r.offset)
         ()
     with
     | Error v -> Error (Stale v)
     | Ok _lag -> Ok (Database.query r.db sql, r.applied_lsn))

(* ---- Failover ---- *)

(* Promote the replica's applied state into a durable primary at [dir].
   Everything up to [applied_lsn] survives; whatever the old primary
   committed but never shipped is lost — the documented failover
   contract.  The replica object is spent after this: the database now
   belongs to the new primary. *)
let promote r ~dir =
  (match r.status with
   | Quarantined { reason; _ } ->
     replica_error "cannot promote %s: quarantined (%s)" r.name reason
   | Syncing | Ready -> ());
  Database.make_durable r.db ~dir ~lsn:r.applied_lsn;
  r.db
