(** A replication feed: the append-only stream one replica consumes.

    Entries are CRC-framed like WAL records; bodies travel through
    {!Rfview_engine.Compress}.  An entry is either a {e checkpoint
    artifact} (the primary's whole checkpoint file, the replica's
    bootstrap and resync point) or one {e shipped WAL record}.  Both
    carry the global LSN and checkpoint epoch; [fp], when present, is
    the CRC32 of the primary's logical fingerprint at exactly that LSN
    (attached at the tip of a pump), which the replica checks after
    applying to detect divergence.

    All bytes move through the {!Rfview_engine.Io} seam (so feeds fall
    under the simulated disk's budgets, flips and crashes), and opening
    a feed for append sweeps a stale sibling [*.tmp] left by an
    interrupted install.

    Fault-injection sites: [ship.append], [ship.fsync], plus the
    byte-level [io.*] sites underneath. *)

open Rfview_engine

exception Corrupt of string

type entry =
  | Artifact of { lsn : int; epoch : int; fp : int32 option; data : string }
      (** [data]: raw checkpoint-file bytes ({!Checkpoint.read_bytes}) *)
  | Record of { lsn : int; epoch : int; fp : int32 option; record : Wal.record }

val lsn_of : entry -> int

(** {1 Writing} (the shipper's side) *)

type writer

(** Create (or truncate) a feed. *)
val create : string -> writer

(** Reopen an existing feed for appending, chopping off a torn tail
    left by a crash mid-append; creates the feed when missing. *)
val open_append : string -> writer

(** Byte offset of the feed's end — capture before {!append} so a
    failed ship can {!truncate_to} the partial entry back off. *)
val position : writer -> int

(** @raise Fault.Injected when [ship.append] is armed. *)
val append : writer -> entry -> unit

(** @raise Fault.Injected when [ship.fsync] is armed. *)
val sync : writer -> unit

val truncate_to : writer -> int -> unit
val close : writer -> unit

(** {1 Reading} (the replica's side) *)

type item =
  | Entry of entry
  | Damage of { offset : int }
      (** a complete frame whose CRC mismatched or whose payload does
          not decode — shipped corruption, not a torn tail *)

(** Feed file size in bytes (0 when missing) — the byte-lag basis. *)
val size : string -> int

(** Read every complete entry from byte [offset] on.  Each item is
    paired with the offset just past its frame (the resume point); the
    second component is the byte offset of a torn tail when one is
    present (an append still in flight — retry from there later).  A
    missing feed reads as empty. *)
val read_from : string -> offset:int -> (item * int) list * int option
