(** Scrubbing and cross-source repair over a primary directory and its
    replication feeds.

    {!scrub} extends the engine scrubber ({!Rfview_engine.Scrub}) with
    feed {e content} checks: entry decoding and LSN continuity, which
    need the feed codec this library owns.

    {!repair} then fixes what it can, cheapest-and-safest first:

    - stale [*.tmp] files are swept;
    - a damaged WAL is rebuilt from its own valid prefix plus the
      longest continuous record chain any attached feed carries for the
      same epoch and LSN range — the rebuilt state is verified against
      the feed's recorded fingerprint before the new log atomically
      replaces the old (no verifiable chain: the log is truncated back
      to its valid prefix instead, an explicit, reported loss);
    - a damaged feed is re-seeded from the (recovered) primary with a
      fresh checkpoint artifact, the same mechanism {!Ship.resync}
      uses online.

    Every decision is returned as a typed {!action}; {!outcome} carries
    the before/after scrub reports so callers can see exactly what was
    wrong and what remains. *)

open Rfview_engine

(** Feed content checks (decode + LSN continuity) for one feed. *)
val feed_damage : string -> Scrub.damage list

(** Engine scrub of [dir] plus frame {e and} content checks over
    [feeds]. *)
val scrub : ?feeds:string list -> string -> Scrub.report

type action =
  | Swept_tmp of string
  | Truncated_wal of { path : string; at : int }
      (** no verifiable peer chain: damage (and anything after it)
          chopped off *)
  | Rebuilt_wal of {
      path : string;
      from_feed : string;
      records : int;  (** records in the rebuilt log (prefix + chain) *)
      tip_lsn : int;
      verified : bool;
          (** the rebuilt state matched a fingerprint the feed recorded
              at some chained LSN *)
    }
  | Reseeded_feed of { path : string }

val describe_action : action -> string

type outcome = {
  o_actions : action list;
  o_before : Scrub.report;
  o_after : Scrub.report;
}

(** Scrub, repair, scrub again.  Never raises on damage it cannot fix —
    the residue shows in [o_after]. *)
val repair : ?feeds:string list -> string -> outcome
