(* The primary-side WAL shipper.

   One shipper wraps one durable primary and fans its log out to any
   number of per-replica feeds.  [pump] reads the primary's current WAL,
   computes each record's global LSN from the primary's position, and
   appends every not-yet-shipped record to every feed, fsyncing once per
   feed per pump (the feed's own group commit).

   A feed that is behind the primary's checkpoint horizon — its last
   shipped LSN predates the records still in the log, because a
   checkpoint compacted them away — is re-seeded with a checkpoint
   artifact: the whole checkpoint file as one entry, which the replica
   bootstraps from before consuming the record suffix.  The same
   mechanism serves divergence repair: [resync] forces a fresh primary
   checkpoint and ships it, giving the quarantined replica a clean
   rebuild point.

   The entry at the tip of a pump carries the primary's logical
   fingerprint (CRC32), valid exactly at that LSN; intermediate entries
   carry none, because the primary no longer holds those states. *)

open Rfview_engine

exception Ship_error of string

let ship_error fmt = Format.kasprintf (fun s -> raise (Ship_error s)) fmt

(* must match the engine's database layout *)
let wal_file dir = Filename.concat dir "log.wal"

type feed_state = {
  f_name : string;
  f_path : string;
  f_writer : Feed.writer;
  mutable f_shipped : int; (* highest LSN this feed holds *)
}

type t = {
  db : Database.t;
  dir : string;
  mutable feeds : feed_state list;
}

let create db =
  match Database.durable_dir db with
  | None -> ship_error "shipping needs a durable primary (open_durable)"
  | Some dir -> { db; dir; feeds = [] }

let primary t = t.db
let feeds t = List.rev_map (fun f -> f.f_name) t.feeds |> List.sort String.compare

let find t name =
  match List.find_opt (fun f -> f.f_name = name) t.feeds with
  | Some f -> f
  | None -> ship_error "no feed named %s" name

let shipped t ~name = (find t name).f_shipped

let fp_now t = Wal.crc32 (Database.fingerprint t.db)

(* Append one entry durably; a failed append truncates the partial
   frame back off so the feed stays well-formed. *)
let append_synced f entry =
  let pos = Feed.position f.f_writer in
  try
    Feed.append f.f_writer entry;
    Feed.sync f.f_writer
  with e ->
    (try Feed.truncate_to f.f_writer pos with _ -> ());
    raise e

(* Ship the primary's current checkpoint artifact (no-op before the
   first checkpoint: replicas then start from the empty state at LSN 0).
   The fingerprint is attached only when the checkpoint sits at the
   primary's tip — otherwise the checkpointed state is one the primary
   has already moved past. *)
let ship_artifact t f =
  match Checkpoint.contents ~dir:t.dir with
  | None -> ()
  | Some data ->
    let snap = Checkpoint.read_bytes ~name:(Checkpoint.file ~dir:t.dir) data in
    let fp =
      if snap.Checkpoint.lsn = Database.lsn t.db then Some (fp_now t) else None
    in
    append_synced f
      (Feed.Artifact { lsn = snap.Checkpoint.lsn; epoch = snap.Checkpoint.epoch; fp; data });
    if snap.Checkpoint.lsn > f.f_shipped then f.f_shipped <- snap.Checkpoint.lsn

let attach t ~name ~path =
  if List.exists (fun f -> f.f_name = name) t.feeds then
    ship_error "feed %s is already attached" name;
  let f = { f_name = name; f_path = path; f_writer = Feed.create path; f_shipped = 0 } in
  ship_artifact t f;
  t.feeds <- t.feeds @ [ f ]

(* Reopen an existing feed after a shipper (or primary) restart: a torn
   tail is chopped, and the resume point is recovered from the feed
   itself — the highest LSN among its readable entries. *)
let reattach t ~name ~path =
  if List.exists (fun f -> f.f_name = name) t.feeds then
    ship_error "feed %s is already attached" name;
  let writer = Feed.open_append path in
  let items, _torn = Feed.read_from path ~offset:0 in
  let shipped =
    List.fold_left
      (fun acc (item, _) ->
        match item with
        | Feed.Entry e -> max acc (Feed.lsn_of e)
        | Feed.Damage _ -> acc)
      0 items
  in
  t.feeds <- t.feeds @ [ { f_name = name; f_path = path; f_writer = writer; f_shipped = shipped } ]

let detach t ~name =
  let f = find t name in
  (try Feed.close f.f_writer with _ -> ());
  t.feeds <- List.filter (fun g -> g.f_name <> name) t.feeds

let close t = List.iter (fun f -> try Feed.close f.f_writer with _ -> ()) t.feeds

let pump t =
  if Database.in_batch t.db then ship_error "pump inside an open batch";
  let tip = Database.lsn t.db in
  let scan =
    try Wal.scan (wal_file t.dir) with Wal.Wal_error m -> ship_error "%s" m
  in
  let records = Array.of_list scan.Wal.records in
  (* records.(i) is the record with LSN base + i + 1 *)
  let base = tip - Array.length records in
  let fp = lazy (fp_now t) in
  let moved = ref 0 in
  List.iter
    (fun f ->
      (* behind the checkpoint horizon: the records before [base] were
         compacted away, so re-seed from the checkpoint artifact *)
      if f.f_shipped < base then ship_artifact t f;
      if f.f_shipped < base then
        ship_error "feed %s is at lsn %d, before the checkpoint horizon %d"
          f.f_name f.f_shipped base;
      if f.f_shipped < tip then begin
        let pos = Feed.position f.f_writer in
        (try
           for i = f.f_shipped - base to Array.length records - 1 do
             let lsn = base + i + 1 in
             let fp = if lsn = tip then Some (Lazy.force fp) else None in
             Feed.append f.f_writer
               (Feed.Record { lsn; epoch = scan.Wal.epoch; fp; record = records.(i) })
           done;
           Feed.sync f.f_writer
         with e ->
           (try Feed.truncate_to f.f_writer pos with _ -> ());
           raise e);
        moved := !moved + (tip - f.f_shipped);
        f.f_shipped <- tip
      end)
    t.feeds;
  !moved

(* Divergence repair: force a fresh checkpoint (the artifact then sits
   at the tip, so it carries a fingerprint) and ship it to the named
   feed.  The quarantined replica bootstraps from it on its next poll. *)
let resync t ~name =
  let f = find t name in
  if Database.in_batch t.db then ship_error "resync inside an open batch";
  Database.checkpoint t.db;
  ship_artifact t f
