(* Scrub + cross-source repair.  See repair.mli.

   The WAL rebuild is the interesting part.  A mid-log CRC hit (bit
   rot, a flipped sector) makes plain recovery truncate at the damage —
   silently dropping every committed record after it.  But any attached
   feed that shipped those records still holds them, tagged with their
   LSNs and epoch.  So: take the log's own valid prefix, extend it with
   the longest continuous chain of feed records picking up exactly
   where the prefix ends, verify the replayed result against the
   fingerprint the shipper recorded, and only then atomically install
   the rebuilt log.  The WAL codec is canonical (same record, same
   bytes), so a full rebuild is bit-identical to the undamaged log. *)

open Rfview_engine

let wal_file dir = Filename.concat dir "log.wal"

(* ---- Feed content checks ---- *)

let feed_damage path : Scrub.damage list =
  if not (Io.exists path) then []
  else begin
    let art = Scrub.Feed_file path in
    (* offsets the frame-level scan already reports as CRC damage — a
       [Feed.Damage] item there is not additionally "undecodable" *)
    let crc_offsets =
      List.filter_map
        (fun (d : Scrub.damage) ->
          match d.Scrub.d_kind with
          | Scrub.Crc { offset } -> Some offset
          | _ -> None)
        (Scrub.feed_frame_damage path)
    in
    let items, _torn = Feed.read_from path ~offset:0 in
    let out = ref [] in
    let push k = out := { Scrub.d_artifact = art; d_kind = k } :: !out in
    let expect = ref None in
    let start = ref 0 in
    List.iter
      (fun (item, finish) ->
        (match item with
         | Feed.Damage { offset } ->
           if not (List.mem offset crc_offsets) then
             push
               (Scrub.Undecodable
                  { offset; detail = "feed entry does not decode" });
           (* continuity is unknowable across damage *)
           expect := None
         | Feed.Entry (Feed.Artifact { lsn; _ }) -> expect := Some (lsn + 1)
         | Feed.Entry (Feed.Record { lsn; _ }) ->
           (match !expect with
            | Some e when lsn <> e ->
              push (Scrub.Gap { expected = e; found = lsn; offset = !start })
            | _ -> ());
           expect := Some (lsn + 1));
        start := finish)
      items;
    List.rev !out
  end

let scrub ?(feeds = []) dir : Scrub.report =
  let base = Scrub.scrub_dir ~feeds dir in
  {
    base with
    Scrub.damage = base.Scrub.damage @ List.concat_map feed_damage feeds;
  }

(* ---- Actions ---- *)

type action =
  | Swept_tmp of string
  | Truncated_wal of { path : string; at : int }
  | Rebuilt_wal of {
      path : string;
      from_feed : string;
      records : int;
      tip_lsn : int;
      verified : bool;
    }
  | Reseeded_feed of { path : string }

let describe_action = function
  | Swept_tmp p -> Printf.sprintf "swept stale temp file %s" p
  | Truncated_wal { path; at } ->
    Printf.sprintf "truncated %s to %d byte(s) (no peer chain to rebuild from)"
      path at
  | Rebuilt_wal { path; from_feed; records; tip_lsn; verified } ->
    Printf.sprintf "rebuilt %s from feed %s: %d record(s) to lsn %d%s" path
      from_feed records tip_lsn
      (if verified then ", fingerprint-verified" else " (no fingerprint to verify)")
  | Reseeded_feed { path } ->
    Printf.sprintf "re-seeded feed %s from the primary" path

type outcome = {
  o_actions : action list;
  o_before : Scrub.report;
  o_after : Scrub.report;
}

(* ---- The WAL rebuild ---- *)

(* The log's own healthy beginning: entries up to the first damaged or
   undecodable frame.  Returns (epoch, records-after-Begin, bytes) or
   None when even BEGIN is unreadable. *)
let valid_prefix (detail : Wal.detail) =
  match detail.Wal.d_entries with
  | { Wal.e_record = Some (Wal.Begin epoch); e_bytes; _ } :: rest ->
    let records = ref [] in
    let bytes = ref e_bytes in
    (try
       List.iter
         (fun (e : Wal.entry) ->
           match e.Wal.e_record with
           | Some r when e.Wal.e_crc_ok ->
             records := r :: !records;
             bytes := e.Wal.e_offset + e.Wal.e_bytes
           | _ -> raise Exit)
         rest
     with Exit -> ());
    Some (epoch, List.rev !records, !bytes)
  | _ -> None

(* The longest continuous chain of records one feed holds for [epoch],
   starting exactly at [from_lsn]: [(records, fp_points)] where
   [fp_points] maps chained LSNs to the fingerprints the shipper
   recorded there. *)
let feed_chain path ~epoch ~from_lsn =
  let items, _ = Feed.read_from path ~offset:0 in
  let by_lsn = Hashtbl.create 64 in
  List.iter
    (fun (item, _) ->
      match item with
      | Feed.Entry (Feed.Record { lsn; epoch = e; fp; record }) when e = epoch ->
        if not (Hashtbl.mem by_lsn lsn) then Hashtbl.add by_lsn lsn (record, fp)
      | _ -> ())
    items;
  let records = ref [] in
  let fps = ref [] in
  let lsn = ref from_lsn in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt by_lsn !lsn with
    | Some (record, fp) ->
      records := record :: !records;
      (match fp with Some f -> fps := (!lsn, f) :: !fps | None -> ());
      incr lsn
    | None -> continue := false
  done;
  (List.rev !records, List.rev !fps)

(* Replay [records] over the directory's checkpoint (or the empty
   state) and check the logical fingerprint the feed recorded at
   [at_lsn].  [base_lsn] is the LSN the replay starts from (the
   checkpoint's). *)
let verify_fp dir ~base_lsn ~records ~at_lsn ~fp =
  match
    let db =
      match Checkpoint.read ~dir with
      | Some snap -> fst (Database.restore_snapshot snap)
      | None -> Database.create ()
    in
    let lsn = ref base_lsn in
    List.iter
      (fun r ->
        if !lsn < at_lsn then begin
          Database.apply_record db r;
          incr lsn
        end)
      records;
    !lsn = at_lsn && Wal.crc32 (Database.fingerprint db) = fp
  with
  | ok -> ok
  | exception _ -> false

(* Atomically install a rebuilt log: tmp + fsync + rename, the same
   protocol as [Wal.create]. *)
let install_wal path ~epoch ~records =
  let tmp = path ^ ".tmp" in
  let f = Io.openf tmp ~mode:Io.Create_trunc in
  (try
     Io.write f (Wal.frame (Wal.Begin epoch));
     List.iter (fun r -> Io.write f (Wal.frame r)) records;
     Io.fsync f;
     Io.close f
   with e ->
     Io.close f;
     Io.remove tmp;
     raise e);
  Io.rename tmp path

let repair_wal dir ~feeds ~(before : Scrub.report) : action list =
  let path = wal_file dir in
  let wal_damaged =
    List.exists
      (fun (d : Scrub.damage) ->
        match d.Scrub.d_artifact with Scrub.Wal_file _ -> true | _ -> false)
      before.Scrub.damage
  in
  if not wal_damaged then []
  else begin
    let ckpt_epoch, ckpt_lsn =
      match Checkpoint.read ~dir with
      | Some s -> (s.Checkpoint.epoch, s.Checkpoint.lsn)
      | None -> (0, 0)
      | exception Checkpoint.Corrupt _ -> (0, 0)
    in
    let prefix =
      if Io.exists path then
        match valid_prefix (Wal.scan_detail path) with
        | Some (epoch, records, bytes) when epoch = ckpt_epoch ->
          Some (records, bytes)
        | _ -> None
      else None
    in
    (* the prefix is the log's own contribution; [None] (unreadable
       BEGIN, stale epoch, or a deleted file) means rebuild from the
       checkpoint alone *)
    let prefix_records = match prefix with Some (r, _) -> r | None -> [] in
    let from_lsn = ckpt_lsn + List.length prefix_records + 1 in
    let best =
      List.fold_left
        (fun acc feed ->
          match feed_chain feed ~epoch:ckpt_epoch ~from_lsn with
          | [], _ -> acc
          | chain, fps ->
            (match acc with
             | Some (_, prev, _) when List.length prev >= List.length chain -> acc
             | _ -> Some (feed, chain, fps)))
        None feeds
    in
    match best with
    | Some (feed, chain, fps) ->
      let records = prefix_records @ chain in
      let tip_lsn = ckpt_lsn + List.length records in
      let verified =
        match List.rev fps with
        | (at_lsn, fp) :: _ -> verify_fp dir ~base_lsn:ckpt_lsn ~records ~at_lsn ~fp
        | [] -> false
      in
      if verified || fps = [] then begin
        install_wal path ~epoch:ckpt_epoch ~records;
        [
          Rebuilt_wal
            {
              path;
              from_feed = feed;
              records = List.length records;
              tip_lsn;
              verified;
            };
        ]
      end
      else begin
        (* a fingerprint existed and did NOT match: the chain is not
           the primary's history — fall back to the explicit chop *)
        match prefix with
        | Some (_, bytes) ->
          Wal.truncate path bytes;
          [ Truncated_wal { path; at = bytes } ]
        | None -> []
      end
    | None ->
      (* no feed carries the missing range: keep the valid prefix (or
         install an empty fresh log when even BEGIN was lost) *)
      (match prefix with
       | Some (_, bytes) when Io.exists path && bytes < Io.file_size path ->
         Wal.truncate path bytes;
         [ Truncated_wal { path; at = bytes } ]
       | Some _ -> []
       | None ->
         install_wal path ~epoch:ckpt_epoch ~records:[];
         [ Truncated_wal { path; at = Io.file_size path } ])
  end

(* ---- Feed re-seed ---- *)

let reseed_feeds dir ~feeds ~(before : Scrub.report) : action list =
  let damaged_feeds =
    List.filter
      (fun feed ->
        List.exists
          (fun (d : Scrub.damage) ->
            match d.Scrub.d_artifact with
            | Scrub.Feed_file p -> p = feed
            | _ -> false)
          before.Scrub.damage)
      feeds
  in
  if damaged_feeds = [] then []
  else begin
    (* the primary must be readable (the WAL repair above ran first);
       re-seed = fresh checkpoint + artifact entry, Ship.attach's seed
       path, which truncates the feed *)
    match Database.recover dir with
    | db, _report ->
      Fun.protect
        ~finally:(fun () -> Database.close db)
        (fun () ->
          Database.checkpoint db;
          let sh = Ship.create db in
          Fun.protect
            ~finally:(fun () -> Ship.close sh)
            (fun () ->
              List.filter_map
                (fun feed ->
                  match
                    Ship.attach sh ~name:(Filename.basename feed) ~path:feed
                  with
                  | () -> Some (Reseeded_feed { path = feed })
                  | exception _ -> None)
                damaged_feeds))
    | exception _ -> []
  end

(* ---- The driver ---- *)

let repair ?(feeds = []) dir : outcome =
  let before = scrub ~feeds dir in
  let swept =
    List.filter_map
      (fun (d : Scrub.damage) ->
        match d.Scrub.d_artifact with
        | Scrub.Tmp_file p ->
          Io.remove p;
          Some (Swept_tmp p)
        | _ -> None)
      before.Scrub.damage
  in
  let wal_actions = try repair_wal dir ~feeds ~before with _ -> [] in
  let feed_actions = reseed_feeds dir ~feeds ~before in
  let after = scrub ~feeds dir in
  { o_actions = swept @ wal_actions @ feed_actions; o_before = before; o_after = after }
