(* A replication feed: the append-only stream one replica consumes.

   The file is a sequence of CRC-framed entries (Wal.frame_payload):

     C lsn epoch fp? data        a checkpoint artifact — the primary's
                                 whole checkpoint file, packed
     R lsn epoch fp? payload     one shipped WAL record, packed

   Record payloads and checkpoint bytes travel through Compress.pack,
   so the feed is the compact wire format even when the primary's own
   files are not.  [fp], when present, is the CRC32 of the primary's
   logical fingerprint at exactly [lsn]: the shipper attaches it to the
   entry at the tip of a pump, and the replica compares after applying
   to detect divergence.

   Fault-injection sites: [ship.append] (before an entry's bytes are
   written) and [ship.fsync] (before the durability barrier). *)

open Rfview_engine
module Codec = Wal.Codec

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let site_append = Fault.define "ship.append"
let site_sync = Fault.define "ship.fsync"

type entry =
  | Artifact of { lsn : int; epoch : int; fp : int32 option; data : string }
  | Record of { lsn : int; epoch : int; fp : int32 option; record : Wal.record }

let lsn_of = function Artifact { lsn; _ } | Record { lsn; _ } -> lsn

(* ---- Encoding ---- *)

let put_fp buf = function
  | None -> Codec.put_bool buf false
  | Some fp ->
    Codec.put_bool buf true;
    Codec.put_int buf (Int32.to_int fp)

let encode (e : entry) : string =
  let buf = Buffer.create 256 in
  (match e with
   | Artifact { lsn; epoch; fp; data } ->
     Buffer.add_char buf 'C';
     Codec.put_int buf lsn;
     Codec.put_int buf epoch;
     put_fp buf fp;
     Compress.pack buf data
   | Record { lsn; epoch; fp; record } ->
     Buffer.add_char buf 'R';
     Codec.put_int buf lsn;
     Codec.put_int buf epoch;
     put_fp buf fp;
     Compress.pack buf (Wal.payload_of_record record));
  Buffer.contents buf

let decode (payload : string) : entry =
  let r = Codec.reader payload in
  try
    let tag = Codec.get_char r in
    let lsn = Codec.get_int r in
    let epoch = Codec.get_int r in
    let fp =
      if Codec.get_bool r then Some (Int32.of_int (Codec.get_int r)) else None
    in
    let data =
      Compress.unpack
        ~get_int:(fun () -> Codec.get_int r)
        ~get_char:(fun () -> Codec.get_char r)
        ~get_bytes:(Codec.get_raw r)
    in
    match tag with
    | 'C' -> Artifact { lsn; epoch; fp; data }
    | 'R' -> Record { lsn; epoch; fp; record = Wal.record_of_payload data }
    | c -> corrupt "unknown feed entry tag %C" c
  with
  | Codec.Decode m -> corrupt "%s" m
  | Compress.Corrupt m -> corrupt "%s" m

(* ---- Writer ----

   All bytes go through the [Io] seam, so the [io.*] storage fault
   sites and the simulated disk apply to feed writes too.  A stale
   [path.tmp] from a crashed atomic install is swept when the feed is
   (re)opened. *)

type writer = { f : Io.file; mutable pos : int }

let read_file = Io.read_file

let sweep_tmp path = Io.remove (path ^ ".tmp")

let create path : writer =
  sweep_tmp path;
  { f = Io.openf path ~mode:Io.Create_trunc; pos = 0 }

(* Same sanity bound as the WAL scanner: a corrupt length field must not
   make a walk skip (or allocate) gigabytes. *)
let max_entry = 1 lsl 30

(* Byte length of the well-framed prefix: frames are hopped by their
   length field (CRC is not checked — a complete-but-corrupt frame still
   frames itself); the walk stops at the first short frame. *)
let framed_prefix (data : string) : int =
  let len = String.length data in
  let b = Bytes.unsafe_of_string data in
  let pos = ref 0 in
  (try
     while !pos + 8 <= len do
       let n = Int32.to_int (Bytes.get_int32_le b !pos) in
       if n < 0 || n > max_entry || !pos + 8 + n > len then raise Exit;
       pos := !pos + 8 + n
     done
   with Exit -> ());
  !pos

(* Reopening after a shipper crash: a torn tail (an append the crash cut
   short) is chopped off before appending resumes, so the frame stream
   stays parseable.  Complete-but-corrupt frames are left in place — the
   replica detects them and quarantines. *)
let open_append path : writer =
  if not (Sys.file_exists path) then create path
  else begin
    sweep_tmp path;
    let data = read_file path in
    let valid = framed_prefix data in
    let f = Io.openf path ~mode:Io.Write in
    if valid < String.length data then Io.ftruncate f valid;
    Io.seek f valid;
    { f; pos = valid }
  end

let position w = w.pos

let append w (e : entry) =
  Fault.hit site_append;
  let framed = Wal.frame_payload (encode e) in
  Io.write w.f framed;
  w.pos <- w.pos + String.length framed

let sync w =
  Fault.hit site_sync;
  Io.fsync w.f

let truncate_to w pos =
  Io.ftruncate w.f pos;
  Io.seek w.f pos;
  w.pos <- pos

let close w = Io.close w.f

(* ---- Reader ---- *)

type item =
  | Entry of entry
  | Damage of { offset : int }

let size = Io.file_size

(* Walk the feed from [offset].  Each item is paired with the byte
   offset just past its frame — the reader's resume point.  A
   CRC-mismatched or undecodable frame becomes [Damage] and the walk
   continues past it (its length field still frames it); a short tail
   (an append in flight, or one a crash cut off) stops the walk and is
   reported so the reader can retry from there. *)
let read_from path ~offset : (item * int) list * int option =
  if not (Sys.file_exists path) then ([], None)
  else begin
    let data = read_file path in
    let len = String.length data in
    if offset > len then
      (* the file shrank under us: it is not the feed we were reading *)
      ([ (Damage { offset }, offset) ], None)
    else begin
      let b = Bytes.unsafe_of_string data in
      let items = ref [] in
      let torn_at = ref None in
      let pos = ref offset in
      (try
         while !pos + 8 <= len do
           let n = Int32.to_int (Bytes.get_int32_le b !pos) in
           if n < 0 || n > max_entry || !pos + 8 + n > len then begin
             torn_at := Some !pos;
             raise Exit
           end;
           let stored_crc = Bytes.get_int32_le b (!pos + 4) in
           let payload = String.sub data (!pos + 8) n in
           let finish = !pos + 8 + n in
           let item =
             if Wal.crc32 payload <> stored_crc then Damage { offset = !pos }
             else
               match decode payload with
               | e -> Entry e
               | exception Corrupt _ -> Damage { offset = !pos }
           in
           items := (item, finish) :: !items;
           pos := finish
         done;
         if !pos < len then torn_at := Some !pos
       with Exit -> ());
      (List.rev !items, !torn_at)
    end
  end
