(* Per-operator resource analysis over logical plans.

   "Support Aggregate Analytic Window Function over Large Data by
   Spilling" observes that a cumulative or bounded sliding ROWS frame
   needs only a pipeline cache of w+2 positions, while RANGE frames and
   frames reaching an unbounded following edge require the whole
   partition resident.  This pass is the static side of that spill
   decision: it walks the plan bottom-up, pairs every operator with a
   resident-state bound — row widths from the schema, cardinality
   ranges from the abstract interpreter (Absint), frame caches for
   window operators — and emits RF402 ("unbounded window state") for
   frames whose memory grows with the data instead of the frame, and
   RF403 ("estimated footprint exceeds budget") when the plan's total
   resident bytes exceed (or cannot be bounded against) the budget. *)

module Logical = Rfview_planner.Logical
open Rfview_relalg

type op_cost = {
  oc_op : string;           (* operator label, root-first path segment *)
  oc_rows : Domain.Card.t;  (* input row range the state is built from *)
  oc_width : int;           (* input row width estimate, bytes *)
  oc_state_rows : Domain.Card.t;  (* resident rows *)
  oc_bytes : int option;    (* resident byte bound; None = unbounded *)
}

type report = {
  ops : op_cost list;       (* pre-order, root first *)
  total_bytes : int option; (* sum over operators; None = unbounded *)
  diags : Diagnostic.t list;
}

let default_budget = 64 * 1024 * 1024

(* Row width estimate: the boxed in-memory footprint of one row, one
   word per field plus the payload. *)
let width_of_type = function
  | Dtype.Bool -> 9
  | Dtype.Int -> 16
  | Dtype.Float -> 16
  | Dtype.Date -> 16
  | Dtype.String -> 40 (* header + short payload estimate *)

let width_of_schema (s : Schema.t) =
  Array.fold_left (fun acc c -> acc + width_of_type c.Schema.ty) 8 s

let mul_bytes (c : Domain.Card.t) width =
  match c.Domain.Card.hi with
  | None -> None
  | Some hi -> Some (hi * width)

let diag code msg = Diagnostic.make ~code ~path:[ "plan" ] msg

(* Resident window state in rows for one window function: [Ok rows]
   when bounded by the frame alone, [Error reason] when the whole
   partition must be resident (over-approximated by the input rows). *)
let window_state_rows (fn : Logical.window_fn) : (int, string) result =
  let frame_state (f : Window.frame) =
    match f.Window.mode with
    | Window.Range -> Error "RANGE frame measures key distance"
    | Window.Rows ->
      (match (f.Window.lo, f.Window.hi) with
       | _, Window.Unbounded_following ->
         Error "ROWS frame reaches UNBOUNDED FOLLOWING"
       | Window.Unbounded_following, _ ->
         Error "ROWS frame starts at UNBOUNDED FOLLOWING"
       | Window.Unbounded_preceding, Window.Current_row
       | Window.Unbounded_preceding, Window.Preceding _
       | Window.Unbounded_preceding, Window.Unbounded_preceding ->
         Ok 2 (* cumulative: running value + current row *)
       | Window.Unbounded_preceding, Window.Following h -> Ok (h + 2)
       | (Window.Preceding l | Window.Following l), hi ->
         let h =
           match hi with
           | Window.Preceding h | Window.Following h -> h
           | Window.Current_row -> 0
           | Window.Unbounded_preceding -> 0
           | Window.Unbounded_following -> assert false
         in
         (* frame cache of w+2 positions, w = frame width *)
         Ok (l + h + 1 + 2)
       | Window.Current_row, hi ->
         let h =
           match hi with
           | Window.Preceding h | Window.Following h -> h
           | Window.Current_row -> 0
           | Window.Unbounded_preceding -> 0
           | Window.Unbounded_following -> assert false
         in
         Ok (h + 3))
  in
  match fn.Logical.func with
  | Window.Row_number | Window.Rank | Window.Dense_rank ->
    Ok 2 (* rank family streams with peer lookahead *)
  | Window.Lag n | Window.Lead n -> Ok (n + 2)
  | Window.Agg _ | Window.First_value | Window.Last_value ->
    frame_state fn.Logical.frame

let card_min (c : Domain.Card.t) n =
  match c.Domain.Card.hi with
  | None -> Domain.Card.of_bounds (min c.Domain.Card.lo n) (Some n)
  | Some hi -> Domain.Card.of_bounds (min c.Domain.Card.lo n) (Some (min hi n))

(* ---- The walk ---- *)

let analyze ?env ?(budget = default_budget) (plan : Logical.t) : report =
  let ops = ref [] in
  let diags = ref [] in
  let abs p = Absint.analyze ?env p in
  (* returns the input abstraction of every node's parent, i.e. the
     node's own output abstraction, while accumulating costs root-last;
     [ops] is reversed into pre-order at the end *)
  let record ~op ~input ~state_rows ~width =
    let bytes = mul_bytes state_rows width in
    ops :=
      {
        oc_op = op;
        oc_rows = (abs input).Domain.rows;
        oc_width = width;
        oc_state_rows = state_rows;
        oc_bytes = bytes;
      }
      :: !ops
  in
  let rec walk (p : Logical.t) =
    (match p with
     | Logical.Scan _ | Logical.Filter _ | Logical.Project _
     | Logical.Alias _ | Logical.Limit _ | Logical.Union_all _ ->
       () (* streaming: no resident state beyond the current row *)
     | Logical.Sort { input; _ } ->
       let r = (abs input).Domain.rows in
       record ~op:"Sort" ~input ~state_rows:r
         ~width:(width_of_schema (Logical.schema input))
     | Logical.Distinct input ->
       let r = (abs input).Domain.rows in
       record ~op:"Distinct" ~input ~state_rows:r
         ~width:(width_of_schema (Logical.schema input))
     | Logical.Aggregate { input; _ } ->
       (* resident state: one accumulator row per group = output rows *)
       record ~op:"Aggregate" ~input ~state_rows:(abs p).Domain.rows
         ~width:(width_of_schema (Logical.schema p))
     | Logical.Join { right; _ } ->
       (* hash build side *)
       record ~op:"Join" ~input:right ~state_rows:(abs right).Domain.rows
         ~width:(width_of_schema (Logical.schema right))
     | Logical.Number { input; _ } ->
       (* numbering sorts each partition: whole input resident *)
       record ~op:"Number" ~input ~state_rows:(abs input).Domain.rows
         ~width:(width_of_schema (Logical.schema input))
     | Logical.Window_op { input; fns } ->
       let in_rows = (abs input).Domain.rows in
       let width = width_of_schema (Logical.schema input) in
       List.iter
         (fun fn ->
           match window_state_rows fn with
           | Ok w ->
             record
               ~op:(Printf.sprintf "Window(%s)" fn.Logical.name)
               ~input ~state_rows:(card_min in_rows w) ~width
           | Error reason ->
             (* whole partition resident: bounded only by the input *)
             record
               ~op:(Printf.sprintf "Window(%s)" fn.Logical.name)
               ~input ~state_rows:in_rows ~width;
             diags :=
               diag "RF402"
                 (Printf.sprintf
                    "unbounded window state for %s: %s, so the whole \
                     partition must be resident; a cumulative or bounded \
                     ROWS frame needs only a w+2 cache"
                    fn.Logical.name reason)
               :: !diags)
         fns);
    match p with
    | Logical.Scan _ -> ()
    | Logical.Filter { input; _ }
    | Logical.Project { input; _ }
    | Logical.Alias { input; _ }
    | Logical.Limit { input; _ }
    | Logical.Sort { input; _ }
    | Logical.Number { input; _ }
    | Logical.Window_op { input; _ }
    | Logical.Aggregate { input; _ } -> walk input
    | Logical.Distinct input -> walk input
    | Logical.Join { left; right; _ } ->
      walk left;
      walk right
    | Logical.Union_all { left; right } ->
      walk left;
      walk right
  in
  walk plan;
  let ops = List.rev !ops in
  let total_bytes =
    List.fold_left
      (fun acc oc ->
        match (acc, oc.oc_bytes) with
        | Some a, Some b -> Some (a + b)
        | _ -> None)
      (Some 0) ops
  in
  let diags =
    List.rev !diags
    @
    match total_bytes with
    | None ->
      [
        diag "RF403"
          (Printf.sprintf
             "estimated footprint cannot be bounded against the %d-byte \
              budget (unbounded operator state)"
             budget);
      ]
    | Some t when t > budget ->
      [
        diag "RF403"
          (Printf.sprintf "estimated footprint %d bytes exceeds the %d-byte budget"
             t budget);
      ]
    | Some _ -> []
  in
  { ops; total_bytes; diags }

let to_string r =
  let buf = Buffer.create 256 in
  (match r.total_bytes with
   | Some t -> Buffer.add_string buf (Printf.sprintf "footprint: <= %d bytes\n" t)
   | None -> Buffer.add_string buf "footprint: unbounded\n");
  List.iter
    (fun oc ->
      Buffer.add_string buf
        (Printf.sprintf "  %-18s rows %s * %d B -> state %s%s\n" oc.oc_op
           (Domain.Card.to_string oc.oc_rows)
           oc.oc_width
           (Domain.Card.to_string oc.oc_state_rows)
           (match oc.oc_bytes with
            | Some b -> Printf.sprintf " (<= %d B)" b
            | None -> " (unbounded)")))
    r.ops;
  Buffer.contents buf
