(* Typed well-formedness checking of logical plans.

   The walk is bottom-up and recomputes every node's output schema
   itself (rather than calling [Logical.schema]) so that a broken
   subtree yields diagnostics instead of an exception, and so that
   checking continues in siblings of a broken branch.  When a node's
   schema cannot be established its ancestors are skipped — their
   expressions have nothing sound to be checked against. *)

open Rfview_relalg
module Logical = Rfview_planner.Logical

let diag code path fmt = Format.kasprintf (Diagnostic.make ~code ~path) fmt

let label : Logical.t -> string = function
  | Logical.Scan { table; _ } -> Printf.sprintf "Scan(%s)" table
  | Logical.Filter _ -> "Filter"
  | Logical.Project _ -> "Project"
  | Logical.Join _ -> "Join"
  | Logical.Aggregate _ -> "Aggregate"
  | Logical.Window_op _ -> "Window"
  | Logical.Number _ -> "Number"
  | Logical.Sort _ -> "Sort"
  | Logical.Distinct _ -> "Distinct"
  | Logical.Limit _ -> "Limit"
  | Logical.Union_all _ -> "UnionAll"
  | Logical.Alias _ -> "Alias"

(* ---- Expression-level checks ---- *)

(* Column bounds plus static typing; returns the inferred type when the
   expression is clean ([Ok None] = always NULL). *)
let check_expr ~path ~what (schema : Schema.t) (e : Expr.t) :
    (Dtype.t option, Diagnostic.t list) result =
  let arity = Schema.arity schema in
  match List.filter (fun i -> i < 0 || i >= arity) (Expr.columns e) with
  | _ :: _ as oob ->
    Result.Error
      (List.map
         (fun i ->
           diag "RF101" path "%s references column $%d but the input has %d columns"
             what i arity)
         oob)
  | [] ->
    (match Expr.infer_type schema e with
     | ty -> Result.Ok ty
     | exception Expr.Type_mismatch m ->
       Result.Error [ diag "RF102" path "%s is ill-typed: %s" what m ])

let expr_diags ~path ~what schema e =
  match check_expr ~path ~what schema e with
  | Result.Ok _ -> []
  | Result.Error ds -> ds

(* A predicate must type as boolean (None = the always-NULL literal,
   which SQL accepts and treats as not-TRUE). *)
let pred_diags ~path ~what schema e =
  match check_expr ~path ~what schema e with
  | Result.Error ds -> ds
  | Result.Ok (Some Dtype.Bool) | Result.Ok None -> []
  | Result.Ok (Some ty) ->
    [ diag "RF103" path "%s must be boolean, not %s" what (Dtype.to_string ty) ]

let keys_diags ~path ~what schema keys =
  List.concat
    (List.mapi
       (fun i (k : Sortop.key) ->
         expr_diags ~path ~what:(Printf.sprintf "%s %d" what (i + 1)) schema k.Sortop.expr)
       keys)

(* ---- Window frame sanity (RF104) ---- *)

let bound_offset = function
  | Window.Unbounded_preceding -> min_int
  | Window.Preceding n -> -n
  | Window.Current_row -> 0
  | Window.Following n -> n
  | Window.Unbounded_following -> max_int

let frame_diags ~path ~name ~order (f : Window.frame) =
  let negative =
    List.filter_map
      (fun b ->
        match b with
        | Window.Preceding n | Window.Following n when n < 0 ->
          Some
            (diag "RF104" path "window %s: negative frame offset %d" name n)
        | _ -> None)
      [ f.Window.lo; f.Window.hi ]
  in
  let ordering =
    if negative = [] && bound_offset f.Window.lo > bound_offset f.Window.hi then
      [ diag "RF104" path
          "window %s: frame lower bound lies above the upper bound (the frame is empty)"
          name ]
    else []
  in
  let range =
    if f.Window.mode = Window.Range && List.length order <> 1 then
      [ diag "RF104" path
          "window %s: RANGE frames require exactly one ORDER BY key, found %d" name
          (List.length order) ]
    else []
  in
  negative @ ordering @ range

(* ---- Operator-level checks ---- *)

let numeric_agg_diags ~path ~what schema (kind : Aggregate.kind) (arg : Expr.t) =
  match kind with
  | Aggregate.Sum | Aggregate.Avg ->
    (match check_expr ~path ~what schema arg with
     | Result.Ok (Some ty) when not (Dtype.is_numeric ty) ->
       [ diag "RF106" path "%s: %s needs a numeric argument, got %s" what
           (Aggregate.kind_name kind) (Dtype.to_string ty) ]
     | _ -> [])
  | Aggregate.Count | Aggregate.Min | Aggregate.Max -> []

let window_fn_diags ~path schema (fn : Logical.window_fn) =
  let name = fn.Logical.name in
  let arg_what = Printf.sprintf "window %s argument" name in
  let arg = expr_diags ~path ~what:arg_what schema fn.Logical.arg in
  let partition =
    List.concat
      (List.mapi
         (fun i e ->
           expr_diags ~path
             ~what:(Printf.sprintf "window %s partition key %d" name (i + 1))
             schema e)
         fn.Logical.partition)
  in
  let order =
    keys_diags ~path ~what:(Printf.sprintf "window %s order key" name) schema
      fn.Logical.order
  in
  let frame = frame_diags ~path ~name ~order:fn.Logical.order fn.Logical.frame in
  let needs_order =
    match fn.Logical.func with
    | Window.Row_number | Window.Rank | Window.Dense_rank | Window.Lag _
    | Window.Lead _ ->
      if fn.Logical.order = [] then
        [ diag "RF107" path "window %s: %s requires an ORDER BY clause" name
            (Window.func_name fn.Logical.func) ]
      else []
    | Window.Agg _ | Window.First_value | Window.Last_value -> []
  in
  let numeric =
    match fn.Logical.func with
    | Window.Agg kind ->
      numeric_agg_diags ~path ~what:(Printf.sprintf "window %s" name) schema kind
        fn.Logical.arg
    | _ -> []
  in
  arg @ partition @ order @ frame @ needs_order @ numeric

(* Does [name] already exist (possibly several times) in [schema]? *)
let name_exists schema name =
  try Schema.find_opt schema name <> None
  with Schema.Ambiguous_column _ -> true

(* The walk: returns the node's output schema when it could be
   established, plus all diagnostics of the subtree. *)
let rec go parent (p : Logical.t) : Schema.t option * Diagnostic.t list =
  let path = parent @ [ label p ] in
  match p with
  | Logical.Scan { schema; _ } -> (Some schema, [])
  | Logical.Filter { input; pred } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch -> (Some sch, ds @ pred_diags ~path ~what:"filter predicate" sch pred))
  | Logical.Project { input; exprs } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch ->
       let cols, dss =
         List.split
           (List.map
              (fun (e, name) ->
                let what = Printf.sprintf "projected column %s" name in
                match check_expr ~path ~what sch e with
                | Result.Error es -> (None, es)
                | Result.Ok None ->
                  ( None,
                    [ diag "RF105" path
                        "%s has no inferable type (e.g. a bare NULL); the output \
                         schema would be a guess"
                        what ] )
                | Result.Ok (Some ty) -> (Some (Schema.column name ty), []))
              exprs)
       in
       let ds = ds @ List.concat dss in
       if List.for_all Option.is_some cols then
         (Some (Schema.make (List.map Option.get cols)), ds)
       else (None, ds))
  | Logical.Join { left; right; cond; _ } ->
    let sl, dl = go path left in
    let sr, dr = go path right in
    (match sl, sr with
     | Some l, Some r ->
       let combined = Schema.append l r in
       ( Some combined,
         dl @ dr @ pred_diags ~path ~what:"join condition" combined cond )
     | _ -> (None, dl @ dr))
  | Logical.Aggregate { input; group; aggs } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch ->
       let gds =
         List.concat
           (List.mapi
              (fun i e ->
                expr_diags ~path ~what:(Printf.sprintf "group key %d" (i + 1)) sch e)
              group)
       in
       let ads =
         List.concat_map
           (fun (a : Groupop.agg_spec) ->
             let what = Printf.sprintf "aggregate %s" a.Groupop.name in
             expr_diags ~path ~what sch a.Groupop.arg
             @ numeric_agg_diags ~path ~what sch a.Groupop.kind a.Groupop.arg)
           aggs
       in
       let ds = ds @ gds @ ads in
       if ds = [] then (Some (Groupop.output_schema sch group aggs), ds)
       else
         ( (try Some (Groupop.output_schema sch group aggs) with _ -> None),
           ds ))
  | Logical.Window_op { input; fns } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch ->
       let fds = List.concat_map (window_fn_diags ~path sch) fns in
       let out =
         try Some (Window.output_schema sch (List.map Logical.to_relalg_fn fns))
         with _ -> None
       in
       (out, ds @ fds))
  | Logical.Number { input; partition; order; name } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch ->
       let pds =
         List.concat
           (List.mapi
              (fun i e ->
                expr_diags ~path
                  ~what:(Printf.sprintf "Number partition key %d" (i + 1))
                  sch e)
              partition)
       in
       let ods = keys_diags ~path ~what:"Number order key" sch order in
       let contract =
         if name = "" then
           [ diag "RF110" path "Number needs a non-empty output column name" ]
         else if name_exists sch name then
           [ diag "RF110" path
               "Number output column %s collides with an input column" name ]
         else []
       in
       ( Some (Schema.append sch (Schema.make [ Schema.column name Dtype.Int ])),
         ds @ pds @ ods @ contract ))
  | Logical.Sort { input; keys } ->
    let s, ds = go path input in
    (match s with
     | None -> (None, ds)
     | Some sch -> (Some sch, ds @ keys_diags ~path ~what:"sort key" sch keys))
  | Logical.Distinct input -> go path input
  | Logical.Limit { input; n } ->
    let s, ds = go path input in
    let nd =
      if n < 0 then [ diag "RF108" path "LIMIT %d is negative" n ] else []
    in
    (s, ds @ nd)
  | Logical.Union_all { left; right } ->
    let sl, dl = go path left in
    let sr, dr = go path right in
    (match sl, sr with
     | Some l, Some r ->
       (* names come from the first operand; arity and types must agree *)
       let compatible =
         Schema.arity l = Schema.arity r
         && List.for_all
              (fun i -> (Schema.col l i).Schema.ty = (Schema.col r i).Schema.ty)
              (List.init (Schema.arity l) Fun.id)
       in
       let mismatch =
         if compatible then []
         else
           [ diag "RF109" path
               "UNION operand schemas disagree: %s vs %s" (Schema.to_string l)
               (Schema.to_string r) ]
       in
       (Some l, dl @ dr @ mismatch)
     | _ -> (None, dl @ dr))
  | Logical.Alias { input; rel } ->
    let s, ds = go path input in
    let contract =
      if rel = "" then
        [ diag "RF110" path "Alias needs a non-empty relation name" ]
      else []
    in
    (Option.map (Schema.with_rel rel) s, ds @ contract)

let check p = snd (go [] p)

let well_formed p = check p = []
