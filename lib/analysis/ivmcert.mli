(** Incrementality certificates for generalized view maintenance.

    The machine-checkable mirror of {!Rfview_planner.Deriv}'s
    preconditions: {!certify} walks a view's logical plan independently
    of the deriver and discharges (or fails) one named proof obligation
    per delta-rule condition — operator linearity, join bilinearity,
    GROUP BY key locality/preservation, window partition locality.
    Failed obligations carry RF30x diagnostics for [rfview analyze].

    The defining property, enforced by the cert-iff-derive matrix in
    [test/test_ivm.ml] and relied on by the engine (which installs a
    derived maintenance plan only when certificate and deriver agree):

    [valid (certify plan)] iff [Result.is_ok (Deriv.derive plan)]. *)

(** Same record as {!Cert.obligation}: a named precondition with its
    discharge status and a human-readable instantiation. *)
type obligation = Cert.obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

type t = {
  view : string;
  shape : string;  (** ["linear"], ["group-by"] or ["window"] *)
  obligations : obligation list;
  diags : Diagnostic.t list;  (** one RF30x diagnostic per failure *)
}

(** All obligations discharged: the delta plan derivation is sound. *)
val valid : t -> bool

val certify : ?view:string -> Rfview_planner.Logical.t -> t

(** Multi-line rendering: header with DERIVED/REJECTED, one
    ["  ok ..."] / ["  FAIL ..."] line per obligation. *)
val to_string : t -> string
