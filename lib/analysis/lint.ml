(* Lint rules over logical plans and view derivations.  See the .mli
   for the rule inventory; Diagnostic.registry documents each code. *)

open Rfview_relalg
module Logical = Rfview_planner.Logical
module Rewrite = Rfview_planner.Rewrite
module Core = Rfview_core
module Iset = Set.Make (Int)

let diag code path fmt = Format.kasprintf (Diagnostic.make ~code ~path) fmt

let is_cumulative (f : Window.frame) =
  f.Window.lo = Window.Unbounded_preceding
  && f.Window.hi = Window.Current_row
  && f.Window.mode = Window.Rows

let invertible = function
  | Aggregate.Sum | Aggregate.Count | Aggregate.Avg -> true
  | Aggregate.Min | Aggregate.Max -> false

(* ---- RF001 / RF004 / RF006: a plain walk ---- *)

let rec walk ~self_join parent (p : Logical.t) : Diagnostic.t list =
  let path = parent @ [ Check.label p ] in
  let mine =
    match p with
    | Logical.Filter { pred; _ } ->
      List.filter_map
        (fun c ->
          if Expr.columns c = [] then
            Some
              (diag "RF006" path
                 "filter conjunct %s references no columns and can be folded at \
                  plan time"
                 (Expr.to_string c))
          else None)
        (Expr.conjuncts pred)
    | Logical.Window_op { fns; _ } when self_join ->
      List.concat_map
        (fun (fn : Logical.window_fn) ->
          match fn.Logical.func with
          | Window.Agg kind ->
            let dropped =
              if
                fn.Logical.frame.Window.mode = Window.Rows
                && not (Rewrite.frame_contains_current fn.Logical.frame)
              then
                [ diag "RF001" path
                    "window %s: the frame does not contain the current row; the \
                     Fig. 2 self-join simulation drops rows with empty frames"
                    fn.Logical.name ]
              else []
            in
            let pipelined =
              if is_cumulative fn.Logical.frame && invertible kind then
                [ diag "RF004" path
                    "window %s: a cumulative %s is computable by the O(n) \
                     pipelined recursion; the self-join simulation costs O(n*w)"
                    fn.Logical.name (Aggregate.kind_name kind) ]
              else []
            in
            dropped @ pipelined
          | _ -> [])
        fns
    | _ -> []
  in
  let children =
    match p with
    | Logical.Scan _ -> []
    | Logical.Filter { input; _ }
    | Logical.Project { input; _ }
    | Logical.Aggregate { input; _ }
    | Logical.Window_op { input; _ }
    | Logical.Number { input; _ }
    | Logical.Sort { input; _ }
    | Logical.Distinct input
    | Logical.Limit { input; _ }
    | Logical.Alias { input; _ } -> walk ~self_join path input
    | Logical.Join { left; right; _ } | Logical.Union_all { left; right } ->
      walk ~self_join path left @ walk ~self_join path right
  in
  mine @ children

(* ---- RF005: unused projected columns ----

   Top-down pass threading the set of output positions each node's
   ancestors actually consume.  A Project output outside that set is
   dead weight.  The root's outputs are the query result and therefore
   always "used". *)

let iset_of_list l = List.fold_left (fun s i -> Iset.add i s) Iset.empty l

let all_cols schema = iset_of_list (List.init (Schema.arity schema) Fun.id)

let cols_of_exprs exprs =
  iset_of_list (List.concat_map Expr.columns exprs)

let rec unused parent (required : Iset.t) (p : Logical.t) : Diagnostic.t list =
  let path = parent @ [ Check.label p ] in
  match p with
  | Logical.Scan _ -> []
  | Logical.Filter { input; pred } ->
    unused path (Iset.union required (cols_of_exprs [ pred ])) input
  | Logical.Project { input; exprs } ->
    let mine =
      List.concat
        (List.mapi
           (fun i (_, name) ->
             if Iset.mem i required then []
             else
               [ diag "RF005" path
                   "projected column %s is never used by any ancestor operator"
                   name ])
           exprs)
    in
    let live = List.filteri (fun i _ -> Iset.mem i required) (List.map fst exprs) in
    mine @ unused path (cols_of_exprs live) input
  | Logical.Join { left; right; cond; _ } ->
    let la = Schema.arity (Logical.schema left) in
    let wanted = Iset.union required (cols_of_exprs [ cond ]) in
    let left_req = Iset.filter (fun i -> i < la) wanted in
    let right_req =
      Iset.filter_map (fun i -> if i >= la then Some (i - la) else None) wanted
    in
    unused path left_req left @ unused path right_req right
  | Logical.Aggregate { input; group; aggs } ->
    (* grouping semantics need every group key regardless of projection *)
    let req =
      cols_of_exprs (group @ List.map (fun (a : Groupop.agg_spec) -> a.Groupop.arg) aggs)
    in
    unused path req input
  | Logical.Window_op { input; fns } ->
    let n = Schema.arity (Logical.schema input) in
    let internal =
      cols_of_exprs
        (List.concat_map
           (fun (fn : Logical.window_fn) ->
             (fn.Logical.arg :: fn.Logical.partition)
             @ List.map (fun (k : Sortop.key) -> k.Sortop.expr) fn.Logical.order)
           fns)
    in
    let passthrough = Iset.filter (fun i -> i < n) required in
    unused path (Iset.union passthrough internal) input
  | Logical.Number { input; partition; order; _ } ->
    let n = Schema.arity (Logical.schema input) in
    let internal =
      cols_of_exprs
        (partition @ List.map (fun (k : Sortop.key) -> k.Sortop.expr) order)
    in
    let passthrough = Iset.filter (fun i -> i < n) required in
    unused path (Iset.union passthrough internal) input
  | Logical.Sort { input; keys } ->
    let key_cols = cols_of_exprs (List.map (fun (k : Sortop.key) -> k.Sortop.expr) keys) in
    unused path (Iset.union required key_cols) input
  | Logical.Distinct input ->
    (* DISTINCT compares entire rows: every column is semantically used *)
    unused path (all_cols (Logical.schema input)) input
  | Logical.Limit { input; _ } -> unused path required input
  | Logical.Union_all { left; right } ->
    unused path required left @ unused path required right
  | Logical.Alias { input; _ } -> unused path required input

(* ---- Entry points ---- *)

let plan ?(self_join = false) (p : Logical.t) : Diagnostic.t list =
  if List.exists Diagnostic.is_error (Check.check p) then []
  else
    walk ~self_join [] p @ unused [] (all_cols (Logical.schema p)) p

let derivation ~(view_frame : Core.Frame.t) ~(view_agg : Core.Agg.t)
    ~(query_frame : Core.Frame.t) ~complete : Diagnostic.t list =
  let path = [ "Derive" ] in
  let completeness =
    if complete then []
    else
      [ diag "RF003" path
          "the source sequence view is incomplete (missing header/trailer \
           positions); derived values at the sequence borders would be wrong" ]
  in
  let coverage =
    match view_agg, view_frame, query_frame with
    | (Core.Agg.Min | Core.Agg.Max), Core.Frame.Sliding { l = lx; h = hx },
      Core.Frame.Sliding { l = ly; h = hy } ->
      let dl = ly - lx and dh = hy - hx in
      if dl < 0 || dh < 0 then
        [ diag "RF002" path
            "MaxOA cannot shrink a %s window (delta_l = %d, delta_h = %d must \
             be non-negative)"
            (Core.Agg.name view_agg) dl dh ]
      else if dl + dh > lx + hx then
        [ diag "RF002" path
            "MaxOA coverage violated: delta_l + delta_h = %d exceeds lx + hx = \
             %d; the shifted view windows cannot cover the %s query window"
            (dl + dh) (lx + hx) (Core.Agg.name view_agg) ]
      else []
    | (Core.Agg.Min | Core.Agg.Max), Core.Frame.Cumulative, Core.Frame.Sliding _ ->
      [ diag "RF002" path
          "a sliding %s window cannot be derived from a cumulative view (only \
           SUM supports the difference rule)"
          (Core.Agg.name view_agg) ]
    | _ -> []
  in
  completeness @ coverage
