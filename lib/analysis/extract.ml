(* SQL extraction from OCaml sources — see the .mli.  A small hand
   scanner: we only need to be right about what is and is not a string
   literal, and OCaml's lexical conventions for those are simple enough
   to handle directly (regular strings with backslash escapes, quoted
   strings {id|...|id}, (* *) comments that nest, and character
   literals, whose quote must not open a string). *)

module Parser = Rfview_sql.Parser

type extracted = {
  line : int;
  sql : string;
  stmt : Rfview_sql.Ast.statement;
}

let string_literals (src : string) : (int * string) list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let bump c = if c = '\n' then incr line in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  (* skip a (possibly nested) comment; cursor on the '(' of "(*" *)
  let skip_comment () =
    i := !i + 2;
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      (match src.[!i], peek 1 with
       | '(', Some '*' ->
         incr depth;
         incr i
       | '*', Some ')' ->
         decr depth;
         incr i
       | c, _ -> bump c);
      incr i
    done
  in
  let read_regular_string start_line =
    (* cursor on the opening quote *)
    incr i;
    let buf = Buffer.create 32 in
    let fin = ref false in
    while (not !fin) && !i < n do
      (match src.[!i], peek 1 with
       | '\\', Some ('\\' | '"' | '\'' | 'n' | 't' | 'r' | 'b' | ' ') ->
         (* decoded escapes: enough for embedded SQL (numeric escapes in
            SQL text do not occur in this codebase) *)
         (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | c -> Buffer.add_char buf c);
         incr i
       | '\\', Some '\n' ->
         (* line continuation: skip the newline and following blanks *)
         incr i;
         bump '\n';
         incr i;
         while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
           incr i
         done;
         i := !i - 1
       | '"', _ -> fin := true
       | c, _ ->
         bump c;
         Buffer.add_char buf c);
      incr i
    done;
    out := (start_line, Buffer.contents buf) :: !out
  in
  let read_quoted_string start_line =
    (* cursor on the '{' of "{id|" *)
    let j = ref (!i + 1) in
    let idbuf = Buffer.create 4 in
    while
      !j < n
      && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      Buffer.add_char idbuf src.[!j];
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let id = Buffer.contents idbuf in
      let closer = "|" ^ id ^ "}" in
      let body_start = !j + 1 in
      let stop =
        let rec find k =
          if k + String.length closer > n then n
          else if String.sub src k (String.length closer) = closer then k
          else find (k + 1)
        in
        find body_start
      in
      let body = String.sub src body_start (min stop n - body_start) in
      String.iter bump (String.sub src !i (min (stop + String.length closer) n - !i));
      out := (start_line, body) :: !out;
      i := min (stop + String.length closer) n
    end
    else incr i
  in
  while !i < n do
    (match src.[!i], peek 1 with
     | '(', Some '*' -> skip_comment ()
     | '"', _ -> read_regular_string !line
     | '{', Some ('a' .. 'z' | '_' | '|') -> read_quoted_string !line
     | '\'', Some c when peek 2 = Some '\'' ->
       (* simple character literal 'x' *)
       bump c;
       i := !i + 3
     | '\'', Some '\\' ->
       (* escaped character literal: skip to the closing quote *)
       i := !i + 2;
       while !i < n && src.[!i] <> '\'' do
         bump src.[!i];
         incr i
       done;
       incr i
     | c, _ ->
       bump c;
       incr i)
  done;
  List.rev !out

(* First word of a literal, uppercased. *)
let first_word s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r') do
    incr i
  done;
  let j = ref !i in
  while
    !j < n && (match s.[!j] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  do
    incr j
  done;
  String.uppercase_ascii (String.sub s !i (!j - !i))

let statement_starter = function
  | "SELECT" | "CREATE" | "INSERT" | "UPDATE" | "DELETE" | "DROP" | "REFRESH"
  | "WITH" -> true
  | _ -> false

let extract (src : string) : extracted list =
  string_literals src
  |> List.concat_map (fun (line, s) ->
         if not (statement_starter (first_word s)) then []
         else
           (* one literal may hold a whole ;-separated script *)
           match Parser.statements s with
           | stmts -> List.map (fun stmt -> { line; sql = s; stmt }) stmts
           | exception _ -> [])

let extract_file path =
  extract (In_channel.with_open_text path In_channel.input_all)
