(** Abstract domains of the plan-level abstract interpreter
    ({!Absint}): the product of a numeric interval domain (with
    widening), a nullability lattice, cardinality ranges for row and
    distinct counts, three-valued abstract booleans, and
    sequence-completeness facts for materialized sequence views.

    Conventions shared by every consumer:
    - an interval constrains only the {e non-NULL} values of a column;
      whether NULL occurs is tracked separately by {!Null};
    - all numeric reasoning is over floats with IEEE infinities as
      "unbounded" — sound for INT columns because every int the engine
      produces is magnitude-representable (the overflow lint {b RF204}
      flags the cases where that stops being exact);
    - containment checks accept a small relative epsilon so that a
      mathematically tight bound is not flagged over float rounding in
      the concrete evaluator. *)

open Rfview_relalg
module Core := Rfview_core

(** {1 Numeric intervals} *)

module Itv : sig
  (** [Bot] is the empty interval (no non-NULL value ever observed);
      otherwise [lo <= hi] with IEEE infinities as open ends. *)
  type t =
    | Bot
    | Itv of { lo : float; hi : float }

  val top : t
  val bot : t
  val const : float -> t

  (** Normalizes an empty ([lo > hi] or NaN) pair to [Bot]. *)
  val of_bounds : float -> float -> t

  val is_bot : t -> bool
  val is_top : t -> bool
  val equal : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t

  (** Classic interval widening: bounds that grew jump to infinity.
      [widen old new] stabilizes any ascending chain in <= 2 steps. *)
  val widen : t -> t -> t

  val leq : t -> t -> bool

  (** Interval arithmetic (sound over-approximations; [Bot] absorbs). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** Sound for both SQL division semantics: float division (divisor 0
      gives ±infinity) and truncating INT division (result may round
      toward zero by < 1 from the real quotient). *)
  val div : t -> t -> t

  (** Floored modulo / float remainder: bounded by the modulus magnitude. *)
  val modulo : t -> t -> t

  val abs : t -> t

  (** Hull of [n] summands from [t], for [n] in a cardinality range —
      the transfer function of SUM. *)
  val sum_n : t -> lo:int -> hi:int option -> t

  (** [contains ~eps t v]: [v] within [t] up to relative slack [eps]
      (default 1e-6). *)
  val contains : ?eps:float -> t -> float -> bool

  val to_string : t -> string
end

(** {1 Nullability} *)

module Null : sig
  type t =
    | Never
    | Maybe
    | Always

  val join : t -> t -> t
  val leq : t -> t -> bool
  val to_string : t -> string
end

(** {1 Cardinality ranges} *)

module Card : sig
  (** [lo <= hi]; [hi = None] means unbounded above. *)
  type t = {
    lo : int;
    hi : int option;
  }

  val exact : int -> t
  val of_bounds : int -> int option -> t
  val top : t
  val zero : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  (** Widening: a lower bound that shrank drops to 0, an upper bound
      that grew jumps to unbounded. *)
  val widen : t -> t -> t

  val leq : t -> t -> bool
  val add : t -> t -> t
  val mul : t -> t -> t

  (** Clamp above by [n] (the LIMIT transfer). *)
  val cap : t -> int -> t

  (** Force the lower bound down to [n] (e.g. 0 after a filter). *)
  val relax_lo : t -> int -> t

  val contains : t -> int -> bool
  val to_string : t -> string
end

(** {1 Three-valued abstract booleans}

    The set of outcomes a predicate can take under SQL three-valued
    logic. *)

module B3 : sig
  type t = {
    can_t : bool;
    can_f : bool;
    can_null : bool;
  }

  val top : t
  val const : bool -> t
  val null : t
  val join : t -> t -> t
  val equal : t -> t -> bool

  (** Kleene connectives lifted to outcome sets. *)

  val not3 : t -> t
  val and3 : t -> t -> t
  val or3 : t -> t -> t

  (** No outcome is TRUE: a filter with this predicate keeps no row. *)
  val never_true : t -> bool

  val to_string : t -> string
end

(** {1 Column and relation abstractions} *)

(** Abstract value of one column/expression: interval over its non-NULL
    values, nullability, and (for boolean expressions) the outcome set.
    [b3] is {!B3.top} for non-boolean values, [itv] is {!Itv.top} for
    non-numeric ones. *)
type aval = {
  itv : Itv.t;
  null : Null.t;
  b3 : B3.t;
}

val aval_top : aval

(** The abstraction of an expression that can never produce a value
    (empty input). *)
val aval_bot : aval

val aval_join : aval -> aval -> aval
val aval_equal : aval -> aval -> bool

type col_abs = {
  av : aval;
  distinct : Card.t;  (** distinct non-NULL values (NULL not counted) *)
}

type rel_abs = {
  cols : col_abs array;
  rows : Card.t;
}

(** {1 Concretization checks (the differential sanitizer's oracle)} *)

(** [contains_value ~eps a v]: the concrete value lies inside the
    abstract one. *)
val contains_value : ?eps:float -> aval -> Value.t -> bool

(** Exact abstraction of a concrete relation: per-column value hull,
    nullability and distinct count, exact row count.  This is the [Scan]
    transfer function when table contents are known. *)
val abstract_relation : Relation.t -> rel_abs

(** Check every row, column and cardinality of [r] against [a].
    [Error msg] names the first violated fact. *)
val check_relation : ?eps:float -> rel_abs -> Relation.t -> (unit, string) result

val col_to_string : col_abs -> string
val rel_to_string : rel_abs -> string

(** {1 Sequence-completeness facts (paper §3.2)}

    What the analyzer knows about a materialized sequence: its frame,
    raw length [n], the stored position range, and whether that range
    covers the header ([-h+1..0]) and trailer ([n+1..n+l]) required for
    derivability. *)

module Seqfact : sig
  type t = {
    frame : Core.Frame.t;
    n : int;
    stored_lo : int;
    stored_hi : int;
    complete : bool;
  }

  val of_seq : Core.Seqdata.t -> t

  (** Header coverage: positions [-h+1..0] all stored (vacuous for
      cumulative frames). *)
  val header_covered : t -> bool

  (** Trailer coverage: positions [n+1..n+l] all stored. *)
  val trailer_covered : t -> bool

  val to_string : t -> string
end
