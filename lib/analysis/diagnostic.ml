(* Diagnostics of the plan verifier and lint subsystem.  Codes are
   stable: golden tests and external tooling match on them, so existing
   codes must never be renumbered — add new ones instead (see
   DESIGN.md, "The diagnostic code registry"). *)

type severity =
  | Error
  | Warning
  | Info

type t = {
  code : string;
  severity : severity;
  message : string;
  path : string;
}

type info = {
  r_code : string;
  r_severity : severity;
  r_title : string;
  r_explanation : string;
}

let registry : info list =
  [
    {
      r_code = "RF001";
      r_severity = Warning;
      r_title = "self-join rewrite on a frame excluding the current row";
      r_explanation =
        "The Fig. 2 self-join simulation keeps a row only if its frame \
         join finds at least one partner, so a frame that does not \
         contain the current row can silently drop rows with empty \
         frames.  Use the native window operator for such frames, or \
         widen the frame to include CURRENT ROW.";
    };
    {
      r_code = "RF002";
      r_severity = Warning;
      r_title = "MaxOA coverage precondition violated";
      r_explanation =
        "Deriving a (ly, hy) MIN/MAX sequence from a materialized \
         (lx, hx) view by maximal overlapping (paper S4.2) requires \
         0 <= delta_l, 0 <= delta_h and delta_l + delta_h <= lx + hx: \
         the two shifted view windows must cover the query window.  \
         Outside that range the derivation is unsound; recompute from \
         the base table or materialize a wider view.";
    };
    {
      r_code = "RF003";
      r_severity = Warning;
      r_title = "derivation from an incomplete sequence view";
      r_explanation =
        "Derivability (paper S3.2) presumes a complete sequence: the \
         header (positions -h+1..0) and trailer (n+1..n+l) must be \
         materialized, otherwise derived values near the sequence \
         borders are wrong.  Refresh or re-materialize the view with \
         its header and trailer.";
    };
    {
      r_code = "RF004";
      r_severity = Warning;
      r_title = "cumulative window planned as an O(n*w) self join";
      r_explanation =
        "A cumulative frame over an invertible aggregate is computable \
         by the O(n) pipelined recursion x~_k = x~_{k-1} + x_k (paper \
         S2.2); the relational self-join simulation costs O(n*w) with \
         w growing to n.  Prefer the native window operator for \
         cumulative frames (drop --self-join).";
    };
    {
      r_code = "RF005";
      r_severity = Warning;
      r_title = "projected column is never used";
      r_explanation =
        "A projection computes a column no ancestor operator consumes.  \
         The column costs evaluation time and width for nothing; drop \
         it from the inner select list.";
    };
    {
      r_code = "RF006";
      r_severity = Info;
      r_title = "constant-foldable predicate";
      r_explanation =
        "A filter conjunct references no columns, so its value is the \
         same for every row and could be folded at plan time (TRUE: \
         remove the conjunct; FALSE/NULL: the subtree is empty).";
    };
    {
      r_code = "RF100";
      r_severity = Error;
      r_title = "statement failed to parse or bind";
      r_explanation =
        "The statement could not be turned into a logical plan; the \
         message carries the parser or binder error.";
    };
    {
      r_code = "RF101";
      r_severity = Error;
      r_title = "column reference out of bounds";
      r_explanation =
        "A positional column reference $i lies outside the operator's \
         input schema.  This indicates a broken plan rewrite \
         (mis-shifted column indices).";
    };
    {
      r_code = "RF102";
      r_severity = Error;
      r_title = "ill-typed expression";
      r_explanation =
        "Static typing of the expression against the operator's input \
         schema failed (e.g. arithmetic on non-numeric operands or \
         incompatible CASE branches).";
    };
    {
      r_code = "RF103";
      r_severity = Error;
      r_title = "predicate is not boolean";
      r_explanation =
        "A filter or join condition must type as BOOLEAN (or be the \
         always-NULL literal); this one infers a different type.";
    };
    {
      r_code = "RF104";
      r_severity = Error;
      r_title = "invalid window frame";
      r_explanation =
        "Window frames need non-negative offsets, a lower bound not \
         above the upper bound, and RANGE frames exactly one ORDER BY \
         key.";
    };
    {
      r_code = "RF105";
      r_severity = Error;
      r_title = "projection type cannot be inferred";
      r_explanation =
        "The type of a projected expression is unknown (e.g. a bare \
         NULL): the plan's output schema would be a guess.  Give the \
         expression a typed context, e.g. COALESCE with a typed \
         alternative.";
    };
    {
      r_code = "RF106";
      r_severity = Error;
      r_title = "aggregate argument is not numeric";
      r_explanation =
        "SUM and AVG require a numeric argument; evaluation would fail \
         on every row.";
    };
    {
      r_code = "RF107";
      r_severity = Error;
      r_title = "rank/navigation window function without ORDER BY";
      r_explanation =
        "ROW_NUMBER, RANK, DENSE_RANK, LAG and LEAD are meaningless \
         without an ordering; add an ORDER BY to the OVER clause.";
    };
    {
      r_code = "RF108";
      r_severity = Error;
      r_title = "negative LIMIT";
      r_explanation = "LIMIT takes a non-negative row count.";
    };
    {
      r_code = "RF109";
      r_severity = Error;
      r_title = "set-operation schema mismatch";
      r_explanation =
        "UNION operands must agree on arity, column names and column \
         types position by position.";
    };
    {
      r_code = "RF110";
      r_severity = Error;
      r_title = "operator schema contract violation";
      r_explanation =
        "An operator's structural contract is broken: a Number operator \
         needs a fresh, non-empty output column name and an Alias a \
         non-empty relation name.";
    };
    {
      r_code = "RF201";
      r_severity = Warning;
      r_title = "statically empty subtree";
      r_explanation =
        "Abstract interpretation proves the filter or join predicate can \
         never evaluate to TRUE (its conjuncts are contradictory, or its \
         outcome set under three-valued logic excludes TRUE), so the \
         operator keeps no row.  The query computes an empty relation at \
         full cost; fix or drop the predicate.";
    };
    {
      r_code = "RF202";
      r_severity = Warning;
      r_title = "guaranteed division by zero";
      r_explanation =
        "The divisor of a division or modulo is the non-NULL constant 0 \
         on every row that reaches it.  Integer division will raise at \
         runtime and float division yields infinity; guard the divisor \
         with NULLIF(x, 0) or a CASE.";
    };
    {
      r_code = "RF203";
      r_severity = Warning;
      r_title = "NULL-poisoned aggregate or window argument";
      r_explanation =
        "The argument of an aggregate or window function is NULL on \
         every row, so the aggregate skips every input and the result is \
         NULL in every group/frame (COUNT: 0).  This usually indicates a \
         frame or join that padded the column, or a misplaced outer \
         join; aggregate the pre-padding column instead.";
    };
    {
      r_code = "RF204";
      r_severity = Warning;
      r_title = "cumulative SUM overflow/precision risk";
      r_explanation =
        "The abstract bound on a SUM over INT inputs provably exceeds \
         2^53.  Sequence materialization and derivation accumulate in \
         IEEE doubles, which are exact for integers only below 2^53; \
         beyond it derived cumulative/sliding values can silently lose \
         low-order digits.  Scale the measure down or aggregate over \
         narrower frames.";
    };
    {
      r_code = "RF301";
      r_severity = Warning;
      r_title = "operator without a delta rule";
      r_explanation =
        "Generalized incremental maintenance derives per-operator delta \
         rules, and DISTINCT, LIMIT, ORDER BY and row numbering have \
         none: their output depends on the whole input, not linearly on \
         each row.  The view is maintained by full refresh; drop the \
         operator from the view definition (order and limit results at \
         query time instead) to make it derivable.";
    };
    {
      r_code = "RF302";
      r_severity = Warning;
      r_title = "outer join breaks delta bilinearity";
      r_explanation =
        "The join delta rule d(A |x| B) = dA |x| B + A |x| dB - dA |x| dB \
         relies on the inner join being bilinear in its inputs.  An \
         outer join pads unmatched rows with NULLs, so a single inserted \
         row can retract padding produced earlier — an effect no signed \
         row delta expresses.  The view is maintained by full refresh; \
         use an inner join, or materialize the padded side separately.";
    };
    {
      r_code = "RF303";
      r_severity = Warning;
      r_title = "GROUP BY regrouping is not localizable";
      r_explanation =
        "Incremental GROUP BY maintenance removes the groups whose key \
         appears in the child delta and recomputes exactly those from \
         the post-state input.  That needs a non-empty grouping key that \
         survives into the view's output columns, and a single-table \
         select/project input whose row order is stable under DML (so \
         recomputed float aggregates fold in refresh order).  The view \
         is maintained by full refresh; keep the grouping columns in \
         the select list and group directly over one table.";
    };
    {
      r_code = "RF304";
      r_severity = Warning;
      r_title = "window maintenance is not partition-local";
      r_explanation =
        "Incremental reporting-function maintenance recomputes only the \
         partitions whose key appears in the child delta.  That needs a \
         non-empty PARTITION BY shared by every window function in the \
         view, preserved into the view's output columns, over a \
         single-table select/project input.  A window without PARTITION \
         BY spans the whole relation — every change dirties everything. \
         The view is maintained by full refresh.";
    };
    {
      r_code = "RF401";
      r_severity = Info;
      r_title = "redundant re-scan: views are scan-shareable";
      r_explanation =
        "Two or more materialized sequence views read the same base \
         table with compatible PARTITION BY prefixes and the same ORDER \
         BY column, so batch maintenance can drive all of them from one \
         shared partition iterator instead of re-walking the same \
         partitions once per view.  The engine shares the scan \
         automatically when the group's sharing certificate is valid; \
         this advisory names the views in the scan-share class.";
    };
    {
      r_code = "RF402";
      r_severity = Warning;
      r_title = "unbounded window state";
      r_explanation =
        "A cumulative or sliding ROWS frame needs only a bounded \
         pipeline cache of w+2 positions, but this window's frame \
         (RANGE, or a ROWS frame reaching an unbounded following edge) \
         requires the whole partition resident before the first output \
         row, so its memory grows with the data instead of with the \
         frame.  Rewrite the frame as a bounded ROWS frame, or expect \
         the operator to fall off the incremental/spillable path.";
    };
    {
      r_code = "RF403";
      r_severity = Warning;
      r_title = "estimated footprint exceeds budget";
      r_explanation =
        "The per-operator resource analysis (row widths from the \
         schema, cardinality ranges from the abstract interpreter, \
         frame caches for window operators) bounds this plan's resident \
         state above the configured memory budget — or cannot bound it \
         at all.  Reduce the working set (narrower rows, bounded \
         frames, filters below sorts) or raise the budget \
         (rfview analyze --budget).";
    };
  ]

let find_info code = List.find_opt (fun i -> i.r_code = code) registry

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let explain code =
  match find_info code with
  | Some i ->
    Printf.sprintf "%s (%s): %s\n  %s" i.r_code (severity_name i.r_severity)
      i.r_title i.r_explanation
  | None -> Printf.sprintf "%s: unknown diagnostic code" code

let registry_markdown () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "| Code | Severity | Title |\n|------|----------|-------|\n";
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s |\n" i.r_code
           (severity_name i.r_severity) i.r_title))
    registry;
  Buffer.contents buf

let make ~code ~path message =
  let severity =
    match find_info code with Some i -> i.r_severity | None -> Error
  in
  let path = match path with [] -> "plan" | p -> String.concat "/" p in
  { code; severity; message; path }

let is_error d = d.severity = Error

let to_string d =
  Printf.sprintf "%s %s: %s [at %s]" d.code (severity_name d.severity) d.message
    d.path

let pp ppf d = Format.pp_print_string ppf (to_string d)
