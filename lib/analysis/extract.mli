(** Extraction of SQL embedded in OCaml sources, so [make lint] can
    cover the statements test and example drivers feed the engine, not
    just the [.sql] corpus.

    The scanner tokenizes string literals only — regular ["..."]
    literals (with escapes) and quoted-string [{|...|}] / [{id|...|id}]
    literals — skipping comments and character literals.  A literal is
    kept when it {e parses} as a SQL statement and its first keyword is a
    statement starter (SELECT/CREATE/INSERT/…); printf templates and
    other prose never parse, so they are dropped silently. *)

(** One extracted statement: the 1-based line where the literal starts,
    and the parsed statement. *)
type extracted = {
  line : int;
  sql : string;
  stmt : Rfview_sql.Ast.statement;
}

(** All string literals of the source text (line, contents) — exposed
    for tests of the scanner itself. *)
val string_literals : string -> (int * string) list

(** The SQL statements embedded in an OCaml source text. *)
val extract : string -> extracted list

(** [extract] over a file's contents. *)
val extract_file : string -> extracted list
