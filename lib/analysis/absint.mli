(** Bottom-up abstract interpretation of logical plans over the
    {!Domain} product domain: per output column a numeric interval, a
    nullability fact and a distinct-count range, per relation a
    row-count range.

    The analysis is a sound over-approximation of
    {!Rfview_planner.Physical.execute}: every concrete intermediate
    relation lies inside the abstract state of its node (the property
    the differential sanitizer {!Sanitize} enforces during tests).

    On top of the transfer functions the walk emits the RF2xx
    diagnostics: statically-empty/contradictory predicates ({b RF201}),
    guaranteed division by zero ({b RF202}), NULL-poisoned
    aggregate/window arguments ({b RF203}) and cumulative-SUM
    overflow/precision risk ({b RF204}). *)

module Logical := Rfview_planner.Logical

(** Table contents for [Scan] nodes; [None] means unknown (the scan is
    abstracted by its schema only: all columns top). *)
type env = string -> Rfview_relalg.Relation.t option

(** The abstraction of the plan's output relation. *)
val analyze : ?env:env -> Logical.t -> Domain.rel_abs

(** Abstract evaluation of one expression against an input abstraction
    (exposed for tests; [schema] is the input schema the expression is
    typed against). *)
val eval_expr :
  schema:Rfview_relalg.Schema.t -> Domain.rel_abs -> Rfview_relalg.Expr.t -> Domain.aval

(** Per-node abstract states in pre-order (root first), each with its
    root-first plan path (["Project/Filter/Scan(t)"]), plus the RF2xx
    diagnostics of the whole plan. *)
val annotate :
  ?env:env -> Logical.t -> (string * Domain.rel_abs) list * Diagnostic.t list

(** Just the RF2xx diagnostics. *)
val diagnostics : ?env:env -> Logical.t -> Diagnostic.t list

(** Human-readable summary of the root abstraction: one line per output
    column (name, type, interval, nullability, distinct range) plus the
    row range. *)
val report : ?env:env -> Logical.t -> string
