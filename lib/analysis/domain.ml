(* Abstract domains of the plan-level abstract interpreter — see the
   .mli for the conventions (intervals constrain non-NULL values only;
   float bounds with IEEE infinities; relative-epsilon containment). *)

open Rfview_relalg
module Core = Rfview_core

(* ---- Numeric intervals ---- *)

module Itv = struct
  type t =
    | Bot
    | Itv of { lo : float; hi : float }

  let top = Itv { lo = neg_infinity; hi = infinity }
  let bot = Bot
  let const v = Itv { lo = v; hi = v }

  let of_bounds lo hi =
    if Float.is_nan lo || Float.is_nan hi || lo > hi then Bot
    else Itv { lo; hi }

  let is_bot t = t = Bot
  let is_top = function
    | Bot -> false
    | Itv { lo; hi } -> lo = neg_infinity && hi = infinity

  let equal a b =
    match a, b with
    | Bot, Bot -> true
    | Itv a, Itv b -> a.lo = b.lo && a.hi = b.hi
    | _ -> false

  let join a b =
    match a, b with
    | Bot, x | x, Bot -> x
    | Itv a, Itv b -> Itv { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

  let meet a b =
    match a, b with
    | Bot, _ | _, Bot -> Bot
    | Itv a, Itv b -> of_bounds (Float.max a.lo b.lo) (Float.min a.hi b.hi)

  let widen old next =
    match old, next with
    | Bot, x -> x
    | x, Bot -> x
    | Itv o, Itv n ->
      Itv
        {
          lo = (if n.lo < o.lo then neg_infinity else o.lo);
          hi = (if n.hi > o.hi then infinity else o.hi);
        }

  let leq a b =
    match a, b with
    | Bot, _ -> true
    | _, Bot -> false
    | Itv a, Itv b -> b.lo <= a.lo && a.hi <= b.hi

  (* Bound arithmetic with the interval conventions 0 * inf = 0 (a zero
     factor forces a zero product over any set of finite concrete
     values) and finite / inf = 0. *)
  let mulb a b = if a = 0. || b = 0. then 0. else a *. b

  let divb a b =
    if a = 0. then 0.
    else if Float.is_finite a && not (Float.is_finite b) then 0.
    else if (not (Float.is_finite a)) && not (Float.is_finite b) then 0.
    else a /. b

  let lift2 f a b =
    match a, b with
    | Bot, _ | _, Bot -> Bot
    | Itv { lo = al; hi = ah }, Itv { lo = bl; hi = bh } -> f (al, ah) (bl, bh)

  let add = lift2 (fun (al, ah) (bl, bh) -> of_bounds (al +. bl) (ah +. bh))

  let neg = function
    | Bot -> Bot
    | Itv { lo; hi } -> Itv { lo = -.hi; hi = -.lo }

  let sub a b = add a (neg b)

  let mul =
    lift2 (fun (al, ah) (bl, bh) ->
        let ps = [ mulb al bl; mulb al bh; mulb ah bl; mulb ah bh ] in
        of_bounds (List.fold_left Float.min infinity ps)
          (List.fold_left Float.max neg_infinity ps))

  (* Division must cover float semantics (divisor 0 gives ±inf) and the
     truncating INT division (off by < 1 toward zero from the real
     quotient), so: top when the divisor can be 0, and one unit of slack
     on both bounds otherwise. *)
  let div a b =
    lift2
      (fun (al, ah) (bl, bh) ->
        if bl <= 0. && bh >= 0. then top
        else
          let qs = [ divb al bl; divb al bh; divb ah bl; divb ah bh ] in
          let lo = List.fold_left Float.min infinity qs in
          let hi = List.fold_left Float.max neg_infinity qs in
          of_bounds (lo -. 1.) (hi +. 1.))
      a b

  (* Both floored int modulo and float remainder are bounded in
     magnitude by the largest divisor magnitude. *)
  let modulo a b =
    lift2
      (fun _ (bl, bh) ->
        let m = Float.max (Float.abs bl) (Float.abs bh) in
        of_bounds (-.m) m)
      a b

  let abs = function
    | Bot -> Bot
    | Itv { lo; hi } ->
      if lo >= 0. then Itv { lo; hi }
      else if hi <= 0. then Itv { lo = -.hi; hi = -.lo }
      else Itv { lo = 0.; hi = Float.max (-.lo) hi }

  (* Hull of sums of n in [max lo 1, hi] summands, each drawn from the
     interval (SUM yields NULL, not 0, on an empty input, so n = 0 never
     produces a value and the lower count is clamped to 1). *)
  let sum_n t ~lo ~hi =
    match t with
    | Bot -> Bot
    | Itv { lo = a; hi = b } ->
      let nlo = float_of_int (max lo 1) in
      let nhi = match hi with None -> infinity | Some h -> float_of_int (max h 1) in
      of_bounds
        (Float.min (mulb nlo a) (mulb nhi a))
        (Float.max (mulb nlo b) (mulb nhi b))

  let contains ?(eps = 1e-6) t v =
    match t with
    | Bot -> false
    | Itv { lo; hi } ->
      let scale =
        List.fold_left
          (fun m x -> if Float.is_finite x then Float.max m (Float.abs x) else m)
          1. [ lo; hi; v ]
      in
      let slack = eps *. scale in
      v >= lo -. slack && v <= hi +. slack

  let fstr v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  let to_string = function
    | Bot -> "⊥"
    | Itv { lo; hi } ->
      let left = if lo = neg_infinity then "(-inf" else "[" ^ fstr lo in
      let right = if hi = infinity then "+inf)" else fstr hi ^ "]" in
      left ^ ", " ^ right
end

(* ---- Nullability ---- *)

module Null = struct
  type t =
    | Never
    | Maybe
    | Always

  let join a b = if a = b then a else Maybe

  let leq a b =
    match a, b with
    | _, Maybe -> true
    | a, b -> a = b

  let to_string = function
    | Never -> "never-null"
    | Maybe -> "maybe-null"
    | Always -> "always-null"
end

(* ---- Cardinality ranges ---- *)

module Card = struct
  type t = {
    lo : int;
    hi : int option;
  }

  let exact n = { lo = n; hi = Some n }
  let of_bounds lo hi = { lo; hi }
  let top = { lo = 0; hi = None }
  let zero = exact 0
  let equal a b = a.lo = b.lo && a.hi = b.hi

  let join a b =
    {
      lo = min a.lo b.lo;
      hi = (match a.hi, b.hi with Some x, Some y -> Some (max x y) | _ -> None);
    }

  let widen old next =
    {
      lo = (if next.lo < old.lo then 0 else old.lo);
      hi =
        (match old.hi, next.hi with
         | Some o, Some n when n <= o -> Some o
         | _ -> None);
    }

  let leq a b =
    b.lo <= a.lo
    && (match a.hi, b.hi with
        | _, None -> true
        | None, Some _ -> false
        | Some x, Some y -> x <= y)

  let add a b =
    {
      lo = a.lo + b.lo;
      hi = (match a.hi, b.hi with Some x, Some y -> Some (x + y) | _ -> None);
    }

  let mul a b =
    {
      lo = a.lo * b.lo;
      hi = (match a.hi, b.hi with Some x, Some y -> Some (x * y) | _ -> None);
    }

  let cap t n =
    {
      lo = min t.lo n;
      hi = (match t.hi with Some h -> Some (min h n) | None -> Some n);
    }

  let relax_lo t n = { t with lo = min t.lo n }

  let contains t n =
    n >= t.lo && (match t.hi with None -> true | Some h -> n <= h)

  let to_string t =
    match t.hi with
    | Some h when h = t.lo -> string_of_int t.lo
    | Some h -> Printf.sprintf "%d..%d" t.lo h
    | None -> Printf.sprintf "%d..*" t.lo
end

(* ---- Three-valued abstract booleans ---- *)

module B3 = struct
  type t = {
    can_t : bool;
    can_f : bool;
    can_null : bool;
  }

  let top = { can_t = true; can_f = true; can_null = true }
  let const b = { can_t = b; can_f = not b; can_null = false }
  let null = { can_t = false; can_f = false; can_null = true }

  let join a b =
    {
      can_t = a.can_t || b.can_t;
      can_f = a.can_f || b.can_f;
      can_null = a.can_null || b.can_null;
    }

  let equal (a : t) (b : t) = a = b
  let not3 t = { t with can_t = t.can_f; can_f = t.can_t }

  (* Kleene AND over outcome sets: F dominates, T is neutral. *)
  let and3 a b =
    {
      can_t = a.can_t && b.can_t;
      can_f = a.can_f || b.can_f;
      can_null =
        (a.can_null && (b.can_t || b.can_null))
        || (b.can_null && (a.can_t || a.can_null));
    }

  let or3 a b = not3 (and3 (not3 a) (not3 b))
  let never_true t = not t.can_t

  let to_string t =
    let outcomes =
      (if t.can_t then [ "T" ] else [])
      @ (if t.can_f then [ "F" ] else [])
      @ if t.can_null then [ "N" ] else []
    in
    "{" ^ String.concat "," outcomes ^ "}"
end

(* ---- Column and relation abstractions ---- *)

type aval = {
  itv : Itv.t;
  null : Null.t;
  b3 : B3.t;
}

let aval_top = { itv = Itv.top; null = Null.Maybe; b3 = B3.top }

let aval_bot =
  { itv = Itv.bot; null = Null.Never; b3 = { B3.can_t = false; can_f = false; can_null = false } }

let aval_join a b =
  { itv = Itv.join a.itv b.itv; null = Null.join a.null b.null; b3 = B3.join a.b3 b.b3 }

let aval_equal a b =
  Itv.equal a.itv b.itv && a.null = b.null && B3.equal a.b3 b.b3

type col_abs = {
  av : aval;
  distinct : Card.t;
}

type rel_abs = {
  cols : col_abs array;
  rows : Card.t;
}

(* ---- Concretization checks ---- *)

let contains_value ?eps a (v : Value.t) =
  match v with
  | Value.Null -> a.null <> Null.Never
  | Value.Bool b ->
    a.null <> Null.Always && (if b then a.b3.B3.can_t else a.b3.B3.can_f)
  | Value.Int i -> a.null <> Null.Always && Itv.contains ?eps a.itv (float_of_int i)
  | Value.Float f -> a.null <> Null.Always && Itv.contains ?eps a.itv f
  | Value.Date d -> a.null <> Null.Always && Itv.contains ?eps a.itv (float_of_int d)
  | Value.String _ -> a.null <> Null.Always

(* Distinct non-NULL values under Value.equal — the one notion of
   distinctness shared by the abstraction and the sanitizer check. *)
let distinct_count (vs : Value.t array) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      if not (Value.is_null v) then begin
        let key = Value.hash v in
        let bucket = try Hashtbl.find tbl key with Not_found -> [] in
        if not (List.exists (Value.equal v) bucket) then
          Hashtbl.replace tbl key (v :: bucket)
      end)
    vs;
  Hashtbl.fold (fun _ b n -> n + List.length b) tbl 0

let numeric_of (v : Value.t) : float option =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.Bool _ | Value.String _ -> None

let abstract_column (vs : Value.t array) : col_abs =
  let itv = ref Itv.bot in
  let saw_null = ref false and saw_val = ref false in
  let b3 = ref { B3.can_t = false; can_f = false; can_null = false } in
  Array.iter
    (fun v ->
      (match v with
       | Value.Null ->
         saw_null := true;
         b3 := { !b3 with B3.can_null = true }
       | v ->
         saw_val := true;
         (match v with
          | Value.Bool true -> b3 := { !b3 with B3.can_t = true }
          | Value.Bool false -> b3 := { !b3 with B3.can_f = true }
          | _ -> ());
         (match numeric_of v with
          | Some f -> itv := Itv.join !itv (Itv.const f)
          | None -> ())))
    vs;
  let null =
    match !saw_null, !saw_val with
    | false, _ -> Null.Never
    | true, false -> Null.Always
    | true, true -> Null.Maybe
  in
  (* non-numeric, non-bool columns keep top components *)
  let has_nonnum =
    Array.exists
      (fun v ->
        match v with
        | Value.String _ -> true
        | _ -> false)
      vs
  in
  let itv = if has_nonnum then Itv.top else !itv in
  let b3 =
    if Array.exists (function Value.Bool _ -> true | _ -> false) vs then !b3
    else B3.top
  in
  { av = { itv; null; b3 }; distinct = Card.exact (distinct_count vs) }

let abstract_relation (r : Relation.t) : rel_abs =
  let n = Relation.cardinality r in
  let arity = Schema.arity (Relation.schema r) in
  {
    rows = Card.exact n;
    cols = Array.init arity (fun i -> abstract_column (Relation.column_values r i));
  }

let check_relation ?eps (a : rel_abs) (r : Relation.t) : (unit, string) result =
  let schema = Relation.schema r in
  let arity = Schema.arity schema in
  let n = Relation.cardinality r in
  if Array.length a.cols <> arity then
    Error
      (Printf.sprintf "arity mismatch: abstract state has %d column(s), relation %d"
         (Array.length a.cols) arity)
  else if not (Card.contains a.rows n) then
    Error
      (Printf.sprintf "row count %d outside abstract range %s" n
         (Card.to_string a.rows))
  else begin
    let err = ref None in
    let rows = Relation.rows r in
    for c = 0 to arity - 1 do
      if !err = None then begin
        let ca = a.cols.(c) in
        let name = (Schema.col schema c).Schema.name in
        (* every concrete value inside the abstract value *)
        Array.iteri
          (fun i row ->
            let v = Row.get row c in
            if !err = None && not (contains_value ?eps ca.av v) then
              err :=
                Some
                  (Printf.sprintf
                     "row %d, column %s: value %s outside abstract state %s" i name
                     (Value.to_string v)
                     (Printf.sprintf "{%s; %s; %s}" (Itv.to_string ca.av.itv)
                        (Null.to_string ca.av.null) (B3.to_string ca.av.b3))))
          rows;
        (* NULL/not-NULL obligations over the whole column *)
        (match ca.av.null with
         | Null.Always ->
           Array.iteri
             (fun i row ->
               if !err = None && not (Value.is_null (Row.get row c)) then
                 err :=
                   Some
                     (Printf.sprintf
                        "row %d, column %s: non-NULL value in an always-NULL column"
                        i name))
             rows
         | Null.Never | Null.Maybe -> ());
        (* distinct-count range *)
        if !err = None then begin
          let d = distinct_count (Relation.column_values r c) in
          if not (Card.contains ca.distinct d) then
            err :=
              Some
                (Printf.sprintf
                   "column %s: %d distinct value(s) outside abstract range %s" name d
                   (Card.to_string ca.distinct))
        end
      end
    done;
    match !err with None -> Ok () | Some m -> Error m
  end

let col_to_string (c : col_abs) =
  Printf.sprintf "%s  %s  distinct %s" (Itv.to_string c.av.itv)
    (Null.to_string c.av.null) (Card.to_string c.distinct)

let rel_to_string (a : rel_abs) =
  Printf.sprintf "rows %s; %s" (Card.to_string a.rows)
    (String.concat "; " (Array.to_list (Array.map col_to_string a.cols)))

(* ---- Sequence-completeness facts ---- *)

module Seqfact = struct
  type t = {
    frame : Core.Frame.t;
    n : int;
    stored_lo : int;
    stored_hi : int;
    complete : bool;
  }

  let of_seq (s : Core.Seqdata.t) =
    {
      frame = Core.Seqdata.frame s;
      n = Core.Seqdata.length s;
      stored_lo = Core.Seqdata.stored_lo s;
      stored_hi = Core.Seqdata.stored_hi s;
      complete = Core.Seqdata.is_complete s;
    }

  let header_covered t =
    match Core.Frame.params t.frame with
    | None -> t.stored_lo <= min 1 t.n
    | Some (_, h) -> t.stored_lo <= 1 - h

  let trailer_covered t =
    match Core.Frame.params t.frame with
    | None -> t.stored_hi >= t.n
    | Some (l, _) -> t.stored_hi >= t.n + l

  let to_string t =
    Printf.sprintf "%s over n=%d stored %d..%d (%s)"
      (Core.Frame.to_string t.frame) t.n t.stored_lo t.stored_hi
      (if t.complete then "complete"
       else
         "incomplete: "
         ^ String.concat ", "
             ((if header_covered t then [] else [ "header missing" ])
             @ if trailer_covered t then [] else [ "trailer missing" ]))
end
