(** Typed well-formedness checking of logical plans.

    [check] walks a {!Rfview_planner.Logical.t} bottom-up and verifies,
    at every node:
    - every positional column reference is in bounds for the node's
      input schema (RF101);
    - every expression types consistently ({!Rfview_relalg.Expr.infer_type}
      does not fail, RF102) and predicates are boolean (RF103);
    - window frames are sane: non-negative offsets, lower bound not
      above the upper bound, RANGE frames with exactly one ORDER BY key
      (RF104), and rank/navigation functions carry an ordering (RF107);
    - projection output types are inferable — no silent [String]
      fallback (RF105);
    - SUM/AVG arguments are numeric (RF106);
    - LIMIT counts are non-negative (RF108), UNION operand schemas agree
      (RF109), and the Number/Alias schema contracts hold (RF110).

    All diagnostics produced here have severity [Error].  A plan with an
    empty [check] result can compute its output schema without guessing
    and evaluate without positional or static-type failures. *)

val check : Rfview_planner.Logical.t -> Diagnostic.t list

(** [true] iff {!check} reports nothing. *)
val well_formed : Rfview_planner.Logical.t -> bool

(** Constructor name used in diagnostic paths (e.g. ["Scan(t)"],
    ["Filter"]); shared with {!Lint}. *)
val label : Rfview_planner.Logical.t -> string
