(* Bottom-up abstract interpretation over Planner.Logical plans — see
   the .mli.  Transfer functions over-approximate the executor's
   semantics (lib/relalg: NULL-skipping aggregates, three-valued
   predicates, NULL padding on LEFT OUTER, Lag/Lead NULL outside the
   partition, truncating INT division). *)

open Rfview_relalg
open Domain
module Logical = Rfview_planner.Logical
module Rewrite = Rfview_planner.Rewrite

type env = string -> Relation.t option

let no_env : env = fun _ -> None

(* ---- Small helpers ---- *)

(* NULL-propagating operators: NULL in, NULL out. *)
let null_prop a b =
  match a, b with
  | Null.Never, Null.Never -> Null.Never
  | Null.Always, _ | _, Null.Always -> Null.Always
  | _ -> Null.Maybe

(* Wrap an outcome set as the abstract value of a boolean expression. *)
let bool_aval (b3 : B3.t) =
  let null =
    if not b3.B3.can_null then Null.Never
    else if b3.B3.can_t || b3.B3.can_f then Null.Maybe
    else Null.Always
  in
  { itv = Itv.bot; null; b3 }

let static_type schema e =
  try Expr.infer_type schema e with Expr.Type_mismatch _ -> None

let is_numeric_type = function
  | Some (Dtype.Int | Dtype.Float | Dtype.Date) -> true
  | Some (Dtype.Bool | Dtype.String) | None -> false

let const_float (v : Value.t) : float option =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.Bool _ | Value.String _ -> None

let const_aval (v : Value.t) : aval =
  match v with
  | Value.Null -> { itv = Itv.bot; null = Null.Always; b3 = B3.null }
  | Value.Bool b -> { itv = Itv.bot; null = Null.Never; b3 = B3.const b }
  | Value.String _ -> { itv = Itv.top; null = Null.Never; b3 = B3.top }
  | v ->
    (match const_float v with
     | Some f -> { itv = Itv.const f; null = Null.Never; b3 = B3.top }
     | None -> aval_top)

(* ---- Abstract expression evaluation ---- *)

(* [sink] receives the RF2xx diagnostics found inside expressions
   (guaranteed division by zero). *)
let rec eval ~sink ~schema (ra : rel_abs) (e : Expr.t) : aval =
  let eval' = eval ~sink ~schema ra in
  match e with
  | Expr.Const v -> const_aval v
  | Expr.Col i -> if i >= 0 && i < Array.length ra.cols then ra.cols.(i).av else aval_top
  | Expr.Unop (Expr.Neg, a) ->
    let av = eval' a in
    { itv = Itv.neg av.itv; null = av.null; b3 = B3.top }
  | Expr.Unop (Expr.Not, a) -> bool_aval (B3.not3 (eval' a).b3)
  | Expr.Binop (op, a, b) -> eval_binop ~sink ~schema ra op a b
  | Expr.Case (whens, else_) ->
    let tail = match else_ with Some e -> eval' e | None -> const_aval Value.Null in
    List.fold_left
      (fun acc (c, v) ->
        let c3 = eval' c in
        let va = eval' v in
        (* a branch whose condition can never be TRUE is unreachable *)
        if c3.b3.B3.can_t then aval_join acc va else acc)
      tail whens
  | Expr.Call (f, args) -> eval_call ~sink ~schema ra f args
  | Expr.In_list (x, items) ->
    let xa = eval' x in
    let ias = List.map eval' items in
    if xa.null = Null.Always then bool_aval B3.null
    else
      let can_null =
        xa.null <> Null.Never || List.exists (fun i -> i.null <> Null.Never) ias
      in
      bool_aval { B3.can_t = true; can_f = true; can_null }
  | Expr.Between (x, lo, hi) ->
    eval' (Expr.Binop (Expr.And, Expr.Binop (Expr.Ge, x, lo), Expr.Binop (Expr.Le, x, hi)))
  | Expr.Is_null a ->
    let av = eval' a in
    bool_aval
      (match av.null with
       | Null.Always -> B3.const true
       | Null.Never -> B3.const false
       | Null.Maybe -> { B3.can_t = true; can_f = true; can_null = false })
  | Expr.Is_not_null a ->
    let av = eval' a in
    bool_aval
      (match av.null with
       | Null.Always -> B3.const false
       | Null.Never -> B3.const true
       | Null.Maybe -> { B3.can_t = true; can_f = true; can_null = false })

and eval_binop ~sink ~schema ra op a b =
  let av = eval ~sink ~schema ra a in
  let bv = eval ~sink ~schema ra b in
  let arith itv_op =
    { itv = itv_op av.itv bv.itv; null = null_prop av.null bv.null; b3 = B3.top }
  in
  match op with
  | Expr.Add -> arith Itv.add
  | Expr.Sub -> arith Itv.sub
  | Expr.Mul -> arith Itv.mul
  | Expr.Div | Expr.Mod ->
    (* guaranteed division by zero: the divisor is the non-NULL
       constant 0 on every row *)
    (if bv.null = Null.Never && Itv.equal bv.itv (Itv.const 0.) then
       sink ~code:"RF202"
         (Printf.sprintf "divisor %s is 0 on every row" (Expr.to_string b)));
    arith (if op = Expr.Div then Itv.div else Itv.modulo)
  | Expr.And -> bool_aval (B3.and3 av.b3 bv.b3)
  | Expr.Or -> bool_aval (B3.or3 av.b3 bv.b3)
  | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
    let can_null = av.null <> Null.Never || bv.null <> Null.Never in
    if av.null = Null.Always || bv.null = Null.Always then bool_aval B3.null
    else
      let numeric =
        is_numeric_type (static_type schema a) && is_numeric_type (static_type schema b)
      in
      let can_t, can_f =
        if not numeric then (true, true)
        else
          match av.itv, bv.itv with
          | Itv.Bot, _ | _, Itv.Bot -> (false, false)
          | Itv.Itv { lo = al; hi = ah }, Itv.Itv { lo = bl; hi = bh } ->
            (match op with
             | Expr.Eq -> (al <= bh && bl <= ah, not (al = ah && bl = bh && al = bl))
             | Expr.Neq -> (not (al = ah && bl = bh && al = bl), al <= bh && bl <= ah)
             | Expr.Lt -> (al < bh, ah >= bl)
             | Expr.Le -> (al <= bh, ah > bl)
             | Expr.Gt -> (ah > bl, al <= bh)
             | Expr.Ge -> (ah >= bl, al < bh)
             | _ -> (true, true))
      in
      bool_aval { B3.can_t; can_f; can_null }

and eval_call ~sink ~schema ra f args =
  let eval' = eval ~sink ~schema ra in
  let avs = List.map eval' args in
  match f, avs with
  | Expr.Coalesce, avs ->
    let null =
      if List.exists (fun a -> a.null = Null.Never) avs then Null.Never
      else if List.for_all (fun a -> a.null = Null.Always) avs then Null.Always
      else Null.Maybe
    in
    let itv = List.fold_left (fun acc a -> Itv.join acc a.itv) Itv.bot avs in
    let b3 = List.fold_left (fun acc a -> B3.join acc a.b3) B3.null avs in
    { itv; null; b3 = (match null with Null.Never -> { b3 with B3.can_null = false } | _ -> b3) }
  | Expr.Abs, [ a ] -> { itv = Itv.abs a.itv; null = a.null; b3 = B3.top }
  | Expr.Sign, [ a ] -> { itv = Itv.of_bounds (-1.) 1.; null = a.null; b3 = B3.top }
  | Expr.Least, a :: rest ->
    let extremum pick =
      List.fold_left
        (fun acc v ->
          {
            itv =
              (match acc.itv, v.itv with
               | Itv.Bot, _ | _, Itv.Bot -> Itv.Bot
               | Itv.Itv { lo = al; hi = ah }, Itv.Itv { lo = bl; hi = bh } ->
                 Itv.of_bounds (pick al bl) (pick ah bh));
            null = null_prop acc.null v.null;
            b3 = B3.top;
          })
        a rest
    in
    extremum Float.min
  | Expr.Greatest, a :: rest ->
    List.fold_left
      (fun acc v ->
        {
          itv =
            (match acc.itv, v.itv with
             | Itv.Bot, _ | _, Itv.Bot -> Itv.Bot
             | Itv.Itv { lo = al; hi = ah }, Itv.Itv { lo = bl; hi = bh } ->
               Itv.of_bounds (Float.max al bl) (Float.max ah bh));
          null = null_prop acc.null v.null;
          b3 = B3.top;
        })
      a rest
  | Expr.Year, [ a ] ->
    let itv =
      match a.itv with
      | Itv.Itv { lo; hi } when Float.abs lo <= 1e8 && Float.abs hi <= 1e8 ->
        Itv.of_bounds
          (float_of_int (Value.date_year (int_of_float lo)))
          (float_of_int (Value.date_year (int_of_float hi)))
      | _ -> Itv.top
    in
    { itv; null = a.null; b3 = B3.top }
  | Expr.Month, [ a ] -> { itv = Itv.of_bounds 1. 12.; null = a.null; b3 = B3.top }
  | Expr.Day, [ a ] -> { itv = Itv.of_bounds 1. 31.; null = a.null; b3 = B3.top }
  | Expr.Nullif, [ a; _b ] ->
    {
      itv = a.itv;
      null = (if a.null = Null.Always then Null.Always else Null.Maybe);
      b3 = B3.join a.b3 B3.null;
    }
  | _ -> aval_top

(* ---- Filter refinement ----

   Comparison conjuncts refine the surviving rows' column
   abstractions: a row passes [col OP const] only if the column is
   non-NULL and inside the implied bound.  Column-column comparisons
   propagate bounds both ways; the refinement loop runs rounds until a
   fixpoint (each step only shrinks, so stopping at any round is
   sound — 4 rounds is the cheap termination guard). *)

let refine_filter ~schema cols pred =
  let cols = Array.copy cols in
  let contradiction = ref false in
  let numeric_col i =
    i >= 0 && i < Schema.arity schema
    && is_numeric_type (Some (Schema.col schema i).Schema.ty)
  in
  let meet_col i itv =
    if i >= 0 && i < Array.length cols then begin
      let c = cols.(i) in
      let met = Itv.meet c.av.itv itv in
      if Itv.is_bot met && not (Itv.is_bot c.av.itv) then contradiction := true;
      cols.(i) <- { c with av = { c.av with itv = met; null = Null.Never } }
    end
  in
  let not_null i =
    if i >= 0 && i < Array.length cols then begin
      let c = cols.(i) in
      if c.av.null = Null.Always then contradiction := true;
      cols.(i) <- { c with av = { c.av with null = Null.Never } }
    end
  in
  let bound_of op v =
    match op with
    | Expr.Eq -> Some (Itv.const v)
    | Expr.Lt | Expr.Le -> Some (Itv.of_bounds neg_infinity v)
    | Expr.Gt | Expr.Ge -> Some (Itv.of_bounds v infinity)
    | _ -> None
  in
  let flip = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | op -> op
  in
  let itv_of i = if i >= 0 && i < Array.length cols then cols.(i).av.itv else Itv.top in
  let apply conj =
    match conj with
    | Expr.Is_not_null (Expr.Col i) -> not_null i
    | Expr.Is_null (Expr.Col i) ->
      if i >= 0 && i < Array.length cols then begin
        let c = cols.(i) in
        if c.av.null = Null.Never then contradiction := true;
        cols.(i) <-
          {
            av = { c.av with itv = Itv.bot; null = Null.Always };
            distinct = Card.of_bounds 0 (Some 0);
          }
      end
    | Expr.Binop (op, Expr.Col i, Expr.Const v) when numeric_col i ->
      (match const_float v with
       | Some f ->
         not_null i;
         (match bound_of op f with Some b -> meet_col i b | None -> ())
       | None -> ())
    | Expr.Binop (op, Expr.Const v, Expr.Col i) when numeric_col i ->
      (match const_float v with
       | Some f ->
         not_null i;
         (match bound_of (flip op) f with Some b -> meet_col i b | None -> ())
       | None -> ())
    | Expr.Between (Expr.Col i, Expr.Const a, Expr.Const b) when numeric_col i ->
      (match const_float a, const_float b with
       | Some fa, Some fb ->
         not_null i;
         meet_col i (Itv.of_bounds fa fb)
       | _ -> ())
    | Expr.Binop (op, Expr.Col i, Expr.Col j)
      when numeric_col i && numeric_col j
           && (match op with
               | Expr.Eq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> true
               | _ -> false) ->
      not_null i;
      not_null j;
      (match itv_of i, itv_of j with
       | Itv.Itv { lo = il; hi = ih }, Itv.Itv { lo = jl; hi = jh } ->
         (match op with
          | Expr.Eq ->
            let m = Itv.meet (itv_of i) (itv_of j) in
            meet_col i m;
            meet_col j m
          | Expr.Lt | Expr.Le ->
            meet_col i (Itv.of_bounds neg_infinity jh);
            meet_col j (Itv.of_bounds il infinity)
          | Expr.Gt | Expr.Ge ->
            meet_col i (Itv.of_bounds jl infinity);
            meet_col j (Itv.of_bounds neg_infinity ih)
          | _ -> ())
       | _ -> ())
    | _ -> ()
  in
  let conjs = Expr.conjuncts pred in
  let snapshot () = Array.map (fun c -> c.av.itv) cols in
  let rec rounds n =
    let before = snapshot () in
    List.iter apply conjs;
    let after = snapshot () in
    if n < 4 && not (Array.for_all2 Itv.equal before after) then rounds (n + 1)
  in
  rounds 1;
  (cols, !contradiction)

(* ---- Transfer functions ---- *)

let top_cols arity = Array.make arity { av = aval_top; distinct = Card.top }

let relax_distinct cols =
  Array.map (fun c -> { c with distinct = Card.relax_lo c.distinct 0 }) cols

(* Upper bound on the number of rows a ROWS frame can cover. *)
let frame_max_width (f : Window.frame) : int option =
  if f.Window.mode <> Window.Rows then None
  else
    match f.Window.lo, f.Window.hi with
    | Window.Preceding l, Window.Following h -> Some (l + h + 1)
    | Window.Preceding l, Window.Current_row -> Some (l + 1)
    | Window.Preceding l, Window.Preceding l' -> Some (max 0 (l - l' + 1))
    | Window.Current_row, Window.Following h -> Some (h + 1)
    | Window.Current_row, Window.Current_row -> Some 1
    | Window.Following h, Window.Following h' -> Some (max 0 (h' - h + 1))
    | _ -> None

let two_pow_53 = 9007199254740992.

(* SUM over INT inputs computes in exact integer arithmetic only while
   the magnitude stays under 2^53 in the float-backed sequence/derivation
   paths; warn when the abstract bound provably exceeds that. *)
let overflow_risk ~arg_itv ~cnt_hi =
  match arg_itv, cnt_hi with
  | Itv.Itv { lo; hi }, Some n ->
    let m = Float.max (Float.abs lo) (Float.abs hi) in
    Float.is_finite m && m *. float_of_int n > two_pow_53
  | _ -> false

(* The count of non-NULL aggregate inputs over a row population of
   [rows]; [one_min] forces the lower population bound to >= 1 (each
   GROUP BY group is non-empty). *)
let nonnull_count ~(null : Null.t) ~(rows : Card.t) ~one_min =
  let lo = if one_min then max rows.Card.lo 1 else rows.Card.lo in
  match null with
  | Null.Never -> { Card.lo; hi = rows.Card.hi }
  | Null.Maybe -> { Card.lo = 0; hi = rows.Card.hi }
  | Null.Always -> Card.of_bounds 0 (Some 0)

let agg_transfer ~sink ~what (kind : Aggregate.kind) ~(arg_av : aval) ~(cnt : Card.t)
    : aval =
  if arg_av.null = Null.Always && kind <> Aggregate.Count then
    sink ~code:"RF203"
      (Printf.sprintf "%s argument is always NULL: the result is NULL on every row/group"
         what);
  let sum_null =
    if cnt.Card.lo >= 1 then Null.Never
    else if cnt.Card.hi = Some 0 then Null.Always
    else Null.Maybe
  in
  match kind with
  | Aggregate.Count ->
    {
      itv =
        Itv.of_bounds
          (float_of_int cnt.Card.lo)
          (match cnt.Card.hi with None -> infinity | Some h -> float_of_int h);
      null = Null.Never;
      b3 = B3.top;
    }
  | Aggregate.Sum ->
    (if overflow_risk ~arg_itv:arg_av.itv ~cnt_hi:cnt.Card.hi then
       sink ~code:"RF204"
         (Printf.sprintf
            "%s may exceed 2^53: float-backed accumulation and sequence derivation \
             lose integer exactness"
            what));
    { itv = Itv.sum_n arg_av.itv ~lo:cnt.Card.lo ~hi:cnt.Card.hi; null = sum_null; b3 = B3.top }
  | Aggregate.Avg -> { itv = arg_av.itv; null = sum_null; b3 = B3.top }
  | Aggregate.Min | Aggregate.Max -> { itv = arg_av.itv; null = sum_null; b3 = arg_av.b3 }

(* ---- The walk ---- *)

let rec go ~env ~sink path (p : Logical.t) : rel_abs * (string * rel_abs) list =
  let here = path @ [ Check.label p ] in
  let sink_here ~code msg = sink ~code ~path:here msg in
  let abs, child_anns =
    match p with
    | Logical.Scan { table; schema } ->
      let a =
        match env table with
        | Some r -> abstract_relation r
        | None -> { cols = top_cols (Schema.arity schema); rows = Card.top }
      in
      (a, [])
    | Logical.Filter { input; pred } ->
      let ia, anns = go ~env ~sink here input in
      let schema = Logical.schema input in
      let p3 = (eval ~sink:sink_here ~schema ia pred).b3 in
      let cols, contradiction = refine_filter ~schema ia.cols pred in
      let empty = B3.never_true p3 || contradiction in
      if empty && ia.rows <> Card.zero then
        sink_here ~code:"RF201"
          (if contradiction then
             "contradictory filter conjuncts: no row can satisfy them all, the \
              subtree is statically empty"
           else "filter predicate can never be TRUE: the subtree is statically empty");
      let rows =
        if empty then Card.zero
        else if (not p3.B3.can_f) && not p3.B3.can_null then ia.rows
        else Card.of_bounds 0 ia.rows.Card.hi
      in
      ({ cols = relax_distinct cols; rows }, anns)
    | Logical.Project { input; exprs } ->
      let ia, anns = go ~env ~sink here input in
      let schema = Logical.schema input in
      let cols =
        Array.of_list
          (List.map
             (fun (e, _) ->
               let av = eval ~sink:sink_here ~schema ia e in
               let distinct =
                 match e with
                 | Expr.Col i when i >= 0 && i < Array.length ia.cols ->
                   ia.cols.(i).distinct
                 | Expr.Const (Value.Null) -> Card.of_bounds 0 (Some 0)
                 | Expr.Const _ -> Card.of_bounds 0 (Some 1)
                 | _ -> Card.of_bounds 0 ia.rows.Card.hi
               in
               { av; distinct })
             exprs)
      in
      ({ cols; rows = ia.rows }, anns)
    | Logical.Join { kind; left; right; cond } ->
      let la, lanns = go ~env ~sink here left in
      let ra, ranns = go ~env ~sink here right in
      let schema = Logical.schema p |> fun _ ->
        Schema.append (Logical.schema left) (Logical.schema right)
      in
      let joined = { cols = Array.append la.cols ra.cols; rows = Card.mul la.rows ra.rows } in
      let c3 = (eval ~sink:sink_here ~schema joined cond).b3 in
      let never = B3.never_true c3 in
      let abs =
        match kind with
        | Joinop.Inner ->
          if never && la.rows <> Card.zero && ra.rows <> Card.zero then
            sink_here ~code:"RF201"
              "join condition can never be TRUE: the inner join is statically empty";
          let rows =
            if never then Card.zero
            else if
              (not c3.B3.can_f) && not c3.B3.can_null
              (* condition always TRUE: a cross join *)
            then Card.mul la.rows ra.rows
            else Card.of_bounds 0 (Card.mul la.rows ra.rows).Card.hi
          in
          { cols = relax_distinct (Array.append la.cols ra.cols); rows }
        | Joinop.Left_outer ->
          (* every left row survives (padded when unmatched), so left
             columns keep their abstraction; right columns may be NULL *)
          let pad c =
            if never then
              {
                av = { itv = Itv.bot; null = Null.Always; b3 = B3.null };
                distinct = Card.of_bounds 0 (Some 0);
              }
            else
              {
                av =
                  {
                    c.av with
                    null = Null.join c.av.null Null.Always;
                    b3 = { c.av.b3 with B3.can_null = true };
                  };
                distinct = Card.relax_lo c.distinct 0;
              }
          in
          let rows =
            {
              Card.lo = la.rows.Card.lo;
              hi =
                (match la.rows.Card.hi, ra.rows.Card.hi with
                 | Some lh, Some rh -> Some (lh * max rh 1)
                 | _ -> None);
            }
          in
          { cols = Array.append la.cols (Array.map pad ra.cols); rows }
      in
      (abs, lanns @ ranns)
    | Logical.Aggregate { input; group; aggs } ->
      let ia, anns = go ~env ~sink here input in
      let schema = Logical.schema input in
      let grouped = group <> [] in
      let rows_out =
        if not grouped then Card.exact 1
        else begin
          let lo = if ia.rows.Card.lo >= 1 then 1 else 0 in
          (* the group count is also bounded by the value combinations
             of the grouping columns *)
          let prod =
            List.fold_left
              (fun acc e ->
                match acc, e with
                | Some acc, Expr.Col i when i >= 0 && i < Array.length ia.cols ->
                  let c = ia.cols.(i) in
                  (match c.distinct.Card.hi with
                   | Some d when acc * (d + 1) <= 1_000_000_000 ->
                     Some (acc * (d + if c.av.null = Null.Never then 0 else 1))
                   | _ -> None)
                | _ -> None)
              (Some 1) group
          in
          let hi =
            match ia.rows.Card.hi, prod with
            | Some h, Some p -> Some (min h p)
            | Some h, None -> Some h
            | None, p -> p
          in
          Card.of_bounds lo hi
        end
      in
      let group_cols =
        List.map
          (fun e ->
            match e with
            | Expr.Col i when i >= 0 && i < Array.length ia.cols -> ia.cols.(i)
            | e ->
              {
                av = eval ~sink:sink_here ~schema ia e;
                distinct = Card.of_bounds 0 rows_out.Card.hi;
              })
          group
      in
      (* Per-group row population: a group that exists holds at least
         one row, and holds *all* of the input's rows only when it is
         provably the sole group.  Feeding the total population to the
         aggregate transfer would abstract a count over a 4-row input
         with 2 groups as [4, 4] — unsound for any group of fewer
         rows. *)
      let group_rows =
        if (not grouped) || rows_out.Card.hi = Some 1 then ia.rows
        else Card.of_bounds (min ia.rows.Card.lo 1) ia.rows.Card.hi
      in
      let agg_cols =
        List.map
          (fun (a : Groupop.agg_spec) ->
            let arg_av = eval ~sink:sink_here ~schema ia a.Groupop.arg in
            let cnt = nonnull_count ~null:arg_av.null ~rows:group_rows ~one_min:grouped in
            let what =
              Printf.sprintf "%s(%s)" (Aggregate.kind_name a.Groupop.kind)
                (Expr.to_string a.Groupop.arg)
            in
            {
              av = agg_transfer ~sink:sink_here ~what a.Groupop.kind ~arg_av ~cnt;
              distinct = Card.of_bounds 0 rows_out.Card.hi;
            })
          aggs
      in
      ({ cols = Array.of_list (group_cols @ agg_cols); rows = rows_out }, anns)
    | Logical.Window_op { input; fns } ->
      let ia, anns = go ~env ~sink here input in
      let schema = Logical.schema input in
      let fn_cols = List.map (window_fn_transfer ~sink:sink_here ~schema ia) fns in
      ({ cols = Array.append ia.cols (Array.of_list fn_cols); rows = ia.rows }, anns)
    | Logical.Number { input; _ } ->
      let ia, anns = go ~env ~sink here input in
      let num =
        {
          av =
            {
              itv =
                Itv.of_bounds 1.
                  (match ia.rows.Card.hi with
                   | None -> infinity
                   | Some h -> float_of_int (max h 1));
              null = Null.Never;
              b3 = B3.top;
            };
          distinct =
            Card.of_bounds (if ia.rows.Card.lo >= 1 then 1 else 0) ia.rows.Card.hi;
        }
      in
      ({ cols = Array.append ia.cols [| num |]; rows = ia.rows }, anns)
    | Logical.Sort { input; _ } -> let ia, anns = go ~env ~sink here input in (ia, anns)
    | Logical.Alias { input; _ } -> let ia, anns = go ~env ~sink here input in (ia, anns)
    | Logical.Distinct input ->
      let ia, anns = go ~env ~sink here input in
      let rows =
        Card.of_bounds (if ia.rows.Card.lo >= 1 then 1 else 0) ia.rows.Card.hi
      in
      ({ ia with rows }, anns)
    | Logical.Limit { input; n } ->
      let ia, anns = go ~env ~sink here input in
      let cols =
        Array.map
          (fun c -> { c with distinct = Card.cap (Card.relax_lo c.distinct 0) n })
          ia.cols
      in
      ({ cols; rows = Card.cap ia.rows n }, anns)
    | Logical.Union_all { left; right } ->
      let la, lanns = go ~env ~sink here left in
      let ra, ranns = go ~env ~sink here right in
      let cols =
        if Array.length la.cols = Array.length ra.cols then
          Array.map2
            (fun a b ->
              {
                av = aval_join a.av b.av;
                distinct =
                  {
                    Card.lo = max a.distinct.Card.lo b.distinct.Card.lo;
                    hi =
                      (match a.distinct.Card.hi, b.distinct.Card.hi with
                       | Some x, Some y -> Some (x + y)
                       | _ -> None);
                  };
              })
            la.cols ra.cols
        else top_cols (Array.length la.cols)
      in
      ({ cols; rows = Card.add la.rows ra.rows }, lanns @ ranns)
  in
  (abs, (String.concat "/" here, abs) :: child_anns)

and window_fn_transfer ~sink ~schema (ia : rel_abs) (fn : Logical.window_fn) : col_abs
    =
  let arg_av = eval ~sink ~schema ia fn.Logical.arg in
  let contains_current = Rewrite.frame_contains_current fn.Logical.frame in
  (* the frame lives inside one partition, itself at most the whole
     input; a frame containing the current row is never empty *)
  let frame_rows =
    let hi =
      match ia.rows.Card.hi, frame_max_width fn.Logical.frame with
      | Some m, Some w -> Some (min m w)
      | Some m, None -> Some m
      | None, Some w -> Some w
      | None, None -> None
    in
    Card.of_bounds (if contains_current then 1 else 0) hi
  in
  let generic_distinct = Card.of_bounds 0 ia.rows.Card.hi in
  let av =
    match fn.Logical.func with
    | Window.Agg kind ->
      let cnt =
        match arg_av.null with
        | Null.Never -> frame_rows
        | Null.Maybe -> Card.of_bounds 0 frame_rows.Card.hi
        | Null.Always -> Card.of_bounds 0 (Some 0)
      in
      let what =
        Printf.sprintf "window %s(%s) over %s" (Aggregate.kind_name kind)
          (Expr.to_string fn.Logical.arg)
          (match fn.Logical.frame.Window.lo with
           | Window.Unbounded_preceding -> "a cumulative frame"
           | _ -> "a sliding frame")
      in
      agg_transfer ~sink ~what kind ~arg_av ~cnt
    | Window.Row_number | Window.Rank | Window.Dense_rank ->
      {
        itv =
          Itv.of_bounds 1.
            (match ia.rows.Card.hi with
             | None -> infinity
             | Some h -> float_of_int (max h 1));
        null = Null.Never;
        b3 = B3.top;
      }
    | Window.Lag _ | Window.Lead _ ->
      (if arg_av.null = Null.Always then
         sink ~code:"RF203"
           (Printf.sprintf "window %s argument %s is always NULL"
              (Window.func_name fn.Logical.func)
              (Expr.to_string fn.Logical.arg)));
      {
        itv = arg_av.itv;
        null = (if arg_av.null = Null.Always then Null.Always else Null.Maybe);
        b3 = { arg_av.b3 with B3.can_null = true };
      }
    | Window.First_value | Window.Last_value ->
      (if arg_av.null = Null.Always then
         sink ~code:"RF203"
           (Printf.sprintf "window %s argument %s is always NULL"
              (Window.func_name fn.Logical.func)
              (Expr.to_string fn.Logical.arg)));
      {
        itv = arg_av.itv;
        null =
          (match arg_av.null with
           | Null.Always -> Null.Always
           | Null.Never when contains_current -> Null.Never
           | _ -> Null.Maybe);
        b3 = { arg_av.b3 with B3.can_null = true };
      }
  in
  { av; distinct = generic_distinct }

(* ---- Entry points ---- *)

let run ?(env = no_env) plan =
  let diags = ref [] in
  let sink ~code ~path msg = diags := Diagnostic.make ~code ~path msg :: !diags in
  let abs, anns = go ~env ~sink [] plan in
  let diags =
    List.sort_uniq compare (List.rev !diags)
  in
  (abs, anns, diags)

let analyze ?env plan =
  let abs, _, _ = run ?env plan in
  abs

let eval_expr ~schema ra e =
  let sink ~code:_ _ = () in
  eval ~sink ~schema ra e

let annotate ?env plan =
  (* a plan the well-formedness checker rejects has no trustworthy
     schema to analyze against *)
  if List.exists Diagnostic.is_error (Check.check plan) then ([], [])
  else
    let _, anns, diags = run ?env plan in
    (anns, diags)

let diagnostics ?env plan = snd (annotate ?env plan)

let report ?env plan =
  let abs = analyze ?env plan in
  let schema = Logical.schema plan in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "rows: %s\n" (Card.to_string abs.rows));
  Array.iteri
    (fun i (c : Schema.column) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %-7s %s\n" c.Schema.name
           (Dtype.to_string c.Schema.ty)
           (if i < Array.length abs.cols then col_to_string abs.cols.(i)
            else "(?)")))
    schema;
  Buffer.contents buf
