(* Derivability certificates.  Each obligation list mirrors, condition
   for condition, what the corresponding runtime entry point checks:

     Copy                Derive.run (frame equality)
     From_cumulative     Derive.sliding_from_cumulative
     Min_overlap         Minoa.check_view / Reconstruct.telescoped_sums
     Max_overlap         Maxoa.view_params + Maxoa.derive
     Max_overlap_minmax  Maxoa.view_params + Maxoa.derive_minmax

   Keep them in lockstep: the golden tests in test_cert.ml assert
   valid(certify_seq v qf s) <=> Derive.run s v qf succeeds. *)

module Core = Rfview_core
module Frame = Core.Frame
module Agg = Core.Agg
module Derive = Core.Derive

type obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

type t = {
  strategy : Derive.strategy;
  view_frame : Frame.t;
  view_agg : Agg.t;
  query_frame : Frame.t;
  fact : Domain.Seqfact.t option;
  obligations : obligation list;
  notes : string list;
}

let valid t = List.for_all (fun o -> o.ob_holds) t.obligations

let ob name holds detail = { ob_name = name; ob_holds = holds; ob_detail = detail }

(* Completeness of the view sequence: checked against the fact when one
   is available, otherwise assumed (Seqdata.make refuses to build a
   sequence whose stored range does not cover the complete range, so
   every engine-materialized sequence is complete by construction). *)
let complete_ob fact =
  match fact with
  | None ->
    ob "view-complete" true
      "assumed: materialized sequences are complete by construction"
  | Some (f : Domain.Seqfact.t) ->
    ob "view-complete"
      (f.Domain.Seqfact.complete)
      (Printf.sprintf "stored [%d, %d] for n=%d %s (header %s, trailer %s)"
         f.Domain.Seqfact.stored_lo f.Domain.Seqfact.stored_hi f.Domain.Seqfact.n
         (Frame.to_string f.Domain.Seqfact.frame)
         (if Domain.Seqfact.header_covered f then "covered" else "missing")
         (if Domain.Seqfact.trailer_covered f then "covered" else "missing"))

let frame_desc f = Frame.to_string f

let obligations_of ?fact ~view_frame ~view_agg ~query_frame strategy :
    obligation list * string list =
  match strategy with
  | Derive.Copy ->
    ( [
        ob "frames-equal"
          (Frame.equal view_frame query_frame)
          (Printf.sprintf "view %s vs query %s" (frame_desc view_frame)
             (frame_desc query_frame));
      ],
      [] )
  | Derive.From_cumulative ->
    ( [
        ob "view-cumulative"
          (Frame.is_cumulative view_frame)
          (Printf.sprintf "view frame is %s" (frame_desc view_frame));
        ob "view-sum" (view_agg = Agg.Sum)
          (Printf.sprintf "view aggregate is %s" (Agg.name view_agg));
        ob "query-sliding"
          (not (Frame.is_cumulative query_frame))
          "the §3.1 difference rule produces sliding sequences";
      ],
      [ "y~_k = x~_(k+h) - x~_(k-l-1) on the cumulative view (§3.1)" ] )
  | Derive.Min_overlap ->
    let sum_ob =
      ob "view-sum" (view_agg = Agg.Sum)
        (Printf.sprintf "MinOA needs an invertible aggregate, view has %s"
           (Agg.name view_agg))
    in
    (match query_frame with
     | Frame.Cumulative ->
       (* cumulative_from_sliding: prefix telescoping works on any SUM
          view — complete sliding ones, and (trivially) cumulative ones *)
       let shape_ok, shape_detail, notes =
         if Frame.is_cumulative view_frame then
           (true, "cumulative view: prefix sums are the view itself", [])
         else
           let complete = complete_ob fact in
           ( complete.ob_holds,
             "sliding view: telescoping needs the complete stored range ("
             ^ complete.ob_detail ^ ")",
             [ "C_j reconstructed by one ascending telescoping pass (§3.2)" ] )
       in
       ([ sum_ob; ob "view-telescopable" shape_ok shape_detail ], notes)
     | Frame.Sliding { l = ly; h = hy } ->
       let sliding_ob =
         ob "view-sliding"
           (not (Frame.is_cumulative view_frame))
           (Printf.sprintf "view frame is %s" (frame_desc view_frame))
       in
       let notes =
         match Frame.params view_frame with
         | Some (lx, hx) ->
           let wx = 1 + lx + hx in
           [
             Printf.sprintf "wx=%d, ∆l=%d, ∆h=%d (may be negative: MinOA shrinks)"
               wx (ly - lx) (hy - hx);
             Printf.sprintf "cut-off i_up = ceil((k+hy)/wx): %d at k=1"
               (int_of_float (Float.ceil (float_of_int (1 + hy) /. float_of_int wx)));
           ]
         | None -> []
       in
       ([ sum_ob; sliding_ob; complete_ob fact ], notes))
  | Derive.Max_overlap ->
    (match query_frame with
     | Frame.Cumulative ->
       ( [ ob "query-sliding" false "MaxOA does not produce cumulative sequences" ],
         [] )
     | Frame.Sliding { l = ly; h = hy } ->
       let base =
         [
           ob "view-sliding"
             (not (Frame.is_cumulative view_frame))
             (Printf.sprintf "view frame is %s" (frame_desc view_frame));
           complete_ob fact;
           ob "view-sum" (view_agg = Agg.Sum)
             (Printf.sprintf "double-sided MaxOA applies to SUM, view has %s"
                (Agg.name view_agg));
         ]
       in
       (match Frame.params view_frame with
        | None -> (base, [])
        | Some (lx, hx) ->
          let dl = ly - lx and dh = hy - hx in
          let grow =
            ob "no-shrink"
              (dl >= 0 && dh >= 0)
              (Printf.sprintf "∆l=%d, ∆h=%d must both be >= 0" dl dh)
          in
          let left =
            ob "left-residue"
              (dl = 0 || dl <= lx + hx)
              (if dl = 0 then "∆l=0: left pass is the identity"
               else
                 Printf.sprintf "∆l=%d <= lx+h=%d so ∆p=1+lx+h-∆l=%d >= 1" dl
                   (lx + hx)
                   (Core.Maxoa.overlap_factor ~lx ~h:hx ~dl))
          in
          let right =
            ob "right-residue"
              (dh = 0 || dh <= hx + lx)
              (if dh = 0 then "∆h=0: right pass is the identity"
               else
                 Printf.sprintf
                   "∆h=%d <= hx+l=%d so the mirrored ∆q=1+hx+l-∆h=%d >= 1" dh
                   (hx + lx)
                   (1 + hx + lx - dh))
          in
          let notes =
            if dl = 0 && dh = 0 then [ "identity derivation (copy of the view)" ]
            else
              [
                Printf.sprintf "coverage factors ∆l=%d, ∆h=%d" dl dh;
                (if dl > 0 && dl <= lx + hx then
                   Printf.sprintf "left overlap factor ∆p=%d"
                     (Core.Maxoa.overlap_factor ~lx ~h:hx ~dl)
                 else "left pass: identity or inapplicable");
                (if dh > 0 && dh <= hx + lx then
                   Printf.sprintf "right overlap factor ∆q=%d" (1 + hx + lx - dh)
                 else "right pass: identity or inapplicable");
              ]
          in
          (base @ [ grow; left; right ], notes)))
  | Derive.Max_overlap_minmax ->
    (match query_frame with
     | Frame.Cumulative ->
       ( [ ob "query-sliding" false "MaxOA does not produce cumulative sequences" ],
         [] )
     | Frame.Sliding { l = ly; h = hy } ->
       let base =
         [
           ob "view-sliding"
             (not (Frame.is_cumulative view_frame))
             (Printf.sprintf "view frame is %s" (frame_desc view_frame));
           complete_ob fact;
           ob "view-minmax"
             (match view_agg with Agg.Min | Agg.Max -> true | Agg.Sum -> false)
             (Printf.sprintf
                "the coverage rule applies to MIN/MAX sequences, view has %s"
                (Agg.name view_agg));
         ]
       in
       (match Frame.params view_frame with
        | None -> (base, [])
        | Some (lx, hx) ->
          let dl = ly - lx and dh = hy - hx in
          ( base
            @ [
                ob "coverage"
                  (Core.Maxoa.minmax_coverage ~lx ~hx ~ly ~hy)
                  (Printf.sprintf
                     "need 0 <= ∆l=%d, 0 <= ∆h=%d and ∆l+∆h=%d <= lx+hx=%d" dl dh
                     (dl + dh) (lx + hx));
              ],
            [
              Printf.sprintf
                "y~_k = %s(x~_(k-∆l), x~_(k+∆h)) with ∆l=%d, ∆h=%d (§4.2)"
                (Agg.name view_agg) dl dh;
            ] )))

let certify ?fact ~view_frame ~view_agg ~query_frame strategy =
  let obligations, notes =
    obligations_of ?fact ~view_frame ~view_agg ~query_frame strategy
  in
  { strategy; view_frame; view_agg; query_frame; fact; obligations; notes }

let certify_seq seq ~query_frame strategy =
  certify
    ~fact:(Domain.Seqfact.of_seq seq)
    ~view_frame:(Core.Seqdata.frame seq) ~view_agg:(Core.Seqdata.agg seq)
    ~query_frame strategy

let all_strategies =
  [
    Derive.Copy;
    Derive.From_cumulative;
    Derive.Min_overlap;
    Derive.Max_overlap;
    Derive.Max_overlap_minmax;
  ]

let candidates ?fact ~view_frame ~view_agg ~query_frame () =
  List.map (certify ?fact ~view_frame ~view_agg ~query_frame) all_strategies

let best ?fact ~view_frame ~view_agg ~query_frame () =
  List.find_opt valid (candidates ?fact ~view_frame ~view_agg ~query_frame ())

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s %s from %s %s — %s\n"
       (Derive.strategy_name t.strategy)
       (Agg.name t.view_agg)
       (Frame.to_string t.query_frame)
       (Agg.name t.view_agg)
       (Frame.to_string t.view_frame)
       (if valid t then "VALID" else "REJECTED"));
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s: %s\n"
           (if o.ob_holds then "ok  " else "FAIL")
           o.ob_name o.ob_detail))
    t.obligations;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  note %s\n" n)) t.notes;
  Buffer.contents buf
