(** Lint rules over logical plans and view derivations.

    Unlike {!Check}, lint diagnoses plans that are {e well-formed} but
    suspect or needlessly expensive — the paper-specific pitfalls:

    - RF001: a framed aggregate whose frame does not contain the current
      row while the Fig. 2 self-join rewrite is in effect (rows with
      empty frames would vanish in the inner join);
    - RF004: a cumulative frame over an invertible aggregate planned as
      the O(n*w) self join although the O(n) pipelined recursion
      applies;
    - RF005: a projected column never used by any ancestor operator;
    - RF006: a filter conjunct referencing no columns (constant-foldable).

    Derivation-level rules ({!derivation}):

    - RF002: MaxOA requested with delta_l + delta_h > lx + hx (the §4.2
      coverage rule) or a shrinking window;
    - RF003: derivation from an incomplete sequence view (missing
      header/trailer). *)

(** Lint a plan.  [self_join] states whether the Fig. 2 window-to-self-join
    rewrite will be applied to this plan (enables RF001/RF004).  Plans
    with well-formedness errors yield no lint output — run {!Check.check}
    first. *)
val plan : ?self_join:bool -> Rfview_planner.Logical.t -> Diagnostic.t list

(** Lint a sequence-view derivation: can a [query_frame] window over
    [view_agg] be derived from a [view_frame] view whose completeness is
    [complete]? *)
val derivation :
  view_frame:Rfview_core.Frame.t ->
  view_agg:Rfview_core.Agg.t ->
  query_frame:Rfview_core.Frame.t ->
  complete:bool ->
  Diagnostic.t list
