(* Static scan-sharing analysis for sequence views.

   At batch commit every dependent sequence view of a base table walks
   the same partitions: the consolidated delta is grouped by partition
   key, merged into the ordered row array, and the dirty spans are
   recomputed — once per view, even though the grouping, the claim
   matching and the structural merge depend only on (base table,
   PARTITION BY, ORDER BY), not on the view's aggregate or frame.
   "Optimization of Analytic Window Functions" gives the reuse rule:
   window computations whose partition prefixes are compatible and whose
   sort orders subsume each other can share one scan.

   This module is the *static certificate* side of that optimization,
   in the mold of Cert/Ivmcert: [scan_spec] re-derives a view's scan
   footprint from its definition independently of the engine's
   recognizer, [classify] groups the footprints into scan-share
   classes, and each class with two or more members carries a sharing
   certificate (named obligations: same-base,
   partition-prefix-compatible, order-subsumed, no-cross-view-state)
   plus an RF401 advisory naming the shareable views.

   The defining lockstep property (cert-iff-runtime, enforced by
   test/test_share.ml): the engine drives a set of live sequence-view
   states from one shared partition iterator exactly when this module
   puts their definitions in one shareable class. *)

module Ast = Rfview_sql.Ast
open Rfview_relalg

type obligation = Cert.obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

(* Frame shapes a sequence view can carry (mirrors the engine's
   recognizer: cumulative or bounded sliding ROWS frames only). *)
type frame =
  | Cumulative
  | Sliding of int * int  (* l preceding, h following *)

type scan_spec = {
  sp_view : string;
  sp_base : string;            (* base table, lowercased *)
  sp_partition : string list;  (* PARTITION BY columns, lowercased *)
  sp_order : string;           (* ORDER BY column (single, ascending) *)
  sp_frame : frame;
}

(* ---- Spec extraction ----

   An independent mirror of the engine's sequence-view recognizer
   (Matview.recognize): SELECT of simple columns plus exactly one
   framed aggregate window over a single table, no WHERE/GROUP
   BY/HAVING/DISTINCT, single ascending ORDER BY column, all PARTITION
   BY entries simple columns, and a cumulative or bounded sliding ROWS
   frame.  Keep the two walks in lockstep — the cert-iff-runtime
   matrix in test/test_share.ml depends on it. *)

let simple_col = function
  | Ast.Column (_, name) -> Some (String.lowercase_ascii name)
  | _ -> None

let frame_of (w : Ast.window_fn) : frame option =
  match w.Ast.w_frame with
  | None -> if w.Ast.w_order <> [] then Some Cumulative else None
  | Some { Ast.frame_mode = Ast.Frame_range; _ } -> None
  | Some { Ast.frame_mode = Ast.Frame_rows; frame_lo; frame_hi } ->
    let lo_off = function
      | Ast.Unbounded_preceding -> Some None
      | Ast.Preceding n -> Some (Some n)
      | Ast.Current_row -> Some (Some 0)
      | Ast.Following _ | Ast.Unbounded_following -> None
    in
    let hi_off = function
      | Ast.Following n -> Some (Some n)
      | Ast.Current_row -> Some (Some 0)
      | Ast.Preceding _ | Ast.Unbounded_preceding | Ast.Unbounded_following ->
        None
    in
    (match (lo_off frame_lo, hi_off frame_hi) with
     | Some None, Some (Some 0) -> Some Cumulative
     | Some (Some l), Some (Some h) -> Some (Sliding (l, h))
     | _ -> None)

let scan_spec ~view (q : Ast.query) : scan_spec option =
  match q.Ast.body with
  | Ast.Select
      {
        distinct = false;
        items;
        from = [ Ast.Table { name = source; alias = _ } ];
        where = None;
        group_by = [];
        having = None;
      } -> begin
      let win = ref None in
      let ok =
        List.for_all
          (fun item ->
            match item with
            | Ast.Sel_expr (Ast.Column _, _) -> true
            | Ast.Sel_expr (Ast.Window w, _) when !win = None ->
              win := Some w;
              true
            | _ -> false)
          items
      in
      if not ok then None
      else
        match !win with
        | None -> None
        | Some w ->
          let open Ast in
          (match
             ( Aggregate.kind_of_name w.w_func,
               (match w.w_args with [ a ] -> simple_col a | _ -> None),
               w.w_order,
               frame_of w )
           with
           | Some _, Some _, [ { o_expr; o_asc = true } ], Some frame ->
             (match simple_col o_expr with
              | Some order_col ->
                let partition = List.map simple_col w.w_partition in
                if List.for_all Option.is_some partition then
                  Some
                    {
                      sp_view = view;
                      sp_base = String.lowercase_ascii source;
                      sp_partition = List.map Option.get partition;
                      sp_order = order_col;
                      sp_frame = frame;
                    }
                else None
              | None -> None)
           | _ -> None)
    end
  | _ -> None

(* ---- Pairwise sharing certificate ---- *)

let ob name holds detail = { ob_name = name; ob_holds = holds; ob_detail = detail }

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let plist = function
  | [] -> "()"
  | cols -> "(" ^ String.concat ", " cols ^ ")"

let frame_to_string = function
  | Cumulative -> "cumulative"
  | Sliding (l, h) -> Printf.sprintf "ROWS %d PRECEDING .. %d FOLLOWING" l h

(* The obligations under which view [b] can ride [a]'s partition scan.
   They mirror the runtime preconditions of the engine's shared
   iterator exactly: same base table; mutually prefix-compatible (i.e.
   equal) PARTITION BY lists — a one-sided prefix is recognized but
   fails the obligation, since the coarser view would still need its
   own merge pass; the same single ascending ORDER BY column; and
   bounded per-view frames so the shared iterator carries no mutable
   cross-view state. *)
let certify_pair (a : scan_spec) (b : scan_spec) : obligation list =
  let same_base = a.sp_base = b.sp_base in
  let a_pre_b = is_prefix a.sp_partition b.sp_partition in
  let b_pre_a = is_prefix b.sp_partition a.sp_partition in
  let mutual = a_pre_b && b_pre_a in
  let same_order = a.sp_order = b.sp_order in
  [
    ob "same-base" same_base
      (if same_base then Printf.sprintf "both views scan %s" a.sp_base
       else Printf.sprintf "%s scans %s, %s scans %s" a.sp_view a.sp_base
              b.sp_view b.sp_base);
    ob "partition-prefix-compatible" mutual
      (if mutual then
         Printf.sprintf "PARTITION BY %s is a mutual prefix"
           (plist a.sp_partition)
       else if a_pre_b || b_pre_a then
         Printf.sprintf
           "%s is a proper prefix of %s — the coarser view needs its own \
            merge pass"
           (plist (if a_pre_b then a.sp_partition else b.sp_partition))
           (plist (if a_pre_b then b.sp_partition else a.sp_partition))
       else
         Printf.sprintf "PARTITION BY %s and %s share no prefix"
           (plist a.sp_partition) (plist b.sp_partition));
    ob "order-subsumed" same_order
      (if same_order then
         Printf.sprintf "one ORDER BY %s sort serves both" a.sp_order
       else
         Printf.sprintf "ORDER BY %s vs ORDER BY %s" a.sp_order b.sp_order);
    ob "no-cross-view-state" true
      (Printf.sprintf
         "frame caches are per-view (%s vs %s); the shared iterator only \
          carries the immutable merge"
         (frame_to_string a.sp_frame)
         (frame_to_string b.sp_frame));
  ]

let pair_valid obs = List.for_all (fun o -> o.ob_holds) obs

let compatible a b = pair_valid (certify_pair a b)

(* ---- Scan-share classes ---- *)

type group = {
  g_base : string;
  g_members : scan_spec list;  (* in input (catalog) order *)
  g_obligations : obligation list;
      (* the certificate of the class: obligations of every non-leading
         member against the class representative (vacuous for a class
         of one) *)
  g_diags : Diagnostic.t list;  (* RF401 advisory when shareable *)
}

let shareable g = List.length g.g_members >= 2 && pair_valid g.g_obligations

let scan_key g =
  match g.g_members with
  | [] -> ""
  | rep :: _ ->
    Printf.sprintf "PARTITION BY %s ORDER BY %s" (plist rep.sp_partition)
      rep.sp_order

let make_group members =
  let rep = List.hd members in
  let obligations =
    match members with
    | [ only ] ->
      [
        ob "same-base" true (Printf.sprintf "single view over %s" only.sp_base);
      ]
    | rep :: rest -> List.concat_map (fun m -> certify_pair rep m) rest
    | [] -> []
  in
  let g =
    {
      g_base = rep.sp_base;
      g_members = members;
      g_obligations = obligations;
      g_diags = [];
    }
  in
  if shareable g then
    {
      g with
      g_diags =
        [
          Diagnostic.make ~code:"RF401"
            ~path:[ "view" ]
            (Printf.sprintf "redundant re-scan: views {%s} shareable over %s (%s)"
               (String.concat ", " (List.map (fun m -> m.sp_view) members))
               rep.sp_base (scan_key g));
        ];
    }
  else g

(* Group the specs into scan-share classes: first-fit against each
   class representative, preserving input order — the same greedy
   grouping the engine applies to its live view states. *)
let classify (specs : scan_spec list) : group list =
  let classes = ref [] in
  List.iter
    (fun s ->
      match
        List.find_opt (fun members -> compatible (List.hd !members) s) !classes
      with
      | Some members -> members := !members @ [ s ]
      | None -> classes := !classes @ [ ref [ s ] ])
    specs;
  List.map (fun members -> make_group !members) !classes

let diagnostics groups = List.concat_map (fun g -> g.g_diags) groups

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "scan-share class on %s (%s): %s — %s\n" g.g_base
       (scan_key g)
       (if shareable g then "SHARED" else "SOLO")
       (String.concat ", " (List.map (fun m -> m.sp_view) g.g_members)));
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s: %s\n"
           (if o.ob_holds then "ok  " else "FAIL")
           o.ob_name o.ob_detail))
    g.g_obligations;
  Buffer.contents buf
