(** Static scan-sharing analysis: scan-share classes and sharing
    certificates for sequence views.

    At batch commit, every dependent sequence view of a base table
    re-walks the same partitions; views whose PARTITION BY prefixes are
    compatible and whose ORDER BY orders subsume each other can be
    driven from {e one} shared partition iterator ("Optimization of
    Analytic Window Functions" reuse rules).  This module is the static
    certificate side, in the mold of {!Cert}/{!Ivmcert}: it re-derives
    each view's scan footprint from its definition, groups the
    footprints into scan-share classes, and certifies each class with
    named obligations plus an {b RF401} advisory.

    The defining lockstep property (cert-iff-runtime, enforced by
    [test/test_share.ml]): the engine drives a set of live
    sequence-view states from one shared iterator exactly when
    {!classify} puts their definitions into one {!shareable} class. *)

(** Same record as {!Cert.obligation}. *)
type obligation = Cert.obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

(** Frame shapes a sequence view can carry (cumulative or bounded
    sliding ROWS frames — the engine recognizes nothing else). *)
type frame =
  | Cumulative
  | Sliding of int * int  (** l preceding, h following *)

(** A view's scan footprint on its base table. *)
type scan_spec = {
  sp_view : string;
  sp_base : string;            (** base table, lowercased *)
  sp_partition : string list;  (** PARTITION BY columns, lowercased *)
  sp_order : string;           (** ORDER BY column (single, ascending) *)
  sp_frame : frame;
}

(** Extract the scan footprint of a sequence-shaped view definition;
    [None] when the definition is not sequence-shaped.  An independent
    structural mirror of the engine's recognizer
    ([Rfview_engine.Matview.recognize]). *)
val scan_spec : view:string -> Rfview_sql.Ast.query -> scan_spec option

(** The obligations under which the second view can ride the first
    view's partition scan: same-base, partition-prefix-compatible,
    order-subsumed, no-cross-view-state. *)
val certify_pair : scan_spec -> scan_spec -> obligation list

(** All pairwise obligations hold. *)
val compatible : scan_spec -> scan_spec -> bool

(** A scan-share class: the views of one base table whose scans are
    mutually compatible, with the class certificate and its RF401
    advisory (present exactly when the class is {!shareable}). *)
type group = {
  g_base : string;
  g_members : scan_spec list;  (** in input (catalog) order *)
  g_obligations : obligation list;
  g_diags : Diagnostic.t list;
}

(** Two or more members and every obligation discharged: the engine
    shares the scan. *)
val shareable : group -> bool

(** Group the specs into scan-share classes (first-fit against each
    class representative, input order preserved — the same greedy
    grouping the engine applies to its live view states). *)
val classify : scan_spec list -> group list

(** The RF401 advisories of every shareable class. *)
val diagnostics : group list -> Diagnostic.t list

(** ["PARTITION BY (grp) ORDER BY pos"] of the class representative. *)
val scan_key : group -> string

(** Multi-line rendering: header with SHARED/SOLO and the member list,
    one ["  ok ..."] / ["  FAIL ..."] line per obligation. *)
val to_string : group -> string
