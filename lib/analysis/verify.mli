(** Translation validation of plan rewrites.

    When enabled, every rewrite pass reported through
    {!Rfview_planner.Hooks} — predicate pushdown, the Fig. 2
    window-to-self-join rewrite — is validated: the output plan must be
    checker-clean ({!Check.check} reports no errors) and schema-equivalent
    (names, arity, dtypes) to the input plan.  The engine additionally
    checks every bound and optimized plan, and bag-compares incremental
    materialized-view maintenance against full recomputation.

    Verification is off by default (production plans pay nothing); the
    test suite and [rfview --verify-plans] enable it globally. *)

(** Raised when a plan fails the well-formedness checker. *)
exception Plan_invalid of string

(** Raised when a rewrite pass is not schema-preserving, or when an
    incremental maintenance result diverges from recomputation. *)
exception Not_preserved of string

(** Turn verification on and install the translation validator into the
    planner's rewrite hook (idempotent). *)
val enable : unit -> unit

(** Turn verification off (the hook stays installed but becomes inert). *)
val disable : unit -> unit

val enabled : unit -> bool

(** Check a plan; @raise Plan_invalid listing the checker errors. *)
val check_plan : context:string -> Rfview_planner.Logical.t -> unit

(** Validate one rewrite pass: both sides checker-clean, schemas equal.
    @raise Plan_invalid / Not_preserved accordingly. *)
val validate :
  pass:string ->
  before:Rfview_planner.Logical.t ->
  after:Rfview_planner.Logical.t ->
  unit

(** Translation-validate one view-maintenance step: when verification is
    enabled, [incremental] (the maintained contents) must be bag-equal
    to [recomputed] (the view definition evaluated from scratch).
    [context] names the maintenance strategy for the error message.
    No-op when verification is off.
    @raise Not_preserved on divergence. *)
val check_view_maintenance :
  view:string ->
  context:string ->
  incremental:Rfview_relalg.Relation.t ->
  recomputed:Rfview_relalg.Relation.t ->
  unit

(** The shared-scan differential validator installed into
    {!Rfview_planner.Hooks.shared_scan_validator} by {!enable}: the
    shared-scan rendering of a view must be {e bit-identical} (float
    cells compared by IEEE bits) to the per-view-scan rendering of the
    same delta.  Exposed for direct use in tests.
    @raise Not_preserved on any difference. *)
val check_shared_scan :
  view:string ->
  shared:Rfview_relalg.Relation.t ->
  per_view:Rfview_relalg.Relation.t ->
  unit
