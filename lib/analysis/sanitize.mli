(** The differential sanitizer: executes every sub-plan of a query and
    asserts the concrete intermediate relation lies inside the abstract
    interpreter's state for that node ({!Domain.check_relation}).  Any
    abstract/concrete disagreement means the analysis is unsound (or the
    executor broken) and is a hard failure.

    Like the plan verifier, the sanitizer is installed through
    {!Rfview_planner.Hooks} ([Hooks.sanitizer]) because the planner
    cannot depend on this library; [Rfview_engine.Database.plan_query]
    invokes the hook on the final optimized plan of every query, so
    enabling the sanitizer covers normal runs, rewrites and the chaos
    harness alike.  It is a test-time tool: every sub-plan is planned
    and executed separately, roughly squaring the cost of a query. *)

module Logical := Rfview_planner.Logical
module Physical := Rfview_planner.Physical

(** Raised on any disagreement; the message names the node path, the
    violated fact, and the abstract state. *)
exception Disagreement of string

(** Install the sanitizer into [Hooks.sanitizer] and turn it on. *)
val enable : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** Number of (sub-plan, relation) checks performed since [enable] —
    lets tests assert the sanitizer actually ran. *)
val checks_run : unit -> int

(** The sanitizer itself (also usable directly, without installing):
    checks every sub-plan of [plan] against [catalog].
    @raise Disagreement on any abstract/concrete mismatch. *)
val check : catalog:Physical.catalog_view -> Logical.t -> unit
