(** Per-operator resource analysis: static memory-footprint bounds over
    logical plans.

    The static side of the out-of-core/spill decision: row widths from
    the schema, cardinality ranges from the abstract interpreter
    ({!Absint}), and per-operator resident-state transfer functions —
    streaming operators hold nothing, sorts/builds hold their input,
    aggregates hold one row per group, and window operators hold a
    [w+2] frame cache for cumulative/bounded ROWS frames versus the
    whole partition for RANGE or unbounded-following frames.

    Emits {b RF402} ("unbounded window state") per whole-partition
    frame and {b RF403} ("estimated footprint exceeds budget") when the
    plan's total resident bytes exceed, or cannot be bounded against,
    the budget. *)

module Logical := Rfview_planner.Logical

type op_cost = {
  oc_op : string;           (** operator label *)
  oc_rows : Domain.Card.t;  (** input row range the state is built from *)
  oc_width : int;           (** input row width estimate, bytes *)
  oc_state_rows : Domain.Card.t;  (** resident rows *)
  oc_bytes : int option;    (** resident byte bound; [None] = unbounded *)
}

type report = {
  ops : op_cost list;        (** stateful operators, root first *)
  total_bytes : int option;  (** sum over operators; [None] = unbounded *)
  diags : Diagnostic.t list; (** RF402 / RF403 *)
}

(** 64 MiB. *)
val default_budget : int

(** Walk the plan and bound its resident state.  [env] supplies table
    contents exactly as for {!Absint.analyze}; [budget] defaults to
    {!default_budget} bytes. *)
val analyze : ?env:Absint.env -> ?budget:int -> Logical.t -> report

(** One header line (total bound) plus one line per stateful operator. *)
val to_string : report -> string
