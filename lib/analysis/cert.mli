(** Derivability certificates (paper §3–§5).

    A certificate is a typed artifact stating {e why} a requested query
    frame is (or is not) derivable from a materialized sequence view by
    one specific {!Rfview_core.Derive.strategy}: the list of proof
    obligations the strategy's runtime entry point checks, each
    discharged or failed statically.

    The obligations mirror the runtime preconditions {e exactly}, so the
    defining property (covered by golden tests) is:

    [valid (certify_seq view ~query_frame s)] iff
    [Derive.run s view query_frame] succeeds.

    Consumers: {!Rfview_engine.Advisor} proposes a derivation only with
    a valid certificate, and [rfview analyze] prints certificates for
    the catalog/query pairs it inspects. *)

module Core := Rfview_core

(** One proof obligation: a named precondition with its discharge
    status and a human-readable instantiation ("∆l=2 <= lx+hx=3"). *)
type obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

type t = {
  strategy : Core.Derive.strategy;
  view_frame : Core.Frame.t;
  view_agg : Core.Agg.t;
  query_frame : Core.Frame.t;
  fact : Domain.Seqfact.t option;
      (** completeness facts of the inspected sequence, when one was *)
  obligations : obligation list;
  notes : string list;
      (** derived quantities: [∆l], [∆p], [∆h], [∆q], [wx], [i_up] … *)
}

(** All obligations discharged: the derivation is proven applicable. *)
val valid : t -> bool

(** Certify one strategy from frame/aggregate knowledge alone.  When
    [fact] is omitted, completeness obligations are discharged under the
    recorded assumption that engine-materialized sequences are complete
    by construction (see {!Rfview_core.Seqdata.make}). *)
val certify :
  ?fact:Domain.Seqfact.t ->
  view_frame:Core.Frame.t ->
  view_agg:Core.Agg.t ->
  query_frame:Core.Frame.t ->
  Core.Derive.strategy ->
  t

(** Certify against an actual materialized sequence (its completeness
    facts are inspected, not assumed). *)
val certify_seq : Core.Seqdata.t -> query_frame:Core.Frame.t -> Core.Derive.strategy -> t

(** Certificates for every strategy, in the planner's preference order
    ([Copy], [From_cumulative], [Min_overlap], [Max_overlap],
    [Max_overlap_minmax]) — including the failed ones, for reporting. *)
val candidates :
  ?fact:Domain.Seqfact.t ->
  view_frame:Core.Frame.t ->
  view_agg:Core.Agg.t ->
  query_frame:Core.Frame.t ->
  unit ->
  t list

(** The first valid candidate, if any. *)
val best :
  ?fact:Domain.Seqfact.t ->
  view_frame:Core.Frame.t ->
  view_agg:Core.Agg.t ->
  query_frame:Core.Frame.t ->
  unit ->
  t option

(** Multi-line rendering: header with VALID/REJECTED, one ["  ok ..."] /
    ["  FAIL ..."] line per obligation, then the notes. *)
val to_string : t -> string
