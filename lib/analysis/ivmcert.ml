(* Incrementality certificates for generalized view maintenance.

   Planner.Deriv derives per-operator delta rules; this module is the
   *independent* static mirror of its preconditions: a walk over the
   same logical plan producing one named proof obligation per rule
   condition (linearity of every operator, join bilinearity, GROUP BY
   key locality and preservation, window partition locality), each
   discharged or failed, plus an RF3xx diagnostic per failure.

   Keep the two walks in lockstep: the cert-iff-derive matrix in
   test/test_ivm.ml asserts

     valid (certify plan)  <=>  Result.is_ok (Deriv.derive plan)

   and the engine installs a derived maintenance plan only when both
   agree. *)

module Logical = Rfview_planner.Logical
open Rfview_relalg

type obligation = Cert.obligation = {
  ob_name : string;
  ob_holds : bool;
  ob_detail : string;
}

type t = {
  view : string;
  shape : string;  (* "linear" | "group-by" | "window" *)
  obligations : obligation list;
  diags : Diagnostic.t list;
}

let valid t = List.for_all (fun o -> o.ob_holds) t.obligations

let ob name holds detail = { ob_name = name; ob_holds = holds; ob_detail = detail }

(* ---- Offender collection in a linear context ---- *)

type offender =
  | Off_nonlinear of string  (* Distinct/Limit/Sort/Number *)
  | Off_outer_join
  | Off_nested_group
  | Off_nested_window

let rec offenders acc (plan : Logical.t) =
  match plan with
  | Logical.Scan _ -> acc
  | Filter { input; _ } | Project { input; _ } | Alias { input; _ } ->
    offenders acc input
  | Join { kind; left; right; _ } ->
    let acc = if kind = Joinop.Left_outer then Off_outer_join :: acc else acc in
    offenders (offenders acc left) right
  | Union_all { left; right } -> offenders (offenders acc left) right
  | Aggregate { input; _ } -> offenders (Off_nested_group :: acc) input
  | Window_op { input; _ } -> offenders (Off_nested_window :: acc) input
  | Number { input; _ } -> offenders (Off_nonlinear "Number" :: acc) input
  | Sort { input; _ } -> offenders (Off_nonlinear "Sort" :: acc) input
  | Distinct input -> offenders (Off_nonlinear "Distinct" :: acc) input
  | Limit { input; _ } -> offenders (Off_nonlinear "Limit" :: acc) input

let named p l = List.filter_map p (List.rev l)

(* ---- Shared structural predicates (mirrors of Deriv's) ---- *)

let rec local_chain = function
  | Logical.Scan _ -> true
  | Logical.Filter { input; _ }
  | Logical.Project { input; _ }
  | Logical.Alias { input; _ } -> local_chain input
  | _ -> false

(* Peel Filter/Project/Alias off the top; wraps innermost-first as
   projection column lists ([None] for filters, transparent for key
   recovery). *)
let rec peel wraps (plan : Logical.t) =
  match plan with
  | Logical.Filter { input; _ } -> peel wraps input
  | Logical.Project { input; exprs } -> peel (List.map fst exprs :: wraps) input
  | Logical.Alias { input; _ } -> peel wraps input
  | node -> (wraps, node)

(* Is a node-schema expression recoverable from the view's output rows
   through the projection chain?  Exactly Deriv.remap_through_wraps'
   success condition: every projection on the way up is made of bare
   column references covering the expression's columns. *)
let preserved_through (wraps : Expr.t list list) (e : Expr.t) : bool =
  List.fold_left
    (fun acc exprs ->
      match acc with
      | None -> None
      | Some e ->
        let table =
          List.concat
            (List.mapi
               (fun i pe ->
                 match pe with Expr.Col c -> [ (c, i) ] | _ -> [])
               exprs)
        in
        let ok = ref true in
        let e' =
          Expr.map_cols
            (fun c ->
              match List.assoc_opt c table with
              | Some i -> i
              | None ->
                ok := false;
                c)
            e
        in
        if !ok then Some e' else None)
    (Some e) wraps
  |> Option.is_some

(* ---- Certification ---- *)

let diag code msg = Diagnostic.make ~code ~path:[ "view" ] msg

let linear_obligations node =
  let offs = offenders [] node in
  let nonlinear = named (function Off_nonlinear n -> Some n | _ -> None) offs in
  let outer = List.exists (( = ) Off_outer_join) offs in
  let nested_g = List.exists (( = ) Off_nested_group) offs in
  let nested_w = List.exists (( = ) Off_nested_window) offs in
  let obs =
    [
      ob "ops-linear" (nonlinear = [])
        (if nonlinear = [] then
           "every operator commutes with signed row deltas"
         else
           Printf.sprintf "no delta rule for: %s"
             (String.concat ", " (List.sort_uniq String.compare nonlinear)));
      ob "joins-inner" (not outer)
        (if outer then "an outer join pads unmatched rows"
         else "all joins are inner (bilinear)");
      ob "spine-only-grouping"
        ((not nested_g) && not nested_w)
        (if nested_g || nested_w then
           "an aggregate/window below a join or union cannot be localized"
         else "no aggregation below joins or unions");
    ]
  in
  let diags =
    (if nonlinear = [] then []
     else
       [
         diag "RF301"
           (Printf.sprintf "no delta rule for %s; the view keeps full refresh"
              (String.concat ", " (List.sort_uniq String.compare nonlinear)));
       ])
    @ (if outer then
         [ diag "RF302" "outer join breaks delta bilinearity; the view keeps full refresh" ]
       else [])
    @ (if nested_g then
         [ diag "RF303" "GROUP BY below a join or union is not localizable; the view keeps full refresh" ]
       else [])
    @
    if nested_w then
      [ diag "RF304" "window below a join or union is not partition-local; the view keeps full refresh" ]
    else []
  in
  (obs, diags)

let certify ?(view = "view") (plan : Logical.t) : t =
  let wraps, node = peel [] plan in
  match node with
  | Logical.Aggregate { input; group; _ } ->
    let keyed = group <> [] in
    let local = local_chain input in
    let preserved =
      List.for_all
        (fun i -> preserved_through wraps (Expr.Col i))
        (List.init (List.length group) Fun.id)
    in
    let obs =
      [
        ob "group-keyed" keyed
          (if keyed then
             Printf.sprintf "%d grouping key column(s) localize the delta"
               (List.length group)
           else "a global aggregate has no key to localize on");
        ob "group-child-local" local
          (if local then
             "the aggregate input is a single-table select/project chain"
           else "the aggregate input reaches beyond one table");
        ob "group-keys-preserved" preserved
          (if preserved then
             "every grouping key survives into the view's output columns"
           else "a grouping key is projected away above the aggregate");
      ]
    in
    let fails = List.filter (fun o -> not o.ob_holds) obs in
    {
      view;
      shape = "group-by";
      obligations = obs;
      diags =
        List.map
          (fun o ->
            diag "RF303"
              (Printf.sprintf "%s (%s); the view keeps full refresh" o.ob_detail
                 o.ob_name))
          fails;
    }
  | Logical.Window_op { input; fns } ->
    let partition =
      match fns with [] -> [] | f :: _ -> f.Logical.partition
    in
    let partitioned = fns = [] || partition <> [] in
    let shared =
      match fns with
      | [] -> true
      | f :: rest ->
        List.for_all (fun g -> g.Logical.partition = f.Logical.partition) rest
    in
    let local = local_chain input in
    let preserved =
      (not partitioned) || not shared
      || List.for_all (preserved_through wraps) partition
    in
    let obs =
      [
        ob "window-partitioned" partitioned
          (if partitioned then "PARTITION BY bounds the dirty region"
           else "a window without PARTITION BY spans the whole relation");
        ob "window-shared-partition" shared
          (if shared then "all window functions share one PARTITION BY key"
           else "window functions partition by different keys");
        ob "window-child-local" local
          (if local then
             "the window input is a single-table select/project chain"
           else "the window input reaches beyond one table");
        ob "window-keys-preserved" preserved
          (if preserved then
             "every partition key survives into the view's output columns"
           else "a partition key is projected away above the window");
      ]
    in
    let fails = List.filter (fun o -> not o.ob_holds) obs in
    {
      view;
      shape = "window";
      obligations = obs;
      diags =
        List.map
          (fun o ->
            diag "RF304"
              (Printf.sprintf "%s (%s); the view keeps full refresh" o.ob_detail
                 o.ob_name))
          fails;
    }
  | node ->
    let obs, diags = linear_obligations node in
    { view; shape = "linear"; obligations = obs; diags }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "ivm %s: %s maintenance — %s\n" t.view t.shape
       (if valid t then "DERIVED" else "REJECTED (full refresh)"));
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s: %s\n"
           (if o.ob_holds then "ok  " else "FAIL")
           o.ob_name o.ob_detail))
    t.obligations;
  Buffer.contents buf
