(** Diagnostics of the plan verifier and lint subsystem.

    Every diagnostic carries a stable [RFxxx] code so tools (and golden
    tests) can match on it, a severity, a human-readable message, and the
    plan path of the offending node.  The code registry ({!registry})
    documents every rule; [rfview lint --explain-diagnostics] prints it. *)

type severity =
  | Error    (** the plan is not well-formed / not executable as written *)
  | Warning  (** the plan computes a suspect or needlessly expensive answer *)
  | Info     (** stylistic or optimization note *)

type t = {
  code : string;     (** stable rule code, e.g. ["RF001"] *)
  severity : severity;
  message : string;
  path : string;     (** plan location, root first, e.g. ["Project/Filter"] *)
}

(** Registry entry: what a code means and how to address it. *)
type info = {
  r_code : string;
  r_severity : severity;
  r_title : string;
  r_explanation : string;
}

(** All known diagnostic codes, ascending. *)
val registry : info list

val find_info : string -> info option

(** One-paragraph explanation of a code (title + remedy); a fallback
    string for unknown codes. *)
val explain : string -> string

(** GitHub-flavoured markdown table of the registry (code, severity,
    title) — the generator behind the DESIGN.md diagnostics table and
    [rfview lint --codes-md]. *)
val registry_markdown : unit -> string

(** Build a diagnostic; the severity is looked up in the registry
    (unknown codes default to [Error]).  [path] is given root-first. *)
val make : code:string -> path:string list -> string -> t

val severity_name : severity -> string
val is_error : t -> bool

(** ["RF006 info: ... [at Project/Filter]"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
