(* Translation validation of plan rewrites (see the .mli).  The planner
   cannot depend on this library (it would be a dependency cycle), so
   rewrite passes report (before, after) pairs through
   Rfview_planner.Hooks and [enable] installs the validator there. *)

open Rfview_relalg
module Logical = Rfview_planner.Logical
module Hooks = Rfview_planner.Hooks

exception Plan_invalid of string
exception Not_preserved of string

let flag = ref false

let enabled () = !flag

let check_plan ~context plan =
  match List.filter Diagnostic.is_error (Check.check plan) with
  | [] -> ()
  | errs ->
    raise
      (Plan_invalid
         (Printf.sprintf "%s failed the well-formedness checker:\n  %s" context
            (String.concat "\n  " (List.map Diagnostic.to_string errs))))

let schema_of ~pass ~side plan =
  try Logical.schema plan
  with e ->
    raise
      (Not_preserved
         (Printf.sprintf "%s: the %s plan has no computable schema: %s" pass side
            (Printexc.to_string e)))

let validate ~pass ~before ~after =
  check_plan ~context:(pass ^ " input") before;
  check_plan ~context:(pass ^ " output") after;
  let sb = schema_of ~pass ~side:"input" before in
  let sa = schema_of ~pass ~side:"output" after in
  if not (Schema.equal sb sa) then
    raise
      (Not_preserved
         (Printf.sprintf "%s is not schema-preserving: %s became %s" pass
            (Schema.to_string sb) (Schema.to_string sa)))

(* Translation validation of view maintenance: the incrementally
   maintained contents must be bag-equal to recomputing the view's
   definition from scratch.  Shared by the engine's sequence-view,
   derived-delta and state-initialization paths so all maintenance
   strategies answer to the same check. *)
let check_view_maintenance ~view ~context ~incremental ~recomputed =
  if enabled () && not (Relation.equal_bag incremental recomputed) then
    raise
      (Not_preserved
         (Printf.sprintf
            "matview %s: %s diverged from full recomputation (%d rows vs %d)"
            view context
            (Relation.cardinality incremental)
            (Relation.cardinality recomputed)))

let installed = ref false

let enable () =
  flag := true;
  if not !installed then begin
    installed := true;
    Hooks.validator :=
      fun ~pass ~before ~after -> if !flag then validate ~pass ~before ~after
  end

let disable () = flag := false
