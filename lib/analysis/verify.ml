(* Translation validation of plan rewrites (see the .mli).  The planner
   cannot depend on this library (it would be a dependency cycle), so
   rewrite passes report (before, after) pairs through
   Rfview_planner.Hooks and [enable] installs the validator there. *)

open Rfview_relalg
module Logical = Rfview_planner.Logical
module Hooks = Rfview_planner.Hooks

exception Plan_invalid of string
exception Not_preserved of string

let flag = ref false

let enabled () = !flag

let check_plan ~context plan =
  match List.filter Diagnostic.is_error (Check.check plan) with
  | [] -> ()
  | errs ->
    raise
      (Plan_invalid
         (Printf.sprintf "%s failed the well-formedness checker:\n  %s" context
            (String.concat "\n  " (List.map Diagnostic.to_string errs))))

let schema_of ~pass ~side plan =
  try Logical.schema plan
  with e ->
    raise
      (Not_preserved
         (Printf.sprintf "%s: the %s plan has no computable schema: %s" pass side
            (Printexc.to_string e)))

let validate ~pass ~before ~after =
  check_plan ~context:(pass ^ " input") before;
  check_plan ~context:(pass ^ " output") after;
  let sb = schema_of ~pass ~side:"input" before in
  let sa = schema_of ~pass ~side:"output" after in
  if not (Schema.equal sb sa) then
    raise
      (Not_preserved
         (Printf.sprintf "%s is not schema-preserving: %s became %s" pass
            (Schema.to_string sb) (Schema.to_string sa)))

(* Translation validation of view maintenance: the incrementally
   maintained contents must be bag-equal to recomputing the view's
   definition from scratch.  Shared by the engine's sequence-view,
   derived-delta and state-initialization paths so all maintenance
   strategies answer to the same check. *)
let check_view_maintenance ~view ~context ~incremental ~recomputed =
  if enabled () && not (Relation.equal_bag incremental recomputed) then
    raise
      (Not_preserved
         (Printf.sprintf
            "matview %s: %s diverged from full recomputation (%d rows vs %d)"
            view context
            (Relation.cardinality incremental)
            (Relation.cardinality recomputed)))

(* Differential validation of shared-scan view maintenance: a view
   driven from a scan-share class's shared partition iterator must land
   bit-for-bit (float cells compared by their IEEE bits, not by value)
   where the per-view scan of the same delta lands.  Installed into
   Planner.Hooks like the rewrite validator — the engine reports the
   two renderings per view whenever verification is on. *)

let value_same_bits a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Value.equal a b

let check_shared_scan ~view ~shared ~per_view =
  let ra = Relation.rows shared and rb = Relation.rows per_view in
  let same =
    Array.length ra = Array.length rb
    && Array.for_all2
         (fun a b ->
           Row.arity a = Row.arity b
           && List.for_all
                (fun i -> value_same_bits (Row.get a i) (Row.get b i))
                (List.init (Row.arity a) Fun.id))
         ra rb
  in
  if not same then
    raise
      (Not_preserved
         (Printf.sprintf
            "matview %s: shared-scan maintenance diverged from the per-view \
             scan (%d rows vs %d)"
            view (Array.length ra) (Array.length rb)))

let installed = ref false

let enable () =
  flag := true;
  if not !installed then begin
    installed := true;
    Hooks.validator :=
      (fun ~pass ~before ~after -> if !flag then validate ~pass ~before ~after);
    Hooks.shared_scan_validator :=
      fun ~view ~shared ~per_view ->
        if !flag then check_shared_scan ~view ~shared ~per_view
  end

let disable () = flag := false
