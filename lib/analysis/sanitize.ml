(* Differential sanitizer — see the .mli.  For every node of the final
   logical plan: plan + execute the sub-tree rooted there against a
   snapshot of the catalog, abstract-interpret the same sub-tree against
   the same snapshot, and check concrete against abstract. *)

open Rfview_relalg
module Logical = Rfview_planner.Logical
module Physical = Rfview_planner.Physical
module Hooks = Rfview_planner.Hooks

exception Disagreement of string

let flag = ref false
let enabled () = !flag

let counter = ref 0
let checks_run () = !counter

(* Scanning a materialized view can heal it, which re-enters the planner
   (and hence this hook) through Database.run_query; the guard keeps the
   sanitizer from recursing into its own executions. *)
let in_progress = ref false

let children (p : Logical.t) : Logical.t list =
  match p with
  | Logical.Scan _ -> []
  | Logical.Filter { input; _ }
  | Logical.Project { input; _ }
  | Logical.Aggregate { input; _ }
  | Logical.Window_op { input; _ }
  | Logical.Number { input; _ }
  | Logical.Sort { input; _ }
  | Logical.Limit { input; _ }
  | Logical.Alias { input; _ } -> [ input ]
  | Logical.Distinct input -> [ input ]
  | Logical.Join { left; right; _ } | Logical.Union_all { left; right } ->
    [ left; right ]

(* A catalog wrapper that reads each relation at most once, so the
   abstract interpreter and every sub-plan execution see identical data
   even if the backing store heals or refreshes in between. *)
let snapshot (catalog : Physical.catalog_view) =
  let cache : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
  let table_contents name =
    match Hashtbl.find_opt cache name with
    | Some r -> r
    | None ->
      let r = catalog.Physical.table_contents name in
      Hashtbl.replace cache name r;
      r
  in
  ( { Physical.table_contents; table_index = catalog.Physical.table_index },
    fun name -> (try Some (table_contents name) with _ -> None) )

let check ~catalog plan =
  let snapcat, env = snapshot catalog in
  let rec walk path (p : Logical.t) =
    let here = path @ [ Check.label p ] in
    List.iter (walk here) (children p);
    let abs = Absint.analyze ~env p in
    let concrete = Physical.execute snapcat (Physical.plan snapcat p) in
    incr counter;
    match Domain.check_relation abs concrete with
    | Ok () -> ()
    | Error msg ->
      raise
        (Disagreement
           (Printf.sprintf
              "abstract/concrete disagreement at %s: %s\n  abstract state: %s"
              (String.concat "/" here) msg (Domain.rel_to_string abs)))
  in
  walk [] plan

let installed = ref false

let enable () =
  flag := true;
  if not !installed then begin
    installed := true;
    Hooks.sanitizer :=
      fun ~catalog plan ->
        if !flag && not !in_progress then begin
          in_progress := true;
          Fun.protect
            ~finally:(fun () -> in_progress := false)
            (fun () -> check ~catalog plan)
        end
  end

let disable () = flag := false
