(* Materialized sequence views: recognition, state, incremental
   maintenance (paper §2.3) and rendering.

   A view qualifies as a *sequence view* when its definition has the shape

     SELECT col..., agg(value_col) OVER
            ([PARTITION BY pcols] ORDER BY order_col [ROWS frame]) [AS a]
     FROM base_table

   with simple column references, a single ordering column and a
   cumulative or sliding ROWS frame.  For such views the engine keeps a
   per-partition core representation (raw data + complete sequence) and
   maintains it incrementally under base-table DML; other views are
   refreshed by full recomputation.

   The value column must be numeric and NULL-free for the incremental
   path — checked when the state is initialized; otherwise the engine
   falls back to full refresh. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Core = Rfview_core

type seq_spec = {
  source : string;                 (* base table name *)
  partition : string list;         (* partition column names *)
  order_col : string;
  value_col : string;
  agg : Aggregate.kind;
  frame : Core.Frame.t;
  (* output layout: base column name per item, None = the window column *)
  items : (string option * string) list; (* (source column, output name) *)
}

(* ---- Recognition ---- *)

let simple_col = function
  | Ast.Column (_, name) -> Some name
  | _ -> None

let core_frame (w : Ast.window_fn) : Core.Frame.t option =
  match w.Ast.w_frame with
  | None -> if w.Ast.w_order <> [] then Some Core.Frame.Cumulative else None
  | Some { Ast.frame_mode = Ast.Frame_range; _ } -> None
  | Some { Ast.frame_mode = Ast.Frame_rows; frame_lo; frame_hi } ->
    let lo_off = function
      | Ast.Unbounded_preceding -> Some None (* unbounded *)
      | Ast.Preceding n -> Some (Some n)
      | Ast.Current_row -> Some (Some 0)
      | Ast.Following _ | Ast.Unbounded_following -> None
    in
    let hi_off = function
      | Ast.Following n -> Some (Some n)
      | Ast.Current_row -> Some (Some 0)
      | Ast.Preceding _ | Ast.Unbounded_preceding | Ast.Unbounded_following -> None
    in
    (match lo_off frame_lo, hi_off frame_hi with
     | Some None, Some (Some 0) -> Some Core.Frame.Cumulative
     | Some (Some l), Some (Some h) -> Some (Core.Frame.sliding ~l ~h)
     | _ -> None)

let recognize (q : Ast.query) : seq_spec option =
  match q.Ast.body with
  | Ast.Select
      {
        distinct = false;
        items;
        from = [ Ast.Table { name = source; alias = _ } ];
        where = None;
        group_by = [];
        having = None;
      }
    when q.Ast.order_by = [] || true -> begin
      (* collect items: simple columns plus exactly one window function *)
      let win = ref None in
      let layout = ref [] in
      let ok =
        List.for_all
          (fun item ->
            match item with
            | Ast.Sel_expr (Ast.Column (_, c), alias) ->
              layout := (Some c, Option.value ~default:c alias) :: !layout;
              true
            | Ast.Sel_expr (Ast.Window w, alias) when !win = None ->
              win := Some (w, alias);
              layout := (None, Option.value ~default:"seq_val" alias) :: !layout;
              true
            | _ -> false)
          items
      in
      if not ok then None
      else
        match !win with
        | None -> None
        | Some (w, _) ->
          let open Ast in
          (match
             ( Aggregate.kind_of_name w.w_func,
               (match w.w_args with [ a ] -> simple_col a | _ -> None),
               w.w_order,
               core_frame w )
           with
           | Some agg, Some value_col, [ { o_expr; o_asc = true } ], Some frame ->
             (match simple_col o_expr with
              | Some order_col ->
                let partition =
                  List.map
                    (fun p -> simple_col p)
                    w.w_partition
                in
                if List.for_all Option.is_some partition then
                  Some
                    {
                      source;
                      partition = List.map Option.get partition;
                      order_col;
                      value_col;
                      agg;
                      frame;
                      items = List.rev !layout;
                    }
                else None
              | None -> None)
           | _ -> None)
    end
  | _ -> None

(* ---- Maintenance state ---- *)

type partition_state = {
  pkey : Value.t list;
  mutable base_rows : Row.t array; (* base rows of this partition, ordered *)
  mutable raw : Core.Seqdata.raw;
  mutable seq : Core.Seqdata.t;
}

type state = {
  spec : seq_spec;
  base_schema : Schema.t;
  out_schema : Schema.t;
  pcols : int list;   (* partition column indices in the base schema *)
  ocol : int;         (* order column index *)
  vcol : int;         (* value column index *)
  mutable parts : partition_state list; (* sorted by pkey *)
}

exception Not_maintainable of string

(* Fault-injection sites (see Fault): state construction and the three
   incremental maintenance entry points. *)
let site_init = Fault.define "matview.init_state"
let site_apply_insert = Fault.define "matview.apply_insert"
let site_apply_delete = Fault.define "matview.apply_delete"
let site_apply_update = Fault.define "matview.apply_update"

let core_agg = function
  | Aggregate.Sum | Aggregate.Count | Aggregate.Avg -> Core.Agg.Sum
  | Aggregate.Min -> Core.Agg.Min
  | Aggregate.Max -> Core.Agg.Max

let compare_pkey a b =
  let rec go = function
    | [], [] -> 0
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else go (xs, ys)
    | _ -> assert false
  in
  go (a, b)

(* Build the state from the current base-table contents.  Raises
   [Not_maintainable] when the value column contains NULLs or
   non-numerics. *)
let init_state (spec : seq_spec) ~(base : Relation.t) ~(out_schema : Schema.t) : state =
  Fault.hit site_init;
  let base_schema = Relation.schema base in
  let find c =
    match Schema.find_opt base_schema c with
    | Some i -> i
    | None -> raise (Not_maintainable (Printf.sprintf "base column %s missing" c))
  in
  let pcols = List.map find spec.partition in
  let ocol = find spec.order_col in
  let vcol = find spec.value_col in
  let value_of row =
    match Row.get row vcol with
    | Value.Null -> raise (Not_maintainable "NULL in the value column")
    | v ->
      (try Value.to_float v
       with Value.Type_error _ -> raise (Not_maintainable "non-numeric value column"))
  in
  (* partition rows *)
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let k = List.map (fun i -> Row.get row i) pcols in
      match Hashtbl.find_opt tbl k with
      | Some rows -> rows := row :: !rows
      | None ->
        Hashtbl.add tbl k (ref [ row ]);
        order := k :: !order)
    base;
  let parts =
    List.map
      (fun k ->
        let rows = List.rev !(Hashtbl.find tbl k) in
        let arr = Array.of_list rows in
        (* stable sort by the order column *)
        let idx = Array.init (Array.length arr) Fun.id in
        Array.sort
          (fun i j ->
            let c = Value.compare (Row.get arr.(i) ocol) (Row.get arr.(j) ocol) in
            if c <> 0 then c else Int.compare i j)
          idx;
        let sorted = Array.map (fun i -> arr.(i)) idx in
        let raw = Core.Seqdata.raw_of_array (Array.map value_of sorted) in
        let seq = Core.Compute.sequence ~agg:(core_agg spec.agg) spec.frame raw in
        { pkey = k; base_rows = sorted; raw; seq })
      (List.rev !order)
    |> List.sort (fun a b -> compare_pkey a.pkey b.pkey)
  in
  { spec; base_schema; out_schema; pcols; ocol; vcol; parts }

(* Deep copy of the mutable layers, for undo-log snapshots.  Rows,
   [Seqdata.raw] and [Seqdata.t] values are never mutated in place by the
   maintenance path ([Maintain.apply] is functional), so sharing them is
   safe; the partition records and their [base_rows] arrays are. *)
let copy_state (st : state) : state =
  {
    st with
    parts =
      List.map (fun p -> { p with base_rows = Array.copy p.base_rows }) st.parts;
  }

(* ---- Rendering ---- *)

let window_value (st : state) (p : partition_state) ~k : Value.t =
  let n = Core.Seqdata.raw_length p.raw in
  let float_value v = if Float.is_nan v then Value.Null else Value.Float v in
  match st.spec.agg with
  | Aggregate.Sum | Aggregate.Min | Aggregate.Max ->
    float_value (Core.Seqdata.get p.seq k)
  | Aggregate.Count -> Value.Int (Core.Agg.count_at st.spec.frame ~n ~k)
  | Aggregate.Avg ->
    let c = Core.Agg.count_at st.spec.frame ~n ~k in
    if c = 0 then Value.Null
    else Value.Float (Core.Seqdata.get p.seq k /. float_of_int c)

let coerce_to ty (v : Value.t) : Value.t =
  match ty, v with
  | Dtype.Int, Value.Float f when Float.is_integer f -> Value.Int (int_of_float f)
  | _ -> v

let render (st : state) : Relation.t =
  let item_cols =
    List.map
      (fun (src, _) ->
        match src with
        | Some c -> Some (Schema.find st.base_schema c)
        | None -> None)
      st.spec.items
  in
  let out_tys =
    List.mapi (fun i _ -> (Schema.col st.out_schema i).Schema.ty) st.spec.items
  in
  let buf = ref [] in
  List.iter
    (fun p ->
      Array.iteri
        (fun i row ->
          let k = i + 1 in
          let values =
            List.map2
              (fun src ty ->
                match src with
                | Some c -> Row.get row c
                | None -> coerce_to ty (window_value st p ~k))
              item_cols out_tys
          in
          buf := Array.of_list values :: !buf)
        p.base_rows)
    st.parts;
  Relation.of_array st.out_schema (Array.of_list (List.rev !buf))

(* ---- Incremental maintenance under base DML ---- *)

let value_of st row =
  match Row.get row st.vcol with
  | Value.Null -> raise (Not_maintainable "NULL in the value column")
  | v ->
    (try Value.to_float v
     with Value.Type_error _ -> raise (Not_maintainable "non-numeric value column"))

let pkey_of st row = List.map (fun i -> Row.get row i) st.pcols

let find_partition st pkey = List.find_opt (fun p -> compare_pkey p.pkey pkey = 0) st.parts

(* Rank (1-based) at which [row] inserts into the ordered partition:
   after all existing rows with order value <= its own. *)
let insert_rank st (p : partition_state) row =
  let v = Row.get row st.ocol in
  let n = Array.length p.base_rows in
  let rec go k =
    if k >= n then n + 1
    else if Value.compare (Row.get p.base_rows.(k) st.ocol) v <= 0 then go (k + 1)
    else k + 1
  in
  go 0

let apply_insert st row =
  Fault.hit site_apply_insert;
  let pkey = pkey_of st row in
  match find_partition st pkey with
  | None ->
    let raw = Core.Seqdata.raw_of_array [| value_of st row |] in
    let seq = Core.Compute.sequence ~agg:(core_agg st.spec.agg) st.spec.frame raw in
    st.parts <-
      List.sort
        (fun a b -> compare_pkey a.pkey b.pkey)
        ({ pkey; base_rows = [| row |]; raw; seq } :: st.parts)
  | Some p ->
    let k = insert_rank st p row in
    let seq', raw' =
      Core.Maintain.apply p.seq p.raw (Core.Maintain.Insert { k; value = value_of st row })
    in
    let n = Array.length p.base_rows in
    let rows = Array.make (n + 1) row in
    Array.blit p.base_rows 0 rows 0 (k - 1);
    Array.blit p.base_rows (k - 1) rows k (n - k + 1);
    p.base_rows <- rows;
    p.raw <- raw';
    p.seq <- seq'

(* Position of [row] in its partition (first row equal to it). *)
let find_rank (p : partition_state) row =
  let n = Array.length p.base_rows in
  let rec go k =
    if k >= n then None
    else if Row.equal p.base_rows.(k) row then Some (k + 1)
    else go (k + 1)
  in
  go 0

let apply_delete st row =
  Fault.hit site_apply_delete;
  let pkey = pkey_of st row in
  match find_partition st pkey with
  | None -> raise (Not_maintainable "deleted row not found in view state")
  | Some p ->
    (match find_rank p row with
     | None -> raise (Not_maintainable "deleted row not found in view state")
     | Some k ->
       let seq', raw' = Core.Maintain.apply p.seq p.raw (Core.Maintain.Delete { k }) in
       let n = Array.length p.base_rows in
       if n = 1 then st.parts <- List.filter (fun q -> q != p) st.parts
       else begin
         let rows = Array.make (n - 1) row in
         Array.blit p.base_rows 0 rows 0 (k - 1);
         Array.blit p.base_rows k rows (k - 1) (n - k);
         p.base_rows <- rows;
         p.raw <- raw';
         p.seq <- seq'
       end)

let apply_update st ~old_row ~new_row =
  Fault.hit site_apply_update;
  let same_partition = compare_pkey (pkey_of st old_row) (pkey_of st new_row) = 0 in
  let same_order =
    Value.equal (Row.get old_row st.ocol) (Row.get new_row st.ocol)
  in
  if same_partition && same_order then begin
    match find_partition st (pkey_of st old_row) with
    | None -> raise (Not_maintainable "updated row not found in view state")
    | Some p ->
      (match find_rank p old_row with
       | None -> raise (Not_maintainable "updated row not found in view state")
       | Some k ->
         let seq', raw' =
           Core.Maintain.apply p.seq p.raw
             (Core.Maintain.Update { k; value = value_of st new_row })
         in
         p.base_rows.(k - 1) <- new_row;
         p.raw <- raw';
         p.seq <- seq')
  end
  else begin
    (* order or partition changed: delete + insert *)
    apply_delete st old_row;
    apply_insert st new_row
  end

(* ---- Batched maintenance (multi-row §2.3) ----

   One partition's consolidated edits are merged into the ordered row
   array in a single two-pointer pass; the merge records, per new rank,
   which old rank it came from (0 for an inserted row) plus the edit
   events.  Each event dirties the window span it touches — [k-h, k+l]
   for an insert/update landing at new rank k, [g-h, g+l-1] for a
   deletion gap at g — and the dirty positions are recomputed with one
   pipelined span scan per contiguous run (Maintain.recompute_span).
   Clean positions copy the old sequence value under the run-local rank
   shift: a clean position's window contains no edit, so every raw value
   in it moved by the same offset.  When at least half the sequence is
   dirty the partition is recomputed outright. *)

let site_apply_batch = Fault.define "matview.apply_batch"

(* Stable by arrival on equal order values, matching per-row insert_rank
   (a new row lands after existing rows with order <= it). *)
let sort_inserts ~ocol inserts =
  List.stable_sort
    (fun a b -> Value.compare (Row.get a ocol) (Row.get b ocol))
    inserts

(* Structural half of one partition's batched merge: claim one old rank
   per delete / per in-place update, then two-pointer merge the sorted
   inserts over the old ranks.  Depends only on the order column and the
   ordered base rows — not on the view's value column, aggregate or
   frame — which is what shared-scan maintenance exploits: every view of
   a scan-share class has bit-identical [base_rows], so the merge is
   computed once and replayed per view. *)
let merge_structure ~ocol (base_rows : Row.t array) ~sorted_inserts ~deletes
    ~updates =
  let n = Array.length base_rows in
  let status = Array.make n `Keep in
  let claim row f =
    let rec go k =
      if k >= n then raise (Not_maintainable "edited row not found in view state")
      else
        match status.(k) with
        | `Keep when Row.equal base_rows.(k) row -> status.(k) <- f
        | _ -> go (k + 1)
    in
    go 0
  in
  List.iter (fun r -> claim r `Drop) deletes;
  List.iter (fun (o, nw) -> claim o (`Set nw)) updates;
  (* two-pointer merge over old ranks and sorted inserts *)
  let new_rows = ref [] and n2o = ref [] in
  let touches = ref [] and gaps = ref [] in
  let nk = ref 0 in
  let take row ~old_rank ~event =
    incr nk;
    new_rows := row :: !new_rows;
    n2o := old_rank :: !n2o;
    if event then touches := !nk :: !touches
  in
  let rec merge old_k ins =
    if old_k > n then List.iter (fun r -> take r ~old_rank:0 ~event:true) ins
    else
      let old_row = base_rows.(old_k - 1) in
      match ins with
      | r :: rest
        when Value.compare (Row.get r ocol) (Row.get old_row ocol) < 0 ->
        take r ~old_rank:0 ~event:true;
        merge old_k rest
      | _ ->
        (match status.(old_k - 1) with
         | `Keep -> take old_row ~old_rank:old_k ~event:false
         | `Set nr -> take nr ~old_rank:old_k ~event:true
         | `Drop -> gaps := (!nk + 1) :: !gaps);
        merge (old_k + 1) ins
  in
  merge 1 sorted_inserts;
  if !nk = 0 then `Drop
  else
    `Edit
      ( Array.of_list (List.rev !new_rows),
        Array.of_list (List.rev !n2o),
        !touches,
        !gaps )

(* Per-view half: re-extract the raw values with the view's value
   column, mark the window spans the merge events dirtied, recompute
   each contiguous dirty run with one pipelined span scan (clean
   positions copy their old value under the run-local rank shift), and
   install.  A partition at least half-dirty is recomputed outright. *)
let apply_merge st (p : partition_state) ~rows' ~n2o ~touches ~gaps =
  let agg = core_agg st.spec.agg in
  let frame = st.spec.frame in
  let n = Array.length p.base_rows in
  let n' = Array.length rows' in
  let raw' = Core.Seqdata.raw_of_array (Array.map (value_of st) rows') in
  let lo', hi' = Core.Seqdata.complete_range frame ~n:n' in
  let l, h =
    match frame with
    | Core.Frame.Sliding { l; h } -> (l, h)
    | Core.Frame.Cumulative -> (max n' n, 0)
  in
  let size = hi' - lo' + 1 in
  let dirty = Array.make size false in
  let mark lo hi =
    for i = max lo' lo to min hi' hi do
      dirty.(i - lo') <- true
    done
  in
  List.iter (fun k -> mark (k - h) (k + l)) touches;
  List.iter (fun g -> mark (g - h) (g + l - 1)) gaps;
  let dirty_count =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty
  in
  let seq' =
    if 2 * dirty_count >= size then
      (* the delta is wider than the view: recompute the partition *)
      Core.Compute.sequence ~agg frame raw'
    else begin
      let out = Array.make size 0. in
      for i = lo' to hi' do
        if not dirty.(i - lo') then begin
          let anchor = max 1 (min n' i) in
          let s = n2o.(anchor - 1) - anchor in
          out.(i - lo') <- Core.Seqdata.get p.seq (i + s)
        end
      done;
      let i = ref lo' in
      while !i <= hi' do
        if not dirty.(!i - lo') then incr i
        else begin
          let rlo = !i in
          let rhi = ref rlo in
          while !rhi < hi' && dirty.(!rhi + 1 - lo') do
            incr rhi
          done;
          let span =
            match frame with
            | Core.Frame.Sliding _ ->
              Core.Maintain.recompute_span ~agg ~l ~h raw' ~lo:rlo ~hi:!rhi
            | Core.Frame.Cumulative ->
              let seed =
                if rlo = 1 then
                  match agg with
                  | Core.Agg.Sum -> 0.
                  | Core.Agg.Min | Core.Agg.Max -> Core.Agg.absent
                else out.(rlo - 1 - lo')
              in
              Core.Maintain.recompute_cumulative_span ~agg raw' ~seed ~lo:rlo
                ~hi:!rhi
          in
          Array.blit span 0 out (rlo - lo') (Array.length span);
          i := !rhi + 1
        end
      done;
      Core.Seqdata.make frame agg ~n:n' ~lo:lo' out
    end
  in
  p.base_rows <- rows';
  p.raw <- raw';
  p.seq <- seq'

let apply_partition_batch st pkey ~inserts ~deletes ~updates =
  let sorted_inserts = sort_inserts ~ocol:st.ocol inserts in
  match find_partition st pkey with
  | None ->
    if deletes <> [] || updates <> [] then
      raise (Not_maintainable "edited row not found in view state");
    if sorted_inserts <> [] then begin
      let rows = Array.of_list sorted_inserts in
      let raw = Core.Seqdata.raw_of_array (Array.map (value_of st) rows) in
      let seq = Core.Compute.sequence ~agg:(core_agg st.spec.agg) st.spec.frame raw in
      st.parts <-
        List.sort
          (fun a b -> compare_pkey a.pkey b.pkey)
          ({ pkey; base_rows = rows; raw; seq } :: st.parts)
    end
  | Some p ->
    (match
       merge_structure ~ocol:st.ocol p.base_rows ~sorted_inserts
         ~deletes ~updates
     with
     | `Drop -> st.parts <- List.filter (fun q -> q != p) st.parts
     | `Edit (rows', n2o, touches, gaps) ->
       apply_merge st p ~rows' ~n2o ~touches ~gaps)

(* Group one consolidated delta by partition key (first-seen order),
   normalizing updates that move a row (order or partition changed) to
   delete + insert; their inserts sort after same-order arrivals. *)
let group_edits st ~inserts ~deletes ~updates =
  let in_place, moved =
    List.partition
      (fun (o, nw) ->
        compare_pkey (pkey_of st o) (pkey_of st nw) = 0
        && Value.equal (Row.get o st.ocol) (Row.get nw st.ocol))
      updates
  in
  let deletes = deletes @ List.map fst moved in
  let inserts = inserts @ List.map snd moved in
  let groups = ref [] in
  let group_of pkey =
    match List.find_opt (fun (k, _) -> compare_pkey k pkey = 0) !groups with
    | Some (_, g) -> g
    | None ->
      let g = (ref [], ref [], ref []) in
      groups := !groups @ [ (pkey, g) ];
      g
  in
  List.iter
    (fun r ->
      let ins, _, _ = group_of (pkey_of st r) in
      ins := r :: !ins)
    inserts;
  List.iter
    (fun r ->
      let _, del, _ = group_of (pkey_of st r) in
      del := r :: !del)
    deletes;
  List.iter
    (fun ((o, _) as pr) ->
      let _, _, upd = group_of (pkey_of st o) in
      upd := pr :: !upd)
    in_place;
  List.map
    (fun (pkey, (ins, del, upd)) ->
      (pkey, (List.rev !ins, List.rev !del, List.rev !upd)))
    !groups

let apply_batch st ~inserts ~deletes ~updates =
  Fault.hit site_apply_batch;
  List.iter
    (fun (pkey, (ins, del, upd)) ->
      apply_partition_batch st pkey ~inserts:ins ~deletes:del ~updates:upd)
    (group_edits st ~inserts ~deletes ~updates)

(* ---- Shared-scan batched maintenance ----

   All sequence views of one scan-share class (same base table, same
   partition columns, same order column — certified by
   Rfview_analysis.Share and re-checked here) keep bit-identical
   [base_rows] per partition: both initialization and every maintenance
   path are deterministic functions of the base contents and the shared
   (partition, order) key.  So the per-view work that depends only on
   that structure — delta grouping, claim matching, the two-pointer
   merge and the rank map — is computed ONCE against a representative
   state ([shared_plan]) and replayed into each view ([apply_shared]),
   leaving per view only the value re-extraction and the dirty-span
   sequence recompute. *)

type partition_plan =
  | P_new of Row.t array  (* no partition under this key: fresh sorted rows *)
  | P_drop                (* the partition empties *)
  | P_edit of {
      rows' : Row.t array;
      n2o : int array;
      touches : int list;
      gaps : int list;
      old_len : int;  (* every member's partition must have this length *)
    }

type shared_plan = {
  shp_pcols : int list;
  shp_ocol : int;
  shp_parts : (Value.t list * partition_plan) list;
}

let site_apply_shared = Fault.define "matview.apply_shared"

let shared_plan states ~inserts ~deletes ~updates : shared_plan =
  match states with
  | [] -> invalid_arg "Matview.shared_plan: empty class"
  | rep :: rest ->
    List.iter
      (fun st ->
        if
          st.pcols <> rep.pcols || st.ocol <> rep.ocol
          || String.lowercase_ascii st.spec.source
             <> String.lowercase_ascii rep.spec.source
        then invalid_arg "Matview.shared_plan: states disagree on the scan key")
      rest;
    let parts =
      List.map
        (fun (pkey, (ins, del, upd)) ->
          let sorted_inserts = sort_inserts ~ocol:rep.ocol ins in
          match find_partition rep pkey with
          | None ->
            if del <> [] || upd <> [] then
              raise (Not_maintainable "edited row not found in view state");
            (pkey, P_new (Array.of_list sorted_inserts))
          | Some p ->
            (match
               merge_structure ~ocol:rep.ocol p.base_rows ~sorted_inserts
                 ~deletes:del ~updates:upd
             with
             | `Drop -> (pkey, P_drop)
             | `Edit (rows', n2o, touches, gaps) ->
               ( pkey,
                 P_edit
                   {
                     rows';
                     n2o;
                     touches;
                     gaps;
                     old_len = Array.length p.base_rows;
                   } )))
        (group_edits rep ~inserts ~deletes ~updates)
    in
    { shp_pcols = rep.pcols; shp_ocol = rep.ocol; shp_parts = parts }

let apply_shared (plan : shared_plan) st =
  Fault.hit site_apply_shared;
  if st.pcols <> plan.shp_pcols || st.ocol <> plan.shp_ocol then
    invalid_arg "Matview.apply_shared: state disagrees with the plan's scan key";
  let diverged () =
    (* the member's partitions differ structurally from the
       representative's: the class invariant is broken, fall back *)
    raise (Not_maintainable "shared-scan state divergence")
  in
  List.iter
    (fun (pkey, pplan) ->
      match (pplan, find_partition st pkey) with
      | P_new rows, None ->
        if Array.length rows > 0 then begin
          let rows = Array.copy rows in
          let raw = Core.Seqdata.raw_of_array (Array.map (value_of st) rows) in
          let seq =
            Core.Compute.sequence ~agg:(core_agg st.spec.agg) st.spec.frame raw
          in
          st.parts <-
            List.sort
              (fun a b -> compare_pkey a.pkey b.pkey)
              ({ pkey; base_rows = rows; raw; seq } :: st.parts)
        end
      | P_drop, Some p -> st.parts <- List.filter (fun q -> q != p) st.parts
      | P_edit { rows'; n2o; touches; gaps; old_len }, Some p ->
        if Array.length p.base_rows <> old_len then diverged ();
        (* each view installs its own copy: rows arrays are mutated in
           place by the per-row update path and must not be aliased
           across states *)
        apply_merge st p ~rows':(Array.copy rows') ~n2o ~touches ~gaps
      | P_new _, Some _ | P_drop, None | P_edit _, None -> diverged ())
    plan.shp_parts

(* ---- Derived views (generalized IVM) ----

   Views beyond the sequence shape — joins, GROUP BY, partition-local
   window sets — maintain through the algebraic delta plans of
   Planner.Deriv.  The engine derives the rules once at refresh time
   (gated on a valid Ivmcert incrementality certificate) and replays
   them here at each batch commit; the state is immutable (rules plus
   source tables), so undo snapshots are just the binding. *)

module Derived = struct
  module Deriv = Rfview_planner.Deriv

  type t = {
    rules : Deriv.t;
    sources : string list; (* lowercased base tables the rules read *)
  }

  let site_apply = Fault.define "matview.apply_derived"

  let make rules = { rules; sources = Deriv.sources rules }
  let sources t = t.sources
  let shape_name t = Deriv.shape_name t.rules
  let has_window t = Deriv.has_window t.rules

  (* Apply one consolidated batch delta to the view's contents.
     @raise Deriv.Divergence when an exact removal finds no row (the
     engine falls back to a full refresh). *)
  let apply_batch t ~(env : Deriv.env) ~(contents : Relation.t) : Relation.t =
    Fault.hit site_apply;
    Deriv.splice contents (Deriv.apply env t.rules)
end
