(* The write-ahead log: an append-only file of logical statement
   records, each framed as [length ∥ crc32 ∥ payload] (both u32 LE) so a
   torn tail — a record cut short by a crash mid-write — is detected and
   truncated, never replayed.

   Records are logical: DML deltas carry the exact rows in a binary
   value encoding (no text round-trip, so float payloads survive
   bit-identically), DDL and REFRESH carry SQL text, bulk/CSV loads
   carry the loaded rows.  Every log opens with [Begin epoch]; a
   checkpoint bumps the epoch and atomically installs a fresh log, so
   recovery distinguishes the new log from a stale one left by a crash
   between the checkpoint rename and the log reset.

   The writer is an unbuffered handle on the [Io] seam: a record is on
   its way to disk the moment [append] returns and durable once [sync]
   returns.  The commit protocol in Database captures [position] first
   and [truncate_back]s on any append/sync failure, so a rolled-back
   statement leaves no record behind.  All byte traffic routes through
   {!Io}, so the simulated disk (ENOSPC budgets, bit flips, crash-lost
   tails) applies to the log like every other artifact. *)

open Rfview_relalg

exception Wal_error of string

exception Truncate_error of { path : string; target : int; detail : string }

let wal_error fmt = Format.kasprintf (fun s -> raise (Wal_error s)) fmt

(* ---- Fault-injection sites ---- *)

let site_append = Fault.define "wal.append"
let site_fsync = Fault.define "wal.fsync"

(* ---- CRC32 (IEEE 802.3 / zlib polynomial, reflected) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- Binary codec ---- *)

module Codec = struct
  exception Decode of string

  let decode_error fmt = Format.kasprintf (fun s -> raise (Decode s)) fmt

  let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

  let put_int buf (i : int) =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int i);
    Buffer.add_bytes buf b

  let put_i64 buf (i : int64) =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 i;
    Buffer.add_bytes buf b

  let put_string buf s =
    put_int buf (String.length s);
    Buffer.add_string buf s

  let put_value buf (v : Value.t) =
    match v with
    | Value.Null -> Buffer.add_char buf 'N'
    | Value.Bool b ->
      Buffer.add_char buf 'B';
      put_bool buf b
    | Value.Int i ->
      Buffer.add_char buf 'I';
      put_int buf i
    | Value.Float f ->
      Buffer.add_char buf 'F';
      put_i64 buf (Int64.bits_of_float f)
    | Value.String s ->
      Buffer.add_char buf 'S';
      put_string buf s
    | Value.Date d ->
      Buffer.add_char buf 'D';
      put_int buf d

  let put_row buf (row : Row.t) =
    put_int buf (Array.length row);
    Array.iter (put_value buf) row

  let put_schema buf (schema : Schema.t) =
    put_int buf (Schema.arity schema);
    Array.iter
      (fun (c : Schema.column) ->
        (match c.Schema.rel with
         | None -> put_bool buf false
         | Some r ->
           put_bool buf true;
           put_string buf r);
        put_string buf c.Schema.name;
        put_string buf (Dtype.to_string c.Schema.ty))
      schema

  let put_relation buf (r : Relation.t) =
    put_schema buf (Relation.schema r);
    let rows = Relation.rows r in
    put_int buf (Array.length rows);
    Array.iter (put_row buf) rows

  type reader = { data : string; mutable pos : int }

  let reader data = { data; pos = 0 }
  let at_end r = r.pos >= String.length r.data

  let need r n =
    if r.pos + n > String.length r.data then
      decode_error "payload truncated (want %d bytes at %d of %d)" n r.pos
        (String.length r.data)

  let get_char r =
    need r 1;
    let c = r.data.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let get_bool r =
    match get_char r with
    | '\000' -> false
    | '\001' -> true
    | c -> decode_error "bad bool byte %C" c

  let get_i64 r =
    need r 8;
    let v = Bytes.get_int64_le (Bytes.unsafe_of_string r.data) r.pos in
    r.pos <- r.pos + 8;
    v

  let get_int r = Int64.to_int (get_i64 r)

  let get_string r =
    let n = get_int r in
    if n < 0 then decode_error "negative string length %d" n;
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  (* [n] raw bytes, no length prefix (the compression wrapper carries
     its own lengths) *)
  let get_raw r n =
    if n < 0 then decode_error "negative raw length %d" n;
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let get_value r : Value.t =
    match get_char r with
    | 'N' -> Value.Null
    | 'B' -> Value.Bool (get_bool r)
    | 'I' -> Value.Int (get_int r)
    | 'F' -> Value.Float (Int64.float_of_bits (get_i64 r))
    | 'S' -> Value.String (get_string r)
    | 'D' -> Value.Date (get_int r)
    | c -> decode_error "bad value tag %C" c

  let get_row r : Row.t =
    let n = get_int r in
    if n < 0 then decode_error "negative row arity %d" n;
    Array.init n (fun _ -> get_value r)

  let get_schema r : Schema.t =
    let n = get_int r in
    if n < 0 then decode_error "negative schema arity %d" n;
    Schema.make
      (List.init n (fun _ ->
           let rel = if get_bool r then Some (get_string r) else None in
           let name = get_string r in
           let ty_name = get_string r in
           match Dtype.of_string ty_name with
           | Some ty -> { Schema.rel; name; ty }
           | None -> decode_error "bad column type %S" ty_name))

  let get_relation r : Relation.t =
    let schema = get_schema r in
    let n = get_int r in
    if n < 0 then decode_error "negative row count %d" n;
    Relation.of_array schema (Array.init n (fun _ -> get_row r))
end

(* ---- Records ---- *)

type record =
  | Begin of int
  | Statement of string
  | Insert of { table : string; rows : Row.t array }
  | Delete of { table : string; rows : Row.t array }
  | Update of { table : string; pairs : (Row.t * Row.t) array }
  | Load of { table : string; rows : Row.t array }
  | Batch of record list

let describe = function
  | Begin epoch -> Printf.sprintf "BEGIN epoch=%d" epoch
  | Statement sql -> Printf.sprintf "STATEMENT %s" sql
  | Insert { table; rows } -> Printf.sprintf "INSERT %d row(s) into %s" (Array.length rows) table
  | Delete { table; rows } -> Printf.sprintf "DELETE %d row(s) from %s" (Array.length rows) table
  | Update { table; pairs } -> Printf.sprintf "UPDATE %d row(s) of %s" (Array.length pairs) table
  | Load { table; rows } -> Printf.sprintf "LOAD %d row(s) into %s" (Array.length rows) table
  | Batch records -> Printf.sprintf "BATCH of %d record(s)" (List.length records)

let rec payload_of_record (r : record) : string =
  let buf = Buffer.create 64 in
  (match r with
   | Begin epoch ->
     Buffer.add_char buf 'E';
     Codec.put_int buf epoch
   | Statement sql ->
     Buffer.add_char buf 's';
     Codec.put_string buf sql
   | Insert { table; rows } ->
     Buffer.add_char buf 'i';
     Codec.put_string buf table;
     Codec.put_int buf (Array.length rows);
     Array.iter (Codec.put_row buf) rows
   | Delete { table; rows } ->
     Buffer.add_char buf 'd';
     Codec.put_string buf table;
     Codec.put_int buf (Array.length rows);
     Array.iter (Codec.put_row buf) rows
   | Update { table; pairs } ->
     Buffer.add_char buf 'u';
     Codec.put_string buf table;
     Codec.put_int buf (Array.length pairs);
     Array.iter
       (fun (old_row, new_row) ->
         Codec.put_row buf old_row;
         Codec.put_row buf new_row)
       pairs
   | Load { table; rows } ->
     Buffer.add_char buf 'l';
     Codec.put_string buf table;
     Codec.put_int buf (Array.length rows);
     Array.iter (Codec.put_row buf) rows
   | Batch records ->
     (* group commit: the sub-records nest as length-prefixed payloads,
        so one frame (and one fsync) covers the whole batch.  Large
        batch bodies are LZSS-compressed (tag 'z'); [Compress.pack]
        falls back to raw storage when compression does not win, and
        small bodies keep the plain 'b' framing. *)
     let body = Buffer.create 256 in
     Codec.put_int body (List.length records);
     List.iter (fun sub -> Codec.put_string body (payload_of_record sub)) records;
     let body = Buffer.contents body in
     if String.length body >= 256 then begin
       Buffer.add_char buf 'z';
       Compress.pack buf body
     end
     else begin
       Buffer.add_char buf 'b';
       Buffer.add_string buf body
     end);
  Buffer.contents buf

let rec record_of_payload (payload : string) : record =
  let r = Codec.reader payload in
  let get_rows () =
    let table = Codec.get_string r in
    let n = Codec.get_int r in
    if n < 0 then raise (Codec.Decode "negative record row count");
    (table, Array.init n (fun _ -> Codec.get_row r))
  in
  match Codec.get_char r with
  | 'E' -> Begin (Codec.get_int r)
  | 's' -> Statement (Codec.get_string r)
  | 'i' ->
    let table, rows = get_rows () in
    Insert { table; rows }
  | 'd' ->
    let table, rows = get_rows () in
    Delete { table; rows }
  | 'u' ->
    let table = Codec.get_string r in
    let n = Codec.get_int r in
    if n < 0 then raise (Codec.Decode "negative record row count");
    let pairs =
      Array.init n (fun _ ->
          let old_row = Codec.get_row r in
          let new_row = Codec.get_row r in
          (old_row, new_row))
    in
    Update { table; pairs }
  | 'l' ->
    let table, rows = get_rows () in
    Load { table; rows }
  | 'b' ->
    let n = Codec.get_int r in
    if n < 0 then raise (Codec.Decode "negative batch record count");
    Batch (List.init n (fun _ -> record_of_payload (Codec.get_string r)))
  | 'z' ->
    (* compressed batch body: unwrap, then parse as the 'b' body *)
    let body =
      try
        Compress.unpack
          ~get_int:(fun () -> Codec.get_int r)
          ~get_char:(fun () -> Codec.get_char r)
          ~get_bytes:(fun n -> Codec.get_raw r n)
      with Compress.Corrupt m ->
        raise (Codec.Decode (Printf.sprintf "compressed batch: %s" m))
    in
    let br = Codec.reader body in
    let n = Codec.get_int br in
    if n < 0 then raise (Codec.Decode "negative batch record count");
    Batch (List.init n (fun _ -> record_of_payload (Codec.get_string br)))
  | c -> raise (Codec.Decode (Printf.sprintf "bad record tag %C" c))

(* ---- Framing: [length ∥ crc32 ∥ payload], both u32 LE ---- *)

let frame_payload (payload : string) : string =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (crc32 payload);
  Bytes.blit_string payload 0 b 8 n;
  Bytes.unsafe_to_string b

let frame r = frame_payload (payload_of_record r)

(* Sanity bound on a record length: a corrupt length field must not make
   the scanner skip gigabytes of file (or allocate them). *)
let max_record = 1 lsl 30

let parse_frames (data : string) : (string option * int) list * bool =
  let len = String.length data in
  let out = ref [] in
  let torn = ref false in
  let pos = ref 0 in
  (try
     while !pos + 8 <= len do
       let b = Bytes.unsafe_of_string data in
       let n = Int32.to_int (Bytes.get_int32_le b !pos) in
       if n < 0 || n > max_record || !pos + 8 + n > len then begin
         torn := true;
         raise Exit
       end;
       let stored_crc = Bytes.get_int32_le b (!pos + 4) in
       let payload = String.sub data (!pos + 8) n in
       let entry = if crc32 payload = stored_crc then Some payload else None in
       out := (entry, !pos + 8) :: !out;
       pos := !pos + 8 + n
     done;
     if !pos < len then torn := true
   with Exit -> ());
  (List.rev !out, !torn)

(* ---- The writer ---- *)

type writer = { file : Io.file; mutable pos : int }

let read_file = Io.read_file

(* Atomically install a fresh log: write [Begin epoch] to a temp file,
   fsync, rename over [path].  A crash at any point leaves either the
   old log or the complete new one. *)
let create path ~epoch : writer =
  let tmp = path ^ ".tmp" in
  let f = Io.openf tmp ~mode:Io.Create_trunc in
  (try
     Io.write f (frame (Begin epoch));
     Io.fsync f;
     Io.close f
   with e ->
     Io.close f;
     Io.remove tmp;
     raise e);
  Io.rename tmp path;
  let f = Io.openf path ~mode:Io.Append in
  { file = f; pos = Io.size f }

let open_append path : writer =
  if not (Sys.file_exists path) then wal_error "no log at %s" path;
  let f = Io.openf path ~mode:Io.Append in
  { file = f; pos = Io.size f }

let position w = w.pos

let append w (r : record) =
  Fault.hit site_append;
  let framed = frame r in
  Io.write w.file framed;
  w.pos <- w.pos + String.length framed

let sync w =
  Fault.hit site_fsync;
  Io.fsync w.file

(* Chop a failed commit's partial record back off.  A truncate that
   itself fails surfaces as the typed [Truncate_error] carrying the path
   and target offset — never a raw [Unix_error]. *)
let truncate_back w pos =
  (try Io.ftruncate w.file pos
   with
   | Io.Io_error { detail; _ } ->
     raise (Truncate_error { path = Io.path_of w.file; target = pos; detail })
   | Unix.Unix_error (e, _, _) ->
     raise
       (Truncate_error
          { path = Io.path_of w.file; target = pos; detail = Unix.error_message e }));
  w.pos <- pos

let close w = Io.close w.file

(* ---- Scanning ---- *)

type scan = {
  epoch : int;
  records : record list;
  torn : bool;
  valid_bytes : int;
}

let scan path : scan =
  if not (Sys.file_exists path) then wal_error "no log at %s" path;
  let data = read_file path in
  let frames, short_tail = parse_frames data in
  (* stop at the first damaged or undecodable record: for an append-only
     log everything from there on is a torn tail *)
  let records = ref [] in
  let valid_bytes = ref 0 in
  let torn = ref short_tail in
  (try
     List.iter
       (fun (payload, off) ->
         match payload with
         | None ->
           torn := true;
           raise Exit
         | Some payload ->
           (match record_of_payload payload with
            | record ->
              records := record :: !records;
              valid_bytes := off + String.length payload
            | exception Codec.Decode _ ->
              torn := true;
              raise Exit))
       frames
   with Exit -> ());
  match List.rev !records with
  | Begin epoch :: records -> { epoch; records; torn = !torn; valid_bytes = !valid_bytes }
  | _ -> wal_error "%s: missing or unreadable BEGIN record" path

(* ---- Detailed scanning (wal-info, the replication shipper) ----

   Unlike [scan], this keeps walking past a damaged record (the length
   field still frames it) and reports every frame with its byte span
   and CRC status.  A record that fails to decode despite a matching
   CRC is reported as undecodable rather than aborting the walk. *)

type entry = {
  e_index : int;      (* 1-based position in the file *)
  e_offset : int;     (* byte offset of the frame (length field) *)
  e_bytes : int;      (* total frame size: 8 + payload length *)
  e_crc_ok : bool;
  e_record : record option; (* decoded record; [None] when CRC or decode failed *)
}

type detail = {
  d_entries : entry list;
  d_torn : int option; (* byte offset of a torn tail, when present *)
  d_size : int;        (* file size in bytes *)
}

let scan_detail path : detail =
  if not (Sys.file_exists path) then wal_error "no log at %s" path;
  let data = read_file path in
  let len = String.length data in
  let out = ref [] in
  let torn = ref None in
  let pos = ref 0 in
  let index = ref 0 in
  (try
     while !pos + 8 <= len do
       let b = Bytes.unsafe_of_string data in
       let n = Int32.to_int (Bytes.get_int32_le b !pos) in
       if n < 0 || n > max_record || !pos + 8 + n > len then begin
         torn := Some !pos;
         raise Exit
       end;
       let stored_crc = Bytes.get_int32_le b (!pos + 4) in
       let payload = String.sub data (!pos + 8) n in
       let crc_ok = crc32 payload = stored_crc in
       let record =
         if not crc_ok then None
         else match record_of_payload payload with
           | r -> Some r
           | exception Codec.Decode _ -> None
       in
       incr index;
       out :=
         { e_index = !index; e_offset = !pos; e_bytes = 8 + n; e_crc_ok = crc_ok;
           e_record = record }
         :: !out;
       pos := !pos + 8 + n
     done;
     if !pos < len then torn := Some !pos
   with Exit -> ());
  { d_entries = List.rev !out; d_torn = !torn; d_size = len }

let truncate path valid_bytes =
  let f = Io.openf path ~mode:Io.Write in
  Fun.protect
    ~finally:(fun () -> Io.close f)
    (fun () ->
      Io.ftruncate f valid_bytes;
      Io.fsync f)

let () =
  Printexc.register_printer (function
    | Wal_error m -> Some (Printf.sprintf "WAL error: %s" m)
    | Truncate_error { path; target; detail } ->
      Some
        (Printf.sprintf "WAL truncate error: %s: cannot truncate to %d: %s" path
           target detail)
    | Codec.Decode m -> Some (Printf.sprintf "WAL decode error: %s" m)
    | _ -> None)
