(* Versioned checkpoints: a snapshot of base tables, index DDL, view
   definitions and per-view materialized state.

   File layout — a sequence of CRC-framed records (Wal.frame_payload):

     H epoch                      header
     T name schema rows           one per base table
     I ddl                        one per index (tables and views)
     V name materialized sql      one per view, definition only
     S name stale incr contents?  state, right after its view's V record
     Z count                      trailer: number of records before it

   Written to [checkpoint.tmp], fsynced, renamed over [checkpoint] —
   a visible checkpoint file is always complete, so on read a short
   file or missing trailer means real corruption, not a torn write.

   Damage policy on read: a CRC-mismatched record sitting where a
   materialized view's S record belongs marks that view [`Damaged] (the
   recovery quarantines it — restored stale, healed by full refresh on
   first read); a mismatch anywhere else raises [Corrupt].  This is what
   lets recovery always terminate with a readable database: per-view
   state damage degrades one view, it never sinks the snapshot. *)

open Rfview_relalg
module Codec = Wal.Codec

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let site_write = Fault.define "checkpoint.write"

let file ~dir = Filename.concat dir "checkpoint"

type table_snap = {
  t_name : string;
  t_schema : Schema.t;
  t_rows : Row.t array;
}

type state_snap = {
  s_stale : bool;
  s_contents : Relation.t option;
  s_incremental : bool;
}

type view_entry = {
  v_name : string;
  v_materialized : bool;
  v_sql : string;
  v_state : [ `None | `Snap of state_snap | `Damaged ];
}

type snapshot = {
  epoch : int;
  lsn : int;
  tables : table_snap list;
  index_ddl : string list;
  views : view_entry list;
}

(* ---- Record payloads ---- *)

let header_payload epoch lsn =
  let buf = Buffer.create 16 in
  Buffer.add_char buf 'H';
  Codec.put_int buf epoch;
  Codec.put_int buf lsn;
  Buffer.contents buf

let table_payload (t : table_snap) =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'T';
  Codec.put_string buf t.t_name;
  Codec.put_schema buf t.t_schema;
  Codec.put_int buf (Array.length t.t_rows);
  Array.iter (Codec.put_row buf) t.t_rows;
  Buffer.contents buf

let index_payload ddl =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'I';
  Codec.put_string buf ddl;
  Buffer.contents buf

let view_payload (v : view_entry) =
  let buf = Buffer.create 128 in
  Buffer.add_char buf 'V';
  Codec.put_string buf v.v_name;
  Codec.put_bool buf v.v_materialized;
  Codec.put_string buf v.v_sql;
  Buffer.contents buf

let state_payload name (s : state_snap) =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'S';
  Codec.put_string buf name;
  Codec.put_bool buf s.s_stale;
  Codec.put_bool buf s.s_incremental;
  (match s.s_contents with
   | None -> Codec.put_bool buf false
   | Some r ->
     Codec.put_bool buf true;
     Codec.put_relation buf r);
  Buffer.contents buf

let trailer_payload count =
  let buf = Buffer.create 16 in
  Buffer.add_char buf 'Z';
  Codec.put_int buf count;
  Buffer.contents buf

(* ---- Writing ---- *)

let write ~dir ~lsn ~epoch ~tables ~index_ddl ~views =
  let payloads =
    header_payload epoch lsn
    :: List.map table_payload tables
    @ List.map index_payload index_ddl
    @ List.concat_map
        (fun v ->
          view_payload v
          ::
          (match v.v_state with
           | `Snap s -> [ state_payload v.v_name s ]
           | `None | `Damaged -> []))
        views
  in
  let payloads = payloads @ [ trailer_payload (List.length payloads) ] in
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let f = Io.openf tmp ~mode:Io.Create_trunc in
  (try
     List.iter
       (fun payload ->
         Fault.hit site_write;
         Io.write f (Wal.frame_payload payload))
       payloads;
     Io.fsync f;
     Io.close f
   with e ->
     Io.close f;
     Io.remove tmp;
     raise e);
  Io.rename tmp path;
  (* make the rename itself durable (best-effort: not every platform
     lets a directory be opened for fsync) *)
  Io.fsync_dir dir

(* ---- Reading ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_data ~name data : snapshot =
  let frames, torn = Wal.parse_frames data in
  if torn then corrupt "%s: short file (checkpoints are rename-atomic)" name;
  let epoch = ref None in
  let lsn = ref 0 in
  let tables = ref [] in
  let index_ddl = ref [] in
  let views = ref [] in (* reversed; head is the most recent V record *)
  let seen = ref 0 in
  let trailer = ref None in
  let with_reader payload off f =
    let r = Codec.reader payload in
    match f r with
    | v -> v
    | exception Codec.Decode m -> corrupt "%s: at byte %d: %s" name off m
  in
  List.iter
    (fun (payload, off) ->
      if !trailer <> None then
        corrupt "%s: record after the trailer at byte %d" name off;
      incr seen;
      match payload with
      | None ->
        (* a CRC-mismatched record: tolerable only in the position of a
           materialized view's state record *)
        (match !views with
         | v :: rest when v.v_materialized && v.v_state = `None ->
           views := { v with v_state = `Damaged } :: rest
         | _ ->
           corrupt "%s: damaged record %d at byte %d is not a view state" name
             !seen off)
      | Some payload ->
        with_reader payload off (fun r ->
            match Codec.get_char r with
            | 'H' ->
              if !epoch <> None then corrupt "%s: duplicate header" name;
              epoch := Some (Codec.get_int r);
              (* pre-replication checkpoints have no lsn field *)
              lsn := if Codec.at_end r then 0 else Codec.get_int r
            | 'T' ->
              let t_name = Codec.get_string r in
              let t_schema = Codec.get_schema r in
              let n = Codec.get_int r in
              if n < 0 then corrupt "%s: negative row count" name;
              let t_rows = Array.init n (fun _ -> Codec.get_row r) in
              tables := { t_name; t_schema; t_rows } :: !tables
            | 'I' -> index_ddl := Codec.get_string r :: !index_ddl
            | 'V' ->
              let v_name = Codec.get_string r in
              let v_materialized = Codec.get_bool r in
              let v_sql = Codec.get_string r in
              views := { v_name; v_materialized; v_sql; v_state = `None } :: !views
            | 'S' ->
              let sname = Codec.get_string r in
              let s_stale = Codec.get_bool r in
              let s_incremental = Codec.get_bool r in
              let s_contents =
                if Codec.get_bool r then Some (Codec.get_relation r) else None
              in
              (match !views with
               | v :: rest
                 when String.lowercase_ascii v.v_name = String.lowercase_ascii sname
                      && v.v_state = `None ->
                 views :=
                   { v with v_state = `Snap { s_stale; s_contents; s_incremental } }
                   :: rest
               | _ ->
                 corrupt "%s: state record for %s has no matching view" name sname)
            | 'Z' ->
              (* the trailer counts every record before it *)
              trailer := Some (Codec.get_int r)
            | c -> corrupt "%s: unknown record tag %C at byte %d" name c off))
    frames;
  (match !trailer with
   | None -> corrupt "%s: missing trailer" name
   | Some n ->
     if n <> !seen - 1 then
       corrupt "%s: trailer counts %d records, file has %d" name n (!seen - 1));
  match !epoch with
  | None -> corrupt "%s: missing header" name
  | Some epoch ->
    {
      epoch;
      lsn = !lsn;
      tables = List.rev !tables;
      index_ddl = List.rev !index_ddl;
      views = List.rev !views;
    }

let read_bytes ?(name = "<checkpoint bytes>") data = read_data ~name data

(* Raw file bytes, for shipping the artifact to a replica feed. *)
let contents ~dir =
  let path = file ~dir in
  if Sys.file_exists path then Some (read_file path) else None

let read ~dir : snapshot option =
  let path = file ~dir in
  if not (Sys.file_exists path) then None
  else Some (read_data ~name:path (read_file path))

(* ---- Test helper: damage one view's state record in place ---- *)

let corrupt_state ~dir ~view : bool =
  let path = file ~dir in
  if not (Sys.file_exists path) then false
  else begin
    let frames, _ = Wal.parse_frames (read_file path) in
    let target =
      List.find_opt
        (fun (payload, _off) ->
          match payload with
          | Some p when String.length p > 0 && p.[0] = 'S' ->
            let r = Codec.reader p in
            (match
               let _tag = Codec.get_char r in
               Codec.get_string r
             with
             | name -> String.lowercase_ascii name = String.lowercase_ascii view
             | exception Codec.Decode _ -> false)
          | _ -> false)
        frames
    in
    match target with
    | None -> false
    | Some (Some payload, off) ->
      let f = Io.openf path ~mode:Io.Write in
      Fun.protect
        ~finally:(fun () -> Io.close f)
        (fun () ->
          (* flip the last payload byte: the frame CRC no longer matches *)
          let at = off + String.length payload - 1 in
          let byte = Char.code payload.[String.length payload - 1] lxor 0xFF in
          Io.pwrite f ~at (String.make 1 (Char.chr byte)));
      true
    | Some (None, _) -> false
  end
