(** The write-ahead log: an append-only file of logical statement
    records, each framed with its length and CRC32 so a torn tail is
    detected and truncated rather than replayed.

    Records are {e logical}: DML deltas carry the exact rows (binary
    value encoding — no text round-trip), DDL and REFRESH carry their
    SQL text, and bulk/CSV batches carry the loaded rows.  Every log
    starts with a {!Begin} record naming its epoch; a checkpoint bumps
    the epoch and replaces the log, so recovery can tell a fresh log
    from a stale one left by a crash between the two steps.

    All bytes move through the {!module:Io} seam, so the storage-level
    [io.*] fault sites and the simulated disk ({!Io.Sim}) apply to every
    WAL write.  Logical fault-injection sites: [wal.append] (before a
    record's bytes are written) and [wal.fsync] (before the durability
    barrier). *)

open Rfview_relalg

exception Wal_error of string

(** A failed {!truncate_back}: the log could not be chopped back to
    [target] bytes.  Typed (instead of a leaked [Unix_error]) because
    the caller must decide between degraded mode and quarantine. *)
exception Truncate_error of { path : string; target : int; detail : string }

(** CRC32 (IEEE 802.3, the zlib polynomial) of a string. *)
val crc32 : string -> int32

(** {1 Records} *)

type record =
  | Begin of int  (** epoch header: the first record of every log *)
  | Statement of string  (** SQL text of a committed DDL/REFRESH statement *)
  | Insert of { table : string; rows : Row.t array }
  | Delete of { table : string; rows : Row.t array }
  | Update of { table : string; pairs : (Row.t * Row.t) array }
      (** (old, new) row pairs *)
  | Load of { table : string; rows : Row.t array }
      (** bulk/CSV batch load (full-refresh maintenance on replay) *)
  | Batch of record list
      (** group commit: the records of one batch scope, framed as a
          single record so the whole batch shares one fsync and recovery
          replays it atomically through the delta path *)

(** One line for reports and error messages. *)
val describe : record -> string

(** The on-disk bytes of one record: [length ∥ crc32 ∥ payload].
    Exposed so the chaos harness can simulate torn writes by appending
    a strict prefix. *)
val frame : record -> string

(** A record's payload bytes without the frame — the replication feed
    carries record payloads inside its own framed entries. *)
val payload_of_record : record -> string

(** Invert {!payload_of_record}.  @raise Codec.Decode when malformed. *)
val record_of_payload : string -> record

(** {1 Writing} *)

type writer

(** Atomically install a fresh log containing only [Begin epoch]
    (written to a temp file, fsynced, renamed over [path]) and return
    an append handle to it. *)
val create : string -> epoch:int -> writer

(** Open an existing log for appending. *)
val open_append : string -> writer

(** Byte offset of the log's end — capture before {!append} so a failed
    commit can {!truncate_back} the record back off. *)
val position : writer -> int

(** Append one framed record ({e not} synced).
    @raise Fault.Injected when [wal.append] is armed.
    @raise Io.Io_error when the disk (or an [io.*] site) fails. *)
val append : writer -> record -> unit

(** Durability barrier (fsync).
    @raise Fault.Injected when [wal.fsync] is armed.
    @raise Io.Io_error when the disk (or an [io.*] site) fails. *)
val sync : writer -> unit

(** Chop the log back to [pos] (a failed commit must not leave its
    record behind for recovery to replay).
    @raise Truncate_error when the truncate itself fails. *)
val truncate_back : writer -> int -> unit

val close : writer -> unit

(** {1 Reading} *)

type scan = {
  epoch : int;  (** from the leading {!Begin} record *)
  records : record list;  (** valid records after {!Begin}, in order *)
  torn : bool;  (** a torn or corrupt tail was found (and not included) *)
  valid_bytes : int;  (** file prefix ending at the last valid record *)
}

(** Read a log, stopping at the first missing/short/CRC-mismatched
    record: everything before it is returned, everything from it on is
    a torn tail.  @raise Wal_error when the file is missing or its
    [Begin] record is unreadable. *)
val scan : string -> scan

(** Truncate the file to [valid_bytes], discarding a torn tail. *)
val truncate : string -> int -> unit

(** {1 Detailed scanning}

    Used by [rfview wal-info] and the replication shipper.  Unlike
    {!scan}, the walk continues past CRC-mismatched records (their
    length field still frames them) and reports every frame with its
    byte span and status. *)

type entry = {
  e_index : int;  (** 1-based position in the file *)
  e_offset : int;  (** byte offset of the frame (its length field) *)
  e_bytes : int;  (** total frame size: 8-byte header + payload *)
  e_crc_ok : bool;
  e_record : record option;
      (** the decoded record; [None] when the CRC mismatched or the
          payload does not decode *)
}

type detail = {
  d_entries : entry list;
  d_torn : int option;  (** byte offset of a torn tail, when present *)
  d_size : int;  (** file size in bytes *)
}

(** @raise Wal_error when the file is missing. *)
val scan_detail : string -> detail

(** {1 Framing and value codec}

    Shared with {!module:Checkpoint}, which frames its own records the
    same way. *)

module Codec : sig
  exception Decode of string

  val put_bool : Buffer.t -> bool -> unit
  val put_int : Buffer.t -> int -> unit
  val put_string : Buffer.t -> string -> unit
  val put_value : Buffer.t -> Value.t -> unit
  val put_row : Buffer.t -> Row.t -> unit
  val put_schema : Buffer.t -> Schema.t -> unit
  val put_relation : Buffer.t -> Relation.t -> unit

  type reader

  val reader : string -> reader
  val at_end : reader -> bool

  (** @raise Decode on truncation or a malformed tag. *)

  val get_char : reader -> char
  val get_bool : reader -> bool
  val get_int : reader -> int
  val get_string : reader -> string

  (** [n] raw bytes, no length prefix. *)
  val get_raw : reader -> int -> string
  val get_value : reader -> Value.t
  val get_row : reader -> Row.t
  val get_schema : reader -> Schema.t
  val get_relation : reader -> Relation.t
end

(** Frame an arbitrary payload as [length ∥ crc32 ∥ payload]. *)
val frame_payload : string -> string

(** Parse a string of framed records into [(payload, offset)] pairs —
    [None] for a record whose CRC does not match (skipped by its length
    field); [offset] is the payload's byte offset.  The boolean is true
    when a torn tail (short frame) was cut off. *)
val parse_frames : string -> (string option * int) list * bool
