(** Dependency-free LZSS compression for WAL batch records and
    replication feeds.

    The stream format is internal (both ends are this module): 8-token
    flag groups of literals and 12-bit-distance/4-bit-length back
    references over a 4 KiB window.  Compression is linear-time
    (bounded hash chains) and decompression verifies the expected raw
    length carried by the enclosing record. *)

exception Corrupt of string

(** Compress a string.  Worst-case expansion is 1/8 (one flag byte per
    8 literals) — {!pack} falls back to raw storage before that ever
    reaches a record. *)
val compress : string -> string

(** Invert {!compress}.  @raise Corrupt on a malformed stream or when
    the output is not exactly [expected] bytes. *)
val decompress : string -> expected:int -> string

(** Append [raw_len ∥ flag ∥ stored_len ∥ data] to the buffer: flag
    ['z'] (compressed) when compression shrank the payload, ['r'] (raw)
    otherwise.  Payloads under 64 bytes are always stored raw. *)
val pack : Buffer.t -> string -> unit

(** Read one {!pack}ed payload through caller-supplied reader
    primitives (composes with [Wal.Codec]).
    @raise Corrupt on flag/length mismatch or a damaged stream. *)
val unpack :
  get_int:(unit -> int) ->
  get_char:(unit -> char) ->
  get_bytes:(int -> string) ->
  string
