(** Versioned checkpoints: a snapshot of base tables, index DDL, view
    definitions and per-view materialized state, written atomically
    (temp file + fsync + rename) with every record CRC-framed like a
    WAL record.

    The checkpoint carries an {e epoch}: the WAL installed after a
    successful checkpoint opens with the same epoch, so recovery can
    discard a stale log left by a crash between the checkpoint rename
    and the log reset.

    Damage policy on read: a corrupt {e view-state} record quarantines
    just that view (it is restored stale, to heal by full refresh on
    first read); corruption anywhere else raises {!Corrupt} — a
    checkpoint file is rename-atomic, so structural damage means the
    snapshot cannot be trusted.

    Fault-injection site: [checkpoint.write] (before each record). *)

open Rfview_relalg

exception Corrupt of string

type table_snap = {
  t_name : string;
  t_schema : Schema.t;
  t_rows : Row.t array;
}

type state_snap = {
  s_stale : bool;  (** quarantined at checkpoint time *)
  s_contents : Relation.t option;
  s_incremental : bool;  (** had an incremental maintenance state *)
}

type view_entry = {
  v_name : string;
  v_materialized : bool;
  v_sql : string;  (** the definition query's SQL text *)
  v_state : [ `None | `Snap of state_snap | `Damaged ];
      (** [`None] for non-materialized views; [`Damaged] only on read,
          when the view's state record failed its CRC *)
}

type snapshot = {
  epoch : int;
  lsn : int;
      (** global WAL position the snapshot captures: the number of
          top-level records appended since the database was created.
          0 for checkpoints written before replication existed. *)
  tables : table_snap list;
  index_ddl : string list;  (** CREATE INDEX statements, tables and views *)
  views : view_entry list;
}

(** The checkpoint file inside a database directory. *)
val file : dir:string -> string

(** Write a checkpoint atomically.  On any failure (including an armed
    [checkpoint.write] site) the temp file is discarded and the previous
    checkpoint is untouched. *)
val write :
  dir:string ->
  lsn:int ->
  epoch:int ->
  tables:table_snap list ->
  index_ddl:string list ->
  views:view_entry list ->
  unit

(** Read the current checkpoint; [None] when no checkpoint exists.
    @raise Corrupt on structural damage (see the damage policy above). *)
val read : dir:string -> snapshot option

(** Parse checkpoint bytes that travelled outside a database directory
    (a replication feed artifact).  [name] labels error messages.
    @raise Corrupt on structural damage, as {!read}. *)
val read_bytes : ?name:string -> string -> snapshot

(** The checkpoint file's raw bytes, for shipping to a replica feed;
    [None] when no checkpoint exists. *)
val contents : dir:string -> string option

(** Flip one byte inside the named view's state record (test helper for
    the recovery chaos suite).  Returns false when the view has no state
    record. *)
val corrupt_state : dir:string -> view:string -> bool
