(* Fault injection: named sites at every maintenance-critical point of
   the engine, each triggerable by a deterministic policy.

   A *site* is a program point that may fail in production (an OOM-sized
   query, a refresh error, a corrupt load).  Modules declare their sites
   at load time with [define] and call [hit] when execution passes the
   point; an armed site raises [Injected] according to its policy.  The
   chaos harness (Rfview_workload.Chaos) arms every site in turn and
   checks that statement atomicity and view quarantine hold; nothing is
   armed by default, so [hit] is a counter bump on the production path.

   Policies are deterministic — [Always], [Nth] (fire on the Nth hit
   after arming, once) and [Probability] (seeded SplitMix64 coin per
   hit) — so every failing run replays exactly. *)

exception Injected of string

type policy =
  | Always
  | Nth of int                       (* fire on the Nth hit after arming *)
  | Probability of { p : float; seed : int }

type armed = {
  policy : policy;
  mutable since : int;               (* hits since arming *)
  mutable rng : int64;               (* SplitMix64 state for [Probability] *)
}

type site = {
  name : string;
  mutable hits : int;                (* lifetime hits, armed or not *)
  mutable fired : int;               (* lifetime injections *)
  mutable armed : armed option;
}

(* The global registry, populated by module initialisation of the
   instrumented engine modules. *)
let registry : (string, site) Hashtbl.t = Hashtbl.create 16

let define name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let s = { name; hits = 0; fired = 0; armed = None } in
    Hashtbl.add registry name s;
    s

let sites () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let find name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Fault: unknown site %s (known: %s)" name
         (String.concat ", " (sites ())))

(* Master switch: the consistency checks of the chaos harness must be
   able to read the database without re-triggering the fault under
   test. *)
let suspended = ref false

let with_suspended f =
  let saved = !suspended in
  suspended := true;
  Fun.protect ~finally:(fun () -> suspended := saved) f

(* SplitMix64 step (the same generator as Rfview_workload.Prng, inlined
   to keep the engine free of a workload dependency). *)
let splitmix state =
  let open Int64 in
  let state = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor state (shift_right_logical state 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (state, logxor z (shift_right_logical z 31))

let uniform state =
  let state, out = splitmix state in
  (state, Int64.to_float (Int64.shift_right_logical out 11) /. 9007199254740992.)

let should_fire (a : armed) =
  a.since <- a.since + 1;
  match a.policy with
  | Always -> true
  | Nth n -> a.since = n
  | Probability { p; _ } ->
    let state, u = uniform a.rng in
    a.rng <- state;
    u < p

let hit (s : site) =
  s.hits <- s.hits + 1;
  if not !suspended then
    match s.armed with
    | None -> ()
    | Some a ->
      if should_fire a then begin
        s.fired <- s.fired + 1;
        raise (Injected s.name)
      end

let arm name policy =
  (match policy with
   | Nth n when n < 1 -> invalid_arg "Fault.arm: Nth must be >= 1"
   | Probability { p; _ } when p < 0. || p > 1. ->
     invalid_arg "Fault.arm: probability must be in [0, 1]"
   | _ -> ());
  let s = find name in
  let rng = match policy with Probability { seed; _ } -> Int64.of_int seed | _ -> 0L in
  s.armed <- Some { policy; since = 0; rng }

let disarm name = (find name).armed <- None
let disarm_all () = Hashtbl.iter (fun _ s -> s.armed <- None) registry

let reset () =
  Hashtbl.iter
    (fun _ s ->
      s.armed <- None;
      s.hits <- 0;
      s.fired <- 0)
    registry

let hits name = (find name).hits
let fired name = (find name).fired
let is_armed name = (find name).armed <> None

(* ---- CLI spec parsing: SITE:POLICY ---- *)

let describe_policy = function
  | Always -> "always"
  | Nth n -> Printf.sprintf "nth=%d" n
  | Probability { p; seed } -> Printf.sprintf "p=%g@%d" p seed

(* always | nth=N | p=F[@SEED] *)
let parse_policy text : (policy, string) result =
  match String.lowercase_ascii text with
  | "always" -> Ok Always
  | s when String.length s > 4 && String.sub s 0 4 = "nth=" ->
    (match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
     | Some n when n >= 1 -> Ok (Nth n)
     | _ -> Error (Printf.sprintf "invalid hit count in %S" text))
  | s when String.length s > 2 && String.sub s 0 2 = "p=" ->
    let body = String.sub s 2 (String.length s - 2) in
    let prob, seed =
      match String.index_opt body '@' with
      | Some i ->
        ( String.sub body 0 i,
          int_of_string_opt (String.sub body (i + 1) (String.length body - i - 1)) )
      | None -> (body, Some 0)
    in
    (match float_of_string_opt prob, seed with
     | Some p, Some seed when p >= 0. && p <= 1. -> Ok (Probability { p; seed })
     | _ -> Error (Printf.sprintf "invalid probability in %S" text))
  | _ ->
    Error
      (Printf.sprintf "unknown policy %S (expected always, nth=N or p=F[@SEED])" text)

let parse_spec spec : (string * policy, string) result =
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "expected SITE:POLICY, got %S" spec)
  | Some i ->
    let site = String.sub spec 0 i in
    let policy = String.sub spec (i + 1) (String.length spec - i - 1) in
    if site = "" then Error (Printf.sprintf "empty site name in %S" spec)
    else Result.map (fun p -> (site, p)) (parse_policy policy)

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "injected fault at site %s" site)
    | _ -> None)
