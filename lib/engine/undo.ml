(* The statement-level undo log.

   Every mutation the engine performs while executing one statement is
   preceded by logging a restore action that reinstates the prior state
   (a captured rows array, view contents, a deep-copied maintenance
   state, an index cache).  On success the log is dropped; on any
   exception it is replayed newest-first, making [Database.exec]
   all-or-nothing.

   Restore actions must be absolute snapshots, not deltas: replaying a
   prefix of them (or the same one twice, when a site was logged before
   two successive mutations) must still land on the pre-statement
   state. *)

type t = { mutable actions : (unit -> unit) list }

let create () = { actions = [] }

(* [log t restore] records [restore] to run on rollback; call *before*
   the mutation it protects. *)
let log t restore = t.actions <- restore :: t.actions

let commit t = t.actions <- []

let rollback t =
  List.iter (fun restore -> restore ()) t.actions;
  t.actions <- []

let depth t = List.length t.actions

(* Fold a finished inner scope into an enclosing one: the child's
   restore actions (newest-first) are prepended so a later rollback of
   the parent replays them before anything the parent logged earlier. *)
let absorb parent child =
  parent.actions <- child.actions @ parent.actions;
  child.actions <- []
