(** Fault injection: named sites at every maintenance-critical point of
    the engine, each triggerable by a deterministic policy.

    Modules declare sites at load time with {!define} and call {!hit}
    when execution passes the point; an armed site raises {!Injected}
    per its policy.  Nothing is armed by default, so the production-path
    cost of a site is one counter bump.  Policies are deterministic —
    failing runs replay exactly. *)

exception Injected of string  (** carries the site name *)

type policy =
  | Always                    (** fire on every hit *)
  | Nth of int                (** fire on the Nth hit after arming, once *)
  | Probability of { p : float; seed : int }
      (** independent seeded coin per hit (SplitMix64) *)

type site

(** Register (or look up) a site.  Call at module initialisation. *)
val define : string -> site

(** Pass the site: counts the hit and raises {!Injected} when the armed
    policy fires (never when {!with_suspended} is active). *)
val hit : site -> unit

(** All registered site names, sorted. *)
val sites : unit -> string list

(** @raise Invalid_argument on an unknown site or malformed policy. *)
val arm : string -> policy -> unit

val disarm : string -> unit
val disarm_all : unit -> unit

(** Disarm everything and zero all counters. *)
val reset : unit -> unit

val hits : string -> int
val fired : string -> int
val is_armed : string -> bool

(** Run [f] with all injection suspended (hits still count) — used by
    the chaos harness to read the database without re-triggering the
    fault under test. *)
val with_suspended : (unit -> 'a) -> 'a

(** {1 CLI specs} — the [--inject SITE:POLICY] syntax:
    [always], [nth=N] or [p=F[@SEED]]. *)

val parse_spec : string -> (string * policy, string) result
val describe_policy : policy -> string
