(* The VFS seam under every on-disk artifact (WAL, checkpoints,
   replication feeds).  See io.mli for the contract.

   Two layers of fault simulation compose here:

   - the [io.*] Fault sites fire per policy and surface as a typed
     [Io_error] (kind chosen by [Sim.set_error_kind]), so the chaos
     harnesses and the --inject grammar drive disk faults exactly like
     the engine's logical sites;
   - the [Sim] state models the disk itself: a byte budget whose
     exhaustion produces a torn prefix plus ENOSPC (how a full disk
     actually fails), seeded bit flips (silent media corruption), and
     durable-length tracking so [Sim.crash] loses unsynced bytes.

   Durable-length tracking is always on (a hashtable update per fsync/
   rename/truncate); budget and flips are inert unless set. *)

type error_kind = Enospc | Eio

exception
  Io_error of {
    op : string;
    path : string;
    kind : error_kind;
    detail : string;
  }

let describe_kind = function Enospc -> "ENOSPC" | Eio -> "EIO"

let io_error ~op ~path ~kind fmt =
  Format.kasprintf (fun detail -> raise (Io_error { op; path; kind; detail })) fmt

let kind_of_unix = function Unix.ENOSPC -> Enospc | _ -> Eio

let site_write = Fault.define "io.write"
let site_fsync = Fault.define "io.fsync"
let site_rename = Fault.define "io.rename"
let site_truncate = Fault.define "io.truncate"

(* ---- The simulated disk ---- *)

module Sim = struct
  let budget_ref : int option ref = ref None
  let injected_kind = ref Eio
  let flip_ref : (float * int64 ref) option ref = ref None
  let flip_count = ref 0

  (* path -> last fsynced length.  Entries appear when a path first
     passes through [openf]/[rename]; [crash] truncates back to them. *)
  let durable : (string, int) Hashtbl.t = Hashtbl.create 16

  let set_budget b = budget_ref := b
  let budget () = !budget_ref
  let set_error_kind k = injected_kind := k
  let set_flip ~p ~seed = flip_ref := Some (p, ref (Int64.of_int seed))
  let clear_flip () = flip_ref := None
  let flips () = !flip_count

  (* SplitMix64, same generator as Fault's probability policy: flip
     decisions must replay run-to-run. *)
  let next_int64 state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let next_float state =
    Int64.to_float (Int64.shift_right_logical (next_int64 state) 11)
    /. 9007199254740992. (* 2^53 *)

  let maybe_flip (s : string) : string =
    match !flip_ref with
    | Some (p, state) when String.length s > 0 && next_float state < p ->
      let r = Int64.to_int (Int64.shift_right_logical (next_int64 state) 2) in
      let bit = r mod (String.length s * 8) in
      let b = Bytes.of_string s in
      Bytes.set b (bit / 8)
        (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
      incr flip_count;
      Bytes.unsafe_to_string b
    | _ -> s

  let note_durable path len = Hashtbl.replace durable path len

  let note_open path len =
    if not (Hashtbl.mem durable path) then Hashtbl.replace durable path len

  let note_truncate path len =
    match Hashtbl.find_opt durable path with
    | Some d when d > len -> Hashtbl.replace durable path len
    | _ -> ()

  let note_rename src dst =
    (match Hashtbl.find_opt durable src with
     | Some d -> Hashtbl.replace durable dst d
     | None ->
       (match (Unix.stat dst).Unix.st_size with
        | n -> Hashtbl.replace durable dst n
        | exception _ -> ()));
    Hashtbl.remove durable src

  let note_remove path = Hashtbl.remove durable path

  let crash () =
    Hashtbl.iter
      (fun path dlen ->
        match (Unix.stat path).Unix.st_size with
        | n when n > dlen ->
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () -> Unix.ftruncate fd dlen)
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
      durable

  let reset () =
    budget_ref := None;
    injected_kind := Eio;
    flip_ref := None;
    flip_count := 0;
    Hashtbl.reset durable
end

(* An armed io site surfaces as the typed error, not a bare
   [Fault.Injected]: callers of the seam handle storage failures in one
   shape whether the disk or the injector produced them. *)
let pass site ~op ~path =
  try Fault.hit site
  with Fault.Injected s ->
    io_error ~op ~path ~kind:!Sim.injected_kind "injected fault at %s" s

(* ---- File handles ---- *)

type file = { path : string; fd : Unix.file_descr }

type mode = Create_trunc | Append | Write

let path_of f = f.path

let openf path ~mode =
  let flags =
    match mode with
    | Create_trunc -> [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
    | Append -> [ Unix.O_WRONLY; Unix.O_APPEND ]
    | Write -> [ Unix.O_WRONLY ]
  in
  match Unix.openfile path flags 0o644 with
  | fd ->
    (match mode with
     | Create_trunc -> Sim.note_open path 0
     | Append | Write -> Sim.note_open path (Unix.fstat fd).Unix.st_size);
    { path; fd }
  | exception Unix.Unix_error (e, _, _) ->
    io_error ~op:"open" ~path ~kind:(kind_of_unix e) "%s" (Unix.error_message e)

let really_write fd (s : string) =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let write f (s : string) =
  pass site_write ~op:"write" ~path:f.path;
  let s = Sim.maybe_flip s in
  let wrap e = io_error ~op:"write" ~path:f.path ~kind:(kind_of_unix e) "%s" (Unix.error_message e) in
  match !Sim.budget_ref with
  | Some b when b < String.length s ->
    (* a full disk lands the affordable prefix, then fails: exactly the
       torn write the framed artifacts must survive *)
    (try really_write f.fd (String.sub s 0 b) with Unix.Unix_error (e, _, _) -> wrap e);
    Sim.budget_ref := Some 0;
    io_error ~op:"write" ~path:f.path ~kind:Enospc
      "disk full: %d of %d byte(s) written" b (String.length s)
  | budget ->
    (match budget with
     | Some b -> Sim.budget_ref := Some (b - String.length s)
     | None -> ());
    (try really_write f.fd s with Unix.Unix_error (e, _, _) -> wrap e)

let pwrite f ~at (s : string) =
  pass site_write ~op:"write" ~path:f.path;
  try
    ignore (Unix.lseek f.fd at Unix.SEEK_SET);
    really_write f.fd s
  with Unix.Unix_error (e, _, _) ->
    io_error ~op:"write" ~path:f.path ~kind:(kind_of_unix e) "%s" (Unix.error_message e)

let size f = (Unix.fstat f.fd).Unix.st_size

let fsync f =
  pass site_fsync ~op:"fsync" ~path:f.path;
  (try Unix.fsync f.fd
   with Unix.Unix_error (e, _, _) ->
     io_error ~op:"fsync" ~path:f.path ~kind:(kind_of_unix e) "%s" (Unix.error_message e));
  Sim.note_durable f.path (size f)

let ftruncate f len =
  pass site_truncate ~op:"truncate" ~path:f.path;
  (try Unix.ftruncate f.fd len
   with Unix.Unix_error (e, _, _) ->
     io_error ~op:"truncate" ~path:f.path ~kind:(kind_of_unix e) "%s" (Unix.error_message e));
  Sim.note_truncate f.path len

let seek f pos =
  try ignore (Unix.lseek f.fd pos Unix.SEEK_SET)
  with Unix.Unix_error (e, _, _) ->
    io_error ~op:"seek" ~path:f.path ~kind:(kind_of_unix e) "%s" (Unix.error_message e)

let close f = try Unix.close f.fd with Unix.Unix_error _ -> ()

(* ---- Path operations ---- *)

let rename src dst =
  pass site_rename ~op:"rename" ~path:dst;
  (try Unix.rename src dst
   with Unix.Unix_error (e, _, _) ->
     io_error ~op:"rename" ~path:dst ~kind:(kind_of_unix e) "%s" (Unix.error_message e));
  Sim.note_rename src dst

let remove path =
  (try Sys.remove path with Sys_error _ -> ());
  Sim.note_remove path

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with _ -> ());
    (try Unix.close fd with _ -> ())
  | exception _ -> ()

let exists = Sys.file_exists

let file_size path =
  match (Unix.stat path).Unix.st_size with n -> n | exception _ -> 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  Printexc.register_printer (function
    | Io_error { op; path; kind; detail } ->
      Some (Printf.sprintf "I/O error (%s): %s %s: %s" (describe_kind kind) op path detail)
    | _ -> None)
