(** The database facade: parse → bind → (rewrite) → optimize → plan →
    execute, plus DDL/DML with materialized-view maintenance. *)

open Rfview_relalg
module Ast := Rfview_sql.Ast
module P := Rfview_planner

exception Engine_error of string

(** A script statement failed: 1-based index and SQL text of the
    culprit, wrapping the original exception. *)
exception Script_error of { index : int; sql : string; cause : exn }

(** A durable database directory could not be brought back to a usable
    state: structural checkpoint corruption, or a WAL record that fails
    to replay.  Per-view state damage does {e not} raise this — such
    views are quarantined and recovery proceeds. *)
exception Recovery_error of string

(** The session is in disk-full degraded mode: the write was rejected
    (state unchanged, reads keep serving).  See {!health}. *)
exception Degraded_error of { reason : string }

(** How reporting functions execute — the contrast of the paper's
    Table 1: the native window operator, or the Fig. 2 self-join
    simulation applied in query rewrite. *)
type window_mode =
  [ `Native
  | `Self_join
  ]

(** What happens when maintaining one materialized view fails mid
    statement: [`Quarantine] (default) marks the view stale — the
    statement succeeds and the next read of the view triggers a full
    refresh; [`Abort] propagates the exception, rolling the whole
    statement back. *)
type degradation =
  [ `Quarantine
  | `Abort
  ]

(** Exceptions the degradation policies may absorb: everything except
    verification failures ([Verify.Not_preserved], a bug not an
    environmental fault) and asynchronous exhaustion. *)
val recoverable_exn : exn -> bool

(** {1 Configuration}

    All execution knobs live in one record, fixed at {!create} (or
    {!open_durable}) time and changeable wholesale with {!reconfigure}.

    - [window_mode] / [window_strategy]: how reporting functions
      execute and how the window operator evaluates.
    - [hash_join]: disabling hash joins forces nested loops for
      equality predicates — how the paper's engine executed both
      Table 2 variants.  [index_join] additionally off yields pure
      nested-loop plans.
    - [degradation]: the view-maintenance failure policy.
    - [share_scans]: during batch maintenance, drive all sequence views
      of a certified scan-share class (same base table, partition
      columns and order column — {!Rfview_analysis.Share}) from one
      shared partition iterator instead of re-scanning per view. *)
type config = {
  window_mode : window_mode;
  window_strategy : Window.strategy;
  hash_join : bool;
  index_join : bool;
  degradation : degradation;
  share_scans : bool;
}

(** [`Native], [Incremental], hash and index joins on, [`Quarantine]. *)
val default_config : config

type t

type result =
  | Relation of Relation.t
  | Done of string  (** acknowledgement of a DDL/DML statement *)

val create : ?config:config -> unit -> t

(** Replace the whole configuration.  Plans are built per statement, so
    the change takes effect on the next one. *)
val reconfigure : t -> config -> unit

(** The current configuration. *)
val config : t -> config

(** {1 Execution}

    Every statement is {e atomic}: on any exception an undo log restores
    tables, view contents, view states and index caches to the
    pre-statement snapshot before the exception re-raises. *)

(** Execute one statement.
    @raise Engine_error / Binder.Bind_error / Parser.Parse_error /
           Catalog.Catalog_error on failure. *)
val exec : t -> string -> result

(** Execute a [;]-separated script.  The whole script runs as one
    {!with_batch} scope: statements keep their individual atomicity and
    the first failure stops the script, but view maintenance and the
    WAL fsync happen once at the end (group commit).
    @raise Script_error wrapping the failing statement's exception with
    its 1-based index and SQL text. *)
val exec_script : t -> string -> result list

(** [with_batch db f] runs [f] inside a batch scope: base-table deltas
    from DML statements are accumulated (consolidated per table) and
    propagated to each dependent materialized view {e once}, at scope
    exit, using the multi-row §2.3 rules; on a durable database the
    batch's WAL records are framed into a single record and fsynced
    once (group commit).  Statements inside the batch remain
    individually atomic; if [f] raises, the {e whole batch} is rolled
    back (and nothing of it reaches the WAL).  Reads inside the batch
    — view queries, {!view_state}, DDL on the touched tables — force an
    early propagation of the pending delta, so results are never stale.
    Nested calls (and calls inside a statement scope) are no-ops
    joining the enclosing scope. *)
val with_batch : t -> (unit -> 'a) -> 'a

(** Execute a query statement.  @raise Engine_error if it is not one. *)
val query : t -> string -> Relation.t

(** Logical and physical plan text. *)
val explain : t -> string -> string

val exec_statement : t -> Ast.statement -> result
val run_query : t -> Ast.query -> Relation.t
val plan_query : t -> Ast.query -> P.Physical.t

(** Bulk-load rows, bypassing SQL parsing; materialized views on the
    table are maintained through the batched delta path (one
    propagation per view).  Atomic like a statement: a failed
    propagation rolls the load back. *)
val load_table : t -> table:string -> Row.t array -> unit

(** {1 Durability}

    A durable database lives in a directory holding a checkpoint (see
    {!module:Checkpoint}) and a write-ahead log (see {!module:Wal}).
    Every statement's logical records are appended and fsynced before it
    commits; a statement whose records cannot be made durable rolls
    back.  Opening the directory recovers: checkpoint + WAL suffix
    replay, with torn-tail truncation and per-view quarantine of damaged
    state, so recovery always terminates with a readable database. *)

type recovery_report = {
  checkpoint_epoch : int option;  (** [None] when no checkpoint existed *)
  replayed : int;  (** WAL records applied after the checkpoint *)
  torn : bool;  (** a torn/corrupt WAL tail was detected and truncated *)
  quarantined : string list;
      (** views restored stale because their checkpoint state was
          damaged or could not be validated (sorted) *)
  swept : string list;
      (** stale [*.tmp] files (left by a crash between an artifact
          write and its rename) removed when the directory was opened *)
}

(** Open (creating if necessary) a durable database directory.
    @raise Recovery_error when the directory cannot be recovered. *)
val open_durable : ?config:config -> string -> t

(** Like {!open_durable}, also returning what recovery did. *)
val recover : ?config:config -> string -> t * recovery_report

(** Write a checkpoint: an atomic snapshot of tables, index DDL, views
    and materialized state, then start a fresh WAL epoch.
    @raise Engine_error when the database has no directory.
    @raise Degraded_error when the disk is full (the previous checkpoint
    and WAL stay intact; see {!health}). *)
val checkpoint : t -> unit

(** {2 Disk-full degraded mode}

    ENOSPC during a WAL commit or a checkpoint never corrupts state: the
    failed write is rolled back and the session enters a read-only
    degraded mode.  Reads keep serving; every write raises
    {!Degraded_error}.  A cheap space probe (write + fsync of a scratch
    file) runs with exponential backoff — counted in rejected writes —
    and normal operation resumes automatically once it succeeds. *)

type health =
  | Healthy
  | Degraded of { reason : string; rejected_writes : int }

val health : t -> health

(** Checkpoint automatically once the WAL holds at least [n] records
    ([None] disables, the default).  A failing automatic checkpoint is
    ignored — the longer WAL still recovers the same state. *)
val set_checkpoint_every : t -> int option -> unit

(** Checkpoint automatically once the WAL file reaches [n] bytes
    ([None] disables, the default) — the log-compaction trigger: a few
    huge batch records compact as eagerly as many small ones.  Composes
    with {!set_checkpoint_every}; either threshold fires. *)
val set_checkpoint_bytes : t -> int option -> unit

(** The database directory, when opened with {!open_durable}/{!recover}. *)
val durable_dir : t -> string option

(** The current checkpoint epoch (0 before the first checkpoint, and
    for non-durable databases). *)
val epoch : t -> int

(** {1 Replication support}

    Primitives the replication layer ({!module:Rfview_replica}) builds
    on: a global log position, record application outside the WAL
    commit path, bootstrap from shipped checkpoint bytes, a logical
    state fingerprint for divergence detection, and promotion. *)

(** The log sequence number: the global count of top-level WAL records
    appended since the database was created.  Survives checkpoints (the
    checkpoint header carries it forward).  0 for a non-durable
    database. *)
val lsn : t -> int

(** Is a {!with_batch} scope currently open?  (A shipper must not read
    the log position mid-batch: the batch's record is not sealed yet.) *)
val in_batch : t -> bool

(** Apply one WAL record through the regular replay path (view
    maintenance, fault sites and quarantine behave as on the primary).
    On a non-durable database nothing is re-logged: application is a
    pure state transition — this is how replicas consume shipped
    records.
    @raise Engine_error when the record does not apply (e.g. a missing
    pre-image), which a replica should treat as divergence. *)
val apply_record : t -> Wal.record -> unit

(** Build an in-memory (non-durable) database from a checkpoint
    snapshot; returns it with the names of views restored stale.
    Replica bootstrap: the snapshot typically comes from
    {!Checkpoint.read_bytes} on a shipped artifact.
    @raise Recovery_error when the snapshot does not restore. *)
val restore_snapshot : ?config:config -> Checkpoint.snapshot -> t * string list

(** A textual dump of the logical database state: table rows, view
    contents, quarantine flags.  Equal fingerprints mean every query
    answers identically.  Excludes incremental-maintenance {e presence}
    (a checkpoint-bootstrapped replica may maintain by full refresh
    where the primary is incremental — same logical state). *)
val fingerprint : t -> string

(** Promote an in-memory database (a replica's applied state) into a
    durable primary at [dir]: writes an epoch-1 checkpoint carrying
    [lsn] and installs a fresh WAL, so the promoted primary's log
    sequence continues where the shipped history ended.
    @raise Engine_error when the database is already durable or a batch
    is open. *)
val make_durable : t -> dir:string -> lsn:int -> unit

(** Close the WAL writer and detach the directory (the in-memory
    database remains usable, but is no longer durable). *)
val close : t -> unit

(** {1 Introspection} *)

val catalog : t -> Catalog.t

(** Does the view currently have an incremental maintenance state —
    either the §2.3 sequence machinery or a derived delta plan? *)
val is_incrementally_maintained : t -> string -> bool

(** Is the view maintained by a derived delta plan (generalized IVM,
    {!Rfview_planner.Deriv})? *)
val is_derived_maintained : t -> string -> bool

(** The derived maintenance state, when one is installed (flushes any
    open batch delta first, like {!view_state}). *)
val derived_state : t -> string -> Matview.Derived.t option

(** Is the view quarantined (stale, pending a lazy full refresh)? *)
val is_stale : t -> string -> bool

(** Names of all quarantined views, sorted. *)
val stale_views : t -> string list

val view_state : t -> string -> Matview.state option

(** The certified scan-share classes (view names, ≥ 2 members each) a
    batch delta against [table] would drive through one shared partition
    iterator.  Non-empty only when [share_scans] is on, the views have
    live sequence states agreeing on the runtime scan key, {e and} the
    static {!Rfview_analysis.Share} certificate over their definitions
    holds — the same both-or-neither gate the engine applies, so tests
    can pair this verdict with the analysis verdict.  Flushes any open
    batch delta first, like {!view_state}. *)
val share_classes : t -> table:string -> string list list

(** The binder/executor adapters (exposed for the advisor and tests). *)
val binder_catalog : t -> P.Binder.catalog

val catalog_view : t -> P.Physical.catalog_view

(** {1 MVCC snapshots}

    Every commit point — a top-level statement, a {!with_batch} commit,
    recovery — publishes an immutable, LSN-stamped version of the
    logical state.  Publication captures pointers (row arrays and view
    contents are replaced wholesale by every mutation path, never
    mutated in place), so the hot path pays O(tables + views), not a
    deep copy.  A bounded window of recent versions stays acquirable;
    an acquired snapshot pins its version beyond the window until
    released, so neither eviction nor {!close} invalidates it.

    Concurrency contract: {e one} writer executes statements and
    batches; any number of domains may acquire snapshots and run
    {!Snapshot.query} concurrently with the writer and each other. *)

module Snapshot : sig
  (** A frozen, immutable view of the database at one published LSN. *)
  type t

  (** The LSN this snapshot's state corresponds to.  On a durable
      database this is the WAL position of the publishing commit; on an
      in-memory database it is a session-local commit counter. *)
  val lsn : t -> int

  (** Run one query statement against the frozen state: the regular
      plan pipeline over the version's tables, view contents and
      indexes.  Safe to call from any domain.  A quarantined view heals
      {e snapshot-locally} (recomputed from the frozen base tables,
      memoized in the snapshot, never written back).
      @raise Engine_error on a non-query statement or a closed
      snapshot. *)
  val query : t -> string -> Relation.t

  val run_query : t -> Rfview_sql.Ast.query -> Relation.t

  (** The frozen state's {!fingerprint} (same rendering as the live
      one, stale views included as captured — the chaos oracle relies
      on bit-identity). *)
  val fingerprint : t -> string

  (** Release the pinned version.  Idempotent. *)
  val close : t -> unit

  val released : t -> bool
end

(** Acquire the newest published version.  Never blocks on the writer
    beyond the version-list mutex. *)
val snapshot : t -> Snapshot.t

(** Acquire the version published at exactly [lsn];
    [Error violation] when that LSN has left the retained window (or
    was never published). *)
val snapshot_at :
  t -> lsn:int -> (Snapshot.t, Staleness.violation) Stdlib.result

(** Same as {!Snapshot.close}. *)
val release : t -> Snapshot.t -> unit

(** LSNs currently acquirable, newest first. *)
val retained_lsns : t -> int list

(** Resize the retained-version window (default 8, minimum 1).  Active
    snapshots keep their versions alive regardless. *)
val set_retain : t -> int -> unit

(** Total acquired-and-unreleased snapshots. *)
val open_snapshots : t -> int
