(** The statement-level undo log: restore actions replayed newest-first
    on rollback, making [Database.exec] all-or-nothing.

    Restore actions must be absolute snapshots (captured rows arrays,
    view contents, deep-copied maintenance states), not deltas — a
    prefix replay must still reach the pre-statement state. *)

type t

val create : unit -> t

(** Record a restore action; call {e before} the mutation it protects. *)
val log : t -> (unit -> unit) -> unit

(** Drop the log (the statement succeeded). *)
val commit : t -> unit

(** Replay all restore actions newest-first and clear the log. *)
val rollback : t -> unit

val depth : t -> int

(** [absorb parent child] moves the child scope's restore actions into
    [parent] (ahead of what [parent] already holds, preserving
    newest-first replay) and empties [child].  Used to fold a
    per-statement scope into an enclosing batch scope. *)
val absorb : t -> t -> unit
