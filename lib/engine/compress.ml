(* Record-level compression for WAL batches and replication feeds.

   A dependency-free LZSS: the output is a stream of 8-token groups,
   each prefixed by a flag byte (bit i set = token i is a back
   reference).  A literal token is one byte; a reference token is two
   bytes packing a 12-bit distance (1..4096) and a 4-bit length
   (MIN_MATCH..MIN_MATCH+15).  Matching uses a hash of the next three
   bytes into chained candidate positions, bounded so compression stays
   linear on pathological inputs.

   The format is internal — both ends of every stream are this module —
   so there is no header; the expected raw length travels in the
   enclosing record and is verified on decompression. *)

exception Corrupt of string

let window = 4096
let min_match = 3
let max_match = min_match + 15
let hash_bits = 13
let hash_size = 1 lsl hash_bits
let max_chain = 32

let hash3 (s : string) i =
  let a = Char.code s.[i]
  and b = Char.code s.[i + 1]
  and c = Char.code s.[i + 2] in
  ((a lsl 8) lxor (b lsl 4) lxor c) land (hash_size - 1)

let compress (src : string) : string =
  let n = String.length src in
  let out = Buffer.create (n / 2 + 16) in
  (* hash chains: head.(h) = most recent position with hash h, -1 none;
     prev.(pos mod window) = previous position with the same hash *)
  let head = Array.make hash_size (-1) in
  let prev = Array.make window (-1) in
  let group = Buffer.create 17 in
  let group_len = ref 0 in
  let flag_byte = ref 0 in
  let flush_group () =
    if !group_len > 0 then begin
      Buffer.add_char out (Char.chr !flag_byte);
      Buffer.add_buffer out group;
      Buffer.clear group;
      group_len := 0;
      flag_byte := 0
    end
  in
  let add_token ~is_ref f =
    if is_ref then flag_byte := !flag_byte lor (1 lsl !group_len);
    f group;
    incr group_len;
    if !group_len = 8 then flush_group ()
  in
  let insert pos =
    if pos + min_match <= n then begin
      let h = hash3 src pos in
      prev.(pos land (window - 1)) <- head.(h);
      head.(h) <- pos
    end
  in
  let match_len a b limit =
    (* length of the common prefix of src[a..] and src[b..], capped *)
    let l = ref 0 in
    while !l < limit && src.[a + !l] = src.[b + !l] do incr l done;
    !l
  in
  let i = ref 0 in
  while !i < n do
    let pos = !i in
    let best_len = ref 0 in
    let best_dist = ref 0 in
    if pos + min_match <= n then begin
      let limit = min max_match (n - pos) in
      let cand = ref head.(hash3 src pos) in
      let chain = ref 0 in
      while !cand >= 0 && pos - !cand <= window && !chain < max_chain do
        let c = !cand in
        if c < pos then begin
          let l = match_len c pos limit in
          if l > !best_len then begin
            best_len := l;
            best_dist := pos - c
          end
        end;
        cand := prev.(c land (window - 1));
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      let len = !best_len and dist = !best_dist in
      (* 12-bit distance-1, 4-bit length-min_match *)
      let packed = ((dist - 1) lsl 4) lor (len - min_match) in
      add_token ~is_ref:true (fun g ->
          Buffer.add_char g (Char.chr (packed lsr 8));
          Buffer.add_char g (Char.chr (packed land 0xFF)));
      for k = 0 to len - 1 do insert (pos + k) done;
      i := pos + len
    end
    else begin
      add_token ~is_ref:false (fun g -> Buffer.add_char g src.[pos]);
      insert pos;
      i := pos + 1
    end
  done;
  flush_group ();
  Buffer.contents out

let decompress (src : string) ~expected : string =
  let n = String.length src in
  let out = Buffer.create expected in
  let i = ref 0 in
  (try
     while !i < n && Buffer.length out < expected do
       let flags = Char.code src.[!i] in
       incr i;
       let t = ref 0 in
       while !t < 8 && !i < n && Buffer.length out < expected do
         if flags land (1 lsl !t) <> 0 then begin
           if !i + 1 >= n then raise (Corrupt "truncated back reference");
           let hi = Char.code src.[!i] and lo = Char.code src.[!i + 1] in
           i := !i + 2;
           let packed = (hi lsl 8) lor lo in
           let dist = (packed lsr 4) + 1 in
           let len = (packed land 0xF) + min_match in
           let start = Buffer.length out - dist in
           if start < 0 then raise (Corrupt "back reference before start");
           (* the reference may overlap the output tail: copy bytewise *)
           for k = 0 to len - 1 do
             Buffer.add_char out (Buffer.nth out (start + k))
           done
         end
         else begin
           Buffer.add_char out src.[!i];
           incr i
         end;
         incr t
       done
     done
   with Invalid_argument _ -> raise (Corrupt "malformed token stream"));
  if Buffer.length out <> expected then
    raise
      (Corrupt
         (Printf.sprintf "decompressed %d bytes, expected %d"
            (Buffer.length out) expected));
  Buffer.contents out

(* ---- Length-prefixed packing for codec payloads ----

   [pack] writes [raw_len ∥ flag ∥ data]: flag 'z' when compression won,
   'r' (raw) otherwise — small or incompressible payloads cost one byte,
   never a blowup.  Lengths are u64 LE like every Wal.Codec integer. *)

let put_int buf (i : int) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Buffer.add_bytes buf b

let pack buf (s : string) =
  let n = String.length s in
  let z = if n >= 64 then compress s else s in
  if String.length z < n then begin
    put_int buf n;
    Buffer.add_char buf 'z';
    put_int buf (String.length z);
    Buffer.add_string buf z
  end
  else begin
    put_int buf n;
    Buffer.add_char buf 'r';
    put_int buf n;
    Buffer.add_string buf s
  end

(* [unpack] reads what [pack] wrote via caller-supplied primitives, so
   it composes with any reader (Wal.Codec here). *)
let unpack ~get_int ~get_char ~get_bytes =
  let raw_len = get_int () in
  if raw_len < 0 then raise (Corrupt "negative packed length");
  let flag = get_char () in
  let stored = get_int () in
  if stored < 0 then raise (Corrupt "negative stored length");
  let data = get_bytes stored in
  match flag with
  | 'r' ->
    if String.length data <> raw_len then raise (Corrupt "raw length mismatch");
    data
  | 'z' -> decompress data ~expected:raw_len
  | c -> raise (Corrupt (Printf.sprintf "bad pack flag %C" c))

let () =
  Printexc.register_printer (function
    | Corrupt m -> Some (Printf.sprintf "decompression error: %s" m)
    | _ -> None)
