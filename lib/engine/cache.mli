(** A derivation-aware query cache (paper §3's motivating application).

    Warehouse systems cache incoming user queries as implicit
    materialized views; for sequence workloads this only helps if new
    reporting-function queries can be {e derived} from previously cached
    ones — which MaxOA/MinOA and the cumulative rules provide.

    The cache intercepts queries: a reporting-function query answerable
    from a cached entry is served by derivation without touching the base
    table; other queries execute normally, and recognized sequence
    queries are admitted as materialized views.  Entries are evicted FIFO
    beyond the capacity.  Cached entries are real materialized views, so
    base-table DML keeps them (and hence cache answers) fresh. *)

open Rfview_relalg
module Ast := Rfview_sql.Ast

type outcome =
  | Hit of Advisor.proposal  (** answered by derivation from an entry *)
  | Miss_cached of string    (** executed and admitted under this name *)
  | Bypass
      (** not a sequence query, or the cache degraded (a faulting entry
          was evicted); executed directly against the base table —
          degradation can delay answers but never corrupt them *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
}

type t

(** @raise Invalid_argument if [capacity < 1] (default 8). *)
val create : ?capacity:int -> Database.t -> t

val stats : t -> stats

(** Current entry names, oldest first. *)
val entries : t -> string list

val query : t -> string -> Relation.t * outcome
val query_ast : t -> Ast.query -> Relation.t * outcome
val describe_outcome : outcome -> string
