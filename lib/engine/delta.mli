(** Accumulated base-table changes for one batch scope.

    A delta maps each table (case-insensitively) to a consolidated
    multiset of inserted rows, deleted rows and (old, new) update
    pairs.  Consolidation happens as changes arrive: an insert followed
    by a delete of the same row cancels, an update of a row inserted in
    the same batch folds into the insert, and chained updates collapse
    to a single (original, final) pair — so propagation at batch commit
    sees only the net change per base row.

    The structure is persistent: recording a change returns a new value
    and never mutates the old one, which lets the undo log snapshot a
    delta by capturing the pointer. *)

open Rfview_relalg

type t

val empty : t
val is_empty : t -> bool

val insert : t -> table:string -> Row.t list -> t
val delete : t -> table:string -> Row.t list -> t

(** [update d ~table pairs] records (old, new) row pairs. *)
val update : t -> table:string -> (Row.t * Row.t) list -> t

(** Tables with at least one recorded change, lowercased, sorted. *)
val tables : t -> string list

(** The net change for one table, in arrival order; [None] when the
    table's changes cancelled out entirely. *)
type table_delta = {
  inserted : Row.t list;
  deleted : Row.t list;
  updated : (Row.t * Row.t) list;
}

val find : t -> string -> table_delta option

(** Total number of net row changes — the width used to decide between
    delta propagation and a full refresh. *)
val weight : table_delta -> int
