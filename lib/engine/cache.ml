(* A derivation-aware query cache (paper §3's motivating application).

   The paper argues that warehouse systems cache incoming user queries as
   implicit materialized views, and that this only helps sequence
   workloads if the system can *derive* new reporting-function queries
   from previously cached ones — which is exactly what MaxOA/MinOA and
   the cumulative rules provide.

   The cache intercepts queries:
   - a reporting-function query answerable from a cached entry (same
     base table, value and ordering columns; derivable frame) is answered
     by derivation, without touching the base table;
   - other queries execute normally; recognized sequence queries are
     admitted to the cache as materialized views afterwards.

   Entries are evicted FIFO beyond [capacity]. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Parser = Rfview_sql.Parser

type outcome =
  | Hit of Advisor.proposal  (* answered by derivation from a cache entry *)
  | Miss_cached of string    (* executed and admitted under this entry name *)
  | Bypass                   (* not a sequence query, or the cache degraded;
                                executed directly against the base table *)

(* Fault-injection sites (see Fault): entry admission and answering by
   derivation.  A fault on either path degrades to a bypass — the query
   re-runs against the base table, so the cache can delay answers but
   never corrupt them. *)
let site_admit = Fault.define "cache.admit"
let site_answer = Fault.define "cache.derive_answer"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
}

type t = {
  db : Database.t;
  capacity : int;
  mutable entries : string list; (* cache view names, oldest last *)
  mutable counter : int;
  stats : stats;
}

let create ?(capacity = 8) db =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { db; capacity; entries = []; counter = 0; stats = { hits = 0; misses = 0; bypasses = 0 } }

let stats t = t.stats
let entries t = List.rev t.entries

let drop_view t name =
  ignore
    (Database.exec_statement t.db (Ast.St_drop_view { name; if_exists = true }))

(* Entries are newest-first: keep the first [capacity], drop the rest —
   one split pass instead of a List.length/List.rev scan per evicted
   entry. *)
let evict_excess t =
  let rec split kept n = function
    | [] -> (List.rev kept, [])
    | rest when n = 0 -> (List.rev kept, rest)
    | e :: rest -> split (e :: kept) (n - 1) rest
  in
  let keep, evicted = split [] t.capacity t.entries in
  t.entries <- keep;
  List.iter (drop_view t) evicted

(* Admit a recognized sequence query to the cache.  [None] when the
   admission itself faulted: the entry is discarded (creation was rolled
   back by the statement's own undo log) and the caller degrades to a
   bypass — admission failures never lose the query's result. *)
let admit t (q : Ast.query) : string option =
  t.counter <- t.counter + 1;
  let name = Printf.sprintf "cache_entry_%d" t.counter in
  match
    Fault.hit site_admit;
    Database.exec_statement t.db
      (Ast.St_create_view { name; materialized = true; query = q })
  with
  | _ ->
    (* only keep it when the engine established an incremental/derivable
       state; otherwise it cannot serve derivations *)
    if Database.is_incrementally_maintained t.db name then begin
      t.entries <- name :: t.entries;
      evict_excess t
    end
    else drop_view t name;
    Some name
  | exception e when Database.recoverable_exn e ->
    drop_view t name;
    None

(* Drop one entry whose derivation raised — the offending view must not
   poison later queries. *)
let quarantine_entry t name =
  t.entries <- List.filter (fun e -> e <> name) t.entries;
  drop_view t name

(* Answer from the newest cached entry able to serve the query.  A
   derivation fault evicts the offending entry and reports [`Degraded]
   so the caller re-runs the query uncached. *)
let answer_from_cache t (q : Ast.query) =
  let rec go = function
    | [] -> `No_entry
    | (p, state, qspec) :: rest ->
      if not (List.mem p.Advisor.view_name t.entries) then go rest
      else (
        match
          Fault.hit site_answer;
          Advisor.answer_with state qspec p
        with
        | result -> `Answered (result, p)
        | exception e when Database.recoverable_exn e ->
          quarantine_entry t p.Advisor.view_name;
          `Degraded)
  in
  go (Advisor.proposals t.db q)

let query_ast (t : t) (q : Ast.query) : Relation.t * outcome =
  match Matview.recognize q with
  | None ->
    t.stats.bypasses <- t.stats.bypasses + 1;
    (Database.run_query t.db q, Bypass)
  | Some _ ->
    (match answer_from_cache t q with
     | `Answered (result, proposal) ->
       t.stats.hits <- t.stats.hits + 1;
       (result, Hit proposal)
     | `Degraded ->
       t.stats.bypasses <- t.stats.bypasses + 1;
       (Database.run_query t.db q, Bypass)
     | `No_entry ->
       let result = Database.run_query t.db q in
       (match admit t q with
        | Some name ->
          t.stats.misses <- t.stats.misses + 1;
          (result, Miss_cached name)
        | None ->
          t.stats.bypasses <- t.stats.bypasses + 1;
          (result, Bypass)))

let query t (sql : string) : Relation.t * outcome = query_ast t (Parser.query sql)

let describe_outcome = function
  | Hit p -> Printf.sprintf "HIT (%s)" (Advisor.describe p)
  | Miss_cached name -> Printf.sprintf "MISS (cached as %s)" name
  | Bypass -> "BYPASS"
