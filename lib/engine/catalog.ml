(* The catalog: tables with their rows and secondary indexes, plus view
   definitions.  Names are case-insensitive.  Indexes are invalidated by
   DML and rebuilt lazily on first use. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast

exception Catalog_error of string

let catalog_error fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt

let key s = String.lowercase_ascii s

type index_def = {
  index_name : string;
  column : string;
  kind : Index.kind;
  mutable built : Index.t option;
}

type table = {
  table_name : string;
  schema : Schema.t;
  mutable rows : Row.t array;
  mutable indexes : index_def list;
}

type view = {
  view_name : string;
  materialized : bool;
  definition : Ast.query;
  mutable contents : Relation.t option; (* Some for materialized views *)
  (* quarantined: maintenance faulted, contents lag the base table until
     the next read triggers a full refresh *)
  mutable stale : bool;
}

type t = {
  tables : (string, table) Hashtbl.t;
  views : (string, view) Hashtbl.t;
}

let create () = { tables = Hashtbl.create 16; views = Hashtbl.create 16 }

(* ---- Tables ---- *)

let find_table t name = Hashtbl.find_opt t.tables (key name)

let table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> catalog_error "unknown table %s" name

let create_table t ~name ~schema =
  if Hashtbl.mem t.tables (key name) || Hashtbl.mem t.views (key name) then
    catalog_error "relation %s already exists" name;
  let tbl = { table_name = name; schema; rows = [||]; indexes = [] } in
  Hashtbl.replace t.tables (key name) tbl;
  tbl

let drop_table t ~name ~if_exists =
  if Hashtbl.mem t.tables (key name) then Hashtbl.remove t.tables (key name)
  else if not if_exists then catalog_error "unknown table %s" name

let table_relation (tbl : table) : Relation.t = Relation.of_array tbl.schema tbl.rows

let invalidate_indexes (tbl : table) =
  List.iter (fun idx -> idx.built <- None) tbl.indexes

let set_rows (tbl : table) rows =
  tbl.rows <- rows;
  invalidate_indexes tbl

(* ---- Indexes ---- *)

let create_index t ~name ~table:tname ~column ~kind =
  let tbl = table t tname in
  (match Schema.find_opt tbl.schema column with
   | Some _ -> ()
   | None -> catalog_error "table %s has no column %s" tname column);
  if List.exists (fun i -> key i.index_name = key name) tbl.indexes then
    catalog_error "index %s already exists" name;
  tbl.indexes <- { index_name = name; column; kind; built = None } :: tbl.indexes

let table_index t ~table:tname ~column : Index.t option =
  match find_table t tname with
  | None -> None
  | Some tbl ->
    List.find_map
      (fun idx ->
        if key idx.column = key column then begin
          match idx.built with
          | Some built -> Some built
          | None ->
            let key_col =
              match Schema.find_opt tbl.schema idx.column with
              | Some i -> i
              | None -> catalog_error "index column %s disappeared" idx.column
            in
            let built = Index.build idx.kind tbl.rows ~key_col in
            idx.built <- Some built;
            Some built
        end
        else None)
      tbl.indexes

(* ---- Views ---- *)

let find_view t name = Hashtbl.find_opt t.views (key name)

let view t name =
  match find_view t name with
  | Some v -> v
  | None -> catalog_error "unknown view %s" name

let create_view t ~name ~materialized ~definition =
  if Hashtbl.mem t.tables (key name) || Hashtbl.mem t.views (key name) then
    catalog_error "relation %s already exists" name;
  let v = { view_name = name; materialized; definition; contents = None; stale = false } in
  Hashtbl.replace t.views (key name) v;
  v

let drop_view t ~name ~if_exists =
  if Hashtbl.mem t.views (key name) then Hashtbl.remove t.views (key name)
  else if not if_exists then catalog_error "unknown view %s" name

let all_views t = Hashtbl.fold (fun _ v acc -> v :: acc) t.views []
let all_tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

(* ---- Undo-log hooks ----

   Re-bind or unbind a captured table/view record wholesale; only the
   statement rollback in [Database] may call these. *)

let restore_table t (tbl : table) = Hashtbl.replace t.tables (key tbl.table_name) tbl
let forget_table t name = Hashtbl.remove t.tables (key name)
let restore_view t (v : view) = Hashtbl.replace t.views (key v.view_name) v
let forget_view t name = Hashtbl.remove t.views (key name)
