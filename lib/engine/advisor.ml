(* The derivability advisor (paper §3-§6): answer an incoming reporting
   function query from a materialized sequence view instead of
   recomputing it from the base table.

   Matching requires the query and the view to agree on the base table,
   the value column, the ordering column and (modulo partitioning
   reduction) the partitioning columns; the frames must be derivable
   per the decision matrix in {!Rfview_core.Derive}.  AVG and COUNT
   queries are answered from SUM views (the paper's "COUNT is trivial and
   AVG may be directly derived from SUM and COUNT"). *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Core = Rfview_core
module Cert = Rfview_analysis.Cert

type proposal = {
  view_name : string;
  strategy : Core.Derive.strategy;
  partition_reduced : bool;
  (* the paper's relational operator pattern that a plain-relational
     engine would run for this derivation, if one applies *)
  relational_sql : string option;
  (* the statically-discharged proof obligations of the strategy: the
     advisor never proposes a derivation without a valid certificate *)
  certificate : Cert.t;
}

let describe p =
  Printf.sprintf "derive from %s via %s%s (certified: %d obligations)" p.view_name
    (Core.Derive.strategy_name p.strategy)
    (if p.partition_reduced then " after partitioning reduction" else "")
    (List.length p.certificate.Cert.obligations)

(* Aggregates answerable from a view with the given core aggregate. *)
let agg_compatible ~(view : Aggregate.kind) ~(query : Aggregate.kind) =
  match view, query with
  | (Aggregate.Sum | Aggregate.Count | Aggregate.Avg), (Aggregate.Sum | Aggregate.Count | Aggregate.Avg)
    -> true (* all carried by the underlying SUM sequence *)
  | Aggregate.Min, Aggregate.Min | Aggregate.Max, Aggregate.Max -> true
  | _ -> false

let relational_sql_for ~view_name ~(view_frame : Core.Frame.t)
    ~(query_frame : Core.Frame.t) (strategy : Core.Derive.strategy) : string option =
  match strategy, view_frame, query_frame with
  | Core.Derive.Min_overlap, Core.Frame.Sliding { l = lx; h = hx }, Core.Frame.Sliding { l = ly; h = hy }
    when not (lx = ly && hx = hy) ->
    Some (Core.Sqlgen.minoa ~table:view_name ~lx ~hx ~ly ~hy `Disjunctive)
  | Core.Derive.Max_overlap, Core.Frame.Sliding { l = lx; h }, Core.Frame.Sliding { l = ly; h = hy }
    when hy = h && ly > lx && ly - lx <= lx + h ->
    Some (Core.Sqlgen.maxoa ~table:view_name ~lx ~h ~ly `Disjunctive)
  | _ -> None

(* ---- Matching ---- *)

let ieq a b = String.lowercase_ascii a = String.lowercase_ascii b
let same_cols a b = List.length a = List.length b && List.for_all2 ieq a b

type match_kind =
  | Exact_partition
  | Reduce_partition (* query has no PARTITION BY, view is partitioned *)

let match_view (qspec : Matview.seq_spec) (vspec : Matview.seq_spec) :
    match_kind option =
  if
    ieq qspec.Matview.source vspec.Matview.source
    && ieq qspec.Matview.order_col vspec.Matview.order_col
    && ieq qspec.Matview.value_col vspec.Matview.value_col
    && agg_compatible ~view:vspec.Matview.agg ~query:qspec.Matview.agg
  then
    if same_cols qspec.Matview.partition vspec.Matview.partition then
      Some Exact_partition
    else if qspec.Matview.partition = [] && vspec.Matview.partition <> [] then
      Some Reduce_partition
    else None
  else None

(* Partitioning reduction is only sound when concatenating the view's
   partitions in key order yields the query's global ordering, i.e. the
   order-column ranges of consecutive partitions do not interleave. *)
let concat_order_sound (state : Matview.state) =
  let rec go = function
    | a :: (b :: _ as rest) ->
      let la = a.Matview.base_rows in
      let lb = b.Matview.base_rows in
      (Array.length la = 0 || Array.length lb = 0
      || Value.compare
           (Row.get la.(Array.length la - 1) state.Matview.ocol)
           (Row.get lb.(0) state.Matview.ocol)
         <= 0)
      && go rest
    | _ -> true
  in
  go state.Matview.parts

(* ---- Proposal search ---- *)

let core_frame_of spec = spec.Matview.frame
let core_agg_of spec = Matview.core_agg spec.Matview.agg

let proposals (db : Database.t) (q : Ast.query) : (proposal * Matview.state * Matview.seq_spec) list =
  match Matview.recognize q with
  | None -> []
  | Some qspec ->
    Catalog.all_views (Database.catalog db)
    |> List.filter_map (fun (v : Catalog.view) ->
           if not v.Catalog.materialized then None
           else
             match Database.view_state db v.Catalog.view_name with
             | None -> None
             | Some state ->
               let vspec = state.Matview.spec in
               (match match_view qspec vspec with
                | None -> None
                | Some kind ->
                  let strategies =
                    Core.Derive.applicable_strategies
                      ~view_frame:(core_frame_of vspec)
                      ~view_agg:(core_agg_of vspec)
                      ~query_frame:(core_frame_of qspec)
                  in
                  (* certify each applicable strategy against the actual
                     materialized data (completeness facts included) and
                     keep the first that is proven derivable *)
                  let fact =
                    match state.Matview.parts with
                    | part :: _ ->
                      Some
                        (Rfview_analysis.Domain.Seqfact.of_seq part.Matview.seq)
                    | [] -> None
                  in
                  let certified =
                    List.filter_map
                      (fun s ->
                        let c =
                          Cert.certify ?fact ~view_frame:(core_frame_of vspec)
                            ~view_agg:(core_agg_of vspec)
                            ~query_frame:(core_frame_of qspec) s
                        in
                        if Cert.valid c then Some (s, c) else None)
                      strategies
                  in
                  (match certified with
                   | [] -> None
                   | (strategy, certificate) :: _ ->
                     let partition_reduced = kind = Reduce_partition in
                     if partition_reduced && not (concat_order_sound state) then None
                     else
                       Some
                         ( {
                             view_name = v.Catalog.view_name;
                             strategy;
                             partition_reduced;
                             relational_sql =
                               relational_sql_for ~view_name:v.Catalog.view_name
                                 ~view_frame:(core_frame_of vspec)
                                 ~query_frame:(core_frame_of qspec) strategy;
                             certificate;
                           },
                           state,
                           qspec ))))

(* Certificate candidates for every matching materialized view —
   including the rejected ones, which [proposals] filters out.  This is
   what [rfview analyze] prints: the full picture of why each candidate
   strategy is admitted or refused. *)
let certificates (db : Database.t) (q : Ast.query) : (string * Cert.t list) list =
  match Matview.recognize q with
  | None -> []
  | Some qspec ->
    Catalog.all_views (Database.catalog db)
    |> List.filter_map (fun (v : Catalog.view) ->
           if not v.Catalog.materialized then None
           else
             match Database.view_state db v.Catalog.view_name with
             | None -> None
             | Some state ->
               let vspec = state.Matview.spec in
               (match match_view qspec vspec with
                | None -> None
                | Some _ ->
                  let fact =
                    match state.Matview.parts with
                    | part :: _ ->
                      Some
                        (Rfview_analysis.Domain.Seqfact.of_seq part.Matview.seq)
                    | [] -> None
                  in
                  Some
                    ( v.Catalog.view_name,
                      Cert.candidates ?fact ~view_frame:(core_frame_of vspec)
                        ~view_agg:(core_agg_of vspec)
                        ~query_frame:(core_frame_of qspec) () )))

(* ---- Answering ---- *)

let window_value_for (qspec : Matview.seq_spec) (seq : Core.Seqdata.t) ~n ~k : Value.t =
  let float_value v = if Float.is_nan v then Value.Null else Value.Float v in
  match qspec.Matview.agg with
  | Aggregate.Sum | Aggregate.Min | Aggregate.Max -> float_value (Core.Seqdata.get seq k)
  | Aggregate.Count -> Value.Int (Core.Agg.count_at qspec.Matview.frame ~n ~k)
  | Aggregate.Avg ->
    let c = Core.Agg.count_at qspec.Matview.frame ~n ~k in
    if c = 0 then Value.Null else Value.Float (Core.Seqdata.get seq k /. float_of_int c)

(* Render the query result from derived per-partition sequences, laid out
   by the query's select items. *)
let render_answer (state : Matview.state) (qspec : Matview.seq_spec)
    (derived : (Matview.partition_state * Core.Seqdata.t) list) : Relation.t =
  let base_schema = state.Matview.base_schema in
  let item_cols =
    List.map
      (fun (src, _) -> Option.map (Schema.find base_schema) src)
      qspec.Matview.items
  in
  let schema =
    Schema.make
      (List.map
         (fun ((src, out_name), col) ->
           match col with
           | Some i -> Schema.column out_name (Schema.col base_schema i).Schema.ty
           | None ->
             let ty =
               match qspec.Matview.agg with
               | Aggregate.Count -> Dtype.Int
               | _ -> Dtype.Float
             in
           ignore src;
           Schema.column out_name ty)
         (List.combine qspec.Matview.items item_cols))
  in
  let rows = ref [] in
  List.iter
    (fun ((p : Matview.partition_state), seq) ->
      let n = Array.length p.Matview.base_rows in
      Array.iteri
        (fun i row ->
          let k = i + 1 in
          let values =
            List.map
              (fun col ->
                match col with
                | Some c -> Row.get row c
                | None -> window_value_for qspec seq ~n ~k)
              item_cols
          in
          rows := Array.of_list values :: !rows)
        p.Matview.base_rows)
    derived;
  Relation.of_array schema (Array.of_list (List.rev !rows))

(* Derive the query answer from the chosen view at the core level. *)
let answer_with (state : Matview.state) (qspec : Matview.seq_spec) (p : proposal) :
    Relation.t =
  let qframe = qspec.Matview.frame in
  if not p.partition_reduced then begin
    let derived =
      List.map
        (fun (part : Matview.partition_state) ->
          (part, Core.Derive.run p.strategy part.Matview.seq qframe))
        state.Matview.parts
    in
    render_answer state qspec derived
  end
  else begin
    (* merge the view partitions (partitioning reduction, §6.2), then
       derive the frame on the merged sequence *)
    let space = Core.Position.create [ 1 ] in
    ignore space;
    let reporting =
      {
        Core.Reporting.agg = Core.Seqdata.agg (List.hd state.Matview.parts).Matview.seq;
        frame = Core.Seqdata.frame (List.hd state.Matview.parts).Matview.seq;
        space = Core.Position.create [ 1 ];
        partitions =
          List.map
            (fun (part : Matview.partition_state) ->
              ( List.map Value.to_string part.Matview.pkey,
                part.Matview.seq ))
            state.Matview.parts;
      }
    in
    let merged = Core.Reporting.partitioning_reduction reporting ~group:(fun _ -> []) in
    let merged_seq =
      match Core.Reporting.partitions merged with
      | [ (_, s) ] -> s
      | _ -> assert false
    in
    let derived_seq = Core.Derive.derive merged_seq qframe in
    (* merged base rows in concatenation order *)
    let all_rows =
      Array.concat (List.map (fun p -> p.Matview.base_rows) state.Matview.parts)
    in
    let merged_part =
      {
        Matview.pkey = [];
        base_rows = all_rows;
        raw =
          Core.Seqdata.raw_of_array
            (Array.map (fun row -> Value.to_float (Row.get row state.Matview.vcol)) all_rows);
        seq = derived_seq;
      }
    in
    render_answer state qspec [ (merged_part, derived_seq) ]
  end

(* Try to answer the query from a materialized view; [None] when no view
   applies. *)
let answer (db : Database.t) (q : Ast.query) : (Relation.t * proposal) option =
  match proposals db q with
  | [] -> None
  | (p, state, qspec) :: _ -> Some (answer_with state qspec p, p)
