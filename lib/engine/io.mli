(** The VFS seam: every byte any on-disk artifact writes — the WAL
    ({!module:Wal}), checkpoints ({!module:Checkpoint}), replication
    feeds — moves through this module, so the storage layer itself is a
    first-class fault surface.

    Failures are typed: a failing operation raises {!Io_error} carrying
    the operation, the path and an {!error_kind} (ENOSPC or EIO), never
    a raw [Unix_error].  Four fault-injection sites cover the write
    path — [io.write], [io.fsync], [io.rename], [io.truncate] — and an
    armed site fires as an {!Io_error} whose kind is chosen with
    {!Sim.set_error_kind}, so the existing [--inject SITE:POLICY]
    grammar drives disk faults deterministically.

    {!Sim} is the simulated-disk backend: a global byte budget (writes
    past it land as short/torn prefixes and fail with ENOSPC), seeded
    bit flips on written buffers, and per-path tracking of the durable
    (fsynced) length so {!Sim.crash} can model a power cut that loses
    every unsynced byte.  All simulation features are inert by default:
    the production cost of the seam is one counter bump per operation. *)

type error_kind =
  | Enospc  (** the device is out of space *)
  | Eio  (** any other I/O failure *)

exception
  Io_error of {
    op : string;  (** "write", "fsync", "rename", "truncate", "open" *)
    path : string;
    kind : error_kind;
    detail : string;
  }

val describe_kind : error_kind -> string

(** {1 File handles} *)

type file

type mode =
  | Create_trunc  (** create/overwrite, write from the start *)
  | Append  (** existing file, append-only *)
  | Write  (** existing file, write at a seeked offset *)

(** @raise Io_error when the file cannot be opened. *)
val openf : string -> mode:mode -> file

val path_of : file -> string

(** Write the whole buffer at the current offset.
    @raise Io_error — on ENOSPC (a real one, or a {!Sim} budget
    exhaustion) a short prefix may have landed first, exactly like a
    torn write on a full disk. *)
val write : file -> string -> unit

(** Positioned write (no budget or flip simulation: this is the
    corruption-injection and repair primitive, it must place exactly
    the bytes asked for). *)
val pwrite : file -> at:int -> string -> unit

(** Durability barrier; marks the file's current length durable for
    {!Sim.crash}. *)
val fsync : file -> unit

val ftruncate : file -> int -> unit
val seek : file -> int -> unit

(** Current size (fstat). *)
val size : file -> int

val close : file -> unit

(** {1 Path operations} *)

(** @raise Io_error ([io.rename]). *)
val rename : string -> string -> unit

(** Best-effort unlink: never raises. *)
val remove : string -> unit

(** Best-effort directory fsync (not every platform allows it). *)
val fsync_dir : string -> unit

val exists : string -> bool

(** 0 when the file does not exist. *)
val file_size : string -> int

(** Whole-file read (no fault injection: the read side detects damage
    by CRC, it does not need synthetic failures to be exercised). *)
val read_file : string -> string

(** {1 The simulated disk} *)

module Sim : sig
  (** [Some n]: at most [n] more bytes of {!write} succeed; a write
      crossing the boundary lands its affordable prefix (a torn write)
      and fails with ENOSPC.  [None] (default): unlimited. *)
  val set_budget : int option -> unit

  val budget : unit -> int option

  (** The kind carried by faults injected at the [io.*] sites
      (default {!Eio}). *)
  val set_error_kind : error_kind -> unit

  (** Flip one seeded-random bit of each written buffer with
      probability [p] — silent media corruption, caught later only by
      CRC verification (the scrubber). *)
  val set_flip : p:float -> seed:int -> unit

  val clear_flip : unit -> unit

  (** Buffers corrupted since the last {!reset}. *)
  val flips : unit -> int

  (** Power cut: truncate every tracked file back to its last durable
      (fsynced) length — unsynced bytes are lost.  Handles held open
      across a crash are the caller's to abandon. *)
  val crash : unit -> unit

  (** Clear budget, flips, counters and durable-length tracking. *)
  val reset : unit -> unit
end
