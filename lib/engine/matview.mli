(** Materialized sequence views: recognition, state, incremental
    maintenance (paper §2.3) and rendering.

    A view qualifies as a {e sequence view} when its definition is

    {v SELECT col..., agg(value_col) OVER
         ([PARTITION BY pcols] ORDER BY order_col [ROWS frame]) [AS a]
       FROM base_table v}

    with simple column references, one ordering column and a cumulative
    or sliding ROWS frame.  The engine then keeps a per-partition core
    representation (raw data + complete sequence) and maintains it
    incrementally under base-table DML; other views get full refreshes.

    The value column must be numeric and NULL-free for the incremental
    path; otherwise {!init_state} raises and the engine falls back. *)

open Rfview_relalg
module Ast := Rfview_sql.Ast
module Core := Rfview_core

type seq_spec = {
  source : string;              (** base table *)
  partition : string list;      (** partition column names *)
  order_col : string;
  value_col : string;
  agg : Aggregate.kind;
  frame : Core.Frame.t;
  items : (string option * string) list;
      (** output layout: (source column, output name); [None] marks the
          window column *)
}

(** Recognize a sequence-view definition. *)
val recognize : Ast.query -> seq_spec option

(** Map a SQL aggregate to its carrier core aggregate (COUNT and AVG ride
    on the SUM sequence). *)
val core_agg : Aggregate.kind -> Core.Agg.t

type partition_state = {
  pkey : Value.t list;
  mutable base_rows : Row.t array;  (** base rows of the partition, ordered *)
  mutable raw : Core.Seqdata.raw;
  mutable seq : Core.Seqdata.t;
}

type state = {
  spec : seq_spec;
  base_schema : Schema.t;
  out_schema : Schema.t;
  pcols : int list;
  ocol : int;
  vcol : int;
  mutable parts : partition_state list;  (** sorted by partition key *)
}

exception Not_maintainable of string

(** Build the maintenance state from the base table's current contents.
    @raise Not_maintainable per the restrictions above. *)
val init_state : seq_spec -> base:Relation.t -> out_schema:Schema.t -> state

(** Deep copy of the mutable layers (for undo-log snapshots): immutable
    rows and sequence values are shared, partition records and their
    arrays are copied. *)
val copy_state : state -> state

(** Render the view contents from the state. *)
val render : state -> Relation.t

(** Incremental DML application (§2.3 rules under the hood).  Update of
    the ordering or partition column is handled as delete + insert.
    @raise Not_maintainable when a row cannot be located or the new value
    is unusable; the engine then falls back to a full refresh. *)

val apply_insert : state -> Row.t -> unit
val apply_delete : state -> Row.t -> unit
val apply_update : state -> old_row:Row.t -> new_row:Row.t -> unit

(** Batched application of one table's consolidated delta (multi-row
    §2.3): per partition, edits are merged into the ordered rows in one
    two-pointer pass and each contiguous run of dirty sequence positions
    is recomputed with a single pipelined span scan; positions outside
    every touched window copy their old value under the rank shift.  A
    partition at least half-dirty is recomputed outright.
    @raise Not_maintainable as for the per-row entry points. *)
val apply_batch :
  state ->
  inserts:Row.t list ->
  deletes:Row.t list ->
  updates:(Row.t * Row.t) list ->
  unit

(** Shared-scan batched maintenance.  Every sequence view of one
    scan-share class (same base table, partition columns and order
    column — certified statically by [Rfview_analysis.Share] and
    re-checked at runtime) keeps bit-identical ordered [base_rows] per
    partition, so the structural half of {!apply_batch} — delta
    grouping, claim matching, the two-pointer merge and the rank map —
    is view-independent.  {!shared_plan} computes it once against a
    representative (the head of the class); {!apply_shared} replays it
    into each member, leaving per view only value re-extraction and the
    dirty-span sequence recompute.  Results are bit-identical to running
    {!apply_batch} per view (the engine's differential validator
    asserts this whenever verification is on). *)

type shared_plan

(** Compute the class's shared structural merge.
    @raise Invalid_argument on an empty class or when the states
    disagree on the (base, partition, order) scan key;
    @raise Not_maintainable as {!apply_batch} would for every member
    (an edited row missing from the shared base structure). *)
val shared_plan :
  state list ->
  inserts:Row.t list ->
  deletes:Row.t list ->
  updates:(Row.t * Row.t) list ->
  shared_plan

(** Replay the shared merge into one member state.  Each member installs
    its own copies of the merged row arrays (no aliasing across states).
    @raise Not_maintainable when this member's partitions diverge
    structurally from the plan (broken class invariant); the engine then
    falls back to a full refresh of that member only. *)
val apply_shared : shared_plan -> state -> unit

(** Derived views (generalized IVM): immutable maintenance state for
    views beyond the sequence shape — the delta rules of
    {!Rfview_planner.Deriv} plus their source tables.  The engine
    installs one per view whose derivation succeeded under a valid
    {!Rfview_analysis.Ivmcert} certificate and replays it at each batch
    commit. *)
module Derived : sig
  module Deriv := Rfview_planner.Deriv

  type t

  val make : Deriv.t -> t

  (** Source base tables, lowercased. *)
  val sources : t -> string list

  val shape_name : t -> string
  val has_window : t -> bool

  (** Apply one consolidated batch delta to the view's contents,
      returning the new contents.
      @raise Deriv.Divergence when the delta disagrees with the
      materialized rows; the engine then falls back to full refresh. *)
  val apply_batch : t -> env:Deriv.env -> contents:Relation.t -> Relation.t
end
