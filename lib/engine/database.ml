(* The database facade: parse → bind → (rewrite) → plan → execute, plus
   DDL/DML with materialized-view maintenance.

   [window_mode] selects how reporting functions execute — the contrast of
   the paper's Table 1:
   - [`Native]: the built-in window operator ("existing reporting
     functionality inside the database engine");
   - [`Self_join]: rewrite every window function into the relational
     self-join simulation of Fig. 2 before planning. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Parser = Rfview_sql.Parser
module Pretty = Rfview_sql.Pretty
module P = Rfview_planner
module Verify = Rfview_analysis.Verify

exception Engine_error of string

let engine_error fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* A script statement failed: 1-based index and SQL text of the culprit,
   so multi-statement failures are locatable. *)
exception Script_error of { index : int; sql : string; cause : exn }

let () =
  Printexc.register_printer (function
    | Script_error { index; sql; cause } ->
      Some
        (Printf.sprintf "statement %d (%s): %s" index sql
           (Printexc.to_string cause))
    | _ -> None)

(* A durable database directory could not be brought back to a usable
   state (structural checkpoint corruption, a failing WAL replay). *)
exception Recovery_error of string

let recovery_error fmt = Format.kasprintf (fun s -> raise (Recovery_error s)) fmt

let () =
  Printexc.register_printer (function
    | Recovery_error m -> Some (Printf.sprintf "recovery error: %s" m)
    | _ -> None)

(* ---- Fault-injection sites (see Fault) ---- *)

let site_apply_insert = Fault.define "database.apply_insert"
let site_apply_delete = Fault.define "database.apply_delete"
let site_apply_update = Fault.define "database.apply_update"
let site_propagate = Fault.define "database.propagate_view"
let site_refresh = Fault.define "database.refresh_view"
let site_replay = Fault.define "recover.replay"

(* Between the checkpoint rename and the WAL reset: a crash here leaves
   a new checkpoint beside a stale log, which recovery must discard. *)
let site_install = Fault.define "checkpoint.install"

type window_mode =
  [ `Native
  | `Self_join
  ]

(* What happens when maintaining one materialized view fails mid
   statement:
   - [`Quarantine] (default): the view is marked stale and dropped from
     incremental maintenance; the statement succeeds; the next read of
     the view triggers a full refresh.
   - [`Abort]: the exception propagates and the whole statement rolls
     back. *)
type degradation =
  [ `Quarantine
  | `Abort
  ]

(* Exceptions the degradation policies may absorb.  Verification
   failures are bugs, not environmental faults — never absorb them. *)
let recoverable_exn = function
  | Verify.Not_preserved _ | Out_of_memory | Stack_overflow -> false
  | _ -> true

(* All tuning knobs in one record, taken at open time; [reconfigure]
   swaps the whole record. *)
type config = {
  window_mode : window_mode;
  window_strategy : Window.strategy;
  hash_join : bool;
  index_join : bool;
  degradation : degradation;
  share_scans : bool;
      (* drive all sequence views of a certified scan-share class from
         one shared partition iterator during batch maintenance *)
}

let default_config =
  {
    window_mode = `Native;
    window_strategy = Window.Incremental;
    hash_join = true;
    index_join = true;
    degradation = `Quarantine;
    share_scans = true;
  }

type view_index = {
  vi_view : string;
  vi_column : string;
  vi_kind : Index.kind;
  mutable vi_built : Index.t option;
}

(* Attached by [open_durable]/[recover]: the WAL writer for the database
   directory.  [epoch] matches the current checkpoint generation (0
   before the first checkpoint); [appended] counts records in the
   current log and drives [checkpoint_every]; [base_lsn] is the global
   record count the current log starts at (the checkpoint's lsn), so
   [base_lsn + appended] is the database's log sequence number. *)
type durability = {
  dir : string;
  mutable wal : Wal.writer;
  mutable epoch : int;
  mutable base_lsn : int;
  mutable appended : int;
  mutable checkpoint_every : int option;
  mutable checkpoint_bytes : int option;
  (* Disk-full degraded mode (see [check_degraded] below): while
     [degraded] is [Some reason] every write is rejected with
     [Degraded_error] and reads keep serving; a space probe runs every
     [probe_backoff]-th rejection and lifts the mode once it succeeds. *)
  mutable degraded : string option;
  mutable rejected : int;
  mutable probe_backoff : int;
  mutable probe_countdown : int;
  mutable pending_fresh : (int * int) option;
      (* (epoch, lsn) of a checkpoint that became durable but whose
         fresh WAL could not be installed: appending to the old-epoch
         log would silently lose those records at recovery (stale-epoch
         logs are discarded), so the probe must finish the install
         before the session leaves degraded mode *)
  mutable pending_truncate : int option;
      (* byte offset a failed commit could not be truncated back to: the
         rolled-back record is still on the log, and a later synced
         commit would make it durable — recovery would then replay a
         statement the session rejected.  The probe must chop it off
         before the session leaves degraded mode. *)
}

(* An open batch scope: the accumulated delta plus the undo log that
   spans the whole batch (each statement's scope is absorbed into it on
   success, so an aborted batch rolls everything back together). *)
type batch = {
  mutable b_delta : Delta.t;
  b_undo : Undo.t;
}

type result =
  | Relation of Relation.t
  | Done of string

(* ---- MVCC version store ----

   Every commit point (top-level statement success, batch commit,
   recovery) publishes an immutable, LSN-stamped version of the logical
   state.  Publication is pointer capture, never a deep copy: table row
   arrays are replaced wholesale by every mutation path
   ([Catalog.set_rows], fresh [Array.map]/[Array.append] results) and
   materialized-view contents are replaced by fresh [Relation.t] values
   ([Matview.render], [run_query]), so a captured pointer can never
   observe a later write.  Readers acquire versions under [mv_mu] from
   any domain; the single writer publishes under the same mutex.  The
   retained window keeps the last [mv_retain] versions acquirable;
   older versions survive exactly as long as an active snapshot pins
   them ([v_refs]). *)

type vtable = {
  vt_name : string;
  vt_schema : Schema.t;
  vt_rows : Row.t array; (* frozen: the array pointer at commit *)
  vt_indexes : (string * Index.kind) list; (* column, kind *)
}

type vview = {
  vv_name : string;
  vv_materialized : bool;
  vv_definition : Ast.query;
  vv_contents : Relation.t option; (* frozen rendering at commit *)
  vv_stale : bool;
}

type version = {
  v_lsn : int;
  v_tables : vtable list;
  v_views : vview list;
  v_view_indexes : (string * string * Index.kind) list; (* view, column, kind *)
  v_cfg : config;
  mutable v_refs : int; (* active snapshots; guarded by [mv_mu] *)
}

type mvcc = {
  mv_mu : Mutex.t;
  mutable mv_versions : version list; (* newest first *)
  mutable mv_retain : int; (* acquirable window size *)
  mutable mv_seq : int; (* commit counter: the LSN surrogate in memory *)
  mutable mv_dirty : bool; (* a mutation happened since the last publish *)
}

type t = {
  catalog : Catalog.t;
  view_states : (string, Matview.state) Hashtbl.t; (* incremental seq views *)
  derived_views : (string, Matview.Derived.t) Hashtbl.t;
      (* views maintained by derived delta plans (generalized IVM) *)
  view_indexes : (string, view_index) Hashtbl.t;    (* keyed by index name *)
  mutable cfg : config;
  mutable undo : Undo.t option; (* Some while a statement is executing *)
  mutable batch : batch option; (* Some while a batch scope is open *)
  mutable durable : durability option;
  mutable wal_pending : Wal.record list; (* this scope's records, reversed *)
  mvcc : mvcc;
}

let default_retain = 8

let mark_dirty db = db.mvcc.mv_dirty <- true

let capture_version db ~lsn : version =
  {
    v_lsn = lsn;
    v_tables =
      Catalog.all_tables db.catalog
      |> List.map (fun (tbl : Catalog.table) ->
             {
               vt_name = tbl.Catalog.table_name;
               vt_schema = tbl.Catalog.schema;
               vt_rows = tbl.Catalog.rows;
               vt_indexes =
                 List.map
                   (fun (i : Catalog.index_def) -> (i.Catalog.column, i.Catalog.kind))
                   tbl.Catalog.indexes;
             });
    v_views =
      Catalog.all_views db.catalog
      |> List.map (fun (v : Catalog.view) ->
             {
               vv_name = v.Catalog.view_name;
               vv_materialized = v.Catalog.materialized;
               vv_definition = v.Catalog.definition;
               vv_contents = v.Catalog.contents;
               vv_stale = v.Catalog.stale;
             });
    v_view_indexes =
      Hashtbl.fold
        (fun _ vi acc -> (vi.vi_view, vi.vi_column, vi.vi_kind) :: acc)
        db.view_indexes [];
    v_cfg = db.cfg;
    v_refs = 0;
  }

(* Drop versions past the acquirable window, except those an active
   snapshot still pins.  Caller holds [mv_mu]. *)
let sweep_versions mv =
  let rec keep i = function
    | [] -> []
    | v :: rest ->
      if i < mv.mv_retain || v.v_refs > 0 then v :: keep (i + 1) rest
      else keep (i + 1) rest
  in
  mv.mv_versions <- keep 0 mv.mv_versions

(* Publish the current state as a fresh version if anything changed
   since the last publish.  Called by the single writer at commit
   points only (never mid-scope).  A commit that appended no WAL
   record — a heal-on-read refresh — replaces the head version in
   place: same LSN, newer (logically equal) state. *)
let publish_version db =
  let mv = db.mvcc in
  if mv.mv_dirty && db.batch = None && db.undo = None then begin
    let tip =
      match db.durable with
      | Some d -> d.base_lsn + d.appended
      | None -> mv.mv_seq
    in
    let v = capture_version db ~lsn:tip in
    Mutex.lock mv.mv_mu;
    mv.mv_seq <- mv.mv_seq + 1;
    (match mv.mv_versions with
     | head :: rest when head.v_lsn = tip -> mv.mv_versions <- v :: rest
     | vs -> mv.mv_versions <- v :: vs);
    sweep_versions mv;
    mv.mv_dirty <- false;
    Mutex.unlock mv.mv_mu
  end

(* Throw away every published version and re-publish the current state;
   recovery and promotion call this once the real LSN is known (replay
   publishes under surrogate sequence numbers). *)
let reset_versions db =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  mv.mv_versions <- [];
  mv.mv_seq <- 0;
  Mutex.unlock mv.mv_mu;
  mv.mv_dirty <- true;
  publish_version db

let create ?(config = default_config) () =
  let db =
    {
      catalog = Catalog.create ();
      view_states = Hashtbl.create 8;
      derived_views = Hashtbl.create 8;
      view_indexes = Hashtbl.create 8;
      cfg = config;
      undo = None;
      batch = None;
      durable = None;
      wal_pending = [];
      mvcc =
        {
          mv_mu = Mutex.create ();
          mv_versions = [];
          mv_retain = default_retain;
          mv_seq = 0;
          mv_dirty = true;
        };
    }
  in
  (* version 0: the empty database is snapshottable from the start *)
  publish_version db;
  db

let reconfigure db config = db.cfg <- config
let config db = db.cfg

let key = String.lowercase_ascii

(* ---- The undo log ----

   Each mutation below first logs a restore action (an absolute snapshot
   of the object about to change) into the statement's undo log; see
   Undo.  [with_undo] brackets one statement: on success the log is
   dropped, on any exception it is replayed and the exception re-raised,
   so [exec] is all-or-nothing.  Nested statements (EXPLAIN wrapping,
   cache admission inside a query) join the enclosing statement's log. *)

let log_undo db restore =
  match db.undo with
  | Some u -> Undo.log u restore
  | None -> ()

(* ---- WAL commit protocol ----

   Mutations queue logical records on [wal_pending] as they execute
   (deltas carry the exact rows, DDL its SQL text).  The outermost
   [with_undo] flushes the queue to the WAL and fsyncs *inside* the undo
   scope: the statement is committed iff its records are durable.  A
   failing append/fsync truncates the partial record back off the log
   and rolls the whole statement back — disk and memory agree either
   way.  During recovery [durable] is [None], so replay re-queues
   nothing. *)

let wal_log db record = if db.durable <> None then db.wal_pending <- record :: db.wal_pending

let wal_log_stmt db (stmt : Ast.statement) =
  match stmt with
  | Ast.St_create_table _ | Ast.St_create_index _ | Ast.St_create_view _
  | Ast.St_drop_table _ | Ast.St_drop_view _ | Ast.St_refresh_view _ ->
    wal_log db (Wal.Statement (Pretty.statement stmt))
  | _ -> ()

(* ---- Disk-full degraded mode ----

   ENOSPC during a WAL append or a checkpoint must not corrupt state
   and must not kill the session: the failed write rolls back, the
   session enters a typed read-only mode (reads keep serving, every
   write raises [Degraded_error]), and a cheap space probe — run with
   exponential backoff, counted in rejected writes — lifts the mode
   once the disk has room again. *)

exception Degraded_error of { reason : string }

type health = Healthy | Degraded of { reason : string; rejected_writes : int }

let wal_path dir = Filename.concat dir "log.wal"

let max_probe_backoff = 64

let enter_degraded d reason =
  if d.degraded = None then begin
    d.degraded <- Some reason;
    d.rejected <- 0;
    d.probe_backoff <- 1;
    d.probe_countdown <- 1
  end

(* Can the disk take writes again?  A tiny write+fsync to a scratch
   file: cheap, and exercises the same failure surface as a commit. *)
let probe_space d =
  let path = Filename.concat d.dir ".space-probe" in
  match
    let f = Io.openf path ~mode:Io.Create_trunc in
    Fun.protect
      ~finally:(fun () -> Io.close f)
      (fun () ->
        Io.write f (String.make 64 'p');
        Io.fsync f)
  with
  | () ->
    Io.remove path;
    true
  | exception (Io.Io_error _ | Unix.Unix_error _) ->
    Io.remove path;
    false

(* Leaving degraded mode may have unfinished business: a rolled-back
   record that could not be truncated off the log, or a checkpoint that
   became durable while its fresh WAL never got installed.  Finish both
   first — otherwise recovery would replay a rejected statement, or
   silently drop everything appended since (the old-epoch log is
   discarded). *)
let lift_degraded d =
  (match d.pending_truncate with
   | Some pos ->
     Wal.truncate_back d.wal pos;
     d.pending_truncate <- None
   | None -> ());
  (match d.pending_fresh with
   | Some (epoch', lsn') ->
     Wal.close d.wal;
     d.wal <- Wal.create (wal_path d.dir) ~epoch:epoch';
     d.epoch <- epoch';
     d.base_lsn <- lsn';
     d.appended <- 0;
     d.pending_fresh <- None
   | None -> ());
  d.degraded <- None;
  d.rejected <- 0;
  d.probe_backoff <- 1;
  d.probe_countdown <- 1

(* Gate at the head of every write path.  No-op while healthy; while
   degraded, every call counts as a rejected write, and every
   [probe_backoff]-th rejection runs the space probe (backoff doubles
   up to [max_probe_backoff] while the disk stays full). *)
let check_degraded d =
  match d.degraded with
  | None -> ()
  | Some reason ->
    d.rejected <- d.rejected + 1;
    d.probe_countdown <- d.probe_countdown - 1;
    if d.probe_countdown <= 0 then begin
      if probe_space d then
        match lift_degraded d with
        | () -> ()
        | exception e ->
          (* the pending truncate / fresh-WAL install failed: stay
             degraded *)
          d.probe_backoff <- min (d.probe_backoff * 2) max_probe_backoff;
          d.probe_countdown <- d.probe_backoff;
          if recoverable_exn e then
            raise (Degraded_error { reason })
          else raise e
      else begin
        d.probe_backoff <- min (d.probe_backoff * 2) max_probe_backoff;
        d.probe_countdown <- d.probe_backoff;
        raise (Degraded_error { reason })
      end
    end
    else raise (Degraded_error { reason })

let health db =
  match db.durable with
  | Some d ->
    (match d.degraded with
     | Some reason -> Degraded { reason; rejected_writes = d.rejected }
     | None -> Healthy)
  | None -> Healthy

let is_enospc = function
  | Io.Io_error { kind = Io.Enospc; _ } -> true
  | Unix.Unix_error (Unix.ENOSPC, _, _) -> true
  | _ -> false

let flush_wal db =
  match db.durable with
  | Some d when db.wal_pending <> [] ->
    check_degraded d;
    let records = List.rev db.wal_pending in
    db.wal_pending <- [];
    let pos = Wal.position d.wal in
    (try
       List.iter (Wal.append d.wal) records;
       Wal.sync d.wal;
       d.appended <- d.appended + List.length records
     with e ->
       (try Wal.truncate_back d.wal pos
        with Wal.Truncate_error _ ->
          (* the rolled-back record is still on the log, and a later
             synced commit would make it durable: stop writing until
             the probe chops it off *)
          d.pending_truncate <- Some pos;
          enter_degraded d "WAL rollback failed: a rejected record is still on the log");
       if is_enospc e then begin
         enter_degraded d "WAL commit failed: disk full";
         raise (Degraded_error { reason = "WAL commit failed: disk full" })
       end;
       raise e)
  | _ -> db.wal_pending <- []

(* Forward reference to [checkpoint] for the auto-checkpoint hook. *)
let checkpoint_ref : (t -> unit) ref = ref (fun _ -> ())

(* A failed automatic checkpoint is degradation, not an error: the old
   checkpoint and the (longer) WAL still recover the same state. *)
let maybe_auto_checkpoint db =
  match db.durable with
  | Some d ->
    let by_count =
      match d.checkpoint_every with Some n -> d.appended >= n | None -> false
    in
    let by_bytes =
      (* accumulated WAL bytes, the compaction trigger: a handful of huge
         batch records should compact as eagerly as many small ones *)
      match d.checkpoint_bytes with
      | Some b -> d.appended > 0 && Wal.position d.wal >= b
      | None -> false
    in
    if by_count || by_bytes then
      (try !checkpoint_ref db with e when recoverable_exn e -> ())
  | None -> ()

let with_undo db f =
  match db.undo, db.batch with
  | Some _, _ -> f () (* nested: join the enclosing statement *)
  | None, Some b ->
    (* inside a batch: the statement gets its own scope so it stays
       individually atomic, but on success the scope folds into the
       batch's log and the WAL records stay queued for the batch's
       group commit (no flush, no sync, no checkpoint here) *)
    let u = Undo.create () in
    db.undo <- Some u;
    let mark = db.wal_pending in
    (match f () with
     | result ->
       db.undo <- None;
       Undo.absorb b.b_undo u;
       result
     | exception e ->
       db.undo <- None;
       db.wal_pending <- mark;
       Undo.rollback u;
       raise e)
  | None, None ->
    let u = Undo.create () in
    db.undo <- Some u;
    db.wal_pending <- [];
    (match
       let result = f () in
       flush_wal db;
       result
     with
     | result ->
       db.undo <- None;
       Undo.commit u;
       publish_version db;
       maybe_auto_checkpoint db;
       result
     | exception e ->
       db.undo <- None;
       db.wal_pending <- [];
       Undo.rollback u;
       (* rollback restored the state the head version captured *)
       db.mvcc.mv_dirty <- false;
       raise e)

(* Snapshot a table: its rows array plus the built caches of its
   secondary indexes. *)
let log_table db (tbl : Catalog.table) =
  mark_dirty db;
  let rows = tbl.Catalog.rows in
  let indexes = tbl.Catalog.indexes in
  let builts = List.map (fun (i : Catalog.index_def) -> (i, i.Catalog.built)) indexes in
  log_undo db (fun () ->
      tbl.Catalog.rows <- rows;
      tbl.Catalog.indexes <- indexes;
      List.iter (fun ((i : Catalog.index_def), b) -> i.Catalog.built <- b) builts)

(* Snapshot the built caches of every view index on [name]. *)
let log_view_index_caches db name =
  let saved =
    Hashtbl.fold
      (fun _ vi acc -> if key vi.vi_view = key name then (vi, vi.vi_built) :: acc else acc)
      db.view_indexes []
  in
  if saved <> [] then
    log_undo db (fun () -> List.iter (fun (vi, b) -> vi.vi_built <- b) saved)

(* Snapshot a materialized view: contents, quarantine flag, incremental
   maintenance state (deep-copied: maintenance mutates it in place;
   derived-plan states are immutable, so their binding suffices) and
   index caches. *)
let log_view db (v : Catalog.view) =
  mark_dirty db;
  let contents = v.Catalog.contents in
  let stale = v.Catalog.stale in
  let state =
    Option.map Matview.copy_state
      (Hashtbl.find_opt db.view_states (key v.Catalog.view_name))
  in
  let derived = Hashtbl.find_opt db.derived_views (key v.Catalog.view_name) in
  log_undo db (fun () ->
      v.Catalog.contents <- contents;
      v.Catalog.stale <- stale;
      (match state with
       | Some s -> Hashtbl.replace db.view_states (key v.Catalog.view_name) s
       | None -> Hashtbl.remove db.view_states (key v.Catalog.view_name));
      match derived with
      | Some d -> Hashtbl.replace db.derived_views (key v.Catalog.view_name) d
      | None -> Hashtbl.remove db.derived_views (key v.Catalog.view_name));
  log_view_index_caches db v.Catalog.view_name

(* ---- Catalog adapters ---- *)

(* Forward reference to [refresh_view_full], needed by the lazy
   refresh-on-read of quarantined views below. *)
let refresh_ref : (t -> Catalog.view -> unit) ref =
  ref (fun _ _ -> assert false)

(* Forward reference to [flush_delta] (defined after [propagate]):
   reading view contents mid-batch must first propagate the pending
   delta so no pre-batch result is ever served. *)
let flush_delta_ref : (t -> unit) ref = ref (fun _ -> ())

let view_contents db name =
  !flush_delta_ref db;
  match Catalog.find_view db.catalog name with
  | Some v when v.Catalog.materialized ->
    (* quarantined views heal on first read *)
    if v.Catalog.stale then !refresh_ref db v;
    (match v.Catalog.contents with
     | Some r -> Some r
     | None -> engine_error "materialized view %s has no contents" name)
  | _ -> None

let binder_catalog db : P.Binder.catalog =
  {
    P.Binder.resolve_table =
      (fun name ->
        match Catalog.find_table db.catalog name with
        | Some tbl -> Some tbl.Catalog.schema
        | None ->
          (match view_contents db name with
           | Some r -> Some (Relation.schema r)
           | None -> None));
    resolve_view =
      (fun name ->
        match Catalog.find_view db.catalog name with
        | Some v when not v.Catalog.materialized -> Some v.Catalog.definition
        | _ -> None);
  }

let view_index db ~view ~column =
  Hashtbl.fold
    (fun _ vi acc ->
      if acc <> None then acc
      else if key vi.vi_view = key view && key vi.vi_column = key column then begin
        match vi.vi_built with
        | Some b -> Some b
        | None ->
          (match view_contents db view with
           | None -> None
           | Some r ->
             (match Schema.find_opt (Relation.schema r) column with
              | None -> None
              | Some ci ->
                let b = Index.build vi.vi_kind (Relation.rows r) ~key_col:ci in
                vi.vi_built <- Some b;
                Some b))
      end
      else None)
    db.view_indexes None

let catalog_view db : P.Physical.catalog_view =
  {
    P.Physical.table_contents =
      (fun name ->
        match Catalog.find_table db.catalog name with
        | Some tbl -> Catalog.table_relation tbl
        | None ->
          (match view_contents db name with
           | Some r -> r
           | None -> engine_error "unknown relation %s" name));
    table_index =
      (fun ~table ~column ->
        match Catalog.table_index db.catalog ~table ~column with
        | Some idx -> Some idx
        | None -> view_index db ~view:table ~column);
  }

let invalidate_view_indexes db name =
  Hashtbl.iter
    (fun _ vi -> if key vi.vi_view = key name then vi.vi_built <- None)
    db.view_indexes

(* ---- Query execution ---- *)

let plan_query db (q : Ast.query) : P.Physical.t =
  let logical = P.Binder.bind_query (binder_catalog db) q in
  if Verify.enabled () then Verify.check_plan ~context:"bound plan" logical;
  let logical =
    match db.cfg.window_mode with
    | `Native -> logical
    | `Self_join -> P.Rewrite.window_to_self_join logical
  in
  let logical = P.Optimize.optimize logical in
  if Verify.enabled () then Verify.check_plan ~context:"optimized plan" logical;
  (* differential sanitizer (no-op unless Sanitize.enable installed it);
     its sub-plan executions must not consume injected-fault budget *)
  Fault.with_suspended (fun () ->
      P.Hooks.sanitize ~catalog:(catalog_view db) logical);
  let opts =
    {
      P.Physical.window_strategy = db.cfg.window_strategy;
      enable_hash_join = db.cfg.hash_join;
      enable_index_join = db.cfg.index_join;
    }
  in
  P.Physical.plan ~opts (catalog_view db) logical

let run_query db (q : Ast.query) : Relation.t =
  P.Physical.execute (catalog_view db) (plan_query db q)

(* ---- View maintenance ---- *)

let rec tables_of_query (q : Ast.query) : string list =
  tables_of_body q.Ast.body

and tables_of_body = function
  | Ast.Select s ->
    List.concat_map tables_of_ref s.Ast.from
  | Ast.Union { left; right; _ } -> tables_of_body left @ tables_of_body right

and tables_of_ref = function
  | Ast.Table { name; _ } -> [ name ]
  | Ast.Subquery { query; _ } -> tables_of_query query
  | Ast.Join { left; right; _ } -> tables_of_ref left @ tables_of_ref right

(* Attempt to install a derived delta-plan maintenance state for a view
   the sequence machinery does not cover (generalized IVM).  The
   derivation must succeed AND its independent incrementality
   certificate (Ivmcert) must be valid — the engine never trusts one
   without the other.  Under the self-join window mode a windowed plan
   is not installed: the rewritten refresh path and the native
   partition recompute could disagree bit-wise.  Returns whether a
   state was installed. *)
let try_derive db (v : Catalog.view) =
  match
    let logical = P.Binder.bind_query (binder_catalog db) v.Catalog.definition in
    match P.Deriv.derive logical with
    | Error _ -> None
    | Ok rules ->
      if
        not
          (Rfview_analysis.Ivmcert.valid
             (Rfview_analysis.Ivmcert.certify ~view:v.Catalog.view_name logical))
      then None
      else if P.Deriv.has_window rules && db.cfg.window_mode = `Self_join then
        None
      else Some (Matview.Derived.make rules)
  with
  | Some der ->
    Hashtbl.replace db.derived_views (key v.Catalog.view_name) der;
    true
  | None -> false
  | exception e when recoverable_exn e -> false

let refresh_view_full db (v : Catalog.view) =
  Fault.hit site_refresh;
  log_view db v;
  let contents = run_query db v.Catalog.definition in
  v.Catalog.contents <- Some contents;
  v.Catalog.stale <- false;
  invalidate_view_indexes db v.Catalog.view_name;
  (* (re)try to establish an incremental state: the §2.3 sequence
     machinery first, the derived delta plans for everything else *)
  Hashtbl.remove db.view_states (key v.Catalog.view_name);
  Hashtbl.remove db.derived_views (key v.Catalog.view_name);
  let seq_installed =
    match Matview.recognize v.Catalog.definition with
    | None -> false
    | Some spec ->
      (match Catalog.find_table db.catalog spec.Matview.source with
       | None -> false
       | Some tbl ->
         (try
            let state =
              Matview.init_state spec
                ~base:(Catalog.table_relation tbl)
                ~out_schema:(Relation.schema contents)
            in
            let rendered = Matview.render state in
            (* translation validation of the derivation rewrite: the
               incremental core representation must reproduce the view
               contents the full recomputation just produced *)
            Verify.check_view_maintenance ~view:v.Catalog.view_name
              ~context:"the incremental sequence state" ~incremental:rendered
              ~recomputed:contents;
            (* serve the state's rendering, so a refresh and incremental
               maintenance leave the same physical row order behind — this
               keeps batched maintenance (whose wide deltas fall back to
               this path) bit-identical to per-row maintenance *)
            v.Catalog.contents <- Some rendered;
            Hashtbl.replace db.view_states (key v.Catalog.view_name) state;
            true
          with Matview.Not_maintainable _ -> false))
  in
  if not seq_installed then ignore (try_derive db v)

let () = refresh_ref := refresh_view_full

type dml_change =
  | Rows_inserted of Row.t list
  | Rows_deleted of Row.t list
  | Rows_updated of (Row.t * Row.t) list (* old, new *)
  | Rows_batch of Delta.table_delta (* consolidated batch delta *)

(* Quarantine a view whose maintenance faulted mid statement: drop the
   (possibly half-applied) incremental state and mark the contents
   stale; the next read triggers a full refresh.  The base-table change
   stands — a quarantined view is late, never wrong. *)
let quarantine_view db (v : Catalog.view) =
  mark_dirty db;
  Hashtbl.remove db.view_states (key v.Catalog.view_name);
  Hashtbl.remove db.derived_views (key v.Catalog.view_name);
  v.Catalog.stale <- true;
  invalidate_view_indexes db v.Catalog.view_name

(* ---- Scan sharing (batch maintenance) ----

   Sequence views over the same base table whose live states agree on
   the resolved (partition columns, order column) scan key keep
   bit-identical ordered base structure, so one shared partition
   iterator can drive them all — the redundant re-scan that
   [Rfview_analysis.Share] flags as RF401.  Exactly like [try_derive],
   the mechanism is certificate-gated: the runtime keys must match AND
   the static sharing certificate over the view definitions must hold —
   the engine never trusts one without the other. *)
let shared_classes_for db ~table =
  if not db.cfg.share_scans then []
  else begin
    let candidates =
      List.filter_map
        (fun (v : Catalog.view) ->
          if
            v.Catalog.materialized
            && (not v.Catalog.stale)
            && not (Hashtbl.mem db.derived_views (key v.Catalog.view_name))
          then
            match Hashtbl.find_opt db.view_states (key v.Catalog.view_name) with
            | Some st when key st.Matview.spec.Matview.source = key table ->
              Some (v, st)
            | _ -> None
          else None)
        (Catalog.all_views db.catalog)
      (* the catalog is hashed: order by name so classes, their
         representative and the maintenance order are deterministic *)
      |> List.sort (fun ((a : Catalog.view), _) (b, _) ->
             compare (key a.Catalog.view_name) (key b.Catalog.view_name))
    in
    (* group by the runtime scan key, preserving catalog order *)
    let classes = ref [] in
    List.iter
      (fun ((_, st) as member) ->
        let k = (st.Matview.pcols, st.Matview.ocol) in
        match List.assoc_opt k !classes with
        | Some members -> members := member :: !members
        | None -> classes := !classes @ [ (k, ref [ member ]) ])
      candidates;
    List.filter_map
      (fun (_, members) ->
        let members = List.rev !members in
        if List.length members < 2 then None
        else
          (* the static certificate over the view definitions *)
          let specs =
            List.map
              (fun ((v : Catalog.view), _) ->
                Rfview_analysis.Share.scan_spec ~view:v.Catalog.view_name
                  v.Catalog.definition)
              members
          in
          let certified =
            List.for_all Option.is_some specs
            &&
            match List.filter_map Fun.id specs with
            | [] -> false
            | rep :: rest ->
              List.for_all (Rfview_analysis.Share.compatible rep) rest
          in
          if certified then Some members else None)
      !classes
  end

(* Propagate one base-table change to every materialized view that
   references the table: incrementally when a sequence-view state exists,
   by full refresh otherwise.  Views under derived delta-plan
   maintenance are skipped here — they are maintained once per change
   set with the full consolidated delta ([maintain_derived] below),
   because per-table propagation would double-count the dA |x| dB cross
   term of multi-table join deltas.  Already-quarantined views are
   skipped — they will catch up wholesale on their next read. *)
let propagate db ~table change =
  (* a delta at least as wide as the (post-change) base table gains
     nothing over recomputation: route it to the full-refresh path *)
  let wide =
    match change with
    | Rows_batch td ->
      Delta.weight td >= Array.length (Catalog.table db.catalog table).Catalog.rows
    | _ -> false
  in
  (* certificate-gated shared base scans: a consolidated batch delta
     drives all views of a certified scan-share class from ONE shared
     structural merge; everything else takes the per-view path below *)
  let shared_done = Hashtbl.create 4 in
  (match change with
   | Rows_batch td when not wide ->
     List.iter
       (fun members ->
         match
           Matview.shared_plan
             (List.map snd members)
             ~inserts:td.Delta.inserted ~deletes:td.Delta.deleted
             ~updates:td.Delta.updated
         with
         | exception Matview.Not_maintainable _ ->
           (* the shared structural merge is not applicable (e.g. an
              edited row is missing from the base structure): leave the
              whole class to the per-view path, which reaches the same
              verdict view by view *)
           ()
         | plan ->
           List.iter
             (fun ((v : Catalog.view), state) ->
               Hashtbl.replace shared_done (key v.Catalog.view_name) ();
               let maintain () =
                 Fault.hit site_propagate;
                 log_view db v;
                 try
                   let solo =
                     if Verify.enabled () then Some (Matview.copy_state state)
                     else None
                   in
                   Matview.apply_shared plan state;
                   let rendered = Matview.render state in
                   (match solo with
                    | Some s ->
                      (* differential validation: the shared scan must
                         land bit-identically where the per-view scan
                         lands, and both must agree with recomputation *)
                      Matview.apply_batch s ~inserts:td.Delta.inserted
                        ~deletes:td.Delta.deleted ~updates:td.Delta.updated;
                      P.Hooks.validate_shared_scan ~view:v.Catalog.view_name
                        ~shared:rendered ~per_view:(Matview.render s);
                      Verify.check_view_maintenance ~view:v.Catalog.view_name
                        ~context:"shared-scan batch maintenance"
                        ~incremental:rendered
                        ~recomputed:(run_query db v.Catalog.definition)
                    | None -> ());
                   v.Catalog.contents <- Some rendered;
                   invalidate_view_indexes db v.Catalog.view_name
                 with Matview.Not_maintainable _ -> refresh_view_full db v
               in
               match maintain () with
               | () -> ()
               | exception e
                 when db.cfg.degradation = `Quarantine && recoverable_exn e ->
                 quarantine_view db v)
             members)
       (shared_classes_for db ~table)
   | _ -> ());
  List.iter
    (fun (v : Catalog.view) ->
      if
        v.Catalog.materialized
        && (not v.Catalog.stale)
        && (not (Hashtbl.mem shared_done (key v.Catalog.view_name)))
        && (not (Hashtbl.mem db.derived_views (key v.Catalog.view_name)))
        && List.exists
             (fun t -> key t = key table)
             (tables_of_query v.Catalog.definition)
      then begin
        let maintain () =
          Fault.hit site_propagate;
          log_view db v;
          match
            if wide then None
            else Hashtbl.find_opt db.view_states (key v.Catalog.view_name)
          with
          | Some state ->
            (try
               (match change with
                | Rows_inserted rows -> List.iter (Matview.apply_insert state) rows
                | Rows_deleted rows -> List.iter (Matview.apply_delete state) rows
                | Rows_updated pairs ->
                  List.iter
                    (fun (old_row, new_row) ->
                      Matview.apply_update state ~old_row ~new_row)
                    pairs
                | Rows_batch td ->
                  Matview.apply_batch state ~inserts:td.Delta.inserted
                    ~deletes:td.Delta.deleted ~updates:td.Delta.updated);
               let rendered = Matview.render state in
               (* translation validation: incremental maintenance must agree
                  with recomputing the view definition from scratch *)
               if Verify.enabled () then
                 Verify.check_view_maintenance ~view:v.Catalog.view_name
                   ~context:"incremental sequence maintenance"
                   ~incremental:rendered
                   ~recomputed:(run_query db v.Catalog.definition);
               v.Catalog.contents <- Some rendered;
               invalidate_view_indexes db v.Catalog.view_name
             with Matview.Not_maintainable _ -> refresh_view_full db v)
          | None -> refresh_view_full db v
        in
        match maintain () with
        | () -> ()
        | exception e when db.cfg.degradation = `Quarantine && recoverable_exn e ->
          quarantine_view db v
      end)
    (Catalog.all_views db.catalog)

(* ---- Derived delta-plan maintenance ----

   Views under Planner.Deriv maintenance are updated once per change
   set, against the *full* consolidated delta: the join rule's cross
   term couples the per-table deltas, so per-table propagation would be
   wrong for multi-table views.  The evaluation environment routes
   sub-plan evaluation through the standard physical pipeline (checked
   and sanitized like any query plan) and reads deltas out of the
   consolidated batch delta. *)

let signed_of_td (td : Delta.table_delta) : (Row.t * int) list =
  List.map (fun r -> (r, 1)) td.Delta.inserted
  @ List.map (fun r -> (r, -1)) td.Delta.deleted
  @ List.concat_map (fun (o, n) -> [ (o, -1); (n, 1) ]) td.Delta.updated

let deriv_env db (d : Delta.t) : P.Deriv.env =
  {
    P.Deriv.delta_of =
      (fun table ->
        match Delta.find d table with
        | None -> []
        | Some td -> signed_of_td td);
    eval =
      (fun logical ->
        if Verify.enabled () then
          Verify.check_plan ~context:"derived maintenance sub-plan" logical;
        (* differential sanitizer coverage for the derived sub-plans,
           with injected-fault budget suspended as in [plan_query] *)
        Fault.with_suspended (fun () ->
            P.Hooks.sanitize ~catalog:(catalog_view db) logical);
        let opts =
          {
            P.Physical.window_strategy = db.cfg.window_strategy;
            enable_hash_join = db.cfg.hash_join;
            enable_index_join = db.cfg.index_join;
          }
        in
        P.Physical.execute (catalog_view db)
          (P.Physical.plan ~opts (catalog_view db) logical));
    window_strategy = db.cfg.window_strategy;
  }

let maintain_derived db (d : Delta.t) =
  if not (Delta.is_empty d) then
    List.iter
      (fun (v : Catalog.view) ->
        if v.Catalog.materialized && not v.Catalog.stale then
          match Hashtbl.find_opt db.derived_views (key v.Catalog.view_name) with
          | None -> ()
          | Some der ->
            let sources = Matview.Derived.sources der in
            let touched =
              List.exists (fun t -> Delta.find d t <> None) sources
            in
            if touched then begin
              let maintain () =
                Fault.hit site_propagate;
                log_view db v;
                (* a delta at least as wide as the sources gains nothing
                   over recomputation: route it to the refresh path *)
                let weight =
                  List.fold_left
                    (fun acc t ->
                      match Delta.find d t with
                      | Some td -> acc + Delta.weight td
                      | None -> acc)
                    0 sources
                in
                let size =
                  List.fold_left
                    (fun acc t ->
                      match Catalog.find_table db.catalog t with
                      | Some tbl -> acc + Array.length tbl.Catalog.rows
                      | None -> acc)
                    0 sources
                in
                match v.Catalog.contents with
                | Some contents when weight < size ->
                  (match
                     Matview.Derived.apply_batch der ~env:(deriv_env db d)
                       ~contents
                   with
                   | contents' ->
                     (* translation validation: the derived delta plan
                        must agree with recomputing the definition *)
                     if Verify.enabled () then
                       Verify.check_view_maintenance ~view:v.Catalog.view_name
                         ~context:"derived delta maintenance"
                         ~incremental:contents'
                         ~recomputed:(run_query db v.Catalog.definition);
                     v.Catalog.contents <- Some contents';
                     invalidate_view_indexes db v.Catalog.view_name
                   | exception P.Deriv.Divergence _ -> refresh_view_full db v)
                | _ -> refresh_view_full db v
              in
              match maintain () with
              | () -> ()
              | exception e
                when db.cfg.degradation = `Quarantine && recoverable_exn e ->
                quarantine_view db v
            end)
      (Catalog.all_views db.catalog)

(* The consolidated single-statement delta for the immediate
   (non-batch) path. *)
let delta_of_change ~table = function
  | Rows_inserted rows -> Delta.insert Delta.empty ~table rows
  | Rows_deleted rows -> Delta.delete Delta.empty ~table rows
  | Rows_updated pairs -> Delta.update Delta.empty ~table pairs
  | Rows_batch _ -> assert false (* batch deltas never reach this path *)

(* ---- Batch scopes ----

   Inside [with_batch] the DML apply functions record their change into
   the batch's delta instead of propagating immediately; [flush_delta]
   consolidates and propagates once per dependent view (and runs early
   whenever a read or a DDL statement needs fresh views mid-batch).  The
   batch's WAL records are framed as one [Wal.Batch] record and fsynced
   once — the group commit. *)

let record_or_propagate db ~table change =
  (* a DML statement that matched nothing must not touch the views at
     all — in batch mode [Delta.find] drops empty deltas, so the
     immediate path has to skip them too or the two modes would leave
     different physical view contents (render order) behind *)
  match change with
  | Rows_inserted [] | Rows_deleted [] | Rows_updated [] -> ()
  | _ ->
  match db.batch with
  | Some b ->
    let d = b.b_delta in
    log_undo db (fun () -> b.b_delta <- d);
    b.b_delta <-
      (match change with
       | Rows_inserted rows -> Delta.insert d ~table rows
       | Rows_deleted rows -> Delta.delete d ~table rows
       | Rows_updated pairs -> Delta.update d ~table pairs
       | Rows_batch _ -> assert false (* batches never nest into deltas *))
  | None ->
    propagate db ~table change;
    maintain_derived db (delta_of_change ~table change)

let flush_delta db =
  match db.batch with
  | None -> ()
  | Some b when Delta.is_empty b.b_delta -> ()
  | Some b ->
    let run () =
      let d = b.b_delta in
      log_undo db (fun () -> b.b_delta <- d);
      (* clear before propagating: queries issued by the propagation
         itself (view recomputation, verification) re-enter
         [view_contents] and must not flush again *)
      b.b_delta <- Delta.empty;
      List.iter
        (fun table ->
          match Delta.find d table with
          | Some td -> propagate db ~table (Rows_batch td)
          | None -> ())
        (Delta.tables d);
      (* derived views see the whole consolidated delta at once *)
      maintain_derived db d
    in
    (match db.undo with
     | Some _ -> run () (* mid-statement: join its scope *)
     | None ->
       (* between statements (batch commit, or a bare read): give the
          flush its own scope and fold it into the batch on success *)
       let u = Undo.create () in
       db.undo <- Some u;
       (match run () with
        | () ->
          db.undo <- None;
          Undo.absorb b.b_undo u
        | exception e ->
          db.undo <- None;
          Undo.rollback u;
          raise e))

let () = flush_delta_ref := flush_delta

let commit_batch db =
  flush_delta db;
  (match db.wal_pending with
   | [] | [ _ ] -> () (* zero/one record: keep the unwrapped framing *)
   | records -> db.wal_pending <- [ Wal.Batch (List.rev records) ]);
  flush_wal db

let with_batch db f =
  match db.batch, db.undo with
  | Some _, _ | _, Some _ -> f () (* nested or mid-statement: join *)
  | None, None ->
    let b = { b_delta = Delta.empty; b_undo = Undo.create () } in
    db.batch <- Some b;
    db.wal_pending <- [];
    (match
       let result = f () in
       commit_batch db;
       result
     with
     | result ->
       db.batch <- None;
       Undo.commit b.b_undo;
       publish_version db;
       maybe_auto_checkpoint db;
       result
     | exception e ->
       db.batch <- None;
       db.wal_pending <- [];
       Undo.rollback b.b_undo;
       db.mvcc.mv_dirty <- false;
       raise e)

(* ---- DML ---- *)

let const_scalar (e : Ast.expr) : Value.t =
  let bound = P.Binder.bind_scalar (Schema.make []) e in
  Expr.eval [||] bound

(* Coerce a value to a column's declared type where a lossless conversion
   exists (integer literals into FLOAT columns, ISO strings into DATE
   columns, ...); incompatible values are rejected. *)
let coerce_value ty (v : Value.t) : Value.t =
  match ty, v with
  | _, Value.Null -> Value.Null
  | Dtype.Float, Value.Int i -> Value.Float (float_of_int i)
  | Dtype.Int, Value.Float f when Float.is_integer f -> Value.Int (int_of_float f)
  | Dtype.Date, Value.String s ->
    (match Value.parse_date s with
     | Some d -> Value.Date d
     | None -> engine_error "invalid date value '%s'" s)
  | Dtype.Int, Value.Int _
  | Dtype.Float, Value.Float _
  | Dtype.Bool, Value.Bool _
  | Dtype.String, Value.String _
  | Dtype.Date, Value.Date _ -> v
  | ty, v ->
    engine_error "value %s is not compatible with type %s" (Value.to_string v)
      (Dtype.to_string ty)

(* Apply an insert delta: shared by [exec_insert] and WAL replay, so a
   replayed statement takes exactly the committed statement's path. *)
let insert_rows db ~table (new_rows : Row.t list) =
  let tbl = Catalog.table db.catalog table in
  log_table db tbl;
  Catalog.set_rows tbl (Array.append tbl.Catalog.rows (Array.of_list new_rows));
  Fault.hit site_apply_insert;
  wal_log db (Wal.Insert { table; rows = Array.of_list new_rows });
  record_or_propagate db ~table (Rows_inserted new_rows)

let exec_insert db ~table ~columns ~rows =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let arity = Schema.arity schema in
  let col_positions =
    if columns = [] then List.init arity Fun.id
    else
      List.map
        (fun c ->
          match Schema.find_opt schema c with
          | Some i -> i
          | None -> engine_error "table %s has no column %s" table c)
        columns
  in
  let new_rows =
    List.map
      (fun exprs ->
        if List.length exprs <> List.length col_positions then
          engine_error "INSERT arity mismatch for table %s" table;
        let row = Array.make arity Value.Null in
        List.iter2
          (fun pos e ->
            row.(pos) <- coerce_value (Schema.col schema pos).Schema.ty (const_scalar e))
          col_positions exprs;
        row)
      rows
  in
  insert_rows db ~table new_rows;
  Done (Printf.sprintf "INSERT %d" (List.length new_rows))

(* Shared apply steps for update/delete deltas (statement path and WAL
   replay).  [rows]/[kept] is the table's full new contents; [pairs]/
   [deleted] the delta that maintains dependent views and the log. *)
let update_rows db ~table ~rows ~pairs =
  let tbl = Catalog.table db.catalog table in
  log_table db tbl;
  Catalog.set_rows tbl rows;
  Fault.hit site_apply_update;
  wal_log db (Wal.Update { table; pairs = Array.of_list pairs });
  record_or_propagate db ~table (Rows_updated pairs)

let delete_rows db ~table ~kept ~deleted =
  let tbl = Catalog.table db.catalog table in
  log_table db tbl;
  Catalog.set_rows tbl kept;
  Fault.hit site_apply_delete;
  wal_log db (Wal.Delete { table; rows = Array.of_list deleted });
  record_or_propagate db ~table (Rows_deleted deleted)

let exec_update db ~table ~assignments ~where =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let pred =
    match where with
    | None -> Expr.Const (Value.Bool true)
    | Some w -> P.Binder.bind_scalar schema w
  in
  let assigns =
    List.map
      (fun (c, e) ->
        match Schema.find_opt schema c with
        | Some i -> (i, P.Binder.bind_scalar schema e)
        | None -> engine_error "table %s has no column %s" table c)
      assignments
  in
  let pairs = ref [] in
  let rows =
    Array.map
      (fun row ->
        if Expr.holds row pred then begin
          let fresh = Array.copy row in
          List.iter
            (fun (i, e) ->
              fresh.(i) <- coerce_value (Schema.col schema i).Schema.ty (Expr.eval row e))
            assigns;
          pairs := (row, fresh) :: !pairs;
          fresh
        end
        else row)
      tbl.Catalog.rows
  in
  update_rows db ~table ~rows ~pairs:(List.rev !pairs);
  Done (Printf.sprintf "UPDATE %d" (List.length !pairs))

let exec_delete db ~table ~where =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let pred =
    match where with
    | None -> Expr.Const (Value.Bool true)
    | Some w -> P.Binder.bind_scalar schema w
  in
  let deleted = ref [] in
  let kept = ref [] in
  Array.iter
    (fun row ->
      if Expr.holds row pred then deleted := row :: !deleted else kept := row :: !kept)
    tbl.Catalog.rows;
  delete_rows db ~table
    ~kept:(Array.of_list (List.rev !kept))
    ~deleted:(List.rev !deleted);
  Done (Printf.sprintf "DELETE %d" (List.length !deleted))

(* ---- Statements ---- *)

(* Execute one statement inside the enclosing undo scope; the public
   [exec_statement] below brackets this with [with_undo], so every entry
   is all-or-nothing. *)
let rec exec_statement_in_scope db (stmt : Ast.statement) : result =
  (* DDL that creates, refreshes or drops relations must observe views
     consistent with every earlier statement of the batch *)
  (match stmt with
   | Ast.St_create_view _ | Ast.St_refresh_view _ | Ast.St_drop_table _
   | Ast.St_drop_view _ -> flush_delta db
   | _ -> ());
  let result =
    match stmt with
  | Ast.St_query q -> Relation (run_query db q)
  | Ast.St_create_table { name; columns } ->
    let schema =
      Schema.make
        (List.map (fun c -> Schema.column c.Ast.col_name c.Ast.col_type) columns)
    in
    let _ = Catalog.create_table db.catalog ~name ~schema in
    mark_dirty db;
    log_undo db (fun () -> Catalog.forget_table db.catalog name);
    Done (Printf.sprintf "CREATE TABLE %s" name)
  | Ast.St_create_index { name; table; column; ordered } ->
    let kind = if ordered then Index.Ordered else Index.Hash in
    (match Catalog.find_table db.catalog table with
     | Some tbl ->
       log_table db tbl;
       Catalog.create_index db.catalog ~name ~table ~column ~kind;
       Done (Printf.sprintf "CREATE INDEX %s" name)
     | None ->
       if Catalog.find_view db.catalog table <> None then begin
         if Hashtbl.mem db.view_indexes (key name) then
           engine_error "index %s already exists" name;
         Hashtbl.replace db.view_indexes (key name)
           { vi_view = table; vi_column = column; vi_kind = kind; vi_built = None };
         mark_dirty db;
         log_undo db (fun () -> Hashtbl.remove db.view_indexes (key name));
         Done (Printf.sprintf "CREATE INDEX %s" name)
       end
       else engine_error "unknown relation %s" table)
  | Ast.St_create_view { name; materialized; query } ->
    let v = Catalog.create_view db.catalog ~name ~materialized ~definition:query in
    mark_dirty db;
    log_undo db (fun () ->
        Catalog.forget_view db.catalog name;
        Hashtbl.remove db.view_states (key name);
        Hashtbl.remove db.derived_views (key name));
    if materialized then refresh_view_full db v;
    Done (Printf.sprintf "CREATE %sVIEW %s" (if materialized then "MATERIALIZED " else "") name)
  | Ast.St_insert { table; columns; rows } -> exec_insert db ~table ~columns ~rows
  | Ast.St_update { table; assignments; where } -> exec_update db ~table ~assignments ~where
  | Ast.St_delete { table; where } -> exec_delete db ~table ~where
  | Ast.St_drop_table { name; if_exists } ->
    (match Catalog.find_table db.catalog name with
     | Some tbl -> log_undo db (fun () -> Catalog.restore_table db.catalog tbl)
     | None -> ());
    Catalog.drop_table db.catalog ~name ~if_exists;
    mark_dirty db;
    Done (Printf.sprintf "DROP TABLE %s" name)
  | Ast.St_drop_view { name; if_exists } ->
    (match Catalog.find_view db.catalog name with
     | Some v ->
       let state = Hashtbl.find_opt db.view_states (key name) in
       let derived = Hashtbl.find_opt db.derived_views (key name) in
       log_undo db (fun () ->
           Catalog.restore_view db.catalog v;
           (match state with
            | Some s -> Hashtbl.replace db.view_states (key name) s
            | None -> Hashtbl.remove db.view_states (key name));
           match derived with
           | Some d -> Hashtbl.replace db.derived_views (key name) d
           | None -> Hashtbl.remove db.derived_views (key name))
     | None -> ());
    Catalog.drop_view db.catalog ~name ~if_exists;
    Hashtbl.remove db.view_states (key name);
    Hashtbl.remove db.derived_views (key name);
    mark_dirty db;
    Done (Printf.sprintf "DROP VIEW %s" name)
  | Ast.St_refresh_view name ->
    refresh_view_full db (Catalog.view db.catalog name);
    Done (Printf.sprintf "REFRESH %s" name)
  | Ast.St_explain inner ->
    (match inner with
     | Ast.St_query q ->
       let logical = P.Binder.bind_query (binder_catalog db) q in
       let logical' =
         P.Optimize.optimize
           (match db.cfg.window_mode with
            | `Native -> logical
            | `Self_join -> P.Rewrite.window_to_self_join logical)
       in
       let opts =
         {
           P.Physical.window_strategy = db.cfg.window_strategy;
           enable_hash_join = db.cfg.hash_join;
           enable_index_join = db.cfg.index_join;
         }
       in
       let physical = P.Physical.plan ~opts (catalog_view db) logical' in
       Done
         (Printf.sprintf "== logical ==\n%s== optimized ==\n%s== physical ==\n%s"
            (P.Logical.to_string logical)
            (P.Logical.to_string logical')
            (P.Physical.to_string physical))
     | other -> exec_statement_in_scope db other)
  | Ast.St_explain_analyze inner ->
    (match inner with
     | Ast.St_query q ->
       let physical = plan_query db q in
       let _result, profile = P.Physical.execute_analyze (catalog_view db) physical in
       Done (P.Physical.render_profile profile)
     | other -> exec_statement_in_scope db other)
  in
  (* DDL/REFRESH reaches the log as SQL text; DML already queued its row
     deltas on the apply path (an EXPLAIN'd statement logs as itself via
     the recursive call — the EXPLAIN wrapper matches nothing here). *)
  wal_log_stmt db stmt;
  result

(* Every statement is atomic: on any exception the undo log restores
   tables, view contents, view states and index caches to the
   pre-statement snapshot before re-raising. *)
let exec_statement db stmt = with_undo db (fun () -> exec_statement_in_scope db stmt)

(* Bulk-load rows into a table, bypassing the SQL layer (used by the
   benchmark harness, CSV import and the workload generators).  The load
   is its own batch: dependent views are maintained once through the
   delta path (with the usual full-refresh fallback when the load is at
   least as wide as the table).  Atomic like a statement: a failed
   maintenance rolls the load back. *)
let load_table db ~table rows =
  with_batch db (fun () ->
      with_undo db (fun () ->
          let tbl = Catalog.table db.catalog table in
          log_table db tbl;
          Catalog.set_rows tbl (Array.append tbl.Catalog.rows rows);
          wal_log db (Wal.Load { table; rows });
          record_or_propagate db ~table (Rows_inserted (Array.to_list rows))))

(* ---- Entry points ---- *)

let exec db (sql : string) : result = exec_statement db (Parser.statement sql)

(* A script runs as one batch: statements stay individually atomic, the
   first failure stops the script (later statements never run), and the
   batch still commits what succeeded before re-raising — matching the
   per-statement semantics scripts always had, at one group commit. *)
let exec_script db (sql : string) : result list =
  let stmts = Parser.statements sql in
  let results = ref [] in
  let failure = ref None in
  with_batch db (fun () ->
      List.iteri
        (fun i stmt ->
          if Option.is_none !failure then
            match exec_statement db stmt with
            | r -> results := r :: !results
            | exception cause ->
              failure :=
                Some
                  (Script_error
                     { index = i + 1; sql = Pretty.statement stmt; cause }))
        stmts);
  match !failure with
  | Some e -> raise e
  | None -> List.rev !results

let query db (sql : string) : Relation.t =
  match exec db sql with
  | Relation r -> r
  | Done msg -> engine_error "expected a query, got: %s" msg

let explain db (sql : string) : string =
  match exec_statement db (Ast.St_explain (Parser.statement sql)) with
  | Done s -> s
  | Relation _ -> assert false

(* Does a view currently have an incremental maintenance state?  Either
   flavor counts: the §2.3 sequence machinery or a derived delta plan. *)
let is_incrementally_maintained db name =
  Hashtbl.mem db.view_states (key name)
  || Hashtbl.mem db.derived_views (key name)

(* Is the view maintained by a derived delta plan (generalized IVM)? *)
let is_derived_maintained db name = Hashtbl.mem db.derived_views (key name)

(* The derived maintenance state, for introspection (CLI, tests). *)
let derived_state db name =
  flush_delta db;
  Hashtbl.find_opt db.derived_views (key name)

(* Is the view quarantined (pending a lazy full refresh)? *)
let is_stale db name =
  match Catalog.find_view db.catalog name with
  | Some v -> v.Catalog.stale
  | None -> false

(* Deterministic order: the catalog hashtable iterates in an arbitrary
   order, and names are case-insensitive, so sort by folded name (exact
   name breaking ties). *)
let stale_views db =
  Catalog.all_views db.catalog
  |> List.filter_map (fun (v : Catalog.view) ->
         if v.Catalog.stale then Some v.Catalog.view_name else None)
  |> List.sort (fun a b ->
         match String.compare (key a) (key b) with
         | 0 -> String.compare a b
         | c -> c)

let catalog db = db.catalog

let view_state db name =
  (* an open batch may hold unpropagated deltas; observing the state
     must reflect them *)
  flush_delta db;
  Hashtbl.find_opt db.view_states (key name)

(* The certified scan-share classes a batch delta against [table] would
   drive through one shared partition iterator — the cert-iff-runtime
   introspection surface for the CLI and the test matrix. *)
let share_classes db ~table =
  flush_delta db;
  List.map
    (fun members ->
      List.map (fun ((v : Catalog.view), _) -> v.Catalog.view_name) members)
    (shared_classes_for db ~table)

(* ---- Durability: checkpoint, recovery, the database directory ----

   A durable database lives in a directory holding [checkpoint] (see
   Checkpoint) and [log.wal] (see Wal).  Opening recovers: restore the
   checkpoint, replay the WAL suffix, truncate a torn tail, attach the
   writer.  The epoch ties the two files together — a WAL whose epoch is
   below the checkpoint's is a stale log left by a crash between the
   checkpoint rename and the log reset, and is discarded (its records
   are already inside the checkpoint). *)

type recovery_report = {
  checkpoint_epoch : int option; (* [None]: no checkpoint existed *)
  replayed : int;                (* WAL records applied *)
  torn : bool;                   (* a torn tail was truncated *)
  quarantined : string list;     (* views restored stale (damaged state) *)
  swept : string list;           (* stale *.tmp files removed at open *)
}

let ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then recovery_error "%s: not a directory" dir
  end
  else
    try Sys.mkdir dir 0o755
    with Sys_error m -> recovery_error "cannot create %s: %s" dir m

(* ---- Replay ----

   DML records replay through the same apply functions the original
   statements used ([insert_rows]/[update_rows]/[delete_rows]), so view
   maintenance, fault sites and quarantine behave identically.  Deltas
   carry exact rows; pre-images are matched by value (first match), which
   is multiset-correct: rows equal by value are interchangeable. *)

let row_equal (a : Row.t) (b : Row.t) =
  Array.length a = Array.length b
  && (try
        Array.iter2 (fun x y -> if not (Value.equal x y) then raise Exit) a b;
        true
      with Exit -> false)

let replay_delete db ~table rows =
  let tbl = Catalog.table db.catalog table in
  let pending = ref (Array.to_list rows) in
  let kept = ref [] in
  Array.iter
    (fun row ->
      let rec take acc = function
        | [] -> None
        | r :: rest when row_equal r row -> Some (List.rev_append acc rest)
        | r :: rest -> take (r :: acc) rest
      in
      match take [] !pending with
      | Some rest -> pending := rest
      | None -> kept := row :: !kept)
    tbl.Catalog.rows;
  if !pending <> [] then engine_error "replay: DELETE pre-image missing from %s" table;
  delete_rows db ~table
    ~kept:(Array.of_list (List.rev !kept))
    ~deleted:(Array.to_list rows)

let replay_update db ~table pairs =
  let tbl = Catalog.table db.catalog table in
  let rows = Array.copy tbl.Catalog.rows in
  (* consume a distinct row per pair: equal pre-images evaluate the same
     assignments, so any matching is multiset-equivalent — but a row
     already rewritten must not satisfy a later pair's pre-image *)
  let used = Array.make (Array.length rows) false in
  Array.iter
    (fun (old_row, new_row) ->
      let rec find i =
        if i >= Array.length rows then
          engine_error "replay: UPDATE pre-image missing from %s" table
        else if (not used.(i)) && row_equal rows.(i) old_row then begin
          rows.(i) <- new_row;
          used.(i) <- true
        end
        else find (i + 1)
      in
      find 0)
    pairs;
  update_rows db ~table ~rows ~pairs:(Array.to_list pairs)

let rec replay_record db (record : Wal.record) =
  match record with
  | Wal.Begin _ -> ()
  | Wal.Statement sql -> ignore (exec db sql)
  | Wal.Insert { table; rows } ->
    ignore (with_undo db (fun () -> insert_rows db ~table (Array.to_list rows)))
  | Wal.Delete { table; rows } ->
    ignore (with_undo db (fun () -> replay_delete db ~table rows))
  | Wal.Update { table; pairs } ->
    ignore (with_undo db (fun () -> replay_update db ~table pairs))
  | Wal.Load { table; rows } -> load_table db ~table rows
  | Wal.Batch records ->
    (* a group-committed batch replays through the same batched delta
       path the original run used *)
    with_batch db (fun () -> List.iter (replay_record db) records)

(* ---- Recovery ---- *)

(* Rebuild a restored matview's incremental maintenance state from the
   restored base table, cross-checked against the restored contents; a
   view outside the sequence shape re-derives its delta plan instead
   (the CRC-validated contents stay authoritative either way).
   Returns false when no state could be established. *)
let rebuild_state db (view : Catalog.view) =
  match Matview.recognize view.Catalog.definition, view.Catalog.contents with
  | Some spec, Some contents ->
    (match Catalog.find_table db.catalog spec.Matview.source with
     | None -> false
     | Some tbl ->
       (try
          let state =
            Matview.init_state spec
              ~base:(Catalog.table_relation tbl)
              ~out_schema:(Relation.schema contents)
          in
          if Relation.equal_bag contents (Matview.render state) then begin
            Hashtbl.replace db.view_states (key view.Catalog.view_name) state;
            true
          end
          else false
        with Matview.Not_maintainable _ -> false))
  | None, Some _ -> try_derive db view
  | _ -> false

(* Restore a checkpoint snapshot into a fresh database: tables, then
   views with their materialized state, then index DDL.  [quarantine]
   marks a view stale and records its name; shared by directory
   recovery and replica bootstrap (which restores from feed bytes). *)
let restore_snapshot_into db ~quarantine (snap : Checkpoint.snapshot) =
  List.iter
    (fun (t : Checkpoint.table_snap) ->
      let tbl =
        Catalog.create_table db.catalog ~name:t.Checkpoint.t_name
          ~schema:t.Checkpoint.t_schema
      in
      Catalog.set_rows tbl t.Checkpoint.t_rows)
    snap.Checkpoint.tables;
  List.iter
    (fun (v : Checkpoint.view_entry) ->
      let definition =
        try Parser.query v.Checkpoint.v_sql
        with e ->
          recovery_error "checkpoint: view %s: unreadable definition (%s)"
            v.Checkpoint.v_name (Printexc.to_string e)
      in
      let view =
        Catalog.create_view db.catalog ~name:v.Checkpoint.v_name
          ~materialized:v.Checkpoint.v_materialized ~definition
      in
      if v.Checkpoint.v_materialized then
        match v.Checkpoint.v_state with
        | `Snap
            {
              Checkpoint.s_stale;
              s_contents = Some contents;
              s_incremental;
            } ->
          view.Catalog.contents <- Some contents;
          view.Catalog.stale <- s_stale;
          if s_stale then quarantine ~already:true view
          else if s_incremental then
            (* the CRC-validated contents are authoritative; when the
               rebuilt incremental state cannot be proven to reproduce
               them (e.g. float drift between incremental and from-
               scratch summation), serve the contents without a state —
               the next DML falls back to a full refresh *)
            ignore (rebuild_state db view)
        | `Snap { Checkpoint.s_contents = None; _ } | `Damaged | `None ->
          (* damaged or missing state: restore the definition only and
             let the first read heal it by full refresh *)
          quarantine ~already:false view)
    snap.Checkpoint.views;
  List.iter
    (fun ddl ->
      try ignore (exec db ddl)
      with e ->
        recovery_error "checkpoint: replaying %S: %s" ddl (Printexc.to_string e))
    snap.Checkpoint.index_ddl

let restore_snapshot ?config (snap : Checkpoint.snapshot) =
  let db = create ?config () in
  let quarantined = ref [] in
  let quarantine ~already (v : Catalog.view) =
    if not already then v.Catalog.stale <- true;
    quarantined := v.Catalog.view_name :: !quarantined
  in
  restore_snapshot_into db ~quarantine snap;
  reset_versions db;
  (db, List.sort_uniq String.compare !quarantined)

(* A crash between writing [foo.tmp] and renaming it over [foo] leaves
   the temp file behind; nothing ever reads one (installs are
   rename-atomic), so sweep them at open instead of letting them
   accumulate forever. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".tmp")
    |> List.sort String.compare
    |> List.filter_map (fun e ->
           let path = Filename.concat dir e in
           if Sys.is_directory path then None
           else begin
             Io.remove path;
             Some path
           end)
  | exception Sys_error _ -> []

let recover ?config dir =
  ensure_dir dir;
  let swept = sweep_tmp dir in
  let db = create ?config () in
  let quarantined = ref [] in
  let quarantine ~already (v : Catalog.view) =
    if not already then v.Catalog.stale <- true;
    quarantined := v.Catalog.view_name :: !quarantined
  in
  let snap =
    try Checkpoint.read ~dir with Checkpoint.Corrupt m -> recovery_error "%s" m
  in
  (match snap with
   | None -> ()
   | Some snap -> restore_snapshot_into db ~quarantine snap);
  let ckpt_epoch = match snap with None -> 0 | Some s -> s.Checkpoint.epoch in
  let ckpt_lsn = match snap with None -> 0 | Some s -> s.Checkpoint.lsn in
  let wpath = wal_path dir in
  let replayed = ref 0 in
  let torn = ref false in
  let need_fresh = ref true in
  if Sys.file_exists wpath then begin
    let scan = try Wal.scan wpath with Wal.Wal_error m -> recovery_error "%s" m in
    if scan.Wal.epoch < ckpt_epoch then
      (* stale log from before the checkpoint: everything in it is
         already inside the snapshot — discard, install a fresh log *)
      need_fresh := true
    else if scan.Wal.epoch > ckpt_epoch then
      recovery_error "%s: log epoch %d is ahead of checkpoint epoch %d" wpath
        scan.Wal.epoch ckpt_epoch
    else begin
      need_fresh := false;
      torn := scan.Wal.torn;
      List.iteri
        (fun i record ->
          try
            Fault.hit site_replay;
            replay_record db record
          with e ->
            recovery_error "%s: record %d (%s): %s" wpath (i + 1)
              (Wal.describe record) (Printexc.to_string e))
        scan.Wal.records;
      replayed := List.length scan.Wal.records;
      if scan.Wal.torn then begin
        try Wal.truncate wpath scan.Wal.valid_bytes
        with e ->
          recovery_error "%s: truncating torn tail: %s" wpath (Printexc.to_string e)
      end
    end
  end;
  let wal =
    if !need_fresh then Wal.create wpath ~epoch:ckpt_epoch else Wal.open_append wpath
  in
  db.durable <-
    Some
      {
        dir;
        wal;
        epoch = ckpt_epoch;
        base_lsn = ckpt_lsn;
        appended = !replayed;
        checkpoint_every = None;
        checkpoint_bytes = None;
        degraded = None;
        rejected = 0;
        probe_backoff = 1;
        probe_countdown = 1;
        pending_fresh = None;
        pending_truncate = None;
      };
  let report =
    {
      checkpoint_epoch = Option.map (fun (s : Checkpoint.snapshot) -> s.Checkpoint.epoch) snap;
      replayed = !replayed;
      torn = !torn;
      quarantined = List.sort_uniq String.compare (List.rev !quarantined);
      swept;
    }
  in
  (* replay published versions under surrogate sequence numbers; now
     that the directory is attached, re-publish at the real LSN *)
  reset_versions db;
  (db, report)

let open_durable ?config dir = fst (recover ?config dir)

(* ---- Checkpoint ---- *)

let checkpoint db =
  if db.batch <> None then engine_error "checkpoint: a batch is open";
  match db.durable with
  | None -> engine_error "checkpoint: database has no directory (open it with open_durable)"
  | Some d ->
    check_degraded d;
    let epoch' = d.epoch + 1 in
    let by_name name_of a b = String.compare (key (name_of a)) (key (name_of b)) in
    let tables =
      Catalog.all_tables db.catalog
      |> List.sort (by_name (fun (t : Catalog.table) -> t.Catalog.table_name))
      |> List.map (fun (t : Catalog.table) ->
             {
               Checkpoint.t_name = t.Catalog.table_name;
               t_schema = t.Catalog.schema;
               t_rows = t.Catalog.rows;
             })
    in
    let index_ddl =
      let table_indexes =
        Catalog.all_tables db.catalog
        |> List.sort (by_name (fun (t : Catalog.table) -> t.Catalog.table_name))
        |> List.concat_map (fun (t : Catalog.table) ->
               t.Catalog.indexes
               |> List.sort (by_name (fun (i : Catalog.index_def) -> i.Catalog.index_name))
               |> List.map (fun (i : Catalog.index_def) ->
                      Pretty.statement
                        (Ast.St_create_index
                           {
                             name = i.Catalog.index_name;
                             table = t.Catalog.table_name;
                             column = i.Catalog.column;
                             ordered = i.Catalog.kind = Index.Ordered;
                           })))
      in
      let view_indexes =
        Hashtbl.fold (fun name vi acc -> (name, vi) :: acc) db.view_indexes []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, vi) ->
               Pretty.statement
                 (Ast.St_create_index
                    {
                      name;
                      table = vi.vi_view;
                      column = vi.vi_column;
                      ordered = vi.vi_kind = Index.Ordered;
                    }))
      in
      table_indexes @ view_indexes
    in
    let views =
      Catalog.all_views db.catalog
      |> List.sort (by_name (fun (v : Catalog.view) -> v.Catalog.view_name))
      |> List.map (fun (v : Catalog.view) ->
             {
               Checkpoint.v_name = v.Catalog.view_name;
               v_materialized = v.Catalog.materialized;
               v_sql = Pretty.query v.Catalog.definition;
               v_state =
                 (if not v.Catalog.materialized then `None
                  else
                    `Snap
                      {
                        Checkpoint.s_stale = v.Catalog.stale;
                        s_contents = v.Catalog.contents;
                        s_incremental =
                          Hashtbl.mem db.view_states (key v.Catalog.view_name)
                          || Hashtbl.mem db.derived_views
                               (key v.Catalog.view_name);
                      });
             })
    in
    let lsn = d.base_lsn + d.appended in
    (try Checkpoint.write ~dir:d.dir ~lsn ~epoch:epoch' ~tables ~index_ddl ~views
     with e when is_enospc e ->
       (* the tmp file is already removed; the old checkpoint + WAL are
          intact, but the disk is full: stop taking writes *)
       enter_degraded d "checkpoint failed: disk full";
       raise (Degraded_error { reason = "checkpoint failed: disk full" }));
    (* The snapshot is durable: install a fresh log for the new epoch.
       From here on a failure is dangerous, not just inconvenient —
       appending to the old-epoch log would be silently discarded at
       recovery (its epoch is behind the new checkpoint's).  Any
       failure therefore enters degraded mode carrying the pending
       install, which the space probe finishes before lifting it. *)
    (try
       Fault.hit site_install;
       let old = d.wal in
       let wal = Wal.create (wal_path d.dir) ~epoch:epoch' in
       (try Wal.close old with _ -> ());
       d.wal <- wal;
       d.epoch <- epoch';
       d.base_lsn <- lsn;
       d.appended <- 0
     with
     | Fault.Injected _ as e ->
       (* a bare armed [checkpoint.install] simulates a crash here; the
          harness closes and recovers, which handles the stale log *)
       raise e
     | e when recoverable_exn e ->
       let reason =
         Printf.sprintf "fresh WAL install failed after checkpoint: %s"
           (Printexc.to_string e)
       in
       enter_degraded d reason;
       d.pending_fresh <- Some (epoch', lsn);
       raise (Degraded_error { reason }))

let () = checkpoint_ref := checkpoint

let set_checkpoint_every db n =
  match db.durable with
  | Some d -> d.checkpoint_every <- n
  | None -> ()

let set_checkpoint_bytes db n =
  match db.durable with
  | Some d -> d.checkpoint_bytes <- n
  | None -> ()

let durable_dir db = Option.map (fun d -> d.dir) db.durable

let epoch db = match db.durable with Some d -> d.epoch | None -> 0

(* ---- Replication support ----

   The log sequence number is the global count of top-level WAL records
   since the database was created; it survives checkpoints (the
   checkpoint header carries it) and orders every shipped record. *)

let lsn db =
  match db.durable with
  | Some d -> d.base_lsn + d.appended
  | None -> 0

let in_batch db = db.batch <> None

(* Replay one WAL record through the regular apply path.  Replicas call
   this on shipped records; with no [durable] attached nothing is
   re-logged, so application is pure state transition. *)
let apply_record db record = replay_record db record

(* A textual dump of the logical database state: table and view rows in
   sorted order, plus quarantine flags.  Two databases with equal
   fingerprints answer every query identically.  Rows are sorted before
   rendering because physical order is not logical state: a replica
   bootstrapped from a checkpoint may rebuild a view by full refresh
   where the primary maintained it incrementally — same bag of rows,
   different order.  Likewise excludes whether an *incremental
   maintenance state* is present at all. *)
let fingerprint_parts ~(tables : (string * Relation.t) list)
    ~(views : (string * bool * Relation.t option) list) : string =
  let buf = Buffer.create 1024 in
  let render r = Buffer.add_string buf (Relation.render (Relation.sorted_by_all r)) in
  List.sort (fun (a, _) (b, _) -> compare a b) tables
  |> List.iter (fun (name, r) ->
         Buffer.add_string buf (Printf.sprintf "table %s\n" name);
         render r);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) views
  |> List.iter (fun (name, stale, contents) ->
         Buffer.add_string buf (Printf.sprintf "view %s stale=%b\n" name stale);
         match contents with
         | Some r -> render r
         | None -> ());
  Buffer.contents buf

let fingerprint db : string =
  fingerprint_parts
    ~tables:
      (List.map
         (fun (tbl : Catalog.table) ->
           (tbl.Catalog.table_name, Catalog.table_relation tbl))
         (Catalog.all_tables db.catalog))
    ~views:
      (List.map
         (fun (v : Catalog.view) ->
           (v.Catalog.view_name, v.Catalog.stale, v.Catalog.contents))
         (Catalog.all_views db.catalog))

(* ---- MVCC snapshots: acquisition and the frozen read path ----

   A snapshot wraps one published version.  Queries against it run the
   same parse → bind → rewrite → optimize → plan → execute pipeline as
   the live path, but resolve every relation against the version's
   frozen pointers, so they can run on any domain while the single
   writer keeps committing.  Two departures from [plan_query], both
   deliberate: the differential sanitizer hook is skipped (it executes
   against a process-global mutable hook and is not domain-safe), and a
   quarantined view's heal is snapshot-local — computed from the frozen
   base tables, memoized inside the snapshot, never written back. *)

type snapshot = {
  sn_db : t; (* release bookkeeping only: never read on the query path *)
  sn_version : version;
  sn_mu : Mutex.t; (* guards the two memo tables below *)
  sn_heal : (string, Relation.t) Hashtbl.t; (* stale matviews, on demand *)
  sn_index_memo : (string, Index.t option) Hashtbl.t; (* "rel\tcol" *)
  mutable sn_released : bool; (* guarded by [sn_db.mvcc.mv_mu] *)
}

let snap_locked sn f =
  Mutex.lock sn.sn_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sn.sn_mu) f

let snap_find_table sn name =
  List.find_opt (fun vt -> key vt.vt_name = key name) sn.sn_version.v_tables

let snap_find_view sn name =
  List.find_opt (fun vv -> key vv.vv_name = key name) sn.sn_version.v_views

let rec snap_view_contents sn name : Relation.t option =
  match snap_find_view sn name with
  | Some vv when vv.vv_materialized ->
    if vv.vv_stale then begin
      match snap_locked sn (fun () -> Hashtbl.find_opt sn.sn_heal (key name)) with
      | Some r -> Some r
      | None ->
        (* recompute from the frozen tables outside the lock (heals can
           nest); racing domains compute equal relations, first one in
           wins *)
        let r = snap_run_query sn vv.vv_definition in
        Some
          (snap_locked sn (fun () ->
               match Hashtbl.find_opt sn.sn_heal (key name) with
               | Some r' -> r'
               | None ->
                 Hashtbl.replace sn.sn_heal (key name) r;
                 r))
    end
    else (
      match vv.vv_contents with
      | Some r -> Some r
      | None -> engine_error "materialized view %s has no contents" name)
  | _ -> None

and snap_binder_catalog sn : P.Binder.catalog =
  {
    P.Binder.resolve_table =
      (fun name ->
        match snap_find_table sn name with
        | Some vt -> Some vt.vt_schema
        | None ->
          (match snap_view_contents sn name with
           | Some r -> Some (Relation.schema r)
           | None -> None));
    resolve_view =
      (fun name ->
        match snap_find_view sn name with
        | Some vv when not vv.vv_materialized -> Some vv.vv_definition
        | _ -> None);
  }

(* Lazily build (and memoize) the index the live path would have: a
   secondary index declared on a frozen table, or a view index from the
   version's registry, keyed to the frozen contents. *)
and snap_index sn ~relname ~column : Index.t option =
  let memo_key = key relname ^ "\t" ^ key column in
  match snap_locked sn (fun () -> Hashtbl.find_opt sn.sn_index_memo memo_key) with
  | Some cached -> cached
  | None ->
    let built =
      match snap_find_table sn relname with
      | Some vt ->
        (match
           List.find_opt (fun (col, _) -> key col = key column) vt.vt_indexes
         with
         | None -> None
         | Some (_, kind) ->
           (match Schema.find_opt vt.vt_schema column with
            | None -> None
            | Some ci -> Some (Index.build kind vt.vt_rows ~key_col:ci)))
      | None ->
        (match
           List.find_opt
             (fun (view, col, _) -> key view = key relname && key col = key column)
             sn.sn_version.v_view_indexes
         with
         | None -> None
         | Some (_, _, kind) ->
           (match snap_view_contents sn relname with
            | None -> None
            | Some r ->
              (match Schema.find_opt (Relation.schema r) column with
               | None -> None
               | Some ci -> Some (Index.build kind (Relation.rows r) ~key_col:ci))))
    in
    snap_locked sn (fun () ->
        match Hashtbl.find_opt sn.sn_index_memo memo_key with
        | Some cached -> cached
        | None ->
          Hashtbl.replace sn.sn_index_memo memo_key built;
          built)

and snap_catalog_view sn : P.Physical.catalog_view =
  {
    P.Physical.table_contents =
      (fun name ->
        match snap_find_table sn name with
        | Some vt -> Relation.of_array vt.vt_schema vt.vt_rows
        | None ->
          (match snap_view_contents sn name with
           | Some r -> r
           | None -> engine_error "unknown relation %s" name));
    table_index = (fun ~table ~column -> snap_index sn ~relname:table ~column);
  }

and snap_plan_query sn (q : Ast.query) : P.Physical.t =
  let cfg = sn.sn_version.v_cfg in
  let logical = P.Binder.bind_query (snap_binder_catalog sn) q in
  if Verify.enabled () then Verify.check_plan ~context:"bound plan" logical;
  let logical =
    match cfg.window_mode with
    | `Native -> logical
    | `Self_join -> P.Rewrite.window_to_self_join logical
  in
  let logical = P.Optimize.optimize logical in
  if Verify.enabled () then Verify.check_plan ~context:"optimized plan" logical;
  let opts =
    {
      P.Physical.window_strategy = cfg.window_strategy;
      enable_hash_join = cfg.hash_join;
      enable_index_join = cfg.index_join;
    }
  in
  P.Physical.plan ~opts (snap_catalog_view sn) logical

and snap_run_query sn (q : Ast.query) : Relation.t =
  P.Physical.execute (snap_catalog_view sn) (snap_plan_query sn q)

let snap_check_live sn =
  if sn.sn_released then engine_error "snapshot is closed"

let make_snapshot db v =
  {
    sn_db = db;
    sn_version = v;
    sn_mu = Mutex.create ();
    sn_heal = Hashtbl.create 4;
    sn_index_memo = Hashtbl.create 4;
    sn_released = false;
  }

let snapshot db =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  match mv.mv_versions with
  | [] ->
    Mutex.unlock mv.mv_mu;
    engine_error "no published version to snapshot" (* unreachable *)
  | v :: _ ->
    v.v_refs <- v.v_refs + 1;
    Mutex.unlock mv.mv_mu;
    make_snapshot db v

let snapshot_at db ~lsn:want =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  let tip = match mv.mv_versions with [] -> 0 | v :: _ -> v.v_lsn in
  match List.find_opt (fun v -> v.v_lsn = want) mv.mv_versions with
  | Some v ->
    v.v_refs <- v.v_refs + 1;
    Mutex.unlock mv.mv_mu;
    Ok (make_snapshot db v)
  | None ->
    Mutex.unlock mv.mv_mu;
    Error
      Staleness.
        { applied_lsn = want; tip_lsn = tip;
          lag = Staleness.lag ~applied_lsn:want ~tip_lsn:tip ~bytes:0 }

let release db sn =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  if not sn.sn_released then begin
    sn.sn_released <- true;
    sn.sn_version.v_refs <- sn.sn_version.v_refs - 1;
    sweep_versions mv
  end;
  Mutex.unlock mv.mv_mu

let retained_lsns db =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  let lsns = List.map (fun v -> v.v_lsn) mv.mv_versions in
  Mutex.unlock mv.mv_mu;
  lsns

let set_retain db n =
  if n < 1 then engine_error "set_retain: window must be at least 1";
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  mv.mv_retain <- n;
  sweep_versions mv;
  Mutex.unlock mv.mv_mu

let open_snapshots db =
  let mv = db.mvcc in
  Mutex.lock mv.mv_mu;
  let n = List.fold_left (fun acc v -> acc + v.v_refs) 0 mv.mv_versions in
  Mutex.unlock mv.mv_mu;
  n

module Snapshot = struct
  type t = snapshot

  let lsn sn = sn.sn_version.v_lsn
  let released sn = sn.sn_released

  let query sn sql : Relation.t =
    snap_check_live sn;
    match Parser.statement sql with
    | Ast.St_query q -> snap_run_query sn q
    | stmt ->
      engine_error "snapshot is read-only: %s is not a query"
        (Pretty.statement stmt)

  let run_query sn q =
    snap_check_live sn;
    snap_run_query sn q

  let fingerprint sn : string =
    snap_check_live sn;
    fingerprint_parts
      ~tables:
        (List.map
           (fun vt -> (vt.vt_name, Relation.of_array vt.vt_schema vt.vt_rows))
           sn.sn_version.v_tables)
      ~views:
        (List.map
           (fun vv -> (vv.vv_name, vv.vv_stale, vv.vv_contents))
           sn.sn_version.v_views)

  let close (sn : t) = release sn.sn_db sn
end

(* Promotion: turn an in-memory database (a replica's applied state)
   into a durable primary directory.  Writes a checkpoint carrying
   [lsn] — the replica's applied position — and installs a fresh WAL,
   so the promoted primary's log sequence continues where the shipped
   history ended. *)
let make_durable db ~dir ~lsn =
  if db.durable <> None then engine_error "make_durable: database is already durable";
  if db.batch <> None then engine_error "make_durable: a batch is open";
  ensure_dir dir;
  let wal = Wal.create (wal_path dir) ~epoch:0 in
  db.durable <-
    Some
      {
        dir;
        wal;
        epoch = 0;
        base_lsn = lsn;
        appended = 0;
        checkpoint_every = None;
        checkpoint_bytes = None;
        degraded = None;
        rejected = 0;
        probe_backoff = 1;
        probe_countdown = 1;
        pending_fresh = None;
        pending_truncate = None;
      };
  (* reuse the regular checkpoint path: bumps to epoch 1, snapshots the
     whole catalog with the carried lsn, installs the epoch-1 log *)
  (try checkpoint db
   with e ->
     (match db.durable with
      | Some d -> (try Wal.close d.wal with _ -> ())
      | None -> ());
     db.durable <- None;
     raise e);
  (* versions published while in memory carry surrogate LSNs *)
  reset_versions db

let close db =
  match db.durable with
  | None -> ()
  | Some d ->
    (try Wal.close d.wal with _ -> ());
    db.durable <- None
