(* The database facade: parse → bind → (rewrite) → plan → execute, plus
   DDL/DML with materialized-view maintenance.

   [window_mode] selects how reporting functions execute — the contrast of
   the paper's Table 1:
   - [`Native]: the built-in window operator ("existing reporting
     functionality inside the database engine");
   - [`Self_join]: rewrite every window function into the relational
     self-join simulation of Fig. 2 before planning. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Parser = Rfview_sql.Parser
module Pretty = Rfview_sql.Pretty
module P = Rfview_planner
module Verify = Rfview_analysis.Verify

exception Engine_error of string

let engine_error fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* A script statement failed: 1-based index and SQL text of the culprit,
   so multi-statement failures are locatable. *)
exception Script_error of { index : int; sql : string; cause : exn }

let () =
  Printexc.register_printer (function
    | Script_error { index; sql; cause } ->
      Some
        (Printf.sprintf "statement %d (%s): %s" index sql
           (Printexc.to_string cause))
    | _ -> None)

(* ---- Fault-injection sites (see Fault) ---- *)

let site_apply_insert = Fault.define "database.apply_insert"
let site_apply_delete = Fault.define "database.apply_delete"
let site_apply_update = Fault.define "database.apply_update"
let site_propagate = Fault.define "database.propagate_view"
let site_refresh = Fault.define "database.refresh_view"

type window_mode =
  [ `Native
  | `Self_join
  ]

(* What happens when maintaining one materialized view fails mid
   statement:
   - [`Quarantine] (default): the view is marked stale and dropped from
     incremental maintenance; the statement succeeds; the next read of
     the view triggers a full refresh.
   - [`Abort]: the exception propagates and the whole statement rolls
     back. *)
type degradation =
  [ `Quarantine
  | `Abort
  ]

(* Exceptions the degradation policies may absorb.  Verification
   failures are bugs, not environmental faults — never absorb them. *)
let recoverable_exn = function
  | Verify.Not_preserved _ | Out_of_memory | Stack_overflow -> false
  | _ -> true

type view_index = {
  vi_view : string;
  vi_column : string;
  vi_kind : Index.kind;
  mutable vi_built : Index.t option;
}

type t = {
  catalog : Catalog.t;
  view_states : (string, Matview.state) Hashtbl.t; (* incremental matviews *)
  view_indexes : (string, view_index) Hashtbl.t;    (* keyed by index name *)
  mutable window_mode : window_mode;
  mutable window_strategy : Window.strategy;
  mutable hash_join_enabled : bool;
  mutable index_join_enabled : bool;
  mutable degradation : degradation;
  mutable undo : Undo.t option; (* Some while a statement is executing *)
}

type result =
  | Relation of Relation.t
  | Done of string

let create () =
  {
    catalog = Catalog.create ();
    view_states = Hashtbl.create 8;
    view_indexes = Hashtbl.create 8;
    window_mode = `Native;
    window_strategy = Window.Incremental;
    hash_join_enabled = true;
    index_join_enabled = true;
    degradation = `Quarantine;
    undo = None;
  }

let set_window_mode db mode = db.window_mode <- mode
let set_degradation db mode = db.degradation <- mode
let set_window_strategy db s = db.window_strategy <- s

(* Disabling hash joins forces nested loops for equality predicates (how
   the paper's engine executed both Table 2 variants). *)
let set_hash_join db enabled = db.hash_join_enabled <- enabled

(* Disabling index joins as well yields pure nested-loop plans. *)
let set_index_join db enabled = db.index_join_enabled <- enabled

let key = String.lowercase_ascii

(* ---- The undo log ----

   Each mutation below first logs a restore action (an absolute snapshot
   of the object about to change) into the statement's undo log; see
   Undo.  [with_undo] brackets one statement: on success the log is
   dropped, on any exception it is replayed and the exception re-raised,
   so [exec] is all-or-nothing.  Nested statements (EXPLAIN wrapping,
   cache admission inside a query) join the enclosing statement's log. *)

let log_undo db restore =
  match db.undo with
  | Some u -> Undo.log u restore
  | None -> ()

let with_undo db f =
  match db.undo with
  | Some _ -> f () (* nested: join the enclosing statement *)
  | None ->
    let u = Undo.create () in
    db.undo <- Some u;
    (match f () with
     | result ->
       db.undo <- None;
       Undo.commit u;
       result
     | exception e ->
       db.undo <- None;
       Undo.rollback u;
       raise e)

(* Snapshot a table: its rows array plus the built caches of its
   secondary indexes. *)
let log_table db (tbl : Catalog.table) =
  let rows = tbl.Catalog.rows in
  let indexes = tbl.Catalog.indexes in
  let builts = List.map (fun (i : Catalog.index_def) -> (i, i.Catalog.built)) indexes in
  log_undo db (fun () ->
      tbl.Catalog.rows <- rows;
      tbl.Catalog.indexes <- indexes;
      List.iter (fun ((i : Catalog.index_def), b) -> i.Catalog.built <- b) builts)

(* Snapshot the built caches of every view index on [name]. *)
let log_view_index_caches db name =
  let saved =
    Hashtbl.fold
      (fun _ vi acc -> if key vi.vi_view = key name then (vi, vi.vi_built) :: acc else acc)
      db.view_indexes []
  in
  if saved <> [] then
    log_undo db (fun () -> List.iter (fun (vi, b) -> vi.vi_built <- b) saved)

(* Snapshot a materialized view: contents, quarantine flag, incremental
   maintenance state (deep-copied: maintenance mutates it in place) and
   index caches. *)
let log_view db (v : Catalog.view) =
  let contents = v.Catalog.contents in
  let stale = v.Catalog.stale in
  let state =
    Option.map Matview.copy_state
      (Hashtbl.find_opt db.view_states (key v.Catalog.view_name))
  in
  log_undo db (fun () ->
      v.Catalog.contents <- contents;
      v.Catalog.stale <- stale;
      match state with
      | Some s -> Hashtbl.replace db.view_states (key v.Catalog.view_name) s
      | None -> Hashtbl.remove db.view_states (key v.Catalog.view_name));
  log_view_index_caches db v.Catalog.view_name

(* ---- Catalog adapters ---- *)

(* Forward reference to [refresh_view_full], needed by the lazy
   refresh-on-read of quarantined views below. *)
let refresh_ref : (t -> Catalog.view -> unit) ref =
  ref (fun _ _ -> assert false)

let view_contents db name =
  match Catalog.find_view db.catalog name with
  | Some v when v.Catalog.materialized ->
    (* quarantined views heal on first read *)
    if v.Catalog.stale then !refresh_ref db v;
    (match v.Catalog.contents with
     | Some r -> Some r
     | None -> engine_error "materialized view %s has no contents" name)
  | _ -> None

let binder_catalog db : P.Binder.catalog =
  {
    P.Binder.resolve_table =
      (fun name ->
        match Catalog.find_table db.catalog name with
        | Some tbl -> Some tbl.Catalog.schema
        | None ->
          (match view_contents db name with
           | Some r -> Some (Relation.schema r)
           | None -> None));
    resolve_view =
      (fun name ->
        match Catalog.find_view db.catalog name with
        | Some v when not v.Catalog.materialized -> Some v.Catalog.definition
        | _ -> None);
  }

let view_index db ~view ~column =
  Hashtbl.fold
    (fun _ vi acc ->
      if acc <> None then acc
      else if key vi.vi_view = key view && key vi.vi_column = key column then begin
        match vi.vi_built with
        | Some b -> Some b
        | None ->
          (match view_contents db view with
           | None -> None
           | Some r ->
             (match Schema.find_opt (Relation.schema r) column with
              | None -> None
              | Some ci ->
                let b = Index.build vi.vi_kind (Relation.rows r) ~key_col:ci in
                vi.vi_built <- Some b;
                Some b))
      end
      else None)
    db.view_indexes None

let catalog_view db : P.Physical.catalog_view =
  {
    P.Physical.table_contents =
      (fun name ->
        match Catalog.find_table db.catalog name with
        | Some tbl -> Catalog.table_relation tbl
        | None ->
          (match view_contents db name with
           | Some r -> r
           | None -> engine_error "unknown relation %s" name));
    table_index =
      (fun ~table ~column ->
        match Catalog.table_index db.catalog ~table ~column with
        | Some idx -> Some idx
        | None -> view_index db ~view:table ~column);
  }

let invalidate_view_indexes db name =
  Hashtbl.iter
    (fun _ vi -> if key vi.vi_view = key name then vi.vi_built <- None)
    db.view_indexes

(* ---- Query execution ---- *)

let plan_query db (q : Ast.query) : P.Physical.t =
  let logical = P.Binder.bind_query (binder_catalog db) q in
  if Verify.enabled () then Verify.check_plan ~context:"bound plan" logical;
  let logical =
    match db.window_mode with
    | `Native -> logical
    | `Self_join -> P.Rewrite.window_to_self_join logical
  in
  let logical = P.Optimize.optimize logical in
  if Verify.enabled () then Verify.check_plan ~context:"optimized plan" logical;
  let opts =
    {
      P.Physical.window_strategy = db.window_strategy;
      enable_hash_join = db.hash_join_enabled;
      enable_index_join = db.index_join_enabled;
    }
  in
  P.Physical.plan ~opts (catalog_view db) logical

let run_query db (q : Ast.query) : Relation.t =
  P.Physical.execute (catalog_view db) (plan_query db q)

(* ---- View maintenance ---- *)

let rec tables_of_query (q : Ast.query) : string list =
  tables_of_body q.Ast.body

and tables_of_body = function
  | Ast.Select s ->
    List.concat_map tables_of_ref s.Ast.from
  | Ast.Union { left; right; _ } -> tables_of_body left @ tables_of_body right

and tables_of_ref = function
  | Ast.Table { name; _ } -> [ name ]
  | Ast.Subquery { query; _ } -> tables_of_query query
  | Ast.Join { left; right; _ } -> tables_of_ref left @ tables_of_ref right

let refresh_view_full db (v : Catalog.view) =
  Fault.hit site_refresh;
  log_view db v;
  let contents = run_query db v.Catalog.definition in
  v.Catalog.contents <- Some contents;
  v.Catalog.stale <- false;
  invalidate_view_indexes db v.Catalog.view_name;
  (* (re)try to establish the incremental state *)
  Hashtbl.remove db.view_states (key v.Catalog.view_name);
  match Matview.recognize v.Catalog.definition with
  | None -> ()
  | Some spec ->
    (match Catalog.find_table db.catalog spec.Matview.source with
     | None -> ()
     | Some tbl ->
       (try
          let state =
            Matview.init_state spec
              ~base:(Catalog.table_relation tbl)
              ~out_schema:(Relation.schema contents)
          in
          (* translation validation of the derivation rewrite: the
             incremental core representation must reproduce the view
             contents the full recomputation just produced *)
          if
            Verify.enabled ()
            && not (Relation.equal_bag contents (Matview.render state))
          then
            raise
              (Verify.Not_preserved
                 (Printf.sprintf
                    "matview %s: the incremental sequence state does not \
                     reproduce the recomputed view contents"
                    v.Catalog.view_name));
          Hashtbl.replace db.view_states (key v.Catalog.view_name) state
        with Matview.Not_maintainable _ -> ()))

let () = refresh_ref := refresh_view_full

type dml_change =
  | Rows_inserted of Row.t list
  | Rows_deleted of Row.t list
  | Rows_updated of (Row.t * Row.t) list (* old, new *)

(* Quarantine a view whose maintenance faulted mid statement: drop the
   (possibly half-applied) incremental state and mark the contents
   stale; the next read triggers a full refresh.  The base-table change
   stands — a quarantined view is late, never wrong. *)
let quarantine_view db (v : Catalog.view) =
  Hashtbl.remove db.view_states (key v.Catalog.view_name);
  v.Catalog.stale <- true;
  invalidate_view_indexes db v.Catalog.view_name

(* Propagate one base-table change to every materialized view that
   references the table: incrementally when a sequence-view state exists,
   by full refresh otherwise.  Already-quarantined views are skipped —
   they will catch up wholesale on their next read. *)
let propagate db ~table change =
  List.iter
    (fun (v : Catalog.view) ->
      if
        v.Catalog.materialized
        && (not v.Catalog.stale)
        && List.exists
             (fun t -> key t = key table)
             (tables_of_query v.Catalog.definition)
      then begin
        let maintain () =
          Fault.hit site_propagate;
          log_view db v;
          match Hashtbl.find_opt db.view_states (key v.Catalog.view_name) with
          | Some state ->
            (try
               (match change with
                | Rows_inserted rows -> List.iter (Matview.apply_insert state) rows
                | Rows_deleted rows -> List.iter (Matview.apply_delete state) rows
                | Rows_updated pairs ->
                  List.iter
                    (fun (old_row, new_row) ->
                      Matview.apply_update state ~old_row ~new_row)
                    pairs);
               let rendered = Matview.render state in
               (* translation validation: incremental maintenance must agree
                  with recomputing the view definition from scratch *)
               if
                 Verify.enabled ()
                 && not (Relation.equal_bag rendered (run_query db v.Catalog.definition))
               then
                 raise
                   (Verify.Not_preserved
                      (Printf.sprintf
                         "matview %s: incremental maintenance diverged from full \
                          recomputation"
                         v.Catalog.view_name));
               v.Catalog.contents <- Some rendered;
               invalidate_view_indexes db v.Catalog.view_name
             with Matview.Not_maintainable _ -> refresh_view_full db v)
          | None -> refresh_view_full db v
        in
        match maintain () with
        | () -> ()
        | exception e when db.degradation = `Quarantine && recoverable_exn e ->
          quarantine_view db v
      end)
    (Catalog.all_views db.catalog)

(* ---- DML ---- *)

let const_scalar (e : Ast.expr) : Value.t =
  let bound = P.Binder.bind_scalar (Schema.make []) e in
  Expr.eval [||] bound

(* Coerce a value to a column's declared type where a lossless conversion
   exists (integer literals into FLOAT columns, ISO strings into DATE
   columns, ...); incompatible values are rejected. *)
let coerce_value ty (v : Value.t) : Value.t =
  match ty, v with
  | _, Value.Null -> Value.Null
  | Dtype.Float, Value.Int i -> Value.Float (float_of_int i)
  | Dtype.Int, Value.Float f when Float.is_integer f -> Value.Int (int_of_float f)
  | Dtype.Date, Value.String s ->
    (match Value.parse_date s with
     | Some d -> Value.Date d
     | None -> engine_error "invalid date value '%s'" s)
  | Dtype.Int, Value.Int _
  | Dtype.Float, Value.Float _
  | Dtype.Bool, Value.Bool _
  | Dtype.String, Value.String _
  | Dtype.Date, Value.Date _ -> v
  | ty, v ->
    engine_error "value %s is not compatible with type %s" (Value.to_string v)
      (Dtype.to_string ty)

let exec_insert db ~table ~columns ~rows =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let arity = Schema.arity schema in
  let col_positions =
    if columns = [] then List.init arity Fun.id
    else
      List.map
        (fun c ->
          match Schema.find_opt schema c with
          | Some i -> i
          | None -> engine_error "table %s has no column %s" table c)
        columns
  in
  let new_rows =
    List.map
      (fun exprs ->
        if List.length exprs <> List.length col_positions then
          engine_error "INSERT arity mismatch for table %s" table;
        let row = Array.make arity Value.Null in
        List.iter2
          (fun pos e ->
            row.(pos) <- coerce_value (Schema.col schema pos).Schema.ty (const_scalar e))
          col_positions exprs;
        row)
      rows
  in
  log_table db tbl;
  Catalog.set_rows tbl (Array.append tbl.Catalog.rows (Array.of_list new_rows));
  Fault.hit site_apply_insert;
  propagate db ~table (Rows_inserted new_rows);
  Done (Printf.sprintf "INSERT %d" (List.length new_rows))

let exec_update db ~table ~assignments ~where =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let pred =
    match where with
    | None -> Expr.Const (Value.Bool true)
    | Some w -> P.Binder.bind_scalar schema w
  in
  let assigns =
    List.map
      (fun (c, e) ->
        match Schema.find_opt schema c with
        | Some i -> (i, P.Binder.bind_scalar schema e)
        | None -> engine_error "table %s has no column %s" table c)
      assignments
  in
  let pairs = ref [] in
  let rows =
    Array.map
      (fun row ->
        if Expr.holds row pred then begin
          let fresh = Array.copy row in
          List.iter
            (fun (i, e) ->
              fresh.(i) <- coerce_value (Schema.col schema i).Schema.ty (Expr.eval row e))
            assigns;
          pairs := (row, fresh) :: !pairs;
          fresh
        end
        else row)
      tbl.Catalog.rows
  in
  log_table db tbl;
  Catalog.set_rows tbl rows;
  Fault.hit site_apply_update;
  propagate db ~table (Rows_updated (List.rev !pairs));
  Done (Printf.sprintf "UPDATE %d" (List.length !pairs))

let exec_delete db ~table ~where =
  let tbl = Catalog.table db.catalog table in
  let schema = tbl.Catalog.schema in
  let pred =
    match where with
    | None -> Expr.Const (Value.Bool true)
    | Some w -> P.Binder.bind_scalar schema w
  in
  let deleted = ref [] in
  let kept = ref [] in
  Array.iter
    (fun row ->
      if Expr.holds row pred then deleted := row :: !deleted else kept := row :: !kept)
    tbl.Catalog.rows;
  log_table db tbl;
  Catalog.set_rows tbl (Array.of_list (List.rev !kept));
  Fault.hit site_apply_delete;
  propagate db ~table (Rows_deleted (List.rev !deleted));
  Done (Printf.sprintf "DELETE %d" (List.length !deleted))

(* ---- Statements ---- *)

(* Execute one statement inside the enclosing undo scope; the public
   [exec_statement] below brackets this with [with_undo], so every entry
   is all-or-nothing. *)
let rec exec_statement_in_scope db (stmt : Ast.statement) : result =
  match stmt with
  | Ast.St_query q -> Relation (run_query db q)
  | Ast.St_create_table { name; columns } ->
    let schema =
      Schema.make
        (List.map (fun c -> Schema.column c.Ast.col_name c.Ast.col_type) columns)
    in
    let _ = Catalog.create_table db.catalog ~name ~schema in
    log_undo db (fun () -> Catalog.forget_table db.catalog name);
    Done (Printf.sprintf "CREATE TABLE %s" name)
  | Ast.St_create_index { name; table; column; ordered } ->
    let kind = if ordered then Index.Ordered else Index.Hash in
    (match Catalog.find_table db.catalog table with
     | Some tbl ->
       log_table db tbl;
       Catalog.create_index db.catalog ~name ~table ~column ~kind;
       Done (Printf.sprintf "CREATE INDEX %s" name)
     | None ->
       if Catalog.find_view db.catalog table <> None then begin
         if Hashtbl.mem db.view_indexes (key name) then
           engine_error "index %s already exists" name;
         Hashtbl.replace db.view_indexes (key name)
           { vi_view = table; vi_column = column; vi_kind = kind; vi_built = None };
         log_undo db (fun () -> Hashtbl.remove db.view_indexes (key name));
         Done (Printf.sprintf "CREATE INDEX %s" name)
       end
       else engine_error "unknown relation %s" table)
  | Ast.St_create_view { name; materialized; query } ->
    let v = Catalog.create_view db.catalog ~name ~materialized ~definition:query in
    log_undo db (fun () ->
        Catalog.forget_view db.catalog name;
        Hashtbl.remove db.view_states (key name));
    if materialized then refresh_view_full db v;
    Done (Printf.sprintf "CREATE %sVIEW %s" (if materialized then "MATERIALIZED " else "") name)
  | Ast.St_insert { table; columns; rows } -> exec_insert db ~table ~columns ~rows
  | Ast.St_update { table; assignments; where } -> exec_update db ~table ~assignments ~where
  | Ast.St_delete { table; where } -> exec_delete db ~table ~where
  | Ast.St_drop_table { name; if_exists } ->
    (match Catalog.find_table db.catalog name with
     | Some tbl -> log_undo db (fun () -> Catalog.restore_table db.catalog tbl)
     | None -> ());
    Catalog.drop_table db.catalog ~name ~if_exists;
    Done (Printf.sprintf "DROP TABLE %s" name)
  | Ast.St_drop_view { name; if_exists } ->
    (match Catalog.find_view db.catalog name with
     | Some v ->
       let state = Hashtbl.find_opt db.view_states (key name) in
       log_undo db (fun () ->
           Catalog.restore_view db.catalog v;
           match state with
           | Some s -> Hashtbl.replace db.view_states (key name) s
           | None -> Hashtbl.remove db.view_states (key name))
     | None -> ());
    Catalog.drop_view db.catalog ~name ~if_exists;
    Hashtbl.remove db.view_states (key name);
    Done (Printf.sprintf "DROP VIEW %s" name)
  | Ast.St_refresh_view name ->
    refresh_view_full db (Catalog.view db.catalog name);
    Done (Printf.sprintf "REFRESH %s" name)
  | Ast.St_explain inner ->
    (match inner with
     | Ast.St_query q ->
       let logical = P.Binder.bind_query (binder_catalog db) q in
       let logical' =
         P.Optimize.optimize
           (match db.window_mode with
            | `Native -> logical
            | `Self_join -> P.Rewrite.window_to_self_join logical)
       in
       let opts =
         {
           P.Physical.window_strategy = db.window_strategy;
           enable_hash_join = db.hash_join_enabled;
           enable_index_join = db.index_join_enabled;
         }
       in
       let physical = P.Physical.plan ~opts (catalog_view db) logical' in
       Done
         (Printf.sprintf "== logical ==\n%s== optimized ==\n%s== physical ==\n%s"
            (P.Logical.to_string logical)
            (P.Logical.to_string logical')
            (P.Physical.to_string physical))
     | other -> exec_statement_in_scope db other)
  | Ast.St_explain_analyze inner ->
    (match inner with
     | Ast.St_query q ->
       let physical = plan_query db q in
       let _result, profile = P.Physical.execute_analyze (catalog_view db) physical in
       Done (P.Physical.render_profile profile)
     | other -> exec_statement_in_scope db other)

(* Every statement is atomic: on any exception the undo log restores
   tables, view contents, view states and index caches to the
   pre-statement snapshot before re-raising. *)
let exec_statement db stmt = with_undo db (fun () -> exec_statement_in_scope db stmt)

(* Bulk-load rows into a table, bypassing the SQL layer (used by the
   benchmark harness, CSV import and the workload generators).
   Materialized views on the table are fully refreshed.  Atomic like a
   statement: a failed refresh rolls the load back. *)
let load_table db ~table rows =
  with_undo db (fun () ->
      let tbl = Catalog.table db.catalog table in
      log_table db tbl;
      Catalog.set_rows tbl (Array.append tbl.Catalog.rows rows);
      List.iter
        (fun (v : Catalog.view) ->
          if
            v.Catalog.materialized
            && List.exists (fun t -> key t = key table) (tables_of_query v.Catalog.definition)
          then refresh_view_full db v)
        (Catalog.all_views db.catalog))

(* ---- Entry points ---- *)

let exec db (sql : string) : result = exec_statement db (Parser.statement sql)

let exec_script db (sql : string) : result list =
  List.mapi
    (fun i stmt ->
      try exec_statement db stmt
      with cause ->
        raise (Script_error { index = i + 1; sql = Pretty.statement stmt; cause }))
    (Parser.statements sql)

let query db (sql : string) : Relation.t =
  match exec db sql with
  | Relation r -> r
  | Done msg -> engine_error "expected a query, got: %s" msg

let explain db (sql : string) : string =
  match exec_statement db (Ast.St_explain (Parser.statement sql)) with
  | Done s -> s
  | Relation _ -> assert false

(* Does a view currently have an incremental maintenance state? *)
let is_incrementally_maintained db name = Hashtbl.mem db.view_states (key name)

(* Is the view quarantined (pending a lazy full refresh)? *)
let is_stale db name =
  match Catalog.find_view db.catalog name with
  | Some v -> v.Catalog.stale
  | None -> false

let stale_views db =
  Catalog.all_views db.catalog
  |> List.filter_map (fun (v : Catalog.view) ->
         if v.Catalog.stale then Some v.Catalog.view_name else None)
  |> List.sort String.compare

let catalog db = db.catalog

let view_state db name = Hashtbl.find_opt db.view_states (key name)
