(** The shared staleness vocabulary.

    Both read tiers speak it: a replica refusing a read that trails the
    primary tip ({!Rfview_replica.Replica.read}) and the primary-side
    MVCC snapshot API refusing a historical LSN that has left the
    retained-version window ({!Database.snapshot_at}).  One [lag]
    record, one typed [violation], one bound check — so callers handle
    "too old" identically wherever the read lands. *)

(** How far a state trails the tip it is measured against. *)
type lag = {
  records : int;  (** LSNs behind the tip *)
  bytes : int;  (** feed bytes not yet consumed (0 where meaningless) *)
}

(** A refused stale read: the state at [applied_lsn] trails [tip_lsn]
    by [lag], past the caller's bound (or past the retained window). *)
type violation = { applied_lsn : int; tip_lsn : int; lag : lag }

(** [lag ~applied_lsn ~tip_lsn ~bytes] — [records] is clamped at 0. *)
val lag : applied_lsn:int -> tip_lsn:int -> bytes:int -> lag

(** [admit ~max_records ~max_bytes ~applied_lsn ~tip_lsn ~bytes] checks
    a lag against the caller's bound; omitted bounds don't constrain. *)
val admit :
  ?max_records:int ->
  ?max_bytes:int ->
  applied_lsn:int ->
  tip_lsn:int ->
  bytes:int ->
  unit ->
  (lag, violation) result

(** One line, human-readable. *)
val describe : violation -> string
