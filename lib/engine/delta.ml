(* Accumulated base-table changes for one batch scope.

   A delta is a per-table multiset of inserted rows, deleted rows and
   (old, new) update pairs, consolidated as changes arrive so each base
   row appears at most once: inserting then deleting a row inside one
   batch cancels out, updating an inserted row folds into the insert,
   chained updates collapse to (original, final).  Propagation at batch
   commit therefore sees the *net* change, which is exactly what the
   multi-row maintenance rules need.

   The structure is persistent (a [Map] of immutable accumulators), so
   the undo log can snapshot it by capturing the old pointer. *)

open Rfview_relalg

module M = Map.Make (String)

let row_equal (a : Row.t) (b : Row.t) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Value.equal v b.(i)) then ok := false) a;
      !ok)

(* Internal accumulator: newest-first lists, reversed on read. *)
type acc = {
  ins_rev : Row.t list;
  del_rev : Row.t list;
  upd_rev : (Row.t * Row.t) list;  (* (original, current) *)
}

let empty_acc = { ins_rev = []; del_rev = []; upd_rev = [] }

type table_delta = {
  inserted : Row.t list;
  deleted : Row.t list;
  updated : (Row.t * Row.t) list;
}

type t = acc M.t

let empty : t = M.empty
let is_empty (d : t) = M.is_empty d

let key table = String.lowercase_ascii table

let acc_of d table =
  match M.find_opt (key table) d with Some a -> a | None -> empty_acc

(* Remove the first list element satisfying [p]; None when absent. *)
let rec remove_first p = function
  | [] -> None
  | x :: rest when p x -> Some rest
  | x :: rest ->
    (match remove_first p rest with
     | Some rest' -> Some (x :: rest')
     | None -> None)

(* Replace the first element satisfying [p] with [f x]. *)
let rec replace_first p f = function
  | [] -> None
  | x :: rest when p x -> Some (f x :: rest)
  | x :: rest ->
    (match replace_first p f rest with
     | Some rest' -> Some (x :: rest')
     | None -> None)

let add_insert a row = { a with ins_rev = row :: a.ins_rev }

let add_delete a row =
  (* a row inserted earlier in the batch simply vanishes *)
  match remove_first (row_equal row) a.ins_rev with
  | Some ins_rev -> { a with ins_rev }
  | None ->
    (* a row updated earlier: the delete targets its current value; the
       net effect is deleting the original *)
    (match
       remove_first (fun (_, cur) -> row_equal row cur) a.upd_rev
     with
     | Some upd_rev ->
       let original =
         List.find_map
           (fun (pre, cur) -> if row_equal row cur then Some pre else None)
           a.upd_rev
       in
       (match original with
        | Some pre -> { a with upd_rev; del_rev = pre :: a.del_rev }
        | None -> { a with del_rev = row :: a.del_rev })
     | None -> { a with del_rev = row :: a.del_rev })

let add_update a (old_row, new_row) =
  (* updating a row inserted this batch folds into the insert *)
  match replace_first (row_equal old_row) (fun _ -> new_row) a.ins_rev with
  | Some ins_rev -> { a with ins_rev }
  | None ->
    (* chained updates collapse to (original, final) *)
    (match
       replace_first
         (fun (_, cur) -> row_equal old_row cur)
         (fun (pre, _) -> (pre, new_row))
         a.upd_rev
     with
     | Some upd_rev -> { a with upd_rev }
     | None -> { a with upd_rev = (old_row, new_row) :: a.upd_rev })

let with_acc d table f = M.add (key table) (f (acc_of d table)) d

let insert (d : t) ~table rows =
  with_acc d table (fun a -> List.fold_left add_insert a rows)

let delete (d : t) ~table rows =
  with_acc d table (fun a -> List.fold_left add_delete a rows)

let update (d : t) ~table pairs =
  with_acc d table (fun a -> List.fold_left add_update a pairs)

let tables (d : t) = List.map fst (M.bindings d)

let find (d : t) table : table_delta option =
  match M.find_opt (key table) d with
  | None -> None
  | Some a ->
    let td =
      {
        inserted = List.rev a.ins_rev;
        deleted = List.rev a.del_rev;
        updated = List.rev a.upd_rev;
      }
    in
    if td.inserted = [] && td.deleted = [] && td.updated = [] then None
    else Some td

let weight (td : table_delta) =
  List.length td.inserted + List.length td.deleted + List.length td.updated
