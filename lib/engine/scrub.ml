(* The artifact scrubber.  See scrub.mli.

   Everything here is read-only: damage is reported, never touched.
   The distinction between [Crc] (frame checksum mismatch), [Torn]
   (short frame at EOF) and [Undecodable] (checksum fine, payload not)
   matters to repair — a torn WAL tail is normal crash residue the
   recovery path already truncates, while a mid-log CRC mismatch means
   committed records exist beyond the damage and a peer feed may hold
   them. *)

type artifact =
  | Wal_file of string
  | Checkpoint_file of string
  | Feed_file of string
  | Tmp_file of string

type kind =
  | Crc of { offset : int }
  | Torn of { offset : int }
  | Undecodable of { offset : int; detail : string }
  | Missing
  | Structure of string
  | Epoch of { wal : int; checkpoint : int }
  | Gap of { expected : int; found : int; offset : int }
  | Stray_tmp

type damage = { d_artifact : artifact; d_kind : kind }

type report = { scanned : artifact list; damage : damage list }

let clean r = r.damage = []

let path_of_artifact = function
  | Wal_file p | Checkpoint_file p | Feed_file p | Tmp_file p -> p

let describe_artifact = function
  | Wal_file p -> Printf.sprintf "wal %s" p
  | Checkpoint_file p -> Printf.sprintf "checkpoint %s" p
  | Feed_file p -> Printf.sprintf "feed %s" p
  | Tmp_file p -> Printf.sprintf "tmp %s" p

let describe_kind = function
  | Crc { offset } -> Printf.sprintf "CRC mismatch at byte %d" offset
  | Torn { offset } -> Printf.sprintf "torn tail at byte %d" offset
  | Undecodable { offset; detail } ->
    Printf.sprintf "undecodable payload at byte %d: %s" offset detail
  | Missing -> "missing"
  | Structure m -> m
  | Epoch { wal; checkpoint } ->
    Printf.sprintf "log epoch %d is ahead of checkpoint epoch %d" wal checkpoint
  | Gap { expected; found; offset } ->
    Printf.sprintf "LSN gap at byte %d: expected %d, found %d" offset expected
      found
  | Stray_tmp -> "stale temp file from a crashed install"

let describe_damage d =
  Printf.sprintf "%s: %s" (describe_artifact d.d_artifact)
    (describe_kind d.d_kind)

let describe r =
  match r.damage with
  | [] -> Printf.sprintf "clean (%d artifact(s) scanned)" (List.length r.scanned)
  | ds -> String.concat "\n" (List.map describe_damage ds)

let merge a b = { scanned = a.scanned @ b.scanned; damage = a.damage @ b.damage }

(* ---- The WAL ---- *)

let wal_damage ~path ~checkpoint_epoch : damage list =
  let art = Wal_file path in
  if not (Io.exists path) then
    (* a durable directory always carries a log; its absence beside a
       checkpoint means the record suffix since that checkpoint is gone *)
    (match checkpoint_epoch with
     | Some _ -> [ { d_artifact = art; d_kind = Missing } ]
     | None -> [])
  else begin
    let detail = Wal.scan_detail path in
    let out = ref [] in
    let push k = out := { d_artifact = art; d_kind = k } :: !out in
    List.iter
      (fun (e : Wal.entry) ->
        if not e.Wal.e_crc_ok then push (Crc { offset = e.Wal.e_offset })
        else
          match e.Wal.e_record with
          | None ->
            push
              (Undecodable
                 { offset = e.Wal.e_offset; detail = "payload does not decode" })
          | Some _ -> ())
      detail.Wal.d_entries;
    (match detail.Wal.d_torn with
     | Some offset -> push (Torn { offset })
     | None -> ());
    (* structure: the first record must be a readable [Begin], and its
       epoch must not be ahead of the checkpoint's *)
    (match detail.Wal.d_entries with
     | { Wal.e_record = Some (Wal.Begin wal_epoch); _ } :: _ ->
       (match checkpoint_epoch with
        | Some ce when wal_epoch > ce ->
          push (Epoch { wal = wal_epoch; checkpoint = ce })
        | _ -> ())
     | { Wal.e_record = Some _; _ } :: _ ->
       push (Structure "first record is not BEGIN")
     | { Wal.e_record = None; _ } :: _ ->
       (* already reported as Crc/Undecodable above; without a readable
          BEGIN the whole log is unrecoverable, which repair must know *)
       push (Structure "BEGIN record unreadable")
     | [] ->
       if detail.Wal.d_size > 0 then ()
       else push (Structure "empty log (missing BEGIN record)"));
    List.rev !out
  end

(* ---- The checkpoint ---- *)

let checkpoint_damage path : damage list =
  let art = Checkpoint_file path in
  if not (Io.exists path) then []
  else begin
    let data = Io.read_file path in
    let frames, torn = Wal.parse_frames data in
    let out = ref [] in
    let push k = out := { d_artifact = art; d_kind = k } :: !out in
    List.iter
      (fun (payload, off) ->
        (* [parse_frames] returns the payload offset; report the frame *)
        match payload with None -> push (Crc { offset = off - 8 }) | Some _ -> ())
      frames;
    if torn then
      push (Structure "short file (checkpoints are rename-atomic)");
    (* structural validation on top of frame health: damaged view-state
       records are recoverable (the view quarantines), anything else
       [read_data] rejects is structural damage *)
    if not torn then begin
      match Checkpoint.read_bytes ~name:path data with
      | _ -> ()
      | exception Checkpoint.Corrupt m -> push (Structure m)
    end;
    List.rev !out
  end

(* ---- Feeds (frame level) ---- *)

let max_entry = 1 lsl 30

let feed_frame_damage path : damage list =
  let art = Feed_file path in
  if not (Io.exists path) then [ { d_artifact = art; d_kind = Missing } ]
  else begin
    let data = Io.read_file path in
    let len = String.length data in
    let b = Bytes.unsafe_of_string data in
    let out = ref [] in
    let push k = out := { d_artifact = art; d_kind = k } :: !out in
    let pos = ref 0 in
    (try
       while !pos + 8 <= len do
         let n = Int32.to_int (Bytes.get_int32_le b !pos) in
         if n < 0 || n > max_entry || !pos + 8 + n > len then begin
           push (Torn { offset = !pos });
           raise Exit
         end;
         let stored_crc = Bytes.get_int32_le b (!pos + 4) in
         let payload = String.sub data (!pos + 8) n in
         if Wal.crc32 payload <> stored_crc then push (Crc { offset = !pos });
         pos := !pos + 8 + n
       done;
       if !pos < len then push (Torn { offset = !pos })
     with Exit -> ());
    List.rev !out
  end

(* ---- A whole directory ---- *)

let tmp_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".tmp")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
    |> List.filter (fun p -> not (Sys.is_directory p))
  | exception Sys_error _ -> []

let scrub_dir ?(feeds = []) dir : report =
  if not (Sys.file_exists dir) then { scanned = []; damage = [] }
  else begin
    let ckpt_path = Checkpoint.file ~dir in
    let wal_path = Filename.concat dir "log.wal" in
    let scanned = ref [] in
    let damage = ref [] in
    let scan art ds =
      scanned := art :: !scanned;
      damage := List.rev_append ds !damage
    in
    let checkpoint_epoch = ref None in
    if Io.exists ckpt_path then begin
      scan (Checkpoint_file ckpt_path) (checkpoint_damage ckpt_path);
      (* the epoch, if the header is readable at all (used to judge the
         WAL even when some checkpoint records are damaged) *)
      (match Checkpoint.read ~dir with
       | Some s -> checkpoint_epoch := Some s.Checkpoint.epoch
       | None -> ()
       | exception Checkpoint.Corrupt _ -> ())
    end;
    if Io.exists wal_path || !checkpoint_epoch <> None then
      scan (Wal_file wal_path)
        (wal_damage ~path:wal_path ~checkpoint_epoch:!checkpoint_epoch);
    List.iter (fun p -> scan (Feed_file p) (feed_frame_damage p)) feeds;
    List.iter
      (fun p -> scan (Tmp_file p) [ { d_artifact = Tmp_file p; d_kind = Stray_tmp } ])
      (tmp_files dir);
    { scanned = List.rev !scanned; damage = List.rev !damage }
  end
