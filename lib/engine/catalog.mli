(** The catalog: tables with rows and secondary indexes, plus view
    definitions.  Names are case-insensitive.  Indexes are invalidated by
    DML and rebuilt lazily on first use. *)

open Rfview_relalg
module Ast := Rfview_sql.Ast

exception Catalog_error of string

type index_def = {
  index_name : string;
  column : string;
  kind : Index.kind;
  mutable built : Index.t option;
}

type table = {
  table_name : string;
  schema : Schema.t;
  mutable rows : Row.t array;
  mutable indexes : index_def list;
}

type view = {
  view_name : string;
  materialized : bool;
  definition : Ast.query;
  mutable contents : Relation.t option;  (** [Some] for materialized views *)
  mutable stale : bool;
      (** quarantined: maintenance faulted, contents lag the base table
          until the next read triggers a full refresh *)
}

type t

val create : unit -> t

(** {1 Tables} *)

val find_table : t -> string -> table option

(** @raise Catalog_error if unknown. *)
val table : t -> string -> table

(** @raise Catalog_error if the name is taken. *)
val create_table : t -> name:string -> schema:Schema.t -> table

val drop_table : t -> name:string -> if_exists:bool -> unit

(** A snapshot of the current contents. *)
val table_relation : table -> Relation.t

(** Replace the rows and invalidate all indexes. *)
val set_rows : table -> Row.t array -> unit

val invalidate_indexes : table -> unit

(** {1 Indexes} *)

(** @raise Catalog_error on unknown table/column or duplicate name. *)
val create_index :
  t -> name:string -> table:string -> column:string -> kind:Index.kind -> unit

(** The (lazily built) index on [table].[column], if any. *)
val table_index : t -> table:string -> column:string -> Index.t option

(** {1 Views} *)

val find_view : t -> string -> view option

(** @raise Catalog_error if unknown. *)
val view : t -> string -> view

(** @raise Catalog_error if the name is taken. *)
val create_view : t -> name:string -> materialized:bool -> definition:Ast.query -> view

val drop_view : t -> name:string -> if_exists:bool -> unit
val all_views : t -> view list
val all_tables : t -> table list

(** {1 Undo-log hooks}

    Re-bind or unbind a captured record wholesale; only the statement
    rollback in [Database] may call these. *)

val restore_table : t -> table -> unit
val forget_table : t -> string -> unit
val restore_view : t -> view -> unit
val forget_view : t -> string -> unit
