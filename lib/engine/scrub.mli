(** The artifact scrubber: walk every durable artifact of a database
    directory — the WAL, the checkpoint, optionally replication feeds —
    verify frame CRCs, lengths, structure and the epoch protocol, and
    return a typed damage report.

    This module checks what the {e engine} can check without decoding
    feed entries (frame-level CRC and torn tails); feed {e content}
    verification (entry decode, LSN continuity) lives in
    [Rfview_replica.Repair.scrub], which folds its findings into the
    same report type.

    Scrubbing only reads; nothing is repaired here. *)

type artifact =
  | Wal_file of string
  | Checkpoint_file of string
  | Feed_file of string
  | Tmp_file of string  (** a stale [*.tmp] left by a crashed install *)

type kind =
  | Crc of { offset : int }  (** frame CRC mismatch *)
  | Torn of { offset : int }  (** short frame at the end of the file *)
  | Undecodable of { offset : int; detail : string }
      (** CRC matches but the payload does not decode *)
  | Missing  (** the artifact should exist but does not *)
  | Structure of string  (** malformed beyond frame damage *)
  | Epoch of { wal : int; checkpoint : int }
      (** the WAL's epoch is ahead of the checkpoint's *)
  | Gap of { expected : int; found : int; offset : int }
      (** LSN continuity broken (feeds only) *)
  | Stray_tmp

type damage = { d_artifact : artifact; d_kind : kind }

type report = {
  scanned : artifact list;  (** every artifact examined, in scan order *)
  damage : damage list;
}

val clean : report -> bool
val path_of_artifact : artifact -> string
val describe_artifact : artifact -> string
val describe_damage : damage -> string

(** One line per damage ("clean" when none). *)
val describe : report -> string

val merge : report -> report -> report

(** Scrub [log.wal] against the checkpoint epoch ([None]: no
    checkpoint). *)
val wal_damage : path:string -> checkpoint_epoch:int option -> damage list

val checkpoint_damage : string -> damage list

(** Frame-level feed checks only (CRC, torn tail). *)
val feed_frame_damage : string -> damage list

(** Scrub a database directory: checkpoint, WAL, stray [*.tmp] files,
    and frame-level checks over [feeds].  An empty or nonexistent
    directory is clean. *)
val scrub_dir : ?feeds:string list -> string -> report
