(* CSV import and export.

   RFC-4180-style quoting: fields containing the separator, quotes or
   newlines are double-quoted, with embedded quotes doubled.  Import
   coerces fields to the target schema's column types; empty fields and
   the literal NULL are NULL. *)

open Rfview_relalg

exception Csv_error of string

let csv_error fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* Fault-injection site: fires while converting one record, i.e. before
   any table mutation — a faulted import leaves the database untouched
   (the subsequent [Database.load_table] is atomic on its own). *)
let site_load_row = Fault.define "csv.load_row"

(* ---- Writing ---- *)

let escape_field ?(sep = ',') s =
  let needs_quoting =
    String.exists (fun c -> c = sep || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let field_of_value (v : Value.t) : string =
  match v with
  | Value.Null -> ""
  | v -> Value.to_string v

(* Render a relation as CSV text with a header line. *)
let to_string ?(sep = ',') (r : Relation.t) : string =
  let buf = Buffer.create 1024 in
  let emit_row fields =
    Buffer.add_string buf (String.concat (String.make 1 sep) fields);
    Buffer.add_char buf '\n'
  in
  emit_row
    (Array.to_list (Relation.schema r)
    |> List.map (fun c -> escape_field ~sep c.Schema.name));
  Relation.iter
    (fun row ->
      emit_row
        (Array.to_list row |> List.map (fun v -> escape_field ~sep (field_of_value v))))
    r;
  Buffer.contents buf

let export ?(sep = ',') (r : Relation.t) ~file : unit =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~sep r))

(* ---- Parsing ---- *)

(* Split CSV text into records of fields, honouring quoting. *)
let parse ?(sep = ',') (text : string) : string list list =
  let n = String.length text in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec plain i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then flush_record ())
    else
      match text.[i] with
      | c when c = sep ->
        flush_field ();
        plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
        flush_record ();
        plain (i + 2)
      | '\n' ->
        flush_record ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then csv_error "unterminated quoted field"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !records

let value_of_field ty (s : string) : Value.t =
  if s = "" || String.uppercase_ascii s = "NULL" then Value.Null
  else
    match ty with
    | Dtype.Int ->
      (match int_of_string_opt s with
       | Some i -> Value.Int i
       | None -> csv_error "invalid INT field %S" s)
    | Dtype.Float ->
      (match float_of_string_opt s with
       | Some f -> Value.Float f
       | None -> csv_error "invalid FLOAT field %S" s)
    | Dtype.Bool ->
      (match String.uppercase_ascii s with
       | "TRUE" | "T" | "1" -> Value.Bool true
       | "FALSE" | "F" | "0" -> Value.Bool false
       | _ -> csv_error "invalid BOOL field %S" s)
    | Dtype.Date ->
      (match Value.parse_date s with
       | Some d -> Value.Date d
       | None -> csv_error "invalid DATE field %S" s)
    | Dtype.String -> Value.String s

(* Import CSV text into an existing table.  With [header] (default), the
   first record names the columns (any order, missing columns NULL);
   without, records are positional. *)
let import_string ?(sep = ',') ?(header = true) (db : Database.t) ~table text : int =
  let tbl = Catalog.table (Database.catalog db) table in
  let schema = tbl.Catalog.schema in
  let arity = Schema.arity schema in
  let records = parse ~sep text in
  let col_positions, data =
    match records, header with
    | [], _ -> ([], [])
    | hdr :: rest, true ->
      ( List.map
          (fun name ->
            match Schema.find_opt schema name with
            | Some i -> i
            | None -> csv_error "table %s has no column %s" table name)
          hdr,
        rest )
    | rows, false -> (List.init arity Fun.id, rows)
  in
  let rows =
    List.map
      (fun record ->
        Fault.hit site_load_row;
        if List.length record <> List.length col_positions then
          csv_error "record has %d fields, expected %d" (List.length record)
            (List.length col_positions);
        let row = Array.make arity Value.Null in
        List.iter2
          (fun pos field ->
            row.(pos) <- value_of_field (Schema.col schema pos).Schema.ty field)
          col_positions record;
        row)
      data
  in
  Database.load_table db ~table (Array.of_list rows);
  List.length rows

let import ?(sep = ',') ?(header = true) (db : Database.t) ~table ~file : int =
  let ic = open_in file in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  import_string ~sep ~header db ~table text
