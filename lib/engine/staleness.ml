(* The shared staleness vocabulary: one lag record and one typed
   violation for every read tier that can trail a tip — replicas
   (records/bytes behind the shipped feed) and primary-side MVCC
   snapshots (LSNs behind the retained-version window). *)

type lag = { records : int; bytes : int }
type violation = { applied_lsn : int; tip_lsn : int; lag : lag }

let lag ~applied_lsn ~tip_lsn ~bytes =
  { records = max 0 (tip_lsn - applied_lsn); bytes = max 0 bytes }

let admit ?max_records ?max_bytes ~applied_lsn ~tip_lsn ~bytes () =
  let lag = lag ~applied_lsn ~tip_lsn ~bytes in
  let over = function Some bound, n -> n > bound | None, _ -> false in
  if over (max_records, lag.records) || over (max_bytes, lag.bytes) then
    Error { applied_lsn; tip_lsn; lag }
  else Ok lag

let describe { applied_lsn; tip_lsn; lag } =
  Printf.sprintf
    "stale read refused: applied lsn %d is %d records (%d feed bytes) behind \
     tip %d"
    applied_lsn lag.records lag.bytes tip_lsn
