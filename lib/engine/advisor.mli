(** The derivability advisor (paper §3-§6): answer an incoming
    reporting-function query from a materialized sequence view instead of
    recomputing it from the base table.

    Matching requires agreement on the base table, the value column, the
    ordering column and — modulo partitioning reduction (§6.2) — the
    partitioning columns; the frames must be derivable per
    {!Rfview_core.Derive.applicable_strategies}.  AVG and COUNT queries
    are answered from SUM views ("COUNT is trivial and AVG may be
    directly derived from SUM and COUNT"). *)

open Rfview_relalg
module Ast := Rfview_sql.Ast
module Core := Rfview_core

type proposal = {
  view_name : string;
  strategy : Core.Derive.strategy;
  partition_reduced : bool;
  relational_sql : string option;
      (** the Fig. 10/13 operator pattern a plain-relational engine would
          run for this derivation, when one applies *)
  certificate : Rfview_analysis.Cert.t;
      (** the derivability certificate the strategy was admitted under:
          always valid — a strategy whose obligations cannot be
          discharged statically is never proposed *)
}

val describe : proposal -> string

(** All views able to answer the query, with their states and the
    recognized query spec; empty when the query is not a sequence query
    or no view matches. *)
val proposals :
  Database.t -> Ast.query -> (proposal * Matview.state * Matview.seq_spec) list

(** Per matching materialized view, the certificate of {e every}
    candidate strategy — valid and rejected alike ([proposals] keeps
    only views with a valid one).  Empty when the query is not a
    sequence query or no view matches its spec. *)
val certificates :
  Database.t -> Ast.query -> (string * Rfview_analysis.Cert.t list) list

(** Answer the query from the best matching view at the core level
    (per-partition derivation; partitioning reduction when the query
    drops the view's PARTITION BY and concatenation order is sound). *)
val answer : Database.t -> Ast.query -> (Relation.t * proposal) option

(** Derive the answer from one specific proposal (as returned by
    {!proposals}) — lets a caller attribute a derivation failure to the
    entry it came from. *)
val answer_with : Matview.state -> Matview.seq_spec -> proposal -> Relation.t
