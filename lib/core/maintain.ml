(* Incremental maintenance of materialized sequence views (paper §2.3).

   All changes to a sliding-window sequence remain local: an update at raw
   position k touches only sequence positions [k-h, k+l]; insert and
   delete additionally shift the positions right of the edit (a blit, not
   a recomputation).  Cumulative sequences are maintained by suffix
   adjustments.

   The rules need O(w) raw values around the edit position, so the
   maintenance functions take both the view and the raw data and return
   the new pair.  [Recompute] from scratch is provided for comparison (and
   is what the test-suite checks every rule against). *)

type edit =
  | Update of { k : int; value : float }
  | Insert of { k : int; value : float }
  | Delete of { k : int }

let apply_raw (raw : Seqdata.raw) = function
  | Update { k; value } -> Seqdata.raw_update raw ~k ~value
  | Insert { k; value } -> Seqdata.raw_insert raw ~k ~value
  | Delete { k } -> Seqdata.raw_delete raw ~k

let recompute seq raw edit =
  let raw' = apply_raw raw edit in
  (Compute.sequence ~agg:(Seqdata.agg seq) (Seqdata.frame seq) raw', raw')

(* ---- SUM sequences ---- *)

let maintain_sum_sliding ~l ~h seq raw edit =
  let frame = Frame.sliding ~l ~h in
  let raw' = apply_raw raw edit in
  let n' = Seqdata.raw_length raw' in
  let lo', hi' = Seqdata.complete_range frame ~n:n' in
  let values = Array.make (hi' - lo' + 1) 0. in
  (match edit with
   | Update { k; value } ->
     let delta = value -. Seqdata.raw_get raw k in
     for i = lo' to hi' do
       let v = Seqdata.get seq i in
       values.(i - lo') <- (if i >= k - h && i <= k + l then v +. delta else v)
     done
   | Insert { k; value } ->
     for i = lo' to hi' do
       values.(i - lo') <-
         (if i < k - h then Seqdata.get seq i
          else if i <= k + l then
            (* the new value enters the window; the old occupant of the
               upper window slot (now shifted out) leaves it *)
            Seqdata.get seq i +. value -. Seqdata.raw_get raw (i + h)
          else Seqdata.get seq (i - 1))
     done
   | Delete { k } ->
     let xk = Seqdata.raw_get raw k in
     for i = lo' to hi' do
       values.(i - lo') <-
         (if i < k - h then Seqdata.get seq i
          else if i < k + l then Seqdata.get seq i -. xk +. Seqdata.raw_get raw (i + h + 1)
          else Seqdata.get seq (i + 1))
     done);
  (Seqdata.make frame Agg.Sum ~n:n' ~lo:lo' values, raw')

let maintain_sum_cumulative seq raw edit =
  let raw' = apply_raw raw edit in
  let n' = Seqdata.raw_length raw' in
  let values = Array.make (max n' 0) 0. in
  (match edit with
   | Update { k; value } ->
     let delta = value -. Seqdata.raw_get raw k in
     for i = 1 to n' do
       values.(i - 1) <- Seqdata.get seq i +. (if i >= k then delta else 0.)
     done
   | Insert { k; value } ->
     for i = 1 to n' do
       values.(i - 1) <-
         (if i < k then Seqdata.get seq i else Seqdata.get seq (i - 1) +. value)
     done
   | Delete { k } ->
     let xk = Seqdata.raw_get raw k in
     for i = 1 to n' do
       values.(i - 1) <-
         (if i < k then Seqdata.get seq i else Seqdata.get seq (i + 1) -. xk)
     done);
  (Seqdata.make Frame.Cumulative Agg.Sum ~n:n' ~lo:1 values, raw')

(* ---- MIN/MAX sequences (paper §2.3 footnote) ----

   Updates are cheap when the new value dominates (it becomes the new
   extremum) or when the old value was not the extremum; otherwise the
   affected window is recomputed from the new raw data.  Insert/delete
   recompute the affected band (still local). *)

let window_extremum agg raw' frame ~k =
  let wlo, whi = Frame.bounds frame ~k in
  let n' = Seqdata.raw_length raw' in
  Agg.of_span agg (Seqdata.raw_get raw') ~lo:(max 1 wlo) ~hi:(min n' whi)

let maintain_extremum agg frame seq raw edit =
  let raw' = apply_raw raw edit in
  let n' = Seqdata.raw_length raw' in
  let lo', hi' = Seqdata.complete_range frame ~n:n' in
  let values = Array.make (hi' - lo' + 1) Agg.absent in
  let l, h =
    match frame with
    | Frame.Sliding { l; h } -> (l, h)
    | Frame.Cumulative -> (max n' (Seqdata.length seq), 0)
  in
  let dominates v old =
    match agg with
    | Agg.Min -> v <= old
    | Agg.Max -> v >= old
    | Agg.Sum -> assert false
  in
  (match edit with
   | Update { k; value } ->
     let xk = Seqdata.raw_get raw k in
     for i = lo' to hi' do
       let old = Seqdata.get seq i in
       values.(i - lo') <-
         (if i < k - h || i > k + l then old
          else if Agg.is_absent old || dominates value old then
            Agg.combine agg old value
          else if xk <> old then old (* the replaced value was not the extremum *)
          else window_extremum agg raw' frame ~k:i)
     done
   | Insert { k; _ } ->
     for i = lo' to hi' do
       values.(i - lo') <-
         (if i < k - h then Seqdata.get seq i
          else if i <= k + l then window_extremum agg raw' frame ~k:i
          else Seqdata.get seq (i - 1))
     done
   | Delete { k } ->
     for i = lo' to hi' do
       values.(i - lo') <-
         (if i < k - h then Seqdata.get seq i
          else if i < k + l then window_extremum agg raw' frame ~k:i
          else Seqdata.get seq (i + 1))
     done);
  (Seqdata.make frame agg ~n:n' ~lo:lo' values, raw')

(* In-place update of a SUM view by a raw-value delta at position k:
   touches exactly the positions [k-h, k+l] whose windows contain the
   updated value — the O(w) locality the paper's §2.3 rules promise. *)
let apply_update_delta seq ~k ~delta =
  (match Seqdata.agg seq with
   | Agg.Sum -> ()
   | Agg.Min | Agg.Max -> invalid_arg "Maintain.apply_update_delta: SUM sequences only");
  match Seqdata.frame seq with
  | Frame.Sliding { l; h } ->
    let lo = max (Seqdata.stored_lo seq) (k - h)
    and hi = min (Seqdata.stored_hi seq) (k + l) in
    for i = lo to hi do
      Seqdata.set_value seq i (Seqdata.get seq i +. delta)
    done
  | Frame.Cumulative ->
    for i = max (Seqdata.stored_lo seq) k to Seqdata.stored_hi seq do
      Seqdata.set_value seq i (Seqdata.get seq i +. delta)
    done

(* Same, taking and returning the raw data (which is copied). *)
let update_in_place seq raw ~k ~value =
  apply_update_delta seq ~k ~delta:(value -. Seqdata.raw_get raw k);
  Seqdata.raw_update raw ~k ~value

(* ---- Batched spans (multi-row generalization of the rules) ----

   When a batch of edits lands in one partition, the dirty sequence
   positions form contiguous runs; each run [lo, hi] is recomputed with
   one pipelined scan of the new raw data instead of per-edit rule
   applications.  SUM slides the window sum across the run — O(w) to
   seed plus O(1) per position; MIN/MAX evaluate each window directly
   (the extremum has no subtraction rule). *)

let recompute_span ~agg ~l ~h (raw' : Seqdata.raw) ~lo ~hi : float array =
  if hi < lo then [||]
  else
    match agg with
    | Agg.Sum ->
      let out = Array.make (hi - lo + 1) 0. in
      let s = ref 0. in
      (* raw_get is zero outside [1, n], so clamping is free *)
      for j = lo - l to lo + h do
        s := !s +. Seqdata.raw_get raw' j
      done;
      out.(0) <- !s;
      for i = lo + 1 to hi do
        s := !s +. Seqdata.raw_get raw' (i + h) -. Seqdata.raw_get raw' (i - l - 1);
        out.(i - lo) <- !s
      done;
      out
    | Agg.Min | Agg.Max ->
      let n' = Seqdata.raw_length raw' in
      Array.init (hi - lo + 1) (fun idx ->
          let k = lo + idx in
          Agg.of_span agg (Seqdata.raw_get raw') ~lo:(max 1 (k - l))
            ~hi:(min n' (k + h)))

(* Cumulative tail: fold the raw values from [lo] forward, seeded with
   the (clean) aggregate just before the span. *)
let recompute_cumulative_span ~agg (raw' : Seqdata.raw) ~seed ~lo ~hi : float array =
  if hi < lo then [||]
  else begin
    let out = Array.make (hi - lo + 1) 0. in
    let acc = ref seed in
    for i = lo to hi do
      acc := Agg.combine agg !acc (Seqdata.raw_get raw' i);
      out.(i - lo) <- !acc
    done;
    out
  end

(* ---- Dispatcher ---- *)

let apply seq raw edit =
  match Seqdata.agg seq, Seqdata.frame seq with
  | Agg.Sum, Frame.Sliding { l; h } -> maintain_sum_sliding ~l ~h seq raw edit
  | Agg.Sum, Frame.Cumulative -> maintain_sum_cumulative seq raw edit
  | (Agg.Min | Agg.Max), frame -> maintain_extremum (Seqdata.agg seq) frame seq raw edit
