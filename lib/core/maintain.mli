(** Incremental maintenance of materialized sequence views (paper §2.3).

    The rules keep changes local: an update at raw position [k] touches
    only sequence positions [k-h, k+l]; insert and delete additionally
    shift the positions right of the edit (a blit, not a recomputation).
    Maintenance needs O(w) raw values around the edit, so the functions
    take both the view and the raw data and return the new pair. *)

type edit =
  | Update of { k : int; value : float }
  | Insert of { k : int; value : float }  (** positions [>= k] shift right *)
  | Delete of { k : int }                 (** positions [> k] shift left *)

(** Apply an edit to the raw data alone. *)
val apply_raw : Seqdata.raw -> edit -> Seqdata.raw

(** Apply an edit incrementally using the §2.3 rules.  Dispatches on the
    view's aggregate and frame; MIN/MAX updates use the cheap monotone
    path where possible and recompute the affected band otherwise
    (paper §2.3 footnote). *)
val apply : Seqdata.t -> Seqdata.raw -> edit -> Seqdata.t * Seqdata.raw

(** Full recomputation after the edit — the baseline the incremental
    rules are tested and benchmarked against. *)
val recompute : Seqdata.t -> Seqdata.raw -> edit -> Seqdata.t * Seqdata.raw

(** In-place update of a SUM view by a raw-value delta at position [k]:
    touches exactly the O(w) positions whose windows contain [k].
    @raise Invalid_argument on MIN/MAX sequences. *)
val apply_update_delta : Seqdata.t -> k:int -> delta:float -> unit

(** [update_in_place seq raw ~k ~value] mutates [seq] via
    {!apply_update_delta} and returns the updated raw data. *)
val update_in_place : Seqdata.t -> Seqdata.raw -> k:int -> value:float -> Seqdata.raw

(** {1 Batched spans}

    Multi-row generalization of the rules: a batch of edits dirties
    contiguous runs of sequence positions, and each run is recomputed
    with a single pipelined scan of the {e new} raw data. *)

(** [recompute_span ~agg ~l ~h raw' ~lo ~hi] computes the sliding
    aggregate for positions [lo..hi] over [raw'].  SUM slides the
    window sum across the run (O(w) to seed, O(1) per position);
    MIN/MAX evaluate each window directly.  Empty when [hi < lo]. *)
val recompute_span :
  agg:Agg.t -> l:int -> h:int -> Seqdata.raw -> lo:int -> hi:int -> float array

(** [recompute_cumulative_span ~agg raw' ~seed ~lo ~hi] computes the
    cumulative aggregate for positions [lo..hi], folding forward from
    [seed] (the clean aggregate just before [lo]; use [0.] for SUM at
    [lo = 1] and {!Agg.absent} for MIN/MAX at [lo = 1]). *)
val recompute_cumulative_span :
  agg:Agg.t -> Seqdata.raw -> seed:float -> lo:int -> hi:int -> float array
