(** The credit-card workload of the paper's introduction: a fact table
    [c_transactions] and a dimension table [l_locations] mapping shops to
    cities and regions. *)

open Rfview_relalg
module Db := Rfview_engine.Database

type config = {
  seed : int;
  customers : int;
  locations : int;
  days : int;  (** observation window, starting 2002-01-01 *)
  transactions_per_day : int;
}

val default_config : config

val locations_schema : Schema.t
val transactions_schema : Schema.t

(** Create and populate both tables. *)
val load : ?config:config -> Db.t -> unit

(** {!load} against a façade session — tooling on the typed API never
    has to reach the engine handle. *)
val load_session : ?config:config -> Rfview.Session.t -> unit

(** The reporting-function query from the paper's introduction (overall
    and per-month cumulative sums, centered 3-day and prospective 7-day
    moving averages) for one customer. *)
val intro_query : ?custid:int -> unit -> string
