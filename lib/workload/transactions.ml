(* The credit-card workload of the paper's introduction: a fact table
   [c_transactions] (credit-card transactions) and a dimension table
   [l_locations] mapping shops to cities and regions. *)

open Rfview_relalg
module Db = Rfview_engine.Database

type config = {
  seed : int;
  customers : int;
  locations : int;
  days : int;               (* observation window, starting 2002-01-01 *)
  transactions_per_day : int;
}

let default_config =
  { seed = 2002; customers = 50; locations = 20; days = 90; transactions_per_day = 40 }

let regions = [ "North"; "South"; "East"; "West" ]

let cities =
  [ "Erlangen"; "Nuremberg"; "Munich"; "Berlin"; "Hamburg"; "Dresden"; "Cologne";
    "Frankfurt"; "Stuttgart"; "Leipzig" ]

let locations_schema =
  Schema.make
    [
      Schema.column "l_locid" Dtype.Int;
      Schema.column "l_city" Dtype.String;
      Schema.column "l_region" Dtype.String;
    ]

let transactions_schema =
  Schema.make
    [
      Schema.column "c_custid" Dtype.Int;
      Schema.column "c_locid" Dtype.Int;
      Schema.column "c_date" Dtype.Date;
      Schema.column "c_transaction" Dtype.Float;
    ]

let generate_locations prng config : Row.t array =
  Array.init config.locations (fun i ->
      [|
        Value.Int (i + 1);
        Value.String (Prng.choose prng cities);
        Value.String (Prng.choose prng regions);
      |])

let generate_transactions prng config : Row.t array =
  let start = Value.date_of_ymd 2002 1 1 in
  let rows = ref [] in
  for day = 0 to config.days - 1 do
    for _ = 1 to config.transactions_per_day do
      let amount =
        Float.max 1. (Prng.gaussian prng ~mean:85. ~stddev:60.)
        |> fun f -> Float.round (f *. 100.) /. 100.
      in
      rows :=
        [|
          Value.Int (Prng.int_range prng ~lo:1 ~hi:config.customers);
          Value.Int (Prng.int_range prng ~lo:1 ~hi:config.locations);
          Value.Date (start + day);
          Value.Float amount;
        |]
        :: !rows
    done
  done;
  Array.of_list (List.rev !rows)

(* Create and populate both tables in [db]. *)
let load ?(config = default_config) db =
  let prng = Prng.create ~seed:config.seed in
  ignore
    (Db.exec db "CREATE TABLE l_locations (l_locid INT, l_city VARCHAR, l_region VARCHAR)");
  ignore
    (Db.exec db
       "CREATE TABLE c_transactions (c_custid INT, c_locid INT, c_date DATE, \
        c_transaction FLOAT)");
  Db.load_table db ~table:"l_locations" (generate_locations prng config);
  Db.load_table db ~table:"c_transactions" (generate_transactions prng config)

(* Same, against a façade session.  The engine handle never escapes the
   library, so callers stay alert-clean. *)
let load_session ?config session =
  load ?config ((Rfview.Session.Unsafe.database [@alert "-unsafe"]) session)

(* The reporting-function query from the paper's introduction, for a given
   customer. *)
let intro_query ?(custid = 4711) () =
  Printf.sprintf
    "SELECT c_date, c_transaction, \
     SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_total, \
     SUM(c_transaction) OVER (PARTITION BY MONTH(c_date) ORDER BY c_date ROWS \
     UNBOUNDED PRECEDING) AS cum_sum_month, \
     AVG(c_transaction) OVER (PARTITION BY MONTH(c_date), l_region ORDER BY c_date \
     ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg, \
     AVG(c_transaction) OVER (ORDER BY c_date ROWS BETWEEN CURRENT ROW AND 6 \
     FOLLOWING) AS c_7mvg_avg \
     FROM c_transactions, l_locations \
     WHERE c_locid = l_locid AND c_custid = %d \
     ORDER BY c_date"
    custid
