(** Sequence-table generators: the (pos, val) tables of the paper's
    evaluation (Tables 1 and 2). *)

module Core := Rfview_core
module Db := Rfview_engine.Database

type distribution =
  | Uniform of { lo : float; hi : float }
  | Gaussian of { mean : float; stddev : float }
  | Integers of { lo : int; hi : int }
      (** integer-valued floats: keeps float sums exact in tests *)

(** Deterministic raw values (default seed 42, small integers). *)
val raw_values : ?seed:int -> ?dist:distribution -> int -> float array

val seq_schema : Rfview_relalg.Schema.t
val seq_rows : float array -> Rfview_relalg.Row.t array

(** Create and fill a (pos INT, val FLOAT) table named [name] (default
    ["seq"]); [indexed] adds an ordered index on [pos]. *)
val create_seq_table : ?name:string -> ?indexed:bool -> Db.t -> float array -> unit

(** Store a {e complete} materialized sequence (header and trailer
    included, §3.2) in a table (default ["matseq"]). *)
val create_matseq_table : ?name:string -> ?indexed:bool -> Db.t -> Core.Seqdata.t -> unit

(** {!create_seq_table} against a façade session. *)
val create_seq_table_session :
  ?name:string -> ?indexed:bool -> Rfview.Session.t -> float array -> unit

(** {!create_matseq_table} against a façade session. *)
val create_matseq_table_session :
  ?name:string -> ?indexed:bool -> Rfview.Session.t -> Core.Seqdata.t -> unit
