(** The chaos harness: randomized DML streams against a shadow oracle,
    with faults injected at the engine's registered sites.

    The stream runs INSERT/UPDATE/DELETE/CSV-load/REFRESH statements
    over a [(grp, pos, val)] sequence table carrying three materialized
    sequence views and a derivation cache, mirroring each successful
    statement's effect onto a plain row-list oracle.  After every
    statement it checks, with injection suspended, that

    - the base table equals the oracle (failed statements rolled back
      completely, successful ones applied completely);
    - every non-stale materialized view equals full recomputation;
    - reading a stale (quarantined) view heals it to exactly the
      recomputed contents;
    - periodic cache answers equal uncached execution.

    Violations raise {!Divergence}; a completed run returns counters
    proving the interesting paths were actually exercised. *)

module Db := Rfview_engine.Database

exception Divergence of string

type config = {
  seed : int;
  ops : int;          (** length of the DML stream *)
  cache_every : int;  (** probe the cache every Nth statement *)
  batch : int;
      (** [> 1]: run the stream in [Db.with_batch] chunks of this many
          statements, with all consistency checks and cache probes at
          chunk (batch-commit) boundaries; [<= 1] (default 0) keeps the
          per-statement stream *)
}

val default_config : config

type report = {
  statements : int;    (** statements attempted *)
  failed : int;        (** statements that raised (and rolled back) *)
  quarantines : int;   (** views observed stale after a statement *)
  heals : int;         (** stale views healed by a read *)
  cache_probes : int;
  cache_hits : int;
  checks : int;        (** invariant checkpoints passed *)
}

(** Run one stream; [inject] arms one fault site for the whole run
    (always disarmed again on exit).  [sanitize] enables the
    differential sanitizer ({!Rfview_analysis.Sanitize}) for the run:
    every query the harness executes — cache probes, view recomputation
    checks, heal reads — then has each sub-plan's concrete relation
    checked against the abstract interpreter's state.
    @raise Divergence on any consistency violation.
    @raise Rfview_analysis.Sanitize.Disagreement
      on any abstract/concrete mismatch (with [sanitize]). *)
val run :
  ?config:config ->
  ?inject:string * Rfview_engine.Fault.policy ->
  ?sanitize:bool ->
  unit ->
  report

(** {1 Crash-recovery chaos}

    The same stream and oracle over a {e durable} database directory,
    with simulated crashes: the in-memory handle is abandoned (the
    engine fsyncs per statement, so that is an accurate kill model) and
    the directory reopened through recovery.  Crash variants: clean
    kill; a torn mid-record WAL tail (must be truncated, never
    replayed); armed [wal.append]/[wal.fsync] (the statement must roll
    back and stay off disk); a faulting checkpoint write (the previous
    checkpoint plus the longer WAL must still recover); a faulting first
    recovery ([recover.replay]) followed by a clean retry.  After every
    recovery the database must equal the oracle at the last committed
    statement. *)

type crash_config = {
  cc_seed : int;
  cc_ops : int;               (** statements across the whole run *)
  cc_crash_every : int;       (** crash once per this many statements *)
  cc_checkpoint_every : int;  (** checkpoint period in statements; 0 = never *)
  cc_batch : int;
      (** [> 1]: group-commit the stream in chunks of this many
          statements; checks, checkpoints and crashes happen at batch
          boundaries (there is never an open batch at a crash).
          [<= 1] (default 0) keeps the per-statement stream *)
}

val default_crash_config : crash_config

type crash_report = {
  cr_statements : int;
  cr_crashes : int;            (** crash + recovery cycles *)
  cr_torn : int;               (** recoveries that truncated a torn tail *)
  cr_wal_faults : int;         (** statements rejected by armed WAL sites *)
  cr_checkpoints : int;        (** successful checkpoints *)
  cr_checkpoint_faults : int;  (** checkpoint attempts killed by the site *)
  cr_recover_faults : int;     (** first recovery attempts killed mid-replay *)
  cr_replayed : int;           (** WAL records replayed across recoveries *)
  cr_quarantined : int;        (** views restored in quarantine *)
  cr_heals : int;
}

(** Run one crash-recovery stream in [dir] (created if missing, previous
    run's files removed).  @raise Divergence on any violation. *)
val run_crash : ?config:crash_config -> dir:string -> unit -> crash_report

(** {1 Replication chaos}

    The same stream over a durable primary shipped to N replica feeds
    ({!Rfview_replica}), with the oracle's state recorded {e at every
    commit boundary, keyed by LSN}.  The central assertion: every read
    any replica serves, tagged with LSN [l], equals the oracle's state
    at exactly [l] — replicas may be stale, they may never be wrong.
    Chaos events: replica kills (rebuilt from checkpoint artifact +
    record suffix), feed corruption (must quarantine, then heal via
    resync), lag injection (bounded reads must refuse with [Stale]),
    interrupted polls ([replica.apply]) and pumps ([ship.append]), and
    primary crash + recovery with feed reattach.  The run ends with
    failover: the freshest replica is promoted and its directory must
    reproduce the oracle at the promoted LSN, losing at most the
    never-pumped tail. *)

type replica_config = {
  rp_seed : int;
  rp_ops : int;               (** statements across the whole run *)
  rp_replicas : int;          (** feeds fanned out *)
  rp_pump_every : int;        (** ship once per this many statements *)
  rp_read_every : int;        (** replica read once per this many *)
  rp_event_every : int;       (** chaos event once per this many *)
  rp_checkpoint_bytes : int;  (** primary compaction threshold; 0 = off *)
  rp_batch : int;             (** [> 1]: group-commit chunks of this size *)
  rp_max_lag : int;           (** staleness bound for bounded reads *)
}

val default_replica_config : replica_config

type replica_report = {
  rp_statements : int;
  rp_pumps : int;
  rp_deliveries : int;        (** (record, feed) deliveries shipped *)
  rp_reads : int;             (** replica reads served and verified *)
  rp_stale_reads : int;       (** reads refused by the staleness bound *)
  rp_kills : int;             (** replica kill + rebootstrap cycles *)
  rp_corruptions : int;       (** feed entries corrupted *)
  rp_quarantines : int;       (** replica quarantines observed *)
  rp_resyncs : int;           (** resync artifacts shipped *)
  rp_ship_faults : int;       (** pumps interrupted by [ship.*] sites *)
  rp_apply_faults : int;      (** polls interrupted by [replica.apply] *)
  rp_primary_crashes : int;   (** primary crash + reattach cycles *)
  rp_compactions : int;       (** byte-triggered checkpoints observed *)
  rp_promoted_lsn : int;      (** failover: LSN the promoted replica held *)
  rp_lost_tail : int;         (** failover: records lost with the primary *)
}

(** Run one replication-chaos stream under [dir] (created if missing;
    [dir/primary], [dir/promoted] and the feed files are reset).
    @raise Divergence on any violation — including any replica read
    that is not a true historical state at its reported LSN. *)
val run_replica : ?config:replica_config -> dir:string -> unit -> replica_report

(** A textual dump of everything a statement may mutate: table rows in
    physical order, view contents, quarantine flags, incremental-state
    presence.  Equal fingerprints iff the logical database states are
    identical — the rollback-idempotence oracle for the property tests. *)
val fingerprint : Db.t -> string

(** {!fingerprint} of a façade session's database. *)
val fingerprint_session : Rfview.Session.t -> string

(** {1 Storage-fault chaos}

    The same stream and oracle over a durable primary whose every disk
    byte moves through the {!Rfview_engine.Io} seam, with the simulated
    disk driving the faults the other harnesses cannot express:
    one-shot EIO at the [io.*] sites (the statement must roll back),
    disk-full episodes (the session must drop to read-only degraded
    mode and resume via the space probe once the budget clears), power
    cuts that lose every unsynced byte (recovery must reproduce the
    oracle and scrub clean), bit rot in the WAL, WAL deletion, and feed
    corruption.  One feed is kept pumped to the tip as the repair peer;
    every WAL repair is checked for {e bit}-identity against the
    pre-damage bytes, and every scrub/repair cycle must end clean. *)

type storage_config = {
  st_seed : int;
  st_ops : int;               (** statements across the whole run *)
  st_event_every : int;       (** storage event once per this many *)
  st_checkpoint_every : int;  (** checkpoint period in statements; 0 = never *)
  st_batch : int;             (** [> 1]: group-commit chunks of this size *)
}

val default_storage_config : storage_config

type storage_report = {
  st_statements : int;
  st_io_faults : int;         (** armed [io.*] faults: statement rolled back *)
  st_enospc : int;            (** disk-full episodes entered *)
  st_degraded_writes : int;   (** writes rejected while degraded *)
  st_resumes : int;           (** degraded → healthy via the space probe *)
  st_crashes : int;           (** power cuts (lost unsynced bytes) survived *)
  st_corruptions : int;       (** artifact bytes the harness damaged *)
  st_scrub_findings : int;    (** damage items the scrubber reported *)
  st_repairs : int;           (** WAL rebuilds / truncations performed *)
  st_reseeds : int;           (** feeds re-seeded from the primary *)
  st_checks : int;            (** invariant checkpoints passed *)
}

(** Run one storage-fault stream under [dir] (created if missing;
    [dir/primary] and the feed file are reset).  The simulated disk is
    reset on entry and exit.  @raise Divergence on any violation —
    including a repaired WAL that is not bit-identical to its
    pre-damage bytes. *)
val run_storage : ?config:storage_config -> dir:string -> unit -> storage_report
