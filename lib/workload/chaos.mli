(** The chaos harness: randomized DML streams against a shadow oracle,
    with faults injected at the engine's registered sites.

    The stream runs INSERT/UPDATE/DELETE/CSV-load/REFRESH statements
    over a [(grp, pos, val)] sequence table carrying three materialized
    sequence views and a derivation cache, mirroring each successful
    statement's effect onto a plain row-list oracle.  After every
    statement it checks, with injection suspended, that

    - the base table equals the oracle (failed statements rolled back
      completely, successful ones applied completely);
    - every non-stale materialized view equals full recomputation;
    - reading a stale (quarantined) view heals it to exactly the
      recomputed contents;
    - periodic cache answers equal uncached execution.

    Violations raise {!Divergence}; a completed run returns counters
    proving the interesting paths were actually exercised. *)

module Db := Rfview_engine.Database

exception Divergence of string

type config = {
  seed : int;
  ops : int;          (** length of the DML stream *)
  cache_every : int;  (** probe the cache every Nth statement *)
  batch : int;
      (** [> 1]: run the stream in [Db.with_batch] chunks of this many
          statements, with all consistency checks and cache probes at
          chunk (batch-commit) boundaries; [<= 1] (default 0) keeps the
          per-statement stream *)
}

val default_config : config

type report = {
  statements : int;    (** statements attempted *)
  failed : int;        (** statements that raised (and rolled back) *)
  quarantines : int;   (** views observed stale after a statement *)
  heals : int;         (** stale views healed by a read *)
  cache_probes : int;
  cache_hits : int;
  checks : int;        (** invariant checkpoints passed *)
}

(** Run one stream; [inject] arms one fault site for the whole run
    (always disarmed again on exit).  [sanitize] enables the
    differential sanitizer ({!Rfview_analysis.Sanitize}) for the run:
    every query the harness executes — cache probes, view recomputation
    checks, heal reads — then has each sub-plan's concrete relation
    checked against the abstract interpreter's state.
    @raise Divergence on any consistency violation.
    @raise Rfview_analysis.Sanitize.Disagreement
      on any abstract/concrete mismatch (with [sanitize]). *)
val run :
  ?config:config ->
  ?inject:string * Rfview_engine.Fault.policy ->
  ?sanitize:bool ->
  unit ->
  report

(** {1 Crash-recovery chaos}

    The same stream and oracle over a {e durable} database directory,
    with simulated crashes: the in-memory handle is abandoned (the
    engine fsyncs per statement, so that is an accurate kill model) and
    the directory reopened through recovery.  Crash variants: clean
    kill; a torn mid-record WAL tail (must be truncated, never
    replayed); armed [wal.append]/[wal.fsync] (the statement must roll
    back and stay off disk); a faulting checkpoint write (the previous
    checkpoint plus the longer WAL must still recover); a faulting first
    recovery ([recover.replay]) followed by a clean retry.  After every
    recovery the database must equal the oracle at the last committed
    statement. *)

type crash_config = {
  cc_seed : int;
  cc_ops : int;               (** statements across the whole run *)
  cc_crash_every : int;       (** crash once per this many statements *)
  cc_checkpoint_every : int;  (** checkpoint period in statements; 0 = never *)
  cc_batch : int;
      (** [> 1]: group-commit the stream in chunks of this many
          statements; checks, checkpoints and crashes happen at batch
          boundaries (there is never an open batch at a crash).
          [<= 1] (default 0) keeps the per-statement stream *)
}

val default_crash_config : crash_config

type crash_report = {
  cr_statements : int;
  cr_crashes : int;            (** crash + recovery cycles *)
  cr_torn : int;               (** recoveries that truncated a torn tail *)
  cr_wal_faults : int;         (** statements rejected by armed WAL sites *)
  cr_checkpoints : int;        (** successful checkpoints *)
  cr_checkpoint_faults : int;  (** checkpoint attempts killed by the site *)
  cr_recover_faults : int;     (** first recovery attempts killed mid-replay *)
  cr_replayed : int;           (** WAL records replayed across recoveries *)
  cr_quarantined : int;        (** views restored in quarantine *)
  cr_heals : int;
}

(** Run one crash-recovery stream in [dir] (created if missing, previous
    run's files removed).  @raise Divergence on any violation. *)
val run_crash : ?config:crash_config -> dir:string -> unit -> crash_report

(** A textual dump of everything a statement may mutate: table rows in
    physical order, view contents, quarantine flags, incremental-state
    presence.  Equal fingerprints iff the logical database states are
    identical — the rollback-idempotence oracle for the property tests. *)
val fingerprint : Db.t -> string
