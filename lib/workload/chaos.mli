(** The chaos harness: randomized DML streams against a shadow oracle,
    with faults injected at the engine's registered sites.

    The stream runs INSERT/UPDATE/DELETE/CSV-load/REFRESH statements
    over a [(grp, pos, val)] sequence table carrying three materialized
    sequence views and a derivation cache, mirroring each successful
    statement's effect onto a plain row-list oracle.  After every
    statement it checks, with injection suspended, that

    - the base table equals the oracle (failed statements rolled back
      completely, successful ones applied completely);
    - every non-stale materialized view equals full recomputation;
    - reading a stale (quarantined) view heals it to exactly the
      recomputed contents;
    - periodic cache answers equal uncached execution.

    Violations raise {!Divergence}; a completed run returns counters
    proving the interesting paths were actually exercised. *)

module Db := Rfview_engine.Database

exception Divergence of string

type config = {
  seed : int;
  ops : int;          (** length of the DML stream *)
  cache_every : int;  (** probe the cache every Nth statement *)
}

val default_config : config

type report = {
  statements : int;    (** statements attempted *)
  failed : int;        (** statements that raised (and rolled back) *)
  quarantines : int;   (** views observed stale after a statement *)
  heals : int;         (** stale views healed by a read *)
  cache_probes : int;
  cache_hits : int;
  checks : int;        (** invariant checkpoints passed *)
}

(** Run one stream; [inject] arms one fault site for the whole run
    (always disarmed again on exit).
    @raise Divergence on any consistency violation. *)
val run : ?config:config -> ?inject:string * Rfview_engine.Fault.policy -> unit -> report

(** A textual dump of everything a statement may mutate: table rows in
    physical order, view contents, quarantine flags, incremental-state
    presence.  Equal fingerprints iff the logical database states are
    identical — the rollback-idempotence oracle for the property tests. *)
val fingerprint : Db.t -> string
