(* Sequence-table generators: the (pos, val) tables of the paper's
   evaluation (Tables 1 and 2). *)

open Rfview_relalg
module Core = Rfview_core
module Db = Rfview_engine.Database

type distribution =
  | Uniform of { lo : float; hi : float }
  | Gaussian of { mean : float; stddev : float }
  | Integers of { lo : int; hi : int }

let sample prng = function
  | Uniform { lo; hi } -> Prng.float_range prng ~lo ~hi
  | Gaussian { mean; stddev } -> Prng.gaussian prng ~mean ~stddev
  | Integers { lo; hi } -> float_of_int (Prng.int_range prng ~lo ~hi)

(* Raw values for a sequence of length n. *)
let raw_values ?(seed = 42) ?(dist = Integers { lo = -50; hi = 50 }) n :
    float array =
  let prng = Prng.create ~seed in
  Array.init n (fun _ -> sample prng dist)

let seq_schema =
  Schema.make [ Schema.column "pos" Dtype.Int; Schema.column "val" Dtype.Float ]

let seq_rows (values : float array) : Row.t array =
  Array.mapi (fun i v -> [| Value.Int (i + 1); Value.Float v |]) values

(* Create and fill a (pos, val) sequence table. *)
let create_seq_table ?(name = "seq") ?(indexed = false) db (values : float array) =
  ignore (Db.exec db (Printf.sprintf "CREATE TABLE %s (pos INT, val FLOAT)" name));
  Db.load_table db ~table:name (seq_rows values);
  if indexed then
    ignore (Db.exec db (Printf.sprintf "CREATE INDEX %s_pos ON %s (pos)" name name))

(* Create and fill a table holding a *complete* materialized sequence
   (header and trailer included), as required by the derivation patterns
   of §3.2. *)
let create_matseq_table ?(name = "matseq") ?(indexed = false) db
    (seq : Core.Seqdata.t) =
  ignore (Db.exec db (Printf.sprintf "CREATE TABLE %s (pos INT, val FLOAT)" name));
  let lo = Core.Seqdata.stored_lo seq and hi = Core.Seqdata.stored_hi seq in
  let rows =
    Array.init (hi - lo + 1) (fun i ->
        [| Value.Int (lo + i); Value.Float (Core.Seqdata.get seq (lo + i)) |])
  in
  Db.load_table db ~table:name rows;
  if indexed then
    ignore (Db.exec db (Printf.sprintf "CREATE INDEX %s_pos ON %s (pos)" name name))

(* Façade-session variants: the engine handle never escapes the
   library, so callers on the typed API stay alert-clean. *)
let session_db s = (Rfview.Session.Unsafe.database [@alert "-unsafe"]) s

let create_seq_table_session ?name ?indexed s values =
  create_seq_table ?name ?indexed (session_db s) values

let create_matseq_table_session ?name ?indexed s seq =
  create_matseq_table ?name ?indexed (session_db s) seq
