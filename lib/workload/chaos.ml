(* The chaos harness: randomized DML streams against a shadow oracle,
   with faults injected at the engine's registered sites.

   The stream runs INSERT/UPDATE/DELETE/CSV-load/REFRESH statements over
   a (grp, pos, val) sequence table carrying three materialized sequence
   views (cumulative SUM per group, sliding AVG, sliding MIN) and a
   derivation cache.  A *shadow oracle* — a plain row list to which each
   statement's effect is applied only when the engine reports success —
   tracks what the base table must contain.

   After every statement the harness checks, with injection suspended:
   1. the base table equals the oracle (a failed statement must have
      rolled back completely, a successful one applied completely);
   2. every non-stale materialized view equals full recomputation of its
      definition;
   3. reading a stale (quarantined) view heals it: the lazy refresh
      yields exactly the recomputed contents;
   4. periodically, a cache answer equals uncached execution.

   Any violation raises [Divergence].  Nothing here depends on the test
   framework, so the harness also serves examples and the CLI. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Catalog = Rfview_engine.Catalog
module Cache = Rfview_engine.Cache
module Csv = Rfview_engine.Csv
module Fault = Rfview_engine.Fault
module Parser = Rfview_sql.Parser

exception Divergence of string

let divergence fmt = Format.kasprintf (fun s -> raise (Divergence s)) fmt

type config = {
  seed : int;
  ops : int;               (* length of the DML stream *)
  cache_every : int;       (* probe the cache every Nth statement *)
  batch : int;             (* > 1: group-commit chunks of this many
                              statements; checks at chunk boundaries *)
}

let default_config = { seed = 11; ops = 60; cache_every = 5; batch = 0 }

type report = {
  statements : int;        (* statements attempted *)
  failed : int;            (* statements that raised (and rolled back) *)
  quarantines : int;       (* views observed stale after a statement *)
  heals : int;             (* stale views healed by a read *)
  cache_probes : int;
  cache_hits : int;
  checks : int;            (* invariant checkpoints passed *)
}

(* ---- Schema and views ---- *)

let setup_sql =
  [
    "CREATE TABLE seq (grp INT, pos INT, val FLOAT)";
    "CREATE MATERIALIZED VIEW v_cum AS SELECT grp, pos, val, SUM(val) OVER \
     (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
    "CREATE MATERIALIZED VIEW v_avg AS SELECT pos, val, AVG(val) OVER \
     (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS a FROM seq";
    "CREATE MATERIALIZED VIEW v_min AS SELECT pos, val, MIN(val) OVER \
     (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS m FROM seq";
    (* derived-delta views (DESIGN.md §14): a static dimension table, a
       join view and a GROUP BY view, so generalized IVM runs under the
       same fault sites, sanitizer checks and crash harness as the
       sequence machinery *)
    "CREATE TABLE dim (grp INT, tag VARCHAR)";
    "INSERT INTO dim VALUES (1, 'low'), (2, 'mid'), (3, 'high')";
    "CREATE MATERIALIZED VIEW v_tag AS SELECT s.grp AS grp, s.pos AS pos, \
     s.val AS val, d.tag AS tag FROM seq s JOIN dim d ON s.grp = d.grp";
    "CREATE MATERIALIZED VIEW v_tot AS SELECT grp, SUM(val) AS total, \
     COUNT(*) AS n FROM seq GROUP BY grp";
  ]

(* the query whose cache entry the probes derive from, and two probes
   derivable from it (same frame; contained frame) *)
let cache_seed_query =
  "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
   FOLLOWING) AS s FROM seq"

let cache_probe_queries =
  [
    cache_seed_query;
    "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
     FOLLOWING) AS s FROM seq";
  ]

(* ---- The DML stream ---- *)

type op =
  | Insert of { grp : int; pos : int; value : float }
  | Insert_null of { grp : int; pos : int }  (* exercises the full-refresh fallback *)
  | Update of { pos : int; value : float }
  | Delete of { pos : int }
  | Load_csv of (int * int * float) list
  | Refresh of string

(* Integer-valued floats only: their SQL and CSV text round-trips
   exactly, keeping oracle and engine bit-identical. *)
let gen_value prng = float_of_int (Prng.int_range prng ~lo:(-50) ~hi:50)
let gen_pos prng = Prng.int_range prng ~lo:1 ~hi:20
let gen_grp prng = Prng.int_range prng ~lo:1 ~hi:3

let gen_op prng : op =
  match Prng.int prng 20 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
    Insert { grp = gen_grp prng; pos = gen_pos prng; value = gen_value prng }
  | 7 | 8 | 9 | 10 -> Update { pos = gen_pos prng; value = gen_value prng }
  | 11 | 12 | 13 -> Delete { pos = gen_pos prng }
  | 14 | 15 ->
    let n = Prng.int_range prng ~lo:1 ~hi:4 in
    Load_csv
      (List.init n (fun _ -> (gen_grp prng, gen_pos prng, gen_value prng)))
  | 16 -> Insert_null { grp = gen_grp prng; pos = gen_pos prng }
  | _ -> Refresh (Prng.choose prng [ "v_cum"; "v_avg"; "v_min"; "v_tag"; "v_tot" ])

let sql_of_op = function
  | Insert { grp; pos; value } ->
    Printf.sprintf "INSERT INTO seq VALUES (%d, %d, %g)" grp pos value
  | Insert_null { grp; pos } ->
    Printf.sprintf "INSERT INTO seq VALUES (%d, %d, NULL)" grp pos
  | Update { pos; value } ->
    Printf.sprintf "UPDATE seq SET val = %g WHERE pos = %d" value pos
  | Delete { pos } -> Printf.sprintf "DELETE FROM seq WHERE pos = %d" pos
  | Load_csv _ -> "(csv load)"
  | Refresh name -> Printf.sprintf "REFRESH MATERIALIZED VIEW %s" name

(* ---- The shadow oracle ----

   Plain rows in engine insertion order; every constructor mirrors the
   engine's statement semantics exactly. *)

let row grp pos value : Row.t = [| Value.Int grp; Value.Int pos; value |]

let apply_oracle (rows : Row.t list) (op : op) : Row.t list =
  match op with
  | Insert { grp; pos; value } -> rows @ [ row grp pos (Value.Float value) ]
  | Insert_null { grp; pos } -> rows @ [ row grp pos Value.Null ]
  | Update { pos; value } ->
    List.map
      (fun r ->
        if Value.equal (Row.get r 1) (Value.Int pos) then
          [| Row.get r 0; Row.get r 1; Value.Float value |]
        else r)
      rows
  | Delete { pos } ->
    List.filter (fun r -> not (Value.equal (Row.get r 1) (Value.Int pos))) rows
  | Load_csv batch ->
    rows @ List.map (fun (g, p, v) -> row g p (Value.Float v)) batch
  | Refresh _ -> rows

let csv_of_batch batch =
  "grp,pos,val\n"
  ^ String.concat ""
      (List.map (fun (g, p, v) -> Printf.sprintf "%d,%d,%g\n" g p v) batch)

(* ---- Invariant checks ---- *)

let schema_seq =
  Schema.make
    [
      Schema.column "grp" Dtype.Int;
      Schema.column "pos" Dtype.Int;
      Schema.column "val" Dtype.Float;
    ]

let check_base db (oracle : Row.t list) ~context =
  let actual = Db.query db "SELECT grp, pos, val FROM seq" in
  let expected = Relation.of_array schema_seq (Array.of_list oracle) in
  if not (Relation.equal_bag actual expected) then
    divergence "%s: base table diverged from the shadow oracle\nengine:\n%s\noracle:\n%s"
      context
      (Relation.render (Relation.sorted_by_all actual))
      (Relation.render (Relation.sorted_by_all expected))

let check_views db ~context =
  List.iter
    (fun (v : Catalog.view) ->
      if v.Catalog.materialized && not v.Catalog.stale then
        match v.Catalog.contents with
        | None -> divergence "%s: view %s has no contents" context v.Catalog.view_name
        | Some contents ->
          let recomputed = Db.run_query db v.Catalog.definition in
          if not (Relation.equal_bag contents recomputed) then
            divergence
              "%s: non-stale view %s diverged from full recomputation\nstored:\n%s\nrecomputed:\n%s"
              context v.Catalog.view_name
              (Relation.render (Relation.sorted_by_all contents))
              (Relation.render (Relation.sorted_by_all recomputed)))
    (Catalog.all_views (Db.catalog db))

(* Read every stale view, which must heal it (lazy full refresh), and
   compare the healed contents with recomputation.  Returns the number
   of views healed. *)
let heal_stale db ~context =
  let stale = Db.stale_views db in
  List.iter
    (fun name ->
      let read = Db.query db (Printf.sprintf "SELECT * FROM %s" name) in
      if Db.is_stale db name then
        divergence "%s: reading stale view %s did not heal it" context name;
      let v = Catalog.view (Db.catalog db) name in
      let recomputed = Db.run_query db v.Catalog.definition in
      if not (Relation.equal_bag read recomputed) then
        divergence "%s: healed view %s diverged from full recomputation" context name)
    stale;
  List.length stale

(* ---- The harness ---- *)

let run ?(config = default_config) ?inject ?(sanitize = false) () : report =
  (* the differential sanitizer hooks into plan_query, so enabling it
     here covers every query the harness runs: cache probes, view
     recomputation checks and heal reads *)
  let sanitize_was = Rfview_analysis.Sanitize.enabled () in
  if sanitize then Rfview_analysis.Sanitize.enable ();
  Fun.protect
    ~finally:(fun () ->
      if sanitize && not sanitize_was then Rfview_analysis.Sanitize.disable ())
  @@ fun () ->
  let db = Db.create () in
  let cache = Cache.create ~capacity:4 db in
  List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql;
  (* seed the cache so probes can hit by derivation *)
  ignore (Cache.query cache cache_seed_query);
  let prng = Prng.create ~seed:config.seed in
  let oracle = ref [] in
  let report =
    ref
      {
        statements = 0;
        failed = 0;
        quarantines = 0;
        heals = 0;
        cache_probes = 0;
        cache_hits = 0;
        checks = 0;
      }
  in
  (match inject with
   | Some (site, policy) -> Fault.arm site policy
   | None -> ());
  Fun.protect
    ~finally:(fun () -> Fault.disarm_all ())
    (fun () ->
      let last_sql = ref "(none)" in
      let exec_op () =
        let op = gen_op prng in
        last_sql := sql_of_op op;
        let applied =
          match op with
          | Load_csv batch ->
            (match Csv.import_string db ~table:"seq" (csv_of_batch batch) with
             | _ -> true
             | exception _ -> false)
          | op ->
            (match Db.exec db (sql_of_op op) with
             | _ -> true
             | exception _ -> false)
        in
        if applied then oracle := apply_oracle !oracle op
        else report := { !report with failed = !report.failed + 1 };
        report := { !report with statements = !report.statements + 1 }
      in
      (* [batch <= 1]: one statement per chunk, checks after each —
         the original per-statement stream.  [batch > 1]: chunks run
         inside [with_batch] (group commit, one propagation per view)
         and the invariants are only checkable at commit boundaries. *)
      let i = ref 1 in
      while !i <= config.ops do
        let chunk =
          if config.batch <= 1 then 1
          else min config.batch (config.ops - !i + 1)
        in
        let first = !i and last = !i + chunk - 1 in
        let oracle0 = !oracle in
        (match
           if chunk = 1 then exec_op ()
           else Db.with_batch db (fun () -> for _ = first to last do exec_op () done)
         with
         | () -> ()
         | exception _ ->
           (* a commit-time failure rolls the whole batch back; the
              oracle must forget the chunk with it *)
           oracle := oracle0;
           report := { !report with failed = !report.failed + 1 });
        let context =
          if chunk = 1 then Printf.sprintf "op %d (%s)" first !last_sql
          else Printf.sprintf "ops %d-%d (batch; last: %s)" first last !last_sql
        in
        (* all consistency checks run with injection suspended: they must
           observe the state the fault left behind, not re-trigger it *)
        Fault.with_suspended (fun () ->
            let stale_now = List.length (Db.stale_views db) in
            report := { !report with quarantines = !report.quarantines + stale_now };
            check_base db !oracle ~context;
            check_views db ~context;
            let healed = heal_stale db ~context in
            report := { !report with heals = !report.heals + healed; checks = !report.checks + 1 });
        (* cache probe: runs with faults live (the cache must degrade,
           never corrupt); the reference runs suspended.  A batched chunk
           probes when it crossed a probe point — after its commit, so a
           hit must never serve a pre-batch answer. *)
        if last / config.cache_every > (first - 1) / config.cache_every then begin
          List.iter
            (fun sql ->
              let result, outcome = Cache.query cache sql in
              let reference =
                Fault.with_suspended (fun () -> Db.run_query db (Parser.query sql))
              in
              if not (Relation.equal_bag result reference) then
                divergence "op %d: cache answer diverged from uncached execution (%s)"
                  last
                  (Cache.describe_outcome outcome);
              report :=
                {
                  !report with
                  cache_probes = !report.cache_probes + 1;
                  cache_hits =
                    (!report.cache_hits
                    + match outcome with Cache.Hit _ -> 1 | _ -> 0);
                })
            cache_probe_queries
        end;
        i := last + 1
      done;
      !report)

(* ---- Crash-recovery chaos ----

   The same randomized stream and shadow oracle, but over a *durable*
   database directory, with simulated crashes: the process never dies,
   the in-memory database object is simply abandoned (per-statement
   fsync makes that an accurate kill model) and the directory reopened
   through recovery.  Crash variants also tear the WAL tail mid-record,
   arm the wal/checkpoint/recovery fault sites, and crash between
   checkpoints — after every recovery the database must equal the oracle
   at the last committed statement. *)

type crash_config = {
  cc_seed : int;
  cc_ops : int;              (* statements across the whole run *)
  cc_crash_every : int;      (* crash once per this many statements *)
  cc_checkpoint_every : int; (* checkpoint period in statements; 0 = never *)
  cc_batch : int;            (* > 1: group-commit chunks of this size *)
}

let default_crash_config =
  { cc_seed = 7; cc_ops = 80; cc_crash_every = 7; cc_checkpoint_every = 11;
    cc_batch = 0 }

type crash_report = {
  cr_statements : int;
  cr_crashes : int;           (* crash + recovery cycles *)
  cr_torn : int;              (* recoveries that truncated a torn tail *)
  cr_wal_faults : int;        (* statements rejected by armed wal sites *)
  cr_checkpoints : int;       (* successful checkpoints *)
  cr_checkpoint_faults : int; (* checkpoint attempts killed by the site *)
  cr_recover_faults : int;    (* first recovery attempts killed mid-replay *)
  cr_replayed : int;          (* WAL records replayed across recoveries *)
  cr_quarantined : int;       (* views restored in quarantine *)
  cr_heals : int;
}

(* Remove a previous run's files so the directory starts empty (the
   engine creates the directory itself if missing). *)
let fresh_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir)

let run_crash ?(config = default_crash_config) ~dir () : crash_report =
  let module Wal = Rfview_engine.Wal in
  fresh_dir dir;
  let db = ref (Db.open_durable dir) in
  List.iter (fun sql -> ignore (Db.exec !db sql)) setup_sql;
  let prng = Prng.create ~seed:config.cc_seed in
  let oracle = ref [] in
  let report =
    ref
      {
        cr_statements = 0;
        cr_crashes = 0;
        cr_torn = 0;
        cr_wal_faults = 0;
        cr_checkpoints = 0;
        cr_checkpoint_faults = 0;
        cr_recover_faults = 0;
        cr_replayed = 0;
        cr_quarantined = 0;
        cr_heals = 0;
      }
  in
  let check ~context =
    Fault.with_suspended (fun () ->
        check_base !db !oracle ~context;
        check_views !db ~context;
        let healed = heal_stale !db ~context in
        report := { !report with cr_heals = !report.cr_heals + healed })
  in
  (* Reopen [dir] and fold the recovery report into the counters; the
     recovered database must match the oracle at the last commit. *)
  let recover ~context =
    let db', (r : Db.recovery_report) = Db.recover dir in
    db := db';
    report :=
      {
        !report with
        cr_crashes = !report.cr_crashes + 1;
        cr_torn = (!report.cr_torn + if r.Db.torn then 1 else 0);
        cr_replayed = !report.cr_replayed + r.Db.replayed;
        cr_quarantined = !report.cr_quarantined + List.length r.Db.quarantined;
      };
    check ~context;
    r
  in
  let crash variant i =
    let context = Printf.sprintf "crash after op %d (variant %d)" i variant in
    match variant with
    | 0 ->
      (* clean kill: abandon the handle, recover from disk *)
      Db.close !db;
      ignore (recover ~context)
    | 1 ->
      (* torn write: a strict prefix of a valid frame lands on the log
         tail — recovery must truncate it, not replay it *)
      Db.close !db;
      let frame = Wal.frame (Wal.Statement "CREATE TABLE torn_marker (x INT)") in
      let cut = 1 + Prng.int prng (String.length frame - 1) in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "log.wal")
      in
      output_string oc (String.sub frame 0 cut);
      close_out oc;
      let r = recover ~context in
      if not r.Db.torn then
        divergence "%s: recovery did not report the torn tail" context;
      if Catalog.find_table (Db.catalog !db) "torn_marker" <> None then
        divergence "%s: recovery replayed a torn record" context
    | 2 ->
      (* durability failure: an armed WAL site must reject the statement
         (rolled back, not on disk) — the oracle is not updated *)
      let site = Prng.choose prng [ "wal.append"; "wal.fsync" ] in
      Fault.arm site Fault.Always;
      (match Db.exec !db "INSERT INTO seq VALUES (1, 99, 5)" with
       | _ -> divergence "%s: statement committed with %s armed" context site
       | exception _ ->
         report := { !report with cr_wal_faults = !report.cr_wal_faults + 1 });
      Fault.disarm site;
      check ~context;
      Db.close !db;
      ignore (recover ~context)
    | 3 ->
      (* checkpoint crash: the write faults partway, the temp file is
         discarded — the previous checkpoint plus the longer WAL must
         still recover the oracle state *)
      let nth = 1 + Prng.int prng 6 in
      Fault.arm "checkpoint.write" (Fault.Nth nth);
      (match Db.checkpoint !db with
       | () -> report := { !report with cr_checkpoints = !report.cr_checkpoints + 1 }
       | exception _ ->
         report :=
           { !report with cr_checkpoint_faults = !report.cr_checkpoint_faults + 1 });
      Fault.disarm "checkpoint.write";
      Db.close !db;
      ignore (recover ~context)
    | _ ->
      (* recovery-time fault: replay dies mid-WAL on the first attempt;
         a retry with the site disarmed must succeed cleanly *)
      Db.close !db;
      Fault.arm "recover.replay" (Fault.Nth 1);
      (match Db.recover dir with
       | db', _ ->
         (* an empty WAL suffix replays nothing, so the site never fires *)
         Fault.disarm "recover.replay";
         db := db';
         report := { !report with cr_crashes = !report.cr_crashes + 1 };
         check ~context
       | exception Db.Recovery_error _ ->
         Fault.disarm "recover.replay";
         report := { !report with cr_recover_faults = !report.cr_recover_faults + 1 };
         ignore (recover ~context))
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_all ();
      Db.close !db)
    (fun () ->
      let last_sql = ref "(none)" in
      let exec_op () =
        let op = gen_op prng in
        last_sql := sql_of_op op;
        let applied =
          match op with
          | Load_csv batch ->
            (match Csv.import_string !db ~table:"seq" (csv_of_batch batch) with
             | _ -> true
             | exception _ -> false)
          | op ->
            (match Db.exec !db (sql_of_op op) with
             | _ -> true
             | exception _ -> false)
        in
        if applied then oracle := apply_oracle !oracle op;
        report := { !report with cr_statements = !report.cr_statements + 1 }
      in
      (* crossed p = "a period-[p] boundary lies inside this chunk";
         at chunk size 1 this is exactly [i mod p = 0].  Checkpoints and
         crashes only happen at chunk boundaries, so a crash never finds
         an open batch: the directory holds either the whole chunk (one
         WAL batch record) or none of it. *)
      let i = ref 1 in
      while !i <= config.cc_ops do
        let chunk =
          if config.cc_batch <= 1 then 1
          else min config.cc_batch (config.cc_ops - !i + 1)
        in
        let first = !i and last = !i + chunk - 1 in
        let crossed p = p > 0 && last / p > (first - 1) / p in
        let oracle0 = !oracle in
        (match
           if chunk = 1 then exec_op ()
           else Db.with_batch !db (fun () -> for _ = first to last do exec_op () done)
         with
         | () -> ()
         | exception _ -> oracle := oracle0);
        let context =
          if chunk = 1 then Printf.sprintf "op %d (%s)" first !last_sql
          else Printf.sprintf "ops %d-%d (batch; last: %s)" first last !last_sql
        in
        check ~context;
        if crossed config.cc_checkpoint_every then begin
          Db.checkpoint !db;
          report := { !report with cr_checkpoints = !report.cr_checkpoints + 1 }
        end;
        if crossed config.cc_crash_every then crash (Prng.int prng 5) last;
        i := last + 1
      done;
      (* final kill + recovery: the directory alone must reproduce the
         oracle *)
      Db.close !db;
      ignore (recover ~context:"final recovery");
      !report)

(* ---- Replication chaos ----

   The same randomized stream over a durable primary, shipped through
   per-replica feeds (Rfview_replica) while the harness records the
   oracle's row list *at every commit boundary*, keyed by the primary's
   LSN.  Every read served by any replica is tagged with an LSN; the
   harness asserts it equals the oracle's state at exactly that LSN — a
   replica may be stale, it may never be wrong.

   Chaos events between statements: kill a replica (rebuilt from the
   feed alone: checkpoint artifact + record suffix), corrupt an
   unconsumed feed entry (the replica must quarantine, then heal via
   [Ship.resync]), lag a replica (its bounded reads must refuse with
   [Stale]), arm [replica.apply] (the interrupted poll must resume
   exactly), arm [ship.append] (the half-shipped entry must come back
   off the feed), and crash + recover the primary (LSNs must carry
   across recovery, the shipper reattaching every feed).

   The run ends with failover: the primary dies with an unshipped tail,
   the freshest replica is promoted, and the promoted directory must
   hold the oracle state at the promoted LSN — losing at most the tail
   that was never pumped. *)

module Replica = Rfview_replica.Replica
module Ship = Rfview_replica.Ship
module Feed = Rfview_replica.Feed

type replica_config = {
  rp_seed : int;
  rp_ops : int;               (* statements across the whole run *)
  rp_replicas : int;          (* feeds fanned out *)
  rp_pump_every : int;        (* ship once per this many statements *)
  rp_read_every : int;        (* replica read once per this many *)
  rp_event_every : int;       (* chaos event once per this many *)
  rp_checkpoint_bytes : int;  (* primary log-compaction threshold; 0 = off *)
  rp_batch : int;             (* > 1: group-commit chunks of this size *)
  rp_max_lag : int;           (* staleness bound for bounded reads *)
}

let default_replica_config =
  {
    rp_seed = 23;
    rp_ops = 60;
    rp_replicas = 3;
    rp_pump_every = 2;
    rp_read_every = 3;
    rp_event_every = 9;
    rp_checkpoint_bytes = 16 * 1024;
    rp_batch = 0;
    rp_max_lag = 4;
  }

type replica_report = {
  rp_statements : int;
  rp_pumps : int;
  rp_deliveries : int;        (* (record, feed) deliveries shipped *)
  rp_reads : int;             (* replica reads served and verified *)
  rp_stale_reads : int;       (* reads refused by the staleness bound *)
  rp_kills : int;             (* replica kill + feed-rebootstrap cycles *)
  rp_corruptions : int;       (* feed entries corrupted *)
  rp_quarantines : int;       (* replica quarantines observed *)
  rp_resyncs : int;           (* resync artifacts shipped *)
  rp_ship_faults : int;       (* pumps interrupted by ship.* sites *)
  rp_apply_faults : int;      (* polls interrupted by replica.apply *)
  rp_primary_crashes : int;   (* mid-run primary crash + reattach cycles *)
  rp_compactions : int;       (* byte-triggered checkpoints observed *)
  rp_promoted_lsn : int;      (* failover: LSN the promoted replica held *)
  rp_lost_tail : int;         (* failover: records lost with the primary *)
}

(* One replica plus its harness bookkeeping. *)
type rep_slot = {
  rs_name : string;
  rs_path : string;
  mutable rs_rep : Replica.t;
  mutable rs_lag_until : int; (* skip polls until this op index *)
  mutable rs_corrupted : bool; (* this feed was damaged at some point *)
}

let run_replica ?(config = default_replica_config) ~dir () : replica_report =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let pdir = Filename.concat dir "primary" in
  let promoted_dir = Filename.concat dir "promoted" in
  fresh_dir pdir;
  fresh_dir promoted_dir;
  let prng = Prng.create ~seed:config.rp_seed in
  let report =
    ref
      {
        rp_statements = 0;
        rp_pumps = 0;
        rp_deliveries = 0;
        rp_reads = 0;
        rp_stale_reads = 0;
        rp_kills = 0;
        rp_corruptions = 0;
        rp_quarantines = 0;
        rp_resyncs = 0;
        rp_ship_faults = 0;
        rp_apply_faults = 0;
        rp_primary_crashes = 0;
        rp_compactions = 0;
        rp_promoted_lsn = 0;
        rp_lost_tail = 0;
      }
  in
  let bump f = report := f !report in
  (* primary + shipper *)
  let pdb = ref (Db.open_durable pdir) in
  List.iter (fun sql -> ignore (Db.exec !pdb sql)) setup_sql;
  if config.rp_checkpoint_bytes > 0 then
    Db.set_checkpoint_bytes !pdb (Some config.rp_checkpoint_bytes);
  let ship = ref (Ship.create !pdb) in
  let slots =
    List.init config.rp_replicas (fun i ->
        let rs_name = Printf.sprintf "r%d" i in
        let rs_path = Filename.concat dir ("feed_" ^ rs_name) in
        Ship.attach !ship ~name:rs_name ~path:rs_path;
        {
          rs_name;
          rs_path;
          rs_rep = Replica.attach ~name:rs_name ~feed:rs_path ();
          rs_lag_until = 0;
          rs_corrupted = false;
        })
  in
  (* the oracle's row list at every commit boundary, keyed by LSN *)
  let history : (int, Row.t list) Hashtbl.t = Hashtbl.create 64 in
  let oracle = ref [] in
  let remember () = Hashtbl.replace history (Db.lsn !pdb) !oracle in
  remember ();
  let last_pump_tip = ref 0 in
  let pump ~context =
    match Ship.pump !ship with
    | n ->
      last_pump_tip := Db.lsn !pdb;
      bump (fun r -> { r with rp_pumps = r.rp_pumps + 1; rp_deliveries = r.rp_deliveries + n })
    | exception e -> divergence "%s: pump failed: %s" context (Printexc.to_string e)
  in
  let poll slot ~context =
    match Replica.poll slot.rs_rep with
    | _ -> ()
    | exception Fault.Injected _ ->
      divergence "%s: unexpected injected fault in poll of %s" context slot.rs_name
    | exception e ->
      divergence "%s: poll of %s failed: %s" context slot.rs_name
        (Printexc.to_string e)
  in
  (* a quarantine is legitimate iff this feed really was damaged *)
  let note_quarantine slot ~context reason =
    if not slot.rs_corrupted then
      divergence "%s: replica %s quarantined without feed damage (%s)" context
        slot.rs_name reason;
    bump (fun r -> { r with rp_quarantines = r.rp_quarantines + 1 })
  in
  (* heal a quarantined replica: ship a fresh tip artifact, re-poll, and
     demand it comes back Ready (the artifact carries a fingerprint, so
     a wrong rebuild would re-quarantine) *)
  let repair slot ~context =
    Ship.resync !ship ~name:slot.rs_name;
    bump (fun r -> { r with rp_resyncs = r.rp_resyncs + 1 });
    last_pump_tip := Db.lsn !pdb;
    poll slot ~context;
    match Replica.status slot.rs_rep with
    | Replica.Ready -> ()
    | Replica.Syncing -> divergence "%s: %s still syncing after resync" context slot.rs_name
    | Replica.Quarantined { reason; _ } ->
      divergence "%s: %s still quarantined after resync: %s" context slot.rs_name reason
  in
  let check_replica_read slot ~context ~tip =
    match Replica.status slot.rs_rep with
    | Replica.Quarantined { reason; _ } ->
      note_quarantine slot ~context reason;
      repair slot ~context
    | Replica.Syncing -> ()
    | Replica.Ready ->
      let bound = Prng.int prng (config.rp_max_lag + 1) in
      let kind = if Prng.int prng 3 = 0 then `Tot else `Base in
      let sql =
        match kind with
        | `Base -> "SELECT grp, pos, val FROM seq"
        | `Tot -> "SELECT * FROM v_tot"
      in
      (match Replica.read slot.rs_rep ~tip ~max_records:bound sql with
       | Ok (rel, at) ->
         (match Hashtbl.find_opt history at with
          | None ->
            divergence "%s: %s served a read at lsn %d, not a committed state"
              context slot.rs_name at
          | Some rows ->
            let expected =
              match kind with
              | `Base -> Relation.of_array schema_seq (Array.of_list rows)
              | `Tot ->
                (* evaluate the view's definition over the historical rows *)
                let scratch = Db.create () in
                ignore (Db.exec scratch "CREATE TABLE seq (grp INT, pos INT, val FLOAT)");
                Db.load_table scratch ~table:"seq" (Array.of_list rows);
                Db.query scratch
                  "SELECT grp, SUM(val) AS total, COUNT(*) AS n FROM seq GROUP BY grp"
            in
            if not (Relation.equal_bag rel expected) then
              divergence
                "%s: %s read at lsn %d is not the historical state\nserved:\n%s\nexpected:\n%s"
                context slot.rs_name at
                (Relation.render (Relation.sorted_by_all rel))
                (Relation.render (Relation.sorted_by_all expected));
            if tip - at > bound then
              divergence "%s: %s served lag %d past the bound %d" context
                slot.rs_name (tip - at) bound;
            bump (fun r -> { r with rp_reads = r.rp_reads + 1 }))
       | Error (Replica.Stale { applied_lsn; tip_lsn; _ }) ->
         if tip_lsn - applied_lsn <= bound then
           divergence "%s: %s refused a read within the bound (lag %d <= %d)"
             context slot.rs_name (tip_lsn - applied_lsn) bound;
         bump (fun r -> { r with rp_stale_reads = r.rp_stale_reads + 1 })
       | Error (Replica.Unavailable reason) ->
         divergence "%s: ready replica %s refused a read: %s" context slot.rs_name
           reason)
  in
  let chaos_event ~context i =
    let slot = List.nth slots (Prng.int prng (List.length slots)) in
    match Prng.int prng 6 with
    | 0 ->
      (* kill: the replica object is abandoned; the rebuilt one must
         bootstrap from the feed alone *)
      slot.rs_rep <- Replica.attach ~name:slot.rs_name ~feed:slot.rs_path ();
      slot.rs_lag_until <- 0;
      poll slot ~context;
      (match Replica.status slot.rs_rep with
       | Replica.Quarantined { reason; _ } ->
         note_quarantine slot ~context reason;
         repair slot ~context
       | _ -> ());
      bump (fun r -> { r with rp_kills = r.rp_kills + 1 })
    | 1 ->
      (* corrupt a payload byte of the feed's LAST entry (its CRC then
         mismatches), abandon the replica and rebootstrap it from the
         damaged feed: the walk must end on the damage and quarantine,
         never serve state derived from it; resync must heal *)
      let items, _ = Feed.read_from slot.rs_path ~offset:0 in
      (match List.rev items with
       | [] -> () (* empty feed: nothing to damage *)
       | (_, finish) :: earlier ->
         let start = match earlier with [] -> 0 | (_, f) :: _ -> f in
         let at = start + 8 + Prng.int prng (max 1 (finish - start - 8)) in
         let fd = Unix.openfile slot.rs_path [ Unix.O_RDWR ] 0o644 in
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with _ -> ())
           (fun () ->
             ignore (Unix.lseek fd at Unix.SEEK_SET);
             let b = Bytes.create 1 in
             ignore (Unix.read fd b 0 1);
             Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
             ignore (Unix.lseek fd at Unix.SEEK_SET);
             ignore (Unix.write fd b 0 1));
         slot.rs_corrupted <- true;
         slot.rs_rep <- Replica.attach ~name:slot.rs_name ~feed:slot.rs_path ();
         slot.rs_lag_until <- 0;
         bump (fun r -> { r with rp_corruptions = r.rp_corruptions + 1 });
         poll slot ~context;
         (match Replica.status slot.rs_rep with
          | Replica.Quarantined { reason; _ } ->
            note_quarantine slot ~context reason;
            repair slot ~context
          | _ ->
            divergence "%s: %s consumed a corrupt feed entry without quarantining"
              context slot.rs_name))
    | 2 ->
      (* lag: stop polling this replica for a stretch — its bounded
         reads must refuse once the primary moves past the bound *)
      slot.rs_lag_until <- i + config.rp_event_every
    | 3 ->
      (* the poll is interrupted before a record applies; the next poll
         must resume exactly where it stopped.  Pump first so the feed
         actually has unconsumed entries to trip over. *)
      pump ~context;
      Fault.arm "replica.apply" (Fault.Nth 1);
      (match Replica.poll slot.rs_rep with
       | _ -> ()
       | exception Fault.Injected _ ->
         bump (fun r -> { r with rp_apply_faults = r.rp_apply_faults + 1 }));
      Fault.disarm "replica.apply";
      poll slot ~context
    | 4 ->
      (* the pump is interrupted mid-entry; the partial entry must be
         truncated back off and the retry must ship cleanly *)
      Fault.arm "ship.append" (Fault.Nth 1);
      (match Ship.pump !ship with
       | _ -> last_pump_tip := Db.lsn !pdb
       | exception Fault.Injected _ ->
         bump (fun r -> { r with rp_ship_faults = r.rp_ship_faults + 1 }));
      Fault.disarm "ship.append";
      pump ~context
    | _ ->
      (* primary crash: recover the directory (LSNs must carry across)
         and reattach every feed where it stopped *)
      Db.close !pdb;
      Ship.close !ship;
      let db', _ = Db.recover pdir in
      pdb := db';
      if config.rp_checkpoint_bytes > 0 then
        Db.set_checkpoint_bytes !pdb (Some config.rp_checkpoint_bytes);
      ship := Ship.create !pdb;
      List.iter
        (fun s -> Ship.reattach !ship ~name:s.rs_name ~path:s.rs_path)
        slots;
      bump (fun r -> { r with rp_primary_crashes = r.rp_primary_crashes + 1 })
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_all ();
      Ship.close !ship;
      (try Db.close !pdb with _ -> ()))
    (fun () ->
      (* first sync: every replica bootstraps to the setup state *)
      pump ~context:"initial sync";
      List.iter (fun s -> poll s ~context:"initial sync") slots;
      let last_epoch = ref (Db.epoch !pdb) in
      let note_compactions () =
        let e = Db.epoch !pdb in
        if e > !last_epoch then begin
          bump (fun r ->
              { r with rp_compactions = r.rp_compactions + (e - !last_epoch) });
          last_epoch := e
        end
        else if e < !last_epoch then last_epoch := e
      in
      let last_sql = ref "(none)" in
      let exec_op () =
        let op = gen_op prng in
        last_sql := sql_of_op op;
        let applied =
          match op with
          | Load_csv batch ->
            (match Csv.import_string !pdb ~table:"seq" (csv_of_batch batch) with
             | _ -> true
             | exception _ -> false)
          | op ->
            (match Db.exec !pdb (sql_of_op op) with
             | _ -> true
             | exception _ -> false)
        in
        if applied then oracle := apply_oracle !oracle op;
        (* history is recorded at chunk boundaries only: inside a batch
           the LSN has not advanced yet, so a per-statement record here
           would overwrite the boundary state with mid-batch ones *)
        bump (fun r -> { r with rp_statements = r.rp_statements + 1 })
      in
      let i = ref 1 in
      while !i <= config.rp_ops do
        let chunk =
          if config.rp_batch <= 1 then 1
          else min config.rp_batch (config.rp_ops - !i + 1)
        in
        let first = !i and last = !i + chunk - 1 in
        let crossed p = p > 0 && last / p > (first - 1) / p in
        let oracle0 = !oracle in
        (match
           if chunk = 1 then exec_op ()
           else Db.with_batch !pdb (fun () -> for _ = first to last do exec_op () done)
         with
         | () -> ()
         | exception _ -> oracle := oracle0);
        remember ();
        note_compactions ();
        let context =
          if chunk = 1 then Printf.sprintf "op %d (%s)" first !last_sql
          else Printf.sprintf "ops %d-%d (batch; last: %s)" first last !last_sql
        in
        if crossed config.rp_pump_every then begin
          pump ~context;
          List.iter
            (fun s -> if s.rs_lag_until <= last then poll s ~context)
            slots
        end;
        if crossed config.rp_read_every then
          List.iter
            (fun s -> check_replica_read s ~context ~tip:(Db.lsn !pdb))
            slots;
        if crossed config.rp_event_every then chaos_event ~context last;
        i := last + 1
      done;
      (* ---- failover ----
         Heal every quarantined replica while the primary still lives,
         then kill the primary with its unshipped tail and promote the
         freshest replica.  The promoted directory must reproduce the
         oracle at the promoted LSN — at most the unpumped tail is
         lost. *)
      let context = "failover" in
      List.iter
        (fun s ->
          if s.rs_lag_until > 0 then s.rs_lag_until <- 0;
          poll s ~context;
          match Replica.status s.rs_rep with
          | Replica.Quarantined { reason; _ } ->
            note_quarantine s ~context reason;
            repair s ~context
          | _ -> ())
        slots;
      let tip = Db.lsn !pdb in
      Db.close !pdb;
      Ship.close !ship;
      let winner =
        List.fold_left
          (fun best s ->
            match Replica.status s.rs_rep with
            | Replica.Ready | Replica.Syncing ->
              (match best with
               | Some b
                 when Replica.applied_lsn b.rs_rep >= Replica.applied_lsn s.rs_rep
                 -> best
               | _ -> Some s)
            | Replica.Quarantined _ -> best)
          None slots
      in
      let winner =
        match winner with
        | Some s -> s
        | None -> divergence "failover: no promotable replica"
      in
      let promoted_lsn = Replica.applied_lsn winner.rs_rep in
      if promoted_lsn < !last_pump_tip then
        divergence "failover: promoted lsn %d lost shipped history (pumped to %d)"
          promoted_lsn !last_pump_tip;
      let promoted = Replica.promote winner.rs_rep ~dir:promoted_dir in
      let check_promoted db ~context =
        match Hashtbl.find_opt history promoted_lsn with
        | None -> divergence "%s: promoted lsn %d has no oracle state" context promoted_lsn
        | Some rows -> check_base db rows ~context
      in
      check_promoted promoted ~context:"promoted state";
      (* the promoted primary must accept writes and recover on its own *)
      ignore (Db.exec promoted "INSERT INTO seq VALUES (1, 98, 4)");
      let after =
        (Hashtbl.find history promoted_lsn) @ [ row 1 98 (Value.Float 4.) ]
      in
      check_base promoted after ~context:"promoted write";
      Db.close promoted;
      let reopened, _ = Db.recover promoted_dir in
      check_base reopened after ~context:"promoted recovery";
      check_views reopened ~context:"promoted recovery";
      Db.close reopened;
      bump (fun r ->
          {
            r with
            rp_promoted_lsn = promoted_lsn;
            rp_lost_tail = tip - promoted_lsn;
          });
      !report)

(* ---- State fingerprint (rollback-idempotence checks) ----

   A textual dump of everything a statement may mutate: table rows in
   physical order, view contents, quarantine flags and the rendered
   incremental states.  Two fingerprints are equal iff the logical
   database states are bit-identical. *)

let fingerprint (db : Db.t) : string =
  let buf = Buffer.create 1024 in
  let cat = Db.catalog db in
  Catalog.all_tables cat
  |> List.sort (fun (a : Catalog.table) b -> compare a.Catalog.table_name b.Catalog.table_name)
  |> List.iter (fun (tbl : Catalog.table) ->
         Buffer.add_string buf (Printf.sprintf "table %s\n" tbl.Catalog.table_name);
         Buffer.add_string buf (Relation.render (Catalog.table_relation tbl)));
  Catalog.all_views cat
  |> List.sort (fun (a : Catalog.view) b -> compare a.Catalog.view_name b.Catalog.view_name)
  |> List.iter (fun (v : Catalog.view) ->
         Buffer.add_string buf
           (Printf.sprintf "view %s stale=%b incremental=%b\n" v.Catalog.view_name
              v.Catalog.stale
              (Db.is_incrementally_maintained db v.Catalog.view_name));
         match v.Catalog.contents with
         | Some r -> Buffer.add_string buf (Relation.render r)
         | None -> ());
  Buffer.contents buf

(* The same dump for a façade session (the engine handle stays inside
   this library). *)
let fingerprint_session s =
  fingerprint ((Rfview.Session.Unsafe.database [@alert "-unsafe"]) s)

(* ---- Storage-fault chaos ----

   The same stream and oracle over a durable primary whose every disk
   byte moves through the Io seam, with the simulated-disk backend
   driving the faults the other harnesses cannot express: disk-full
   episodes (a byte budget that tears writes), power cuts that lose
   every unsynced byte, and silent media corruption that only the
   scrubber can see.  One feed is kept pumped to the primary's tip so
   the cross-source repair path has a peer to rebuild from; every WAL
   rebuild is checked for *bit*-identity against a copy taken before
   the damage (the codec is canonical, so anything less is a wrong
   rebuild).  The central assertion is the usual one: the database is
   never silently wrong — committed statements survive every event,
   failed ones roll back completely, and damage is always *reported*
   before it is repaired. *)

module Io = Rfview_engine.Io
module Scrub = Rfview_engine.Scrub
module Repair = Rfview_replica.Repair

type storage_config = {
  st_seed : int;
  st_ops : int;               (* statements across the whole run *)
  st_event_every : int;       (* storage event once per this many *)
  st_checkpoint_every : int;  (* checkpoint period in statements; 0 = never *)
  st_batch : int;             (* > 1: group-commit chunks of this size *)
}

let default_storage_config =
  { st_seed = 31; st_ops = 60; st_event_every = 8; st_checkpoint_every = 13;
    st_batch = 0 }

type storage_report = {
  st_statements : int;
  st_io_faults : int;         (* armed io.* faults: statement rolled back *)
  st_enospc : int;            (* disk-full episodes entered *)
  st_degraded_writes : int;   (* writes rejected while degraded *)
  st_resumes : int;           (* degraded -> healthy via the space probe *)
  st_crashes : int;           (* power cuts (lost unsynced bytes) survived *)
  st_corruptions : int;       (* artifact bytes the harness damaged *)
  st_scrub_findings : int;    (* damage items the scrubber reported *)
  st_repairs : int;           (* WAL rebuilds / truncations performed *)
  st_reseeds : int;           (* feeds re-seeded from the primary *)
  st_checks : int;            (* invariant checkpoints passed *)
}

let run_storage ?(config = default_storage_config) ~dir () : storage_report =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let pdir = Filename.concat dir "primary" in
  fresh_dir pdir;
  let feed_path = Filename.concat dir "storage.feed" in
  if Sys.file_exists feed_path then Sys.remove feed_path;
  let wal = Filename.concat pdir "log.wal" in
  Fault.disarm_all ();
  Io.Sim.reset ();
  let prng = Prng.create ~seed:config.st_seed in
  let report =
    ref
      {
        st_statements = 0;
        st_io_faults = 0;
        st_enospc = 0;
        st_degraded_writes = 0;
        st_resumes = 0;
        st_crashes = 0;
        st_corruptions = 0;
        st_scrub_findings = 0;
        st_repairs = 0;
        st_reseeds = 0;
        st_checks = 0;
      }
  in
  let bump f = report := f !report in
  let db = ref (Db.open_durable pdir) in
  List.iter (fun sql -> ignore (Db.exec !db sql)) setup_sql;
  let ship = ref (Ship.create !db) in
  Ship.attach !ship ~name:"storage" ~path:feed_path;
  let oracle = ref [] in
  let check ~context =
    Fault.with_suspended (fun () ->
        check_base !db !oracle ~context;
        check_views !db ~context;
        ignore (heal_stale !db ~context);
        bump (fun r -> { r with st_checks = r.st_checks + 1 }))
  in
  (* keep the feed at the tip: it is the repair peer, so it must carry
     every record (and a fingerprint there) before damage strikes *)
  let pump ~context =
    match Ship.pump !ship with
    | _ -> ()
    | exception e ->
      divergence "%s: pump failed: %s" context (Printexc.to_string e)
  in
  (* close everything so the offline tools (scrub, repair, Sim.crash)
     own the directory *)
  let shutdown () =
    Ship.close !ship;
    Db.close !db
  in
  let reopen ~context =
    let db', _ = Db.recover pdir in
    db := db';
    ship := Ship.create !db;
    Ship.reattach !ship ~name:"storage" ~path:feed_path;
    check ~context
  in
  let scrub_counting () =
    let r = Repair.scrub ~feeds:[ feed_path ] pdir in
    bump (fun rep ->
        {
          rep with
          st_scrub_findings =
            rep.st_scrub_findings + List.length r.Scrub.damage;
        });
    r
  in
  (* silent media corruption: XOR one byte in place, through the
     positioned-write primitive that bypasses the simulation *)
  let flip_byte path ~at =
    let bytes = Io.read_file path in
    let c = Char.chr (Char.code bytes.[at] lxor 0xff) in
    let f = Io.openf path ~mode:Io.Write in
    Fun.protect
      ~finally:(fun () -> Io.close f)
      (fun () -> Io.pwrite f ~at (String.make 1 c));
    bump (fun r -> { r with st_corruptions = r.st_corruptions + 1 })
  in
  (* the damaged directory must (1) scrub dirty, (2) repair to a clean
     scrub, and (3) — when the WAL was the victim — end up bit-identical
     to the bytes it held before the damage *)
  let repair_and_verify ~context ~pristine_wal =
    let before = scrub_counting () in
    if Scrub.clean before then
      divergence "%s: scrub missed the damage" context;
    let outcome = Repair.repair ~feeds:[ feed_path ] pdir in
    if not (Scrub.clean outcome.Repair.o_after) then
      divergence "%s: damage survived repair: %s" context
        (Scrub.describe outcome.Repair.o_after);
    (match pristine_wal with
     | Some bytes ->
       if Io.read_file wal <> bytes then
         divergence "%s: repaired WAL is not bit-identical to the pre-damage log"
           context
     | None -> ());
    List.iter
      (function
        | Repair.Rebuilt_wal _ | Repair.Truncated_wal _ ->
          bump (fun r -> { r with st_repairs = r.st_repairs + 1 })
        | Repair.Reseeded_feed _ ->
          bump (fun r -> { r with st_reseeds = r.st_reseeds + 1 })
        | Repair.Swept_tmp _ -> ())
      outcome.Repair.o_actions
  in
  let storage_event ~context =
    match Prng.int prng 6 with
    | 0 ->
      (* a one-shot EIO at a seam site: the statement must fail, roll
         back completely, and NOT drop the session to degraded mode
         (only ENOSPC is a disk-state condition worth waiting out) *)
      let site = Prng.choose prng [ "io.write"; "io.fsync" ] in
      Io.Sim.set_error_kind Io.Eio;
      Fault.arm site (Fault.Nth 1);
      (match Db.exec !db "INSERT INTO seq VALUES (2, 99, 6)" with
       | _ -> divergence "%s: statement committed with %s armed" context site
       | exception Db.Degraded_error _ ->
         divergence "%s: an EIO fault must not enter degraded mode" context
       | exception _ ->
         bump (fun r -> { r with st_io_faults = r.st_io_faults + 1 }));
      Fault.disarm site;
      check ~context
    | 1 ->
      (* disk full: the commit tears, rolls back, and the session drops
         to read-only degraded mode; once space frees, the backoff
         probe must lift it and the retried statement must commit *)
      Io.Sim.set_budget (Some (Prng.int prng 16));
      (match Db.exec !db "INSERT INTO seq VALUES (3, 99, 7)" with
       | _ -> divergence "%s: statement committed on a full disk" context
       | exception Db.Degraded_error _ ->
         bump (fun r -> { r with st_enospc = r.st_enospc + 1 })
       | exception e ->
         divergence "%s: expected Degraded_error on ENOSPC, got %s" context
           (Printexc.to_string e));
      (match Db.health !db with
       | Db.Degraded _ -> ()
       | Db.Healthy ->
         divergence "%s: ENOSPC did not enter degraded mode" context);
      (* reads keep serving the pre-failure state while degraded *)
      Fault.with_suspended (fun () -> check_base !db !oracle ~context);
      (* further writes are rejected while the probe keeps failing *)
      for _ = 1 to 2 do
        match Db.exec !db "INSERT INTO seq VALUES (3, 99, 7)" with
        | _ -> divergence "%s: degraded session accepted a write" context
        | exception Db.Degraded_error _ ->
          bump (fun r -> { r with st_degraded_writes = r.st_degraded_writes + 1 })
      done;
      (* free the disk: within the probe backoff bound (capped at 64
         rejections between probes) a retried write must go through *)
      Io.Sim.set_budget None;
      let lifted = ref false in
      let attempts = ref 0 in
      while (not !lifted) && !attempts < 200 do
        incr attempts;
        match Db.exec !db "INSERT INTO seq VALUES (1, 7, 3)" with
        | _ ->
          oracle := apply_oracle !oracle (Insert { grp = 1; pos = 7; value = 3. });
          lifted := true
        | exception Db.Degraded_error _ -> ()
      done;
      if not !lifted then
        divergence "%s: degraded mode never lifted after space freed" context;
      (match Db.health !db with
       | Db.Healthy -> bump (fun r -> { r with st_resumes = r.st_resumes + 1 })
       | Db.Degraded { reason; _ } ->
         divergence "%s: still degraded after a committed write: %s" context
           reason);
      check ~context
    | 2 ->
      (* power cut: abandon everything, lose every unsynced byte.  The
         engine fsyncs per commit, so recovery reproduces the oracle
         and the scrubber finds only frame-aligned artifacts. *)
      shutdown ();
      Io.Sim.crash ();
      let r = scrub_counting () in
      if not (Scrub.clean r) then
        divergence "%s: artifacts damaged after a power cut: %s" context
          (Scrub.describe r);
      bump (fun rep -> { rep with st_crashes = rep.st_crashes + 1 });
      reopen ~context
    | 3 ->
      (* bit rot in the log: only the scrubber sees it, and the feed
         carries the affected records — the rebuilt log must be
         bit-identical to the pre-damage bytes *)
      pump ~context;
      shutdown ();
      let pristine = Io.read_file wal in
      if String.length pristine > 0 then begin
        flip_byte wal ~at:(Prng.int prng (String.length pristine));
        repair_and_verify ~context ~pristine_wal:(Some pristine)
      end;
      reopen ~context
    | 4 ->
      (* the WAL deleted outright: with a checkpoint on disk the
         scrubber reports the hole and repair rebuilds the whole
         suffix from the feed, bit-identical *)
      if Db.epoch !db = 0 then Db.checkpoint !db;
      pump ~context;
      shutdown ();
      let pristine = Io.read_file wal in
      Io.remove wal;
      bump (fun r -> { r with st_corruptions = r.st_corruptions + 1 });
      repair_and_verify ~context ~pristine_wal:(Some pristine);
      reopen ~context
    | _ ->
      (* feed corruption: scrub sees it, repair re-seeds the feed from
         the (healthy) primary, and the shipper resumes on the fresh
         artifact *)
      pump ~context;
      shutdown ();
      let bytes = Io.read_file feed_path in
      if String.length bytes > 0 then begin
        flip_byte feed_path ~at:(Prng.int prng (String.length bytes));
        repair_and_verify ~context ~pristine_wal:None
      end;
      reopen ~context
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_all ();
      Io.Sim.reset ();
      (try Ship.close !ship with _ -> ());
      (try Db.close !db with _ -> ()))
    (fun () ->
      let last_sql = ref "(none)" in
      let exec_op () =
        let op = gen_op prng in
        last_sql := sql_of_op op;
        let applied =
          match op with
          | Load_csv batch ->
            (match Csv.import_string !db ~table:"seq" (csv_of_batch batch) with
             | _ -> true
             | exception _ -> false)
          | op ->
            (match Db.exec !db (sql_of_op op) with
             | _ -> true
             | exception _ -> false)
        in
        if applied then oracle := apply_oracle !oracle op;
        bump (fun r -> { r with st_statements = r.st_statements + 1 })
      in
      let i = ref 1 in
      while !i <= config.st_ops do
        let chunk =
          if config.st_batch <= 1 then 1
          else min config.st_batch (config.st_ops - !i + 1)
        in
        let first = !i and last = !i + chunk - 1 in
        let crossed p = p > 0 && last / p > (first - 1) / p in
        let oracle0 = !oracle in
        (match
           if chunk = 1 then exec_op ()
           else Db.with_batch !db (fun () -> for _ = first to last do exec_op () done)
         with
         | () -> ()
         | exception _ -> oracle := oracle0);
        let context =
          if chunk = 1 then Printf.sprintf "op %d (%s)" first !last_sql
          else Printf.sprintf "ops %d-%d (batch; last: %s)" first last !last_sql
        in
        check ~context;
        if crossed config.st_checkpoint_every then Db.checkpoint !db;
        pump ~context;
        if crossed config.st_event_every then storage_event ~context;
        i := last + 1
      done;
      (* final: the directory must scrub clean and, alone, reproduce
         the oracle *)
      pump ~context:"final pump";
      shutdown ();
      let r = scrub_counting () in
      if not (Scrub.clean r) then
        divergence "final scrub: %s" (Scrub.describe r);
      let db', _ = Db.recover pdir in
      db := db';
      check_base !db !oracle ~context:"final recovery";
      check_views !db ~context:"final recovery";
      !report)
