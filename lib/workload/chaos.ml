(* The chaos harness: randomized DML streams against a shadow oracle,
   with faults injected at the engine's registered sites.

   The stream runs INSERT/UPDATE/DELETE/CSV-load/REFRESH statements over
   a (grp, pos, val) sequence table carrying three materialized sequence
   views (cumulative SUM per group, sliding AVG, sliding MIN) and a
   derivation cache.  A *shadow oracle* — a plain row list to which each
   statement's effect is applied only when the engine reports success —
   tracks what the base table must contain.

   After every statement the harness checks, with injection suspended:
   1. the base table equals the oracle (a failed statement must have
      rolled back completely, a successful one applied completely);
   2. every non-stale materialized view equals full recomputation of its
      definition;
   3. reading a stale (quarantined) view heals it: the lazy refresh
      yields exactly the recomputed contents;
   4. periodically, a cache answer equals uncached execution.

   Any violation raises [Divergence].  Nothing here depends on the test
   framework, so the harness also serves examples and the CLI. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Catalog = Rfview_engine.Catalog
module Cache = Rfview_engine.Cache
module Csv = Rfview_engine.Csv
module Fault = Rfview_engine.Fault
module Parser = Rfview_sql.Parser

exception Divergence of string

let divergence fmt = Format.kasprintf (fun s -> raise (Divergence s)) fmt

type config = {
  seed : int;
  ops : int;               (* length of the DML stream *)
  cache_every : int;       (* probe the cache every Nth statement *)
}

let default_config = { seed = 11; ops = 60; cache_every = 5 }

type report = {
  statements : int;        (* statements attempted *)
  failed : int;            (* statements that raised (and rolled back) *)
  quarantines : int;       (* views observed stale after a statement *)
  heals : int;             (* stale views healed by a read *)
  cache_probes : int;
  cache_hits : int;
  checks : int;            (* invariant checkpoints passed *)
}

(* ---- Schema and views ---- *)

let setup_sql =
  [
    "CREATE TABLE seq (grp INT, pos INT, val FLOAT)";
    "CREATE MATERIALIZED VIEW v_cum AS SELECT grp, pos, val, SUM(val) OVER \
     (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
    "CREATE MATERIALIZED VIEW v_avg AS SELECT pos, val, AVG(val) OVER \
     (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS a FROM seq";
    "CREATE MATERIALIZED VIEW v_min AS SELECT pos, val, MIN(val) OVER \
     (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS m FROM seq";
  ]

(* the query whose cache entry the probes derive from, and two probes
   derivable from it (same frame; contained frame) *)
let cache_seed_query =
  "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
   FOLLOWING) AS s FROM seq"

let cache_probe_queries =
  [
    cache_seed_query;
    "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
     FOLLOWING) AS s FROM seq";
  ]

(* ---- The DML stream ---- *)

type op =
  | Insert of { grp : int; pos : int; value : float }
  | Insert_null of { grp : int; pos : int }  (* exercises the full-refresh fallback *)
  | Update of { pos : int; value : float }
  | Delete of { pos : int }
  | Load_csv of (int * int * float) list
  | Refresh of string

(* Integer-valued floats only: their SQL and CSV text round-trips
   exactly, keeping oracle and engine bit-identical. *)
let gen_value prng = float_of_int (Prng.int_range prng ~lo:(-50) ~hi:50)
let gen_pos prng = Prng.int_range prng ~lo:1 ~hi:20
let gen_grp prng = Prng.int_range prng ~lo:1 ~hi:3

let gen_op prng : op =
  match Prng.int prng 20 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
    Insert { grp = gen_grp prng; pos = gen_pos prng; value = gen_value prng }
  | 7 | 8 | 9 | 10 -> Update { pos = gen_pos prng; value = gen_value prng }
  | 11 | 12 | 13 -> Delete { pos = gen_pos prng }
  | 14 | 15 ->
    let n = Prng.int_range prng ~lo:1 ~hi:4 in
    Load_csv
      (List.init n (fun _ -> (gen_grp prng, gen_pos prng, gen_value prng)))
  | 16 -> Insert_null { grp = gen_grp prng; pos = gen_pos prng }
  | _ -> Refresh (Prng.choose prng [ "v_cum"; "v_avg"; "v_min" ])

let sql_of_op = function
  | Insert { grp; pos; value } ->
    Printf.sprintf "INSERT INTO seq VALUES (%d, %d, %g)" grp pos value
  | Insert_null { grp; pos } ->
    Printf.sprintf "INSERT INTO seq VALUES (%d, %d, NULL)" grp pos
  | Update { pos; value } ->
    Printf.sprintf "UPDATE seq SET val = %g WHERE pos = %d" value pos
  | Delete { pos } -> Printf.sprintf "DELETE FROM seq WHERE pos = %d" pos
  | Load_csv _ -> "(csv load)"
  | Refresh name -> Printf.sprintf "REFRESH MATERIALIZED VIEW %s" name

(* ---- The shadow oracle ----

   Plain rows in engine insertion order; every constructor mirrors the
   engine's statement semantics exactly. *)

let row grp pos value : Row.t = [| Value.Int grp; Value.Int pos; value |]

let apply_oracle (rows : Row.t list) (op : op) : Row.t list =
  match op with
  | Insert { grp; pos; value } -> rows @ [ row grp pos (Value.Float value) ]
  | Insert_null { grp; pos } -> rows @ [ row grp pos Value.Null ]
  | Update { pos; value } ->
    List.map
      (fun r ->
        if Value.equal (Row.get r 1) (Value.Int pos) then
          [| Row.get r 0; Row.get r 1; Value.Float value |]
        else r)
      rows
  | Delete { pos } ->
    List.filter (fun r -> not (Value.equal (Row.get r 1) (Value.Int pos))) rows
  | Load_csv batch ->
    rows @ List.map (fun (g, p, v) -> row g p (Value.Float v)) batch
  | Refresh _ -> rows

let csv_of_batch batch =
  "grp,pos,val\n"
  ^ String.concat ""
      (List.map (fun (g, p, v) -> Printf.sprintf "%d,%d,%g\n" g p v) batch)

(* ---- Invariant checks ---- *)

let schema_seq =
  Schema.make
    [
      Schema.column "grp" Dtype.Int;
      Schema.column "pos" Dtype.Int;
      Schema.column "val" Dtype.Float;
    ]

let check_base db (oracle : Row.t list) ~context =
  let actual = Db.query db "SELECT grp, pos, val FROM seq" in
  let expected = Relation.of_array schema_seq (Array.of_list oracle) in
  if not (Relation.equal_bag actual expected) then
    divergence "%s: base table diverged from the shadow oracle\nengine:\n%s\noracle:\n%s"
      context
      (Relation.render (Relation.sorted_by_all actual))
      (Relation.render (Relation.sorted_by_all expected))

let check_views db ~context =
  List.iter
    (fun (v : Catalog.view) ->
      if v.Catalog.materialized && not v.Catalog.stale then
        match v.Catalog.contents with
        | None -> divergence "%s: view %s has no contents" context v.Catalog.view_name
        | Some contents ->
          let recomputed = Db.run_query db v.Catalog.definition in
          if not (Relation.equal_bag contents recomputed) then
            divergence
              "%s: non-stale view %s diverged from full recomputation\nstored:\n%s\nrecomputed:\n%s"
              context v.Catalog.view_name
              (Relation.render (Relation.sorted_by_all contents))
              (Relation.render (Relation.sorted_by_all recomputed)))
    (Catalog.all_views (Db.catalog db))

(* Read every stale view, which must heal it (lazy full refresh), and
   compare the healed contents with recomputation.  Returns the number
   of views healed. *)
let heal_stale db ~context =
  let stale = Db.stale_views db in
  List.iter
    (fun name ->
      let read = Db.query db (Printf.sprintf "SELECT * FROM %s" name) in
      if Db.is_stale db name then
        divergence "%s: reading stale view %s did not heal it" context name;
      let v = Catalog.view (Db.catalog db) name in
      let recomputed = Db.run_query db v.Catalog.definition in
      if not (Relation.equal_bag read recomputed) then
        divergence "%s: healed view %s diverged from full recomputation" context name)
    stale;
  List.length stale

(* ---- The harness ---- *)

let run ?(config = default_config) ?inject () : report =
  let db = Db.create () in
  let cache = Cache.create ~capacity:4 db in
  List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql;
  (* seed the cache so probes can hit by derivation *)
  ignore (Cache.query cache cache_seed_query);
  let prng = Prng.create ~seed:config.seed in
  let oracle = ref [] in
  let report =
    ref
      {
        statements = 0;
        failed = 0;
        quarantines = 0;
        heals = 0;
        cache_probes = 0;
        cache_hits = 0;
        checks = 0;
      }
  in
  (match inject with
   | Some (site, policy) -> Fault.arm site policy
   | None -> ());
  Fun.protect
    ~finally:(fun () -> Fault.disarm_all ())
    (fun () ->
      for i = 1 to config.ops do
        let op = gen_op prng in
        let context = Printf.sprintf "op %d (%s)" i (sql_of_op op) in
        let applied =
          match op with
          | Load_csv batch ->
            (match Csv.import_string db ~table:"seq" (csv_of_batch batch) with
             | _ -> true
             | exception _ -> false)
          | op ->
            (match Db.exec db (sql_of_op op) with
             | _ -> true
             | exception _ -> false)
        in
        if applied then oracle := apply_oracle !oracle op
        else report := { !report with failed = !report.failed + 1 };
        report := { !report with statements = !report.statements + 1 };
        (* all consistency checks run with injection suspended: they must
           observe the state the fault left behind, not re-trigger it *)
        Fault.with_suspended (fun () ->
            let stale_now = List.length (Db.stale_views db) in
            report := { !report with quarantines = !report.quarantines + stale_now };
            check_base db !oracle ~context;
            check_views db ~context;
            let healed = heal_stale db ~context in
            report := { !report with heals = !report.heals + healed; checks = !report.checks + 1 });
        (* cache probe: runs with faults live (the cache must degrade,
           never corrupt); the reference runs suspended *)
        if i mod config.cache_every = 0 then begin
          List.iter
            (fun sql ->
              let result, outcome = Cache.query cache sql in
              let reference =
                Fault.with_suspended (fun () -> Db.run_query db (Parser.query sql))
              in
              if not (Relation.equal_bag result reference) then
                divergence "op %d: cache answer diverged from uncached execution (%s)"
                  i
                  (Cache.describe_outcome outcome);
              report :=
                {
                  !report with
                  cache_probes = !report.cache_probes + 1;
                  cache_hits =
                    (!report.cache_hits
                    + match outcome with Cache.Hit _ -> 1 | _ -> 0);
                })
            cache_probe_queries
        end
      done;
      !report)

(* ---- State fingerprint (rollback-idempotence checks) ----

   A textual dump of everything a statement may mutate: table rows in
   physical order, view contents, quarantine flags and the rendered
   incremental states.  Two fingerprints are equal iff the logical
   database states are bit-identical. *)

let fingerprint (db : Db.t) : string =
  let buf = Buffer.create 1024 in
  let cat = Db.catalog db in
  Catalog.all_tables cat
  |> List.sort (fun (a : Catalog.table) b -> compare a.Catalog.table_name b.Catalog.table_name)
  |> List.iter (fun (tbl : Catalog.table) ->
         Buffer.add_string buf (Printf.sprintf "table %s\n" tbl.Catalog.table_name);
         Buffer.add_string buf (Relation.render (Catalog.table_relation tbl)));
  Catalog.all_views cat
  |> List.sort (fun (a : Catalog.view) b -> compare a.Catalog.view_name b.Catalog.view_name)
  |> List.iter (fun (v : Catalog.view) ->
         Buffer.add_string buf
           (Printf.sprintf "view %s stale=%b incremental=%b\n" v.Catalog.view_name
              v.Catalog.stale
              (Db.is_incrementally_maintained db v.Catalog.view_name));
         match v.Catalog.contents with
         | Some r -> Buffer.add_string buf (Relation.render r)
         | None -> ());
  Buffer.contents buf
