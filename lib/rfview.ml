(* Stable public façade: Config + Session over the engine. *)

module Relation = Rfview_relalg.Relation
module Db = Rfview_engine.Database
module Catalog = Rfview_engine.Catalog
module Fault = Rfview_engine.Fault
module Lexer = Rfview_sql.Lexer
module Parser = Rfview_sql.Parser
module Pretty = Rfview_sql.Pretty
module Binder = Rfview_planner.Binder
module Rep = Rfview_replica.Replica
module Ship = Rfview_replica.Ship

module Staleness = struct
  type lag = Rfview_engine.Staleness.lag = { records : int; bytes : int }

  type violation = Rfview_engine.Staleness.violation = {
    applied_lsn : int;
    tip_lsn : int;
    lag : lag;
  }

  let describe = Rfview_engine.Staleness.describe
end

module Config = struct
  type window_mode = Db.window_mode

  type window_strategy = Rfview_relalg.Window.strategy =
    | Naive
    | Incremental

  type degradation = Db.degradation

  type t = Db.config = {
    window_mode : window_mode;
    window_strategy : window_strategy;
    hash_join : bool;
    index_join : bool;
    degradation : degradation;
    share_scans : bool;
  }

  let default = Db.default_config
end

module Session = struct
  type t = { db : Db.t; mutable report : Db.recovery_report option }

  type lag = Staleness.lag = { records : int; bytes : int }

  type health = Db.health =
    | Healthy
    | Degraded of { reason : string; rejected_writes : int }

  type error =
    | Parse of string
    | Bind of string
    | Runtime of string
    | Quarantined of { views : string list; detail : string }
    | Recovery of string
    | Script of { index : int; sql : string; cause : error }
    | Stale of Staleness.violation
    | Degraded_mode of { reason : string }

  type result = Db.result =
    | Relation of Relation.t
    | Done of string

  type recovery_report = Db.recovery_report = {
    checkpoint_epoch : int option;
    replayed : int;
    torn : bool;
    quarantined : string list;
    swept : string list;
  }

  let rec describe_error = function
    | Parse m -> "parse error: " ^ m
    | Bind m -> "bind error: " ^ m
    | Runtime m -> m
    | Quarantined { views; detail } ->
      Printf.sprintf "%s (quarantined: %s)" detail (String.concat ", " views)
    | Recovery m -> "recovery failed: " ^ m
    | Script { index; sql; cause } ->
      Printf.sprintf "statement %d (%s): %s" index sql (describe_error cause)
    | Stale v -> Staleness.describe v
    | Degraded_mode { reason } ->
      Printf.sprintf "write rejected, session is degraded (read-only): %s" reason

  let describe_exn = function
    | Db.Engine_error m -> m
    | Catalog.Catalog_error m -> m
    | Rfview_relalg.Value.Type_error m -> "type error: " ^ m
    | Fault.Injected site -> "injected fault at " ^ site
    | e -> Printexc.to_string e

  (* [fresh] = views quarantined by this very operation (present after,
     absent before): a runtime failure that left fresh quarantines is
     surfaced as [Quarantined]. *)
  let rec error_of_exn ~fresh exn =
    match exn with
    | Lexer.Lex_error (m, off) -> Parse (Printf.sprintf "%s (at byte %d)" m off)
    | Parser.Parse_error m -> Parse m
    | Binder.Bind_error m -> Bind m
    | Db.Recovery_error m -> Recovery m
    | Db.Degraded_error { reason } -> Degraded_mode { reason }
    | Db.Script_error { index; sql; cause } ->
      Script { index; sql; cause = error_of_exn ~fresh cause }
    | Ship.Ship_error m -> Runtime ("ship: " ^ m)
    | Rep.Replica_error m -> Runtime ("replica: " ^ m)
    | e when fresh <> [] -> Quarantined { views = fresh; detail = describe_exn e }
    | e -> Runtime (describe_exn e)

  let wrap session f =
    let before = Db.stale_views session.db in
    match f () with
    | v -> Ok v
    | exception e ->
      let fresh =
        List.filter
          (fun v -> not (List.mem v before))
          (Db.stale_views session.db)
      in
      Error (error_of_exn ~fresh e)

  let open_in_memory ?config () =
    { db = Db.create ?config (); report = None }

  let open_durable ?config dir =
    match Db.recover ?config dir with
    | db, report -> Ok { db; report = Some report }
    | exception Db.Recovery_error m -> Error (Recovery m)
    | exception (Rfview_engine.Io.Io_error _ as e) ->
      (* the directory could not be opened — e.g. ENOSPC while
         installing the post-recovery fresh WAL *)
      Error (Recovery (describe_exn e))

  let recovery session = session.report
  let close session = Db.close session.db
  let exec session sql = wrap session (fun () -> Db.exec session.db sql)

  (* Chunked script execution: consecutive runs of [n] statements each
     group-commit in their own batch scope; the failing statement keeps
     its global 1-based index. *)
  let exec_script_chunked session n sql =
    let stmts = Array.of_list (Parser.statements sql) in
    let total = Array.length stmts in
    let results = ref [] in
    let failure = ref None in
    let i = ref 0 in
    while !i < total && Option.is_none !failure do
      let hi = min total (!i + n) in
      Db.with_batch session.db (fun () ->
          while !i < hi && Option.is_none !failure do
            let stmt = stmts.(!i) in
            (match Db.exec_statement session.db stmt with
             | r -> results := r :: !results
             | exception cause ->
               failure :=
                 Some
                   (Db.Script_error
                      { index = !i + 1; sql = Pretty.statement stmt; cause }));
            incr i
          done);
    done;
    match !failure with
    | Some e -> raise e
    | None -> List.rev !results

  let exec_script ?batch session sql =
    match batch with
    | None | Some 0 -> wrap session (fun () -> Db.exec_script session.db sql)
    | Some n when n < 0 -> invalid_arg "Session.exec_script: negative batch"
    | Some n -> wrap session (fun () -> exec_script_chunked session n sql)

  (* [query] is sugar for "snapshot at tip": when the session is quiescent
     (no open batch, no stale views awaiting heal-on-read) the read runs
     against the freshest published MVCC version, exactly as a concurrent
     reader domain would see it.  Inside a batch (read-your-writes) or with
     stale views pending (heal-on-read must commit into the live database)
     the read takes the direct path instead. *)
  let query session sql =
    wrap session (fun () ->
        if Db.in_batch session.db || Db.stale_views session.db <> [] then
          Db.query session.db sql
        else begin
          let sn = Db.snapshot session.db in
          Fun.protect
            ~finally:(fun () -> Db.Snapshot.close sn)
            (fun () -> Db.Snapshot.query sn sql)
        end)

  let with_batch session f = Db.with_batch session.db f
  let checkpoint session = wrap session (fun () -> Db.checkpoint session.db)
  let set_checkpoint_every session n = Db.set_checkpoint_every session.db n
  let set_checkpoint_bytes session n = Db.set_checkpoint_bytes session.db n
  let stale_views session = Db.stale_views session.db
  let config session = Db.config session.db
  let reconfigure session cfg = Db.reconfigure session.db cfg
  let lsn session = Db.lsn session.db

  (* Typed pass-throughs that used to require the [database] escape
     hatch; in-tree tools (bin, bench) now stay on the façade. *)
  let exec_statement session st =
    wrap session (fun () -> Db.exec_statement session.db st)

  let binder_catalog session = Db.binder_catalog session.db
  let catalog_view session = Db.catalog_view session.db
  let load_table session ~table rows = Db.load_table session.db ~table rows
  let fingerprint session = Db.fingerprint session.db

  let is_derived_maintained session name =
    Db.is_derived_maintained session.db name

  let share_classes session ~table = Db.share_classes session.db ~table

  let derivability_certificates session q =
    Rfview_engine.Advisor.certificates session.db q

  module Unsafe = struct
    let database session = session.db
  end

  (* ---- Replication ----

     Thin result-typed wrappers over [Rfview_replica]; no session-level
     quarantine tracking applies here, so errors wrap directly. *)

  let wrap_rep f =
    match f () with v -> Ok v | exception e -> Error (error_of_exn ~fresh:[] e)

  type shipper = Ship.t

  let shipper session = wrap_rep (fun () -> Ship.create session.db)

  (* attach when the feed file does not exist yet, reattach (resuming
     where the previous shipper stopped) when it does *)
  let attach_feed sh ~name ~path =
    wrap_rep (fun () ->
        if Sys.file_exists path then Ship.reattach sh ~name ~path
        else Ship.attach sh ~name ~path)

  let ship sh = wrap_rep (fun () -> Ship.pump sh)
  let resync_feed sh ~name = wrap_rep (fun () -> Ship.resync sh ~name)
  let shipped sh ~name = Ship.shipped sh ~name
  let close_shipper sh = Ship.close sh

  type replica = Rep.t

  let open_replica ?config ~name ~feed () = Rep.attach ?config ~name ~feed ()
  let poll_replica r = wrap_rep (fun () -> Rep.poll r)
  let replica_applied_lsn r = Rep.applied_lsn r
  let replica_lag r ~tip = Rep.lag r ~tip

  let replica_status r =
    match Rep.status r with
    | Rep.Syncing -> `Syncing
    | Rep.Ready -> `Ready
    | Rep.Quarantined { at_lsn; reason } -> `Quarantined (at_lsn, reason)

  let read_replica r ~tip ?max_records ?max_bytes sql =
    match Rep.read r ~tip ?max_records ?max_bytes sql with
    | Ok (rel, at) -> Ok (rel, at)
    | Error (Rep.Stale v) -> Error (Stale v)
    | Error (Rep.Unavailable m) -> Error (Runtime ("replica: " ^ m))
    | exception e -> Error (error_of_exn ~fresh:[] e)

  let promote r ~dir =
    wrap_rep (fun () ->
        let db = Rep.promote r ~dir in
        { db; report = None })

  (* ---- Storage health, scrubbing, repair ---- *)

  let health session = Db.health session.db

  type scrub_report = Rfview_engine.Scrub.report
  type repair_outcome = Rfview_replica.Repair.outcome

  let scrub_dir ?feeds dir = Rfview_replica.Repair.scrub ?feeds dir
  let repair_dir ?feeds dir = Rfview_replica.Repair.repair ?feeds dir

  let scrub ?feeds session =
    match Db.durable_dir session.db with
    | None -> Error (Runtime "scrub needs a durable session (open_durable)")
    | Some dir -> wrap_rep (fun () -> scrub_dir ?feeds dir)
end

module Snapshot = struct
  type t = Db.Snapshot.t

  let snapshot (session : Session.t) = Db.snapshot session.db

  let at (session : Session.t) ~lsn :
      (t, Session.error) result =
    match Db.snapshot_at session.db ~lsn with
    | Ok sn -> Ok sn
    | Error v -> Error (Session.Stale v)

  let lsn = Db.Snapshot.lsn
  let released = Db.Snapshot.released
  let fingerprint = Db.Snapshot.fingerprint
  let close = Db.Snapshot.close

  let query sn sql : (Relation.t, Session.error) result =
    match Db.Snapshot.query sn sql with
    | rel -> Ok rel
    | exception e -> Error (Session.error_of_exn ~fresh:[] e)

  let retained (session : Session.t) = Db.retained_lsns session.db
  let open_count (session : Session.t) = Db.open_snapshots session.db
  let set_retain (session : Session.t) n = Db.set_retain session.db n
end
