(* Quickstart: create a table, run reporting-function queries, materialize
   a sequence view and derive a different window from it.

   Run with:  dune exec examples/quickstart.exe *)

module Db = Rfview_engine.Database
module Advisor = Rfview_engine.Advisor
module Relation = Rfview_relalg.Relation

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  let db = Db.create () in

  section "1. A sequence table";
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO seq VALUES (1, 3), (2, 1), (3, 4), (4, 1), (5, 5), (6, 9), (7, \
        2), (8, 6)");
  Relation.print (Db.query db "SELECT * FROM seq ORDER BY pos");

  section "2. Reporting functions: cumulative sum and centered moving average";
  Relation.print
    (Db.query db
       "SELECT pos, val, \
        SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS running_total, \
        AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS mvg3 \
        FROM seq ORDER BY pos");

  section "3. The same query through the paper's self-join simulation (Fig. 2)";
  Db.reconfigure db { (Db.config db) with Db.window_mode = `Self_join };
  Relation.print
    (Db.query db
       "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 \
        FOLLOWING) AS w FROM seq ORDER BY pos");
  Db.reconfigure db { (Db.config db) with Db.window_mode = `Native };

  section "4. A materialized sequence view with window (2,1)";
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v21 AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS \
        BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  Relation.print (Db.query db "SELECT * FROM v21 ORDER BY pos");
  Printf.printf "incrementally maintained: %b\n"
    (Db.is_incrementally_maintained db "v21");

  section "5. Deriving a (3,2) window from the (2,1) view (no base access)";
  let q =
    Rfview_sql.Parser.query
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
       FOLLOWING) AS s FROM seq"
  in
  (match Advisor.answer db q with
   | None -> print_endline "no derivation found"
   | Some (result, proposal) ->
     Printf.printf "%s\n" (Advisor.describe proposal);
     Relation.print result;
     (match proposal.Advisor.relational_sql with
      | Some sql -> Printf.printf "relational pattern:\n  %s\n" sql
      | None -> ()));

  section "6. Incremental maintenance: update one base value";
  ignore (Db.exec db "UPDATE seq SET val = 10 WHERE pos = 4");
  Relation.print (Db.query db "SELECT * FROM v21 ORDER BY pos");

  section "7. EXPLAIN";
  print_endline
    (Db.explain db
       "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE s2.pos BETWEEN s1.pos - \
        1 AND s1.pos + 1 GROUP BY s1.pos")
