-- The paper's credit-card analysis (introduction, Fig. 1 flavor):
-- per-customer reporting functions over a transactions/locations star.
-- Linted by `dune build @lint`; this script must stay diagnostic-clean.

CREATE TABLE l_locations (l_locid INT, l_city VARCHAR, l_region VARCHAR);
CREATE TABLE c_transactions (c_custid INT, c_locid INT, c_date DATE, c_transaction FLOAT);

INSERT INTO l_locations VALUES
  (1, 'Dresden', 'East'), (2, 'Munich', 'South'), (3, 'Hamburg', 'North');
INSERT INTO c_transactions VALUES
  (7, 1, DATE '2001-01-03', 120.0),
  (7, 1, DATE '2001-01-17', 80.5),
  (7, 2, DATE '2001-02-02', 45.0),
  (7, 3, DATE '2001-02-21', 230.0),
  (7, 2, DATE '2001-03-05', 17.25),
  (9, 1, DATE '2001-01-09', 99.0);

-- running balance and a trailing one-week average per customer
SELECT c_custid, c_date, c_transaction,
       SUM(c_transaction) OVER (PARTITION BY c_custid ORDER BY c_date
                                ROWS UNBOUNDED PRECEDING) AS balance,
       AVG(c_transaction) OVER (PARTITION BY c_custid ORDER BY c_date
                                ROWS BETWEEN 6 PRECEDING AND CURRENT ROW) AS week_avg
FROM c_transactions
ORDER BY c_custid, c_date;

-- join against the dimension and aggregate by region
SELECT l_region, SUM(c_transaction) AS volume, COUNT(c_transaction) AS cnt
FROM c_transactions, l_locations
WHERE c_locid = l_locid
GROUP BY l_region
ORDER BY l_region;
