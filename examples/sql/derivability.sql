-- Derivability certificate corpus (paper §3-§5): materialized sequence
-- views with frames chosen so that `rfview analyze` shows both admitted
-- and statically-rejected candidate strategies for the queries below.
-- Analyzed by `make analyze`; the script must stay free of RF2xx
-- diagnostics (certificate rejections are printed, not diagnostics).

CREATE TABLE trades (day INT, amount FLOAT);
INSERT INTO trades VALUES
  (1, 12), (2, 5), (3, 30), (4, 2), (5, 14), (6, 9), (7, 21), (8, 4),
  (9, 17), (10, 6);

-- cumulative SUM view: the §3.1 difference rule derives every sliding
-- SUM window from it
CREATE MATERIALIZED VIEW cumsum AS
  SELECT day, SUM(amount) OVER (ORDER BY day ROWS UNBOUNDED PRECEDING) AS s
  FROM trades;

-- sliding SUM view (1, 1): MinOA derives any SUM window; MaxOA only
-- growing ones within twice the view window
CREATE MATERIALIZED VIEW sum11 AS
  SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s
  FROM trades;

-- sliding MIN view (2, 1): only the MaxOA coverage rule applies, and
-- only while delta_l + delta_h <= lx + hx = 3
CREATE MATERIALIZED VIEW min21 AS
  SELECT day, MIN(amount) OVER (ORDER BY day ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS m
  FROM trades;

-- certificate: cumulative-difference VALID from cumsum (§3.1)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS s
FROM trades ORDER BY day;

-- certificates from sum11: copy VALID (identical frames, ∆l = 0)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s
FROM trades ORDER BY day;

-- certificates from sum11: MinOA and MaxOA both VALID
-- (∆l = 2 <= lx+hx = 2, so the left residue ∆p = 1)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS s
FROM trades ORDER BY day;

-- certificates from sum11: MinOA VALID, MaxOA REJECTED
-- (∆l = 3 > lx+hx = 2: the left residue condition ∆p >= 1 fails)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 4 PRECEDING AND 1 FOLLOWING) AS s
FROM trades ORDER BY day;

-- certificates from sum11: MinOA VALID (it may shrink), MaxOA REJECTED
-- (no-shrink: ∆l = -1 < 0)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) AS s
FROM trades ORDER BY day;

-- certificate from min21: MaxOA-minmax VALID (∆l + ∆h = 2 <= 3)
SELECT day, MIN(amount) OVER (ORDER BY day ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS m
FROM trades ORDER BY day;

-- certificate from min21: every strategy REJECTED
-- (coverage ∆l + ∆h = 4 > lx+hx = 3, and MIN is not invertible)
SELECT day, MIN(amount) OVER (ORDER BY day ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS m
FROM trades ORDER BY day;

-- certificate from cumsum: copy VALID (the frames agree exactly)
SELECT day, SUM(amount) OVER (ORDER BY day ROWS UNBOUNDED PRECEDING) AS s
FROM trades ORDER BY day;
