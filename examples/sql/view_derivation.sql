-- Materialized sequence views with different frames (paper §3-§4): the
-- engine answers the later queries from the views where derivable.
-- Linted by `dune build @lint`; this script must stay diagnostic-clean.

CREATE TABLE seq (pos INT, val FLOAT);
INSERT INTO seq VALUES (1, 2), (2, 7), (3, 1), (4, 8), (5, 2), (6, 8), (7, 1), (8, 8);

-- a SUM view with window (2, 2): MinOA can derive narrower SUM windows
CREATE MATERIALIZED VIEW sum22 AS
  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS s
  FROM seq;

-- a MAX view with window (1, 1): MaxOA can derive wider MAX windows as
-- long as delta_l + delta_h <= lx + hx (here: up to 2 extra positions)
CREATE MATERIALIZED VIEW max11 AS
  SELECT pos, MAX(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS m
  FROM seq;

-- derivable: (1, 1) SUM from the (2, 2) view
SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s
FROM seq ORDER BY pos;

-- derivable: (2, 1) MAX from the (1, 1) view (delta_l + delta_h = 1 <= 2)
SELECT pos, MAX(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS m
FROM seq ORDER BY pos;

REFRESH MATERIALIZED VIEW sum22;
