-- Generalized IVM corpus: materialized views beyond the paper's §2.3
-- sequence shape.  `rfview analyze` prints each view's incrementality
-- certificate — the machine-checked obligations under which the
-- delta-plan deriver (Planner.Deriv) maintains it incrementally — and
-- an RF30x warning for every statically-rejected view (those keep full
-- refresh).  Analyzed by `make analyze`; the script must stay free of
-- RF2xx diagnostics.

CREATE TABLE sales (cust INT, region INT, amount FLOAT);
CREATE TABLE customers (cust INT, name VARCHAR);
INSERT INTO sales VALUES
  (1, 10, 12.5), (1, 20, 3.25), (2, 10, 8.0), (3, 20, 41.0), (4, 10, -2.5);
INSERT INTO customers VALUES (1, 'ada'), (2, 'bob'), (3, 'cyd');

-- DERIVED: inner join of the two base tables.  Join deltas are
-- bilinear; at batch commit the view changes by
-- dS |x| C_new + S_new |x| dC - dS |x| dC.
CREATE MATERIALIZED VIEW sales_named AS
  SELECT s.cust AS cust, c.name AS name, s.amount AS amount
  FROM sales s JOIN customers c ON s.cust = c.cust;

-- DERIVED: GROUP BY regrouping over affected keys.  Touched groups are
-- removed by key and recomputed from the restricted post-state child,
-- bit-identical to a full refresh.
CREATE MATERIALIZED VIEW region_totals AS
  SELECT region, SUM(amount) AS total, COUNT(*) AS n
  FROM sales GROUP BY region;

-- DERIVED: reporting function localized to its PARTITION BY key; only
-- affected partitions are re-extended.
CREATE MATERIALIZED VIEW region_share AS
  SELECT region, cust, amount, SUM(amount) OVER (PARTITION BY region) AS s
  FROM sales;

-- REJECTED (RF302): the outer join's NULL padding breaks bilinearity —
-- an insert on the inner side can retract padded rows.
CREATE MATERIALIZED VIEW all_sales_named AS
  SELECT s.cust AS cust, c.name AS name
  FROM sales s LEFT OUTER JOIN customers c ON s.cust = c.cust;

-- REJECTED (RF301): DISTINCT has no per-operator delta rule here; the
-- view keeps full refresh.
CREATE MATERIALIZED VIEW active_regions AS
  SELECT DISTINCT region FROM sales;

-- REJECTED (RF304): without PARTITION BY the reporting function spans
-- the whole table — no partition-local maintenance exists.
CREATE MATERIALIZED VIEW running_total AS
  SELECT cust, SUM(amount) OVER (ORDER BY cust) AS s FROM sales;
