-- Scan sharing and resource analysis (rfview analyze: RF401-RF403).
--
-- Four materialized sequence views over one base table.  The first
-- three agree on the (PARTITION BY grp ORDER BY pos) scan key, so the
-- engine drives them from ONE shared partition iterator at batch
-- commit (RF401 advisory, sharing certificate printed by `analyze`).
-- The last two are deliberately incompatible: a coarser PARTITION BY
-- prefix and a different ORDER BY column each need their own merge
-- pass, so they land in singleton (SOLO) classes.

CREATE TABLE seq (grp INT, pos INT, val FLOAT);
INSERT INTO seq VALUES (1, 1, 10.0);
INSERT INTO seq VALUES (1, 2, 20.0);
INSERT INTO seq VALUES (1, 3, 15.0);
INSERT INTO seq VALUES (2, 1, 5.0);
INSERT INTO seq VALUES (2, 2, 25.0);

-- scan-share class {v_cum, v_mvg, v_low}: same base, same partition
-- prefix, same sort order, bounded per-view frame state
CREATE MATERIALIZED VIEW v_cum AS
SELECT grp, pos, val,
       SUM(val) OVER (PARTITION BY grp ORDER BY pos
                      ROWS UNBOUNDED PRECEDING) AS running
FROM seq;

CREATE MATERIALIZED VIEW v_mvg AS
SELECT grp, pos, val,
       AVG(val) OVER (PARTITION BY grp ORDER BY pos
                      ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS avg3
FROM seq;

CREATE MATERIALIZED VIEW v_low AS
SELECT grp, pos, val,
       MIN(val) OVER (PARTITION BY grp ORDER BY pos
                      ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS low3
FROM seq;

-- incompatible: no PARTITION BY — the coarser prefix would re-walk the
-- whole table as one partition, so it cannot ride the shared scan
CREATE MATERIALIZED VIEW v_all AS
SELECT grp, pos, val,
       SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS total
FROM seq;

-- incompatible: different ORDER BY column — the sort order is not
-- subsumed by the class's order
CREATE MATERIALIZED VIEW v_byval AS
SELECT grp, pos, val,
       SUM(val) OVER (PARTITION BY grp ORDER BY val
                      ROWS UNBOUNDED PRECEDING) AS byval
FROM seq;

-- RF402: a RANGE frame cannot use the w+2 frame cache — the whole
-- partition must stay resident (and RF403 under a tiny --budget)
SELECT grp, pos,
       SUM(val) OVER (PARTITION BY grp ORDER BY pos
                      RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS r
FROM seq;
