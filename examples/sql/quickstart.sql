-- Reporting functions over a simple sequence (paper §2.1).
-- Linted by `dune build @lint`; this script must stay diagnostic-clean.

CREATE TABLE seq (pos INT, val FLOAT);
INSERT INTO seq VALUES (1, 3), (2, 1), (3, 4), (4, 1), (5, 5), (6, 9), (7, 2), (8, 6);

-- cumulative sum and centered moving average
SELECT pos, val,
       SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS running_total,
       AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS mvg3
FROM seq ORDER BY pos;

-- a materialized sequence view with window (2, 1)
CREATE MATERIALIZED VIEW sv AS
  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s
  FROM seq;

SELECT pos, s FROM sv WHERE pos <= 4 ORDER BY pos;

-- ranking needs an ordering; frames here all contain the current row
SELECT pos, val, RANK() OVER (ORDER BY val DESC) AS rk
FROM seq ORDER BY pos;
