(* Fault tolerance: atomic statements, quarantined views and the chaos
   harness.

   Walks through the robustness machinery: a fault injected mid
   statement rolls the whole statement back; a fault during view
   maintenance quarantines just that view (the statement still
   succeeds) and the next read heals it; a faulting cache entry is
   evicted and the query re-runs uncached.  Then runs the chaos harness
   against every registered fault site.

   Run with:  dune exec examples/fault_tolerance.exe *)

module Db = Rfview_engine.Database
module Cache = Rfview_engine.Cache
module Fault = Rfview_engine.Fault
module Chaos = Rfview_workload.Chaos
module Relation = Rfview_relalg.Relation

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE seq (grp INT, pos INT, val FLOAT)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v_cum AS SELECT grp, pos, val, SUM(val) OVER \
        (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 1, 10)");
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 2, 20)");

  section "Statement atomicity: a fault after the base mutation rolls back";
  Fault.arm "database.apply_insert" Fault.Always;
  (match Db.exec db "INSERT INTO seq VALUES (1, 3, 30)" with
   | _ -> assert false
   | exception Fault.Injected site -> Printf.printf "raised: injected fault at %s\n" site);
  Fault.disarm_all ();
  Printf.printf "table after rollback (still 2 rows):\n";
  Relation.print (Db.query db "SELECT * FROM seq");

  section "Quarantine: a maintenance fault marks the view stale, not the db";
  Fault.arm "matview.apply_insert" Fault.Always;
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 3, 30)");
  Fault.disarm_all ();
  Printf.printf "insert succeeded; v_cum stale? %b\n" (Db.is_stale db "v_cum");
  Printf.printf "reading the view heals it by full refresh:\n";
  Relation.print (Db.query db "SELECT * FROM v_cum");
  Printf.printf "v_cum stale after read? %b\n" (Db.is_stale db "v_cum");

  section "Cache degradation: a faulting derivation evicts and bypasses";
  let cache = Cache.create db in
  let probe = "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 \
               PRECEDING AND 1 FOLLOWING) AS s FROM seq" in
  let _, o1 = Cache.query cache probe in
  Printf.printf "first run:  %s\n" (Cache.describe_outcome o1);
  Fault.arm "cache.derive_answer" Fault.Always;
  let r2, o2 = Cache.query cache probe in
  Fault.disarm_all ();
  Printf.printf "under fault: %s (still %d correct rows)\n"
    (Cache.describe_outcome o2) (Relation.cardinality r2);

  section "Chaos harness: every site, randomized DML vs a shadow oracle";
  Fault.reset ();
  let clean = Chaos.run () in
  Printf.printf "no injection: %d statements, %d checks, all consistent\n"
    clean.Chaos.statements clean.Chaos.checks;
  List.iter
    (fun site ->
      let r =
        Chaos.run ~inject:(site, Fault.Probability { p = 0.3; seed = 42 }) ()
      in
      Printf.printf
        "%-24s fired %d: %d failed stmts, %d quarantines, %d heals — consistent\n"
        site (Fault.fired site) r.Chaos.failed r.Chaos.quarantines r.Chaos.heals)
    (Fault.sites ())
