(* Crash recovery: the checksummed WAL, checkpoints and recovery.

   Walks through the durability layer: every committed statement is on
   disk before its result is returned, so abandoning the database object
   ("crashing") loses nothing; a checkpoint folds the log into a
   snapshot; a torn partial record on the log tail is detected by its
   CRC and truncated, never replayed; a damaged per-view state record
   quarantines just that view, and the first read heals it.

   Run with:  dune exec examples/crash_recovery.exe *)

module Db = Rfview_engine.Database
module Checkpoint = Rfview_engine.Checkpoint
module Wal = Rfview_engine.Wal
module Relation = Rfview_relalg.Relation

let section title = Printf.printf "\n=== %s ===\n%!" title
let dir = "crash_recovery.rfdb"

let describe (r : Db.recovery_report) =
  Printf.printf
    "recovery: checkpoint %s, %d WAL record(s) replayed, torn=%b, quarantined=[%s]\n%!"
    (match r.Db.checkpoint_epoch with
     | None -> "none"
     | Some e -> Printf.sprintf "epoch %d" e)
    r.Db.replayed r.Db.torn
    (String.concat ", " r.Db.quarantined)

let () =
  (* start from an empty directory *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);

  section "Write-ahead logging: commit means durable";
  let db = Db.open_durable dir in
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER \
        BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
  ignore (Db.exec db "UPDATE seq SET val = val / 3");
  (* crash: simply abandon the handle — every statement was fsynced *)
  Db.close db;

  section "Recovery replays the log and rebuilds the matview state";
  let db, report = Db.recover dir in
  describe report;
  Relation.print (Db.query db "SELECT * FROM v");
  Printf.printf "incrementally maintained again: %b\n"
    (Db.is_incrementally_maintained db "v");

  section "Checkpoint: snapshot the state, start a fresh WAL epoch";
  Db.checkpoint db;
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Db.close db;
  let db, report = Db.recover dir in
  describe report;
  (* only the one post-checkpoint statement needed replaying *)

  section "A torn write on the log tail is truncated, not replayed";
  Db.close db;
  let frame = Wal.frame (Wal.Statement "CREATE TABLE half_written (x INT)") in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "log.wal")
  in
  output_string oc (String.sub frame 0 (String.length frame - 4));
  close_out oc;
  let db, report = Db.recover dir in
  describe report;
  Printf.printf "half-written table exists: %b\n"
    (Rfview_engine.Catalog.find_table (Db.catalog db) "half_written" <> None);

  section "Damaged view state: quarantined and healed, never fatal";
  Db.checkpoint db;
  Db.close db;
  ignore (Checkpoint.corrupt_state ~dir ~view:"v");
  let db, report = Db.recover dir in
  describe report;
  Printf.printf "v stale after recovery: %b\n" (Db.is_stale db "v");
  (* the first read triggers a full refresh *)
  Relation.print (Db.query db "SELECT * FROM v");
  Printf.printf "v stale after reading: %b\n" (Db.is_stale db "v");
  Db.close db
