(* rfview — command-line front end for the reporting-function engine.

   Subcommands:
     run FILE        execute a SQL script and print every result
     repl            interactive SQL shell (line-based; ';' terminates)
     demo            start the repl with the credit-card demo schema loaded

   Options:
     --self-join     execute reporting functions via the Fig. 2 self-join
                     simulation instead of the native window operator
     --naive-window  use the naive O(n·w) window strategy *)

module Db = Rfview_engine.Database
module Relation = Rfview_relalg.Relation

let configure db ~self_join ~naive_window =
  if self_join then Db.set_window_mode db `Self_join;
  if naive_window then Db.set_window_strategy db Rfview_relalg.Window.Naive

let print_result = function
  | Db.Relation r ->
    Relation.print ~max_rows:100 r;
    Printf.printf "(%d rows)\n%!" (Relation.cardinality r)
  | Db.Done msg -> Printf.printf "%s\n%!" msg

let report_error = function
  | Rfview_sql.Lexer.Lex_error (m, off) -> Printf.printf "lex error at %d: %s\n%!" off m
  | Rfview_sql.Parser.Parse_error m -> Printf.printf "parse error: %s\n%!" m
  | Rfview_planner.Binder.Bind_error m -> Printf.printf "bind error: %s\n%!" m
  | Rfview_engine.Catalog.Catalog_error m -> Printf.printf "catalog error: %s\n%!" m
  | Db.Engine_error m -> Printf.printf "error: %s\n%!" m
  | Rfview_relalg.Value.Type_error m -> Printf.printf "type error: %s\n%!" m
  | e -> Printf.printf "error: %s\n%!" (Printexc.to_string e)

let run_script db sql =
  match Db.exec_script db sql with
  | results -> List.iter print_result results
  | exception e -> report_error e

let cmd_run file self_join naive_window =
  let db = Db.create () in
  configure db ~self_join ~naive_window;
  let ic = open_in file in
  let len = in_channel_length ic in
  let sql = really_input_string ic len in
  close_in ic;
  run_script db sql

let repl db =
  Printf.printf
    "rfview SQL shell — terminate statements with ';', exit with \\q or Ctrl-D\n%!";
  let buf = Buffer.create 256 in
  let rec loop () =
    Printf.printf (if Buffer.length buf = 0 then "rfview> " else "   ...> ");
    Printf.printf "%!";
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "\\q" -> ()
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.contains line ';' then begin
        Buffer.clear buf;
        (match Db.exec_script db text with
         | results -> List.iter print_result results
         | exception e -> report_error e)
      end;
      loop ()
  in
  loop ()

let cmd_repl self_join naive_window =
  let db = Db.create () in
  configure db ~self_join ~naive_window;
  repl db

let cmd_demo self_join naive_window =
  let db = Db.create () in
  configure db ~self_join ~naive_window;
  Rfview_workload.Transactions.load db;
  Printf.printf
    "loaded demo schema: c_transactions (%d rows), l_locations (%d rows)\n"
    (Relation.cardinality (Db.query db "SELECT * FROM c_transactions"))
    (Relation.cardinality (Db.query db "SELECT * FROM l_locations"));
  Printf.printf "try: %s;\n\n" (Rfview_workload.Transactions.intro_query ~custid:7 ());
  repl db

open Cmdliner

let self_join =
  Arg.(value & flag & info [ "self-join" ] ~doc:"Execute reporting functions via the Fig. 2 self-join simulation.")

let naive_window =
  Arg.(value & flag & info [ "naive-window" ] ~doc:"Use the naive O(n*w) window evaluation strategy.")

let run_t =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script")
    Term.(const cmd_run $ file $ self_join $ naive_window)

let repl_t =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL shell")
    Term.(const cmd_repl $ self_join $ naive_window)

let demo_t =
  Cmd.v (Cmd.info "demo" ~doc:"SQL shell with the credit-card demo schema")
    Term.(const cmd_demo $ self_join $ naive_window)

let main =
  Cmd.group
    (Cmd.info "rfview" ~version:"1.0.0"
       ~doc:"Reporting-function views in a data warehouse environment")
    [ run_t; repl_t; demo_t ]

let () = exit (Cmd.eval main)
