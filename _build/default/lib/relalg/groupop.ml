(* Grouped aggregation (the classic GROUP BY, the paper's "first step" of
   reporting-function evaluation).  Output schema: one column per group
   expression followed by one column per aggregate.

   COUNT star is encoded as COUNT over a constant: it never sees NULL, so
   it counts rows. *)

type agg_spec = {
  kind : Aggregate.kind;
  arg : Expr.t;
  name : string;
}

let star_count name = { kind = Aggregate.Count; arg = Expr.Const (Value.Int 1); name }

let output_schema (input : Schema.t) group aggs : Schema.t =
  let group_cols =
    List.mapi
      (fun i e ->
        match e with
        | Expr.Col c -> (Schema.col input c)
        | _ ->
          Schema.column (Printf.sprintf "group_%d" i)
            (Option.value ~default:Dtype.String (Expr.infer_type input e)))
      group
  in
  let agg_cols =
    List.map
      (fun a ->
        let input_ty =
          try Expr.infer_type input a.arg with Expr.Type_mismatch _ -> None
        in
        let ty =
          Option.value ~default:Dtype.Float (Aggregate.result_type a.kind input_ty)
        in
        Schema.column a.name ty)
      aggs
  in
  Schema.make (group_cols @ agg_cols)

let group_by ?(group : Expr.t list = []) ~(aggs : agg_spec list) (r : Relation.t) :
    Relation.t =
  let schema = output_schema (Relation.schema r) group aggs in
  let tbl : (Row.t, Aggregate.state array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let key = Array.of_list (List.map (fun e -> Expr.eval row e) group) in
      let states =
        match Hashtbl.find_opt tbl key with
        | Some st -> st
        | None ->
          let st = Array.of_list (List.map (fun a -> Aggregate.create a.kind) aggs) in
          Hashtbl.add tbl key st;
          order := key :: !order;
          st
      in
      List.iteri (fun i a -> Aggregate.add states.(i) (Expr.eval row a.arg)) aggs)
    r;
  let keys = List.rev !order in
  (* Global aggregation over an empty input still yields one row. *)
  let keys =
    if keys = [] && group = [] then begin
      let st = Array.of_list (List.map (fun a -> Aggregate.create a.kind) aggs) in
      Hashtbl.add tbl [||] st;
      [ [||] ]
    end
    else keys
  in
  let rows =
    List.map
      (fun key ->
        let states = Hashtbl.find tbl key in
        Row.append key (Array.map Aggregate.result states))
      keys
  in
  Relation.of_array schema (Array.of_list rows)
