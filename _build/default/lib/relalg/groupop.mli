(** Grouped aggregation — the classic GROUP BY, the "first step" of
    reporting-function evaluation in the paper's processing strategy.

    Output schema: one column per group expression followed by one per
    aggregate.  Global aggregation (no group expressions) over an empty
    input still yields one row, per SQL. *)

type agg_spec = {
  kind : Aggregate.kind;
  arg : Expr.t;
  name : string;
}

(** COUNT over a constant: counts rows, i.e. COUNT star. *)
val star_count : string -> agg_spec

val output_schema : Schema.t -> Expr.t list -> agg_spec list -> Schema.t

val group_by : ?group:Expr.t list -> aggs:agg_spec list -> Relation.t -> Relation.t
