(* Scalar expressions over a resolved schema.  Column references are
   positional ([Col i]); the planner's binder resolves names to indices.

   Boolean evaluation follows SQL three-valued logic: predicates evaluate
   to TRUE, FALSE or NULL (unknown); filters keep only TRUE rows. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not

type func =
  | Coalesce
  | Abs
  | Least
  | Greatest
  | Year
  | Month
  | Day
  | Nullif
  | Sign

type t =
  | Const of Value.t
  | Col of int
  | Binop of binop * t * t
  | Unop of unop * t
  | Case of (t * t) list * t option  (* searched CASE: WHEN cond THEN v *)
  | Call of func * t list
  | In_list of t * t list
  | Between of t * t * t             (* e BETWEEN lo AND hi *)
  | Is_null of t
  | Is_not_null of t

let func_name = function
  | Coalesce -> "COALESCE"
  | Abs -> "ABS"
  | Least -> "LEAST"
  | Greatest -> "GREATEST"
  | Year -> "YEAR"
  | Month -> "MONTH"
  | Day -> "DAY"
  | Nullif -> "NULLIF"
  | Sign -> "SIGN"

let func_of_name s =
  match String.uppercase_ascii s with
  | "COALESCE" -> Some Coalesce
  | "ABS" -> Some Abs
  | "LEAST" -> Some Least
  | "GREATEST" -> Some Greatest
  | "YEAR" -> Some Year
  | "MONTH" -> Some Month
  | "DAY" -> Some Day
  | "NULLIF" -> Some Nullif
  | "SIGN" -> Some Sign
  | _ -> None

(* ---- Three-valued logic helpers ---- *)

let tvl_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | a, b ->
    Value.type_error "AND expects booleans, got %s and %s" (Value.to_string a)
      (Value.to_string b)

let tvl_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | a, b ->
    Value.type_error "OR expects booleans, got %s and %s" (Value.to_string a)
      (Value.to_string b)

let tvl_not = function
  | Value.Null -> Value.Null
  | Value.Bool b -> Value.Bool (not b)
  | v -> Value.type_error "NOT expects a boolean, got %s" (Value.to_string v)

let cmp_result op a b =
  match Value.sql_compare a b with
  | None -> Value.Null
  | Some c ->
    Value.Bool
      (match op with
       | Eq -> c = 0
       | Neq -> c <> 0
       | Lt -> c < 0
       | Le -> c <= 0
       | Gt -> c > 0
       | Ge -> c >= 0
       | Add | Sub | Mul | Div | Mod | And | Or -> assert false)

(* ---- Evaluation ---- *)

let rec eval (row : Row.t) (e : t) : Value.t =
  match e with
  | Const v -> v
  | Col i -> Row.get row i
  | Binop (op, a, b) -> eval_binop row op a b
  | Unop (Neg, a) -> Value.neg (eval row a)
  | Unop (Not, a) -> tvl_not (eval row a)
  | Case (whens, else_) -> eval_case row whens else_
  | Call (f, args) -> eval_call row f args
  | In_list (e, items) -> eval_in row e items
  | Between (e, lo, hi) ->
    let v = eval row e in
    tvl_and (cmp_result Ge v (eval row lo)) (cmp_result Le v (eval row hi))
  | Is_null e -> Value.Bool (Value.is_null (eval row e))
  | Is_not_null e -> Value.Bool (not (Value.is_null (eval row e)))

and eval_binop row op a b =
  match op with
  | And -> tvl_and (eval row a) (eval row b)
  | Or -> tvl_or (eval row a) (eval row b)
  | Add -> Value.add (eval row a) (eval row b)
  | Sub -> Value.sub (eval row a) (eval row b)
  | Mul -> Value.mul (eval row a) (eval row b)
  | Div -> Value.div (eval row a) (eval row b)
  | Mod -> Value.modulo (eval row a) (eval row b)
  | Eq | Neq | Lt | Le | Gt | Ge -> cmp_result op (eval row a) (eval row b)

and eval_case row whens else_ =
  let rec loop = function
    | [] -> (match else_ with None -> Value.Null | Some e -> eval row e)
    | (cond, v) :: rest ->
      (match eval row cond with
       | Value.Bool true -> eval row v
       | Value.Bool false | Value.Null -> loop rest
       | c -> Value.type_error "CASE condition must be boolean, got %s" (Value.to_string c))
  in
  loop whens

and eval_call row f args =
  match f, args with
  | Coalesce, args ->
    let rec first = function
      | [] -> Value.Null
      | a :: rest ->
        let v = eval row a in
        if Value.is_null v then first rest else v
    in
    first args
  | Abs, [ a ] ->
    (match eval row a with
     | Value.Null -> Value.Null
     | Value.Int i -> Value.Int (abs i)
     | Value.Float f -> Value.Float (Float.abs f)
     | v -> Value.type_error "ABS expects a number, got %s" (Value.to_string v))
  | Sign, [ a ] ->
    (match eval row a with
     | Value.Null -> Value.Null
     | Value.Int i -> Value.Int (compare i 0)
     | Value.Float f -> Value.Int (compare f 0.)
     | v -> Value.type_error "SIGN expects a number, got %s" (Value.to_string v))
  | Least, args -> fold_extremum row ( < ) args
  | Greatest, args -> fold_extremum row ( > ) args
  | (Year | Month | Day), [ a ] ->
    (match eval row a with
     | Value.Null -> Value.Null
     | Value.Date d ->
       Value.Int
         (match f with
          | Year -> Value.date_year d
          | Month -> Value.date_month d
          | Day -> Value.date_day d
          | _ -> assert false)
     | v -> Value.type_error "%s expects a date, got %s" (func_name f) (Value.to_string v))
  | Nullif, [ a; b ] ->
    let va = eval row a in
    (match Value.sql_compare va (eval row b) with
     | Some 0 -> Value.Null
     | _ -> va)
  | f, args ->
    Value.type_error "function %s does not accept %d arguments" (func_name f)
      (List.length args)

and fold_extremum row better args =
  let pick acc v =
    match acc, v with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | a, b -> if better (Value.compare b a) 0 then b else a
  in
  match args with
  | [] -> Value.type_error "LEAST/GREATEST need at least one argument"
  | a :: rest -> List.fold_left (fun acc e -> pick acc (eval row e)) (eval row a) rest

and eval_in row e items =
  let v = eval row e in
  if Value.is_null v then Value.Null
  else
    let rec loop saw_null = function
      | [] -> if saw_null then Value.Null else Value.Bool false
      | item :: rest ->
        (match Value.sql_compare v (eval row item) with
         | Some 0 -> Value.Bool true
         | Some _ -> loop saw_null rest
         | None -> loop true rest)
    in
    loop false items

(* A predicate holds iff it evaluates to TRUE (not NULL). *)
let holds row e =
  match eval row e with
  | Value.Bool true -> true
  | Value.Bool false | Value.Null -> false
  | v -> Value.type_error "predicate must be boolean, got %s" (Value.to_string v)

(* ---- Static typing against a schema ---- *)

exception Type_mismatch of string

let rec infer_type (schema : Schema.t) (e : t) : Dtype.t option =
  (* [None] means "always NULL / unknown", which unifies with anything. *)
  match e with
  | Const v -> Value.dtype_of v
  | Col i -> Some (Schema.col schema i).Schema.ty
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
    (match infer_type schema a, infer_type schema b with
     | Some Dtype.Date, Some Dtype.Int | Some Dtype.Int, Some Dtype.Date ->
       Some Dtype.Date
     | Some Dtype.Date, Some Dtype.Date -> Some Dtype.Int
     | Some ta, Some tb ->
       if Dtype.is_numeric ta && Dtype.is_numeric tb then Dtype.join ta tb
       else raise (Type_mismatch "arithmetic on non-numeric operands")
     | t, None | None, t -> t)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _)
  | In_list _ | Between _ | Is_null _ | Is_not_null _ -> Some Dtype.Bool
  | Unop (Neg, a) -> infer_type schema a
  | Unop (Not, _) -> Some Dtype.Bool
  | Case (whens, else_) ->
    let tys =
      List.filter_map (fun (_, v) -> infer_type schema v) whens
      @ (match else_ with None -> [] | Some e -> Option.to_list (infer_type schema e))
    in
    (match tys with
     | [] -> None
     | t :: rest ->
       Some
         (List.fold_left
            (fun acc ty ->
              match Dtype.join acc ty with
              | Some t -> t
              | None -> raise (Type_mismatch "CASE branches have incompatible types"))
            t rest))
  | Call ((Year | Month | Day | Sign), _) -> Some Dtype.Int
  | Call (Abs, [ a ]) | Call (Nullif, [ a; _ ]) -> infer_type schema a
  | Call ((Coalesce | Least | Greatest), args) ->
    let tys = List.filter_map (infer_type schema) args in
    (match tys with
     | [] -> None
     | t :: rest ->
       Some
         (List.fold_left
            (fun acc ty ->
              match Dtype.join acc ty with
              | Some t -> t
              | None -> raise (Type_mismatch "incompatible argument types"))
            t rest))
  | Call (f, args) ->
    raise (Type_mismatch
             (Printf.sprintf "%s with %d arguments" (func_name f) (List.length args)))

(* ---- Structural helpers used by the planner ---- *)

let rec map_cols f (e : t) : t =
  match e with
  | Const _ -> e
  | Col i -> Col (f i)
  | Binop (op, a, b) -> Binop (op, map_cols f a, map_cols f b)
  | Unop (op, a) -> Unop (op, map_cols f a)
  | Case (whens, else_) ->
    Case
      ( List.map (fun (c, v) -> (map_cols f c, map_cols f v)) whens,
        Option.map (map_cols f) else_ )
  | Call (fn, args) -> Call (fn, List.map (map_cols f) args)
  | In_list (e, items) -> In_list (map_cols f e, List.map (map_cols f) items)
  | Between (e, lo, hi) -> Between (map_cols f e, map_cols f lo, map_cols f hi)
  | Is_null e -> Is_null (map_cols f e)
  | Is_not_null e -> Is_not_null (map_cols f e)

let rec cols_used acc (e : t) =
  match e with
  | Const _ -> acc
  | Col i -> i :: acc
  | Binop (_, a, b) -> cols_used (cols_used acc a) b
  | Unop (_, a) -> cols_used acc a
  | Case (whens, else_) ->
    let acc = List.fold_left (fun acc (c, v) -> cols_used (cols_used acc c) v) acc whens in
    (match else_ with None -> acc | Some e -> cols_used acc e)
  | Call (_, args) | In_list (_, args) ->
    let acc = match e with In_list (x, _) -> cols_used acc x | _ -> acc in
    List.fold_left cols_used acc args
  | Between (e, lo, hi) -> cols_used (cols_used (cols_used acc e) lo) hi
  | Is_null e | Is_not_null e -> cols_used acc e

let columns e = List.sort_uniq Int.compare (cols_used [] e)

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> Binop (And, acc, c)) e rest

(* ---- Pretty-printing (for EXPLAIN output) ---- *)

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let rec pp_with ~col ppf (e : t) =
  let pp = pp_with ~col in
  match e with
  | Const v -> Format.pp_print_string ppf (Value.to_sql v)
  | Col i -> Format.pp_print_string ppf (col i)
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Unop (Not, a) -> Format.fprintf ppf "(NOT %a)" pp a
  | Case (whens, else_) ->
    Format.fprintf ppf "CASE";
    List.iter (fun (c, v) -> Format.fprintf ppf " WHEN %a THEN %a" pp c pp v) whens;
    (match else_ with
     | None -> ()
     | Some e -> Format.fprintf ppf " ELSE %a" pp e);
    Format.fprintf ppf " END"
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" (func_name f)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args
  | In_list (e, items) ->
    Format.fprintf ppf "%a IN (%a)" pp e
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      items
  | Between (e, lo, hi) -> Format.fprintf ppf "%a BETWEEN %a AND %a" pp e pp lo pp hi
  | Is_null e -> Format.fprintf ppf "%a IS NULL" pp e
  | Is_not_null e -> Format.fprintf ppf "%a IS NOT NULL" pp e

let pp ppf e = pp_with ~col:(fun i -> Printf.sprintf "$%d" i) ppf e

let to_string ?(col = fun i -> Printf.sprintf "$%d" i) e =
  Format.asprintf "%a" (pp_with ~col) e
