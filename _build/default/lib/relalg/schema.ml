(* Relation schemas: an ordered list of columns, each optionally qualified
   by the relation (alias) it came from.  Join schemas concatenate the two
   input schemas, so a column reference may be ambiguous when unqualified. *)

type column = {
  rel : string option;
  name : string;
  ty : Dtype.t;
}

type t = column array

exception Unknown_column of string
exception Ambiguous_column of string

let make cols : t = Array.of_list cols

let column ?rel name ty = { rel; name; ty }

let arity (s : t) = Array.length s

let col (s : t) i = s.(i)

let names (s : t) = Array.to_list (Array.map (fun c -> c.name) s)

let qualified_name c =
  match c.rel with None -> c.name | Some r -> r ^ "." ^ c.name

(* Case-insensitive identifier matching, as in SQL. *)
let ieq a b = String.lowercase_ascii a = String.lowercase_ascii b

(* Find the index of a (possibly qualified) column reference. *)
let find (s : t) ?rel name =
  let matches c =
    ieq c.name name
    && match rel with
       | None -> true
       | Some r -> (match c.rel with Some cr -> ieq cr r | None -> false)
  in
  let hits = ref [] in
  Array.iteri (fun i c -> if matches c then hits := i :: !hits) s;
  match !hits with
  | [ i ] -> i
  | [] ->
    let shown = match rel with None -> name | Some r -> r ^ "." ^ name in
    raise (Unknown_column shown)
  | _ ->
    let shown = match rel with None -> name | Some r -> r ^ "." ^ name in
    raise (Ambiguous_column shown)

let find_opt (s : t) ?rel name =
  match find s ?rel name with
  | i -> Some i
  | exception (Unknown_column _ | Ambiguous_column _) -> None

(* Concatenation for join outputs. *)
let append (a : t) (b : t) : t = Array.append a b

(* Re-qualify every column with a new relation alias (table aliasing). *)
let with_rel rel (s : t) : t = Array.map (fun c -> { c with rel = Some rel }) s

let equal (a : t) (b : t) =
  arity a = arity b
  && Array.for_all2
       (fun x y -> ieq x.name y.name && Dtype.equal x.ty y.ty)
       a b

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s %a" (qualified_name c) Dtype.pp c.ty))
    (Array.to_list s)

let to_string s = Format.asprintf "%a" pp s
