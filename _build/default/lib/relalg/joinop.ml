(* Join algorithms.  All joins emit the concatenated schema (left columns
   first).  The join condition is an expression over the concatenated
   schema.

   Three physical strategies, chosen by the planner:
   - nested loop: any condition, O(|L|·|R|);
   - hash join: equi-conjuncts plus an optional residual;
   - index join: for each outer (left) row, look the matching inner rows up
     in an index on an inner column — either by equality or by a range
     whose bounds are computed from the outer row.  This is the plan the
     paper's Table 1 calls "self join method with index". *)

type kind =
  | Inner
  | Left_outer

let null_row n : Row.t = Array.make n Value.Null

let output_schema left right =
  Schema.append (Relation.schema left) (Relation.schema right)

let nested_loop kind (left : Relation.t) (right : Relation.t) cond : Relation.t =
  let out = ref [] in
  let rrows = Relation.rows right in
  let rnull = null_row (Schema.arity (Relation.schema right)) in
  Relation.iter
    (fun lrow ->
      let matched = ref false in
      Array.iter
        (fun rrow ->
          let combined = Row.append lrow rrow in
          if Expr.holds combined cond then begin
            matched := true;
            out := combined :: !out
          end)
        rrows;
      if (not !matched) && kind = Left_outer then
        out := Row.append lrow rnull :: !out)
    left;
  Relation.of_array (output_schema left right) (Array.of_list (List.rev !out))

(* Hash join on [left_keys(l) = right_keys(r)] pairwise, with an optional
   residual predicate over the combined row.  SQL equality: NULL keys
   never match. *)
let hash_join kind ~(left : Relation.t) ~(right : Relation.t) ~left_keys ~right_keys
    ?residual () : Relation.t =
  if List.length left_keys <> List.length right_keys || left_keys = [] then
    invalid_arg "Joinop.hash_join: key lists must be equal-length and non-empty";
  let key_of exprs row = List.map (fun e -> Expr.eval row e) exprs in
  let tbl = Hashtbl.create (max 16 (Relation.cardinality right)) in
  Relation.iter
    (fun rrow ->
      let k = key_of right_keys rrow in
      if not (List.exists Value.is_null k) then
        Hashtbl.replace tbl k (rrow :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    right;
  let rnull = null_row (Schema.arity (Relation.schema right)) in
  let out = ref [] in
  Relation.iter
    (fun lrow ->
      let k = key_of left_keys lrow in
      let candidates =
        if List.exists Value.is_null k then []
        else Option.value ~default:[] (Hashtbl.find_opt tbl k)
      in
      let matched = ref false in
      List.iter
        (fun rrow ->
          let combined = Row.append lrow rrow in
          let ok = match residual with None -> true | Some p -> Expr.holds combined p in
          if ok then begin
            matched := true;
            out := combined :: !out
          end)
        (List.rev candidates);
      if (not !matched) && kind = Left_outer then
        out := Row.append lrow rnull :: !out)
    left;
  Relation.of_array (output_schema left right) (Array.of_list (List.rev !out))

(* Probe specification for an index join: how to derive the inner key
   bounds from the outer row. *)
type probe =
  | Probe_eq of Expr.t                       (* inner.key = f(outer) *)
  | Probe_range of Expr.t option * Expr.t option  (* f(outer) <= inner.key <= g(outer) *)
  | Probe_in of Expr.t list                  (* inner.key IN (f(outer), g(outer), ...) *)

let index_join kind ~(left : Relation.t) ~(right : Relation.t) ~(index : Index.t)
    ~probe ?residual () : Relation.t =
  let rrows = Relation.rows right in
  let rnull = null_row (Schema.arity (Relation.schema right)) in
  let out = ref [] in
  Relation.iter
    (fun lrow ->
      let ids =
        match probe with
        | Probe_eq e -> Index.lookup_eq index (Expr.eval lrow e)
        | Probe_range (lo, hi) ->
          let eval_bound = Option.map (fun e -> Expr.eval lrow e) in
          (match eval_bound lo, eval_bound hi with
           (* a NULL bound can never compare TRUE against anything *)
           | Some Value.Null, _ | _, Some Value.Null -> []
           | lo, hi -> Index.lookup_range index ?lo ?hi ())
        | Probe_in items ->
          (* deduplicate keys so colliding item values do not double-count *)
          let keys = List.map (fun e -> Expr.eval lrow e) items in
          let keys = List.sort_uniq Value.compare keys in
          List.concat_map (Index.lookup_eq index) keys
      in
      let matched = ref false in
      List.iter
        (fun rid ->
          let combined = Row.append lrow rrows.(rid) in
          let ok = match residual with None -> true | Some p -> Expr.holds combined p in
          if ok then begin
            matched := true;
            out := combined :: !out
          end)
        ids;
      if (not !matched) && kind = Left_outer then
        out := Row.append lrow rnull :: !out)
    left;
  Relation.of_array (output_schema left right) (Array.of_list (List.rev !out))
