(** Rows: value arrays indexed by schema position (immutable by
    convention). *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
val get : t -> int -> Value.t
val arity : t -> int
val append : t -> t -> t
val equal : t -> t -> bool

(** Lexicographic order by {!Value.compare}. *)
val compare : t -> t -> int

val hash : t -> int

(** Project the listed column indices into a fresh row. *)
val project : int array -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
