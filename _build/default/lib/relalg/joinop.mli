(** Join algorithms.

    All joins emit the concatenated schema (left columns first); the
    condition is an expression over the concatenated schema.  The
    preserved side of a LEFT OUTER join is always the left (outer) side.

    The three strategies are exactly the plan alternatives the paper's
    evaluation contrasts: nested loop (any predicate, O(|L|·|R|)), hash
    join (equality conjuncts, including computed keys such as MOD residue
    classes), and index nested-loop join (bounds on an indexed inner
    column, the "self join with index" of Table 1). *)

type kind =
  | Inner
  | Left_outer

(** Nested-loop join under an arbitrary predicate. *)
val nested_loop : kind -> Relation.t -> Relation.t -> Expr.t -> Relation.t

(** Hash join on pairwise key equality, with an optional residual
    predicate over the combined row.  NULL keys never match.
    @raise Invalid_argument on empty or mismatched key lists. *)
val hash_join :
  kind ->
  left:Relation.t ->
  right:Relation.t ->
  left_keys:Expr.t list ->
  right_keys:Expr.t list ->
  ?residual:Expr.t ->
  unit ->
  Relation.t

(** How an index join derives the inner key from each outer row. *)
type probe =
  | Probe_eq of Expr.t                            (** inner.key = f(outer) *)
  | Probe_range of Expr.t option * Expr.t option  (** f(outer) <= key <= g(outer) *)
  | Probe_in of Expr.t list                       (** key IN (f(outer), ...) *)

(** Index nested-loop join: for each left (outer) row, look matching
    inner rows up in [index] (built on an inner column).  [Probe_in]
    deduplicates colliding item values, so no double counting occurs. *)
val index_join :
  kind ->
  left:Relation.t ->
  right:Relation.t ->
  index:Index.t ->
  probe:probe ->
  ?residual:Expr.t ->
  unit ->
  Relation.t
