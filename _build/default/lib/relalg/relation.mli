(** In-memory relations: a schema plus a row array.  Operators produce
    fresh relations; storage-level tables wrap a mutable row array and
    expose snapshots through this type. *)

type t

val make : Schema.t -> Row.t list -> t
val of_array : Schema.t -> Row.t array -> t
val schema : t -> Schema.t
val rows : t -> Row.t array
val cardinality : t -> int
val is_empty : t -> bool
val to_list : t -> Row.t list
val iter : (Row.t -> unit) -> t -> unit
val map_rows : (Row.t -> Row.t) -> t -> t

(** The values of column [i], in row order. *)
val column_values : t -> int -> Value.t array

(** Order-insensitive multiset equality: same rows, same multiplicities
    (SQL bag semantics).  The primary comparison in the test suite. *)
val equal_bag : t -> t -> bool

(** Positional row-by-row equality. *)
val equal_ordered : t -> t -> bool

(** A copy sorted by all columns (canonical order for display/tests). *)
val sorted_by_all : t -> t

(** ASCII-table rendering, truncated to [max_rows] (default 40). *)
val render : ?max_rows:int -> t -> string

val print : ?max_rows:int -> t -> unit
