(** The native reporting-function (window-function) operator — the
    "existing reporting functionality inside the database engine" of the
    paper's Table 1.

    For each window function the input is partitioned by the PARTITION BY
    expressions and ordered within each partition by the ORDER BY keys;
    the function is evaluated over the ROWS frame of every tuple.  One
    output value per input tuple — reporting functions do not shrink the
    data volume.  The input row order is preserved in the output. *)

type bound =
  | Unbounded_preceding
  | Preceding of int
  | Current_row
  | Following of int
  | Unbounded_following

(** ROWS frames count tuples (the paper's setting); RANGE frames measure
    the {e value} distance of the single ORDER BY key and always include
    peers of the current row, per SQL. *)
type frame_mode =
  | Rows
  | Range

type frame = {
  lo : bound;
  hi : bound;
  mode : frame_mode;
}

(** [ROWS UNBOUNDED PRECEDING .. CURRENT ROW]. *)
val cumulative_frame : frame

(** [ROWS l PRECEDING .. h FOLLOWING]. *)
val sliding_frame : l:int -> h:int -> frame

(** [ROWS UNBOUNDED PRECEDING .. UNBOUNDED FOLLOWING]. *)
val whole_partition_frame : frame

(** [RANGE l PRECEDING .. h FOLLOWING] (key-value offsets). *)
val range_frame : l:int -> h:int -> frame

type spec = {
  partition : Expr.t list;
  order : Sortop.key list;
  frame : frame;
}

(** Window functions: framed aggregates, the rank family (frame-less,
    argument-less) and the navigation family. *)
type func =
  | Agg of Aggregate.kind
  | Row_number
  | Rank
  | Dense_rank
  | Lag of int    (** argument value [offset] rows earlier in the partition *)
  | Lead of int   (** argument value [offset] rows later *)
  | First_value   (** argument at the first row of the frame *)
  | Last_value    (** argument at the last row of the frame *)

val func_name : func -> string

(** Resolve by name; LAG/LEAD carry an offset and are built directly by
    the binder, so they are not resolvable here. *)
val func_of_name : string -> func option

type fn = {
  func : func;
  arg : Expr.t;  (** ignored by the rank family *)
  spec : spec;
  name : string; (** output column name *)
}

(** Execution strategy per partition of size m and frame width w:
    - [Naive]: the explicit form, O(m·w) — the §2.2 baseline;
    - [Incremental]: two-pointer accumulate/retire for invertible
      aggregates (the paper's pipelined computation, O(m)); monotonic
      deque / running extrema for MIN/MAX, O(m). *)
type strategy =
  | Naive
  | Incremental

exception Invalid_frame of string

(** @raise Invalid_frame on negative frame offsets. *)
val validate_frame : frame -> unit

(** Unclamped ROWS-frame bounds of row [i] in a partition of [m] rows. *)
val frame_bounds : frame -> m:int -> i:int -> int * int

val output_schema : Schema.t -> fn list -> Schema.t

(** Append one column per window function; input row order preserved. *)
val extend : ?strategy:strategy -> Relation.t -> fn list -> Relation.t
