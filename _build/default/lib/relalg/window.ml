(* Native reporting-function (window-function) operator: the "existing
   reporting functionality inside the database engine" of the paper's
   Table 1.

   For each window function the input is partitioned by the PARTITION BY
   expressions and ordered inside each partition by the ORDER BY keys;
   the aggregate is then evaluated over the ROWS frame of every tuple.
   One output value per input tuple — reporting functions do not shrink
   the data volume.

   Execution strategies per partition of size m and frame width w:
   - [Naive]: explicit form, O(m·w) — the baseline of §2.2;
   - [Incremental]: two-pointer accumulate/retire for invertible
     aggregates (SUM/COUNT/AVG), the paper's pipelined computation with a
     cache of w+2 values, O(m); for MIN/MAX a monotonic deque (sliding
     frames), prefix/suffix scans (cumulative frames), O(m). *)

type bound =
  | Unbounded_preceding
  | Preceding of int
  | Current_row
  | Following of int
  | Unbounded_following

(* ROWS frames count tuples (the paper's setting); RANGE frames measure
   the distance of the single ORDER BY key's *value* and include peers of
   the current row. *)
type frame_mode =
  | Rows
  | Range

type frame = {
  lo : bound;
  hi : bound;
  mode : frame_mode;
}

(* Common shapes. *)
let cumulative_frame = { lo = Unbounded_preceding; hi = Current_row; mode = Rows }
let sliding_frame ~l ~h = { lo = Preceding l; hi = Following h; mode = Rows }
let whole_partition_frame =
  { lo = Unbounded_preceding; hi = Unbounded_following; mode = Rows }
let range_frame ~l ~h = { lo = Preceding l; hi = Following h; mode = Range }

type spec = {
  partition : Expr.t list;
  order : Sortop.key list;
  frame : frame;
}

(* Window functions: framed aggregates, the rank family (which ignores
   the frame and takes no argument) and the navigation family. *)
type func =
  | Agg of Aggregate.kind
  | Row_number
  | Rank
  | Dense_rank
  | Lag of int         (* value of the argument [offset] rows earlier *)
  | Lead of int        (* value of the argument [offset] rows later *)
  | First_value        (* argument at the first row of the frame *)
  | Last_value         (* argument at the last row of the frame *)

let func_name = function
  | Agg k -> Aggregate.kind_name k
  | Row_number -> "ROW_NUMBER"
  | Rank -> "RANK"
  | Dense_rank -> "DENSE_RANK"
  | Lag _ -> "LAG"
  | Lead _ -> "LEAD"
  | First_value -> "FIRST_VALUE"
  | Last_value -> "LAST_VALUE"

(* LAG/LEAD carry an offset argument, so they are not resolvable by name
   alone; the binder builds them directly. *)
let func_of_name s =
  match String.uppercase_ascii s with
  | "ROW_NUMBER" -> Some Row_number
  | "RANK" -> Some Rank
  | "DENSE_RANK" -> Some Dense_rank
  | "FIRST_VALUE" -> Some First_value
  | "LAST_VALUE" -> Some Last_value
  | other -> Option.map (fun k -> Agg k) (Aggregate.kind_of_name other)

type fn = {
  func : func;
  arg : Expr.t; (* ignored by the rank family *)
  spec : spec;
  name : string;
}

type strategy =
  | Naive
  | Incremental

exception Invalid_frame of string

let validate_frame f =
  let ok_lo = match f.lo with Following _ -> false | _ -> true in
  let ok_hi = match f.hi with Preceding _ -> false | _ -> true in
  (* We accept the general SQL form; only negative offsets are rejected. *)
  let nonneg = function
    | Preceding n | Following n -> n >= 0
    | _ -> true
  in
  ignore ok_lo;
  ignore ok_hi;
  if not (nonneg f.lo && nonneg f.hi) then
    raise (Invalid_frame "frame offsets must be non-negative")

(* ROWS frame bounds for row [i] in a partition of [m] rows, before
   clamping; (lo, hi) may be out of range. *)
let frame_bounds f ~m ~i =
  let lo =
    match f.lo with
    | Unbounded_preceding -> 0
    | Preceding n -> i - n
    | Current_row -> i
    | Following n -> i + n
    | Unbounded_following -> m - 1
  in
  let hi =
    match f.hi with
    | Unbounded_preceding -> 0
    | Preceding n -> i - n
    | Current_row -> i
    | Following n -> i + n
    | Unbounded_following -> m - 1
  in
  (lo, hi)

(* RANGE frames: bounds from the (sorted ascending) numeric projections
   of the order key.  Peers of the current row are always included, per
   SQL. *)
let range_bounds f (t : float array) ~i =
  let m = Array.length t in
  (* first index with t.(j) >= x *)
  let lower x =
    let rec go lo hi = if lo >= hi then lo
      else let mid = (lo + hi) / 2 in
        if t.(mid) < x then go (mid + 1) hi else go lo mid
    in
    go 0 m
  in
  (* last index with t.(j) <= x *)
  let upper x =
    let rec go lo hi = if lo >= hi then lo
      else let mid = (lo + hi) / 2 in
        if t.(mid) <= x then go (mid + 1) hi else go lo mid
    in
    go 0 m - 1
  in
  let lo =
    match f.lo with
    | Unbounded_preceding -> 0
    | Preceding n -> lower (t.(i) -. float_of_int n)
    | Current_row -> lower t.(i)
    | Following n -> lower (t.(i) +. float_of_int n)
    | Unbounded_following -> m - 1
  in
  let hi =
    match f.hi with
    | Unbounded_preceding -> 0
    | Preceding n -> upper (t.(i) -. float_of_int n)
    | Current_row -> upper t.(i)
    | Following n -> upper (t.(i) +. float_of_int n)
    | Unbounded_following -> m - 1
  in
  (lo, hi)

(* Numeric projection of an order-key value for RANGE evaluation; the
   sign flips for descending keys so projections stay ascending. *)
let range_key_projection ~asc (v : Value.t) : float =
  let f =
    match v with
    | Value.Null -> Float.neg_infinity
    | Value.Int i -> float_of_int i
    | Value.Float f -> f
    | Value.Date d -> float_of_int d
    | Value.Bool _ | Value.String _ ->
      raise (Invalid_frame "RANGE frames need a numeric or date ORDER BY key")
  in
  if asc then f
  else if f = Float.neg_infinity then Float.infinity
  else -.f

(* ---- Per-partition evaluation ---- *)

let eval_naive agg ~bounds (vals : Value.t array) : Value.t array =
  let m = Array.length vals in
  Array.init m (fun i ->
      let lo, hi = bounds ~i in
      let lo = max 0 lo and hi = min (m - 1) hi in
      let st = Aggregate.create agg in
      for j = lo to hi do
        Aggregate.add st vals.(j)
      done;
      Aggregate.result st)

(* Invertible aggregates: advance two pointers monotonically, adding rows
   entering the frame and removing rows leaving it.  Both frame bounds are
   non-decreasing functions of the row position, so each value is added
   and removed exactly once. *)
let eval_two_pointer agg ~bounds (vals : Value.t array) : Value.t array =
  let m = Array.length vals in
  let st = Aggregate.create agg in
  let a = ref 0 (* first position currently in the frame *)
  and b = ref (-1) (* last position currently in the frame *) in
  Array.init m (fun i ->
      let lo, hi = bounds ~i in
      let lo = max 0 lo and hi = min (m - 1) hi in
      if hi < lo then begin
        (* Empty frame: drain the accumulator so later rows restart clean. *)
        while !b >= !a do
          Aggregate.remove st vals.(!a);
          incr a
        done;
        a := max !a (max lo 0);
        b := !a - 1;
        Aggregate.result (Aggregate.create agg)
      end
      else begin
        while !b < hi do
          incr b;
          if !b >= !a then Aggregate.add st vals.(!b)
        done;
        while !a < lo do
          if !a <= !b then Aggregate.remove st vals.(!a);
          incr a
        done;
        if !b < !a then b := !a - 1;
        Aggregate.result st
      end)

(* Sliding-window MIN/MAX via a monotonic deque of candidate positions.
   Requires both frame bounds to advance by one per row, which holds for
   any combination of Preceding/Current/Following bounds. *)
let eval_deque agg ~bounds (vals : Value.t array) : Value.t array =
  let m = Array.length vals in
  let better a b =
    (* is a at least as good as b? *)
    match agg with
    | Aggregate.Min -> Value.compare a b <= 0
    | Aggregate.Max -> Value.compare a b >= 0
    | _ -> assert false
  in
  let dq = Array.make (m + 1) 0 in
  let front = ref 0 and back = ref 0 (* deque in dq.(front..back-1) *) in
  let pushed = ref 0 (* next position to feed to the deque *) in
  Array.init m (fun i ->
      let lo, hi = bounds ~i in
      let lo = max 0 lo and hi = min (m - 1) hi in
      if hi < lo then Value.Null
      else begin
        (* Feed new positions up to hi. *)
        while !pushed <= hi do
          let v = vals.(!pushed) in
          if not (Value.is_null v) then begin
            while !back > !front && better v vals.(dq.(!back - 1)) do
              decr back
            done;
            dq.(!back) <- !pushed;
            incr back
          end;
          incr pushed
        done;
        (* Expire positions before lo. *)
        while !back > !front && dq.(!front) < lo do
          incr front
        done;
        if !back = !front then Value.Null else vals.(dq.(!front))
      end)

(* Cumulative MIN/MAX: running extremum (forward for lo-unbounded frames,
   backward for hi-unbounded frames). *)
let eval_running_extremum agg ~from_left ~bounds (vals : Value.t array) : Value.t array =
  let m = Array.length vals in
  let running = Array.make (max m 1) Value.Null in
  let fold acc v =
    if Value.is_null v then acc
    else if Value.is_null acc then v
    else
      match agg with
      | Aggregate.Min -> if Value.compare v acc < 0 then v else acc
      | Aggregate.Max -> if Value.compare v acc > 0 then v else acc
      | _ -> assert false
  in
  if from_left then begin
    let acc = ref Value.Null in
    for j = 0 to m - 1 do
      acc := fold !acc vals.(j);
      running.(j) <- !acc
    done
  end
  else begin
    let acc = ref Value.Null in
    for j = m - 1 downto 0 do
      acc := fold !acc vals.(j);
      running.(j) <- !acc
    done
  end;
  Array.init m (fun i ->
      let lo, hi = bounds ~i in
      let lo = max 0 lo and hi = min (m - 1) hi in
      if hi < lo then Value.Null
      else if from_left then running.(hi)
      else running.(lo))

let eval_partition strategy agg frame ~bounds (vals : Value.t array) : Value.t array =
  match strategy with
  | Naive -> eval_naive agg ~bounds vals
  | Incremental ->
    (match agg with
     | Aggregate.Sum | Aggregate.Count | Aggregate.Avg ->
       eval_two_pointer agg ~bounds vals
     | Aggregate.Min | Aggregate.Max ->
       (match frame.lo, frame.hi with
        | Unbounded_preceding, Unbounded_following ->
          let total = Aggregate.of_seq agg (Array.to_seq vals) in
          Array.map (fun _ -> total) vals
        | Unbounded_preceding, _ -> eval_running_extremum agg ~from_left:true ~bounds vals
        | _, Unbounded_following -> eval_running_extremum agg ~from_left:false ~bounds vals
        | _ -> eval_deque agg ~bounds vals))

(* ---- The operator ---- *)

let output_schema (input : Schema.t) (fns : fn list) : Schema.t =
  let extra =
    List.map
      (fun fn ->
        let ty =
          match fn.func with
          | Row_number | Rank | Dense_rank -> Dtype.Int
          | Lag _ | Lead _ | First_value | Last_value ->
            (try Option.value ~default:Dtype.Float (Expr.infer_type input fn.arg)
             with Expr.Type_mismatch _ -> Dtype.Float)
          | Agg agg ->
            let input_ty =
              try Expr.infer_type input fn.arg with Expr.Type_mismatch _ -> None
            in
            Option.value ~default:Dtype.Float (Aggregate.result_type agg input_ty)
        in
        Schema.column fn.name ty)
      fns
  in
  Schema.append input (Schema.make extra)

(* Ranks within one ordered partition: positions start..stop-1 of [idx],
   ties determined by the ORDER BY keys. *)
let eval_ranks func (rows : Row.t array) order (idx : int array) ~start ~stop :
    Value.t array =
  let m = stop - start in
  let out = Array.make m Value.Null in
  let rank = ref 1 and dense = ref 1 in
  for k = 0 to m - 1 do
    if k > 0 then begin
      let tie =
        Sortop.compare_keys order rows.(idx.(start + k - 1)) rows.(idx.(start + k)) = 0
      in
      if not tie then begin
        rank := k + 1;
        incr dense
      end
    end;
    out.(k) <-
      Value.Int
        (match func with
         | Row_number -> k + 1
         | Rank -> !rank
         | Dense_rank -> !dense
         | Agg _ | Lag _ | Lead _ | First_value | Last_value -> assert false)
  done;
  out

(* Navigation functions over one ordered partition: the argument values
   [vals] are in partition order. *)
let eval_navigation func ~bounds (vals : Value.t array) : Value.t array =
  let m = Array.length vals in
  Array.init m (fun i ->
      match func with
      | Lag off -> if i - off >= 0 then vals.(i - off) else Value.Null
      | Lead off -> if i + off < m then vals.(i + off) else Value.Null
      | First_value | Last_value ->
        let lo, hi = bounds ~i in
        let lo = max 0 lo and hi = min (m - 1) hi in
        if hi < lo then Value.Null
        else if func = First_value then vals.(lo)
        else vals.(hi)
      | Agg _ | Row_number | Rank | Dense_rank -> assert false)

(* Compute one window function over all rows; result.(i) corresponds to
   input row i (original order). *)
let compute_column strategy (rows : Row.t array) (fn : fn) : Value.t array =
  (match fn.func with
   | Agg _ | First_value | Last_value -> validate_frame fn.spec.frame
   | Row_number | Rank | Dense_rank | Lag _ | Lead _ -> ());
  let n = Array.length rows in
  let part_keys =
    Array.map
      (fun row -> List.map (fun e -> Expr.eval row e) fn.spec.partition)
      rows
  in
  (* Sort indices by (partition key, order keys), stable on input order. *)
  let idx = Array.init n Fun.id in
  let cmp i j =
    let rec cmp_keys a b =
      match a, b with
      | [], [] -> 0
      | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else cmp_keys xs ys
      | _ -> assert false
    in
    let c = cmp_keys part_keys.(i) part_keys.(j) in
    if c <> 0 then c
    else
      let c = Sortop.compare_keys fn.spec.order rows.(i) rows.(j) in
      if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  let out = Array.make n Value.Null in
  (* Walk partition segments. *)
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let key = part_keys.(idx.(start)) in
    let stop = ref (start + 1) in
    while
      !stop < n
      && List.for_all2 (fun a b -> Value.equal a b) part_keys.(idx.(!stop)) key
    do
      incr stop
    done;
    let m = !stop - start in
    (* bounds function for framed evaluation: positional for ROWS,
       key-value based for RANGE *)
    let make_bounds () =
      match fn.spec.frame.mode with
      | Rows ->
        let frame = fn.spec.frame in
        fun ~i -> frame_bounds frame ~m ~i
      | Range ->
        let key =
          match fn.spec.order with
          | [ k ] -> k
          | _ ->
            raise (Invalid_frame "RANGE frames need exactly one ORDER BY key")
        in
        let t =
          Array.init m (fun k ->
              range_key_projection ~asc:key.Sortop.asc
                (Expr.eval rows.(idx.(start + k)) key.Sortop.expr))
        in
        let frame = fn.spec.frame in
        fun ~i -> range_bounds frame t ~i
    in
    let results =
      match fn.func with
      | Agg agg ->
        let vals = Array.init m (fun k -> Expr.eval rows.(idx.(start + k)) fn.arg) in
        eval_partition strategy agg fn.spec.frame ~bounds:(make_bounds ()) vals
      | (Row_number | Rank | Dense_rank) as func ->
        eval_ranks func rows fn.spec.order idx ~start ~stop:!stop
      | (Lag _ | Lead _ | First_value | Last_value) as func ->
        let vals = Array.init m (fun k -> Expr.eval rows.(idx.(start + k)) fn.arg) in
        eval_navigation func ~bounds:(make_bounds ()) vals
    in
    for k = 0 to m - 1 do
      out.(idx.(start + k)) <- results.(k)
    done;
    i := !stop
  done;
  out

(* Append one column per window function; row order of the input is
   preserved. *)
let extend ?(strategy = Incremental) (r : Relation.t) (fns : fn list) : Relation.t =
  let rows = Relation.rows r in
  let columns = List.map (compute_column strategy rows) fns in
  let out_rows =
    Array.mapi
      (fun i row ->
        Row.append row (Array.of_list (List.map (fun col -> col.(i)) columns)))
      rows
  in
  Relation.of_array (output_schema (Relation.schema r) fns) out_rows
