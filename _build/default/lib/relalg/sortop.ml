(* Sorting.  A key is an expression plus direction; NULLs sort first on
   ascending keys (and last on descending), matching [Value.compare]. *)

type key = {
  expr : Expr.t;
  asc : bool;
}

let key ?(asc = true) expr = { expr; asc }

let compare_keys keys row_a row_b =
  let rec loop = function
    | [] -> 0
    | k :: rest ->
      let va = Expr.eval row_a k.expr and vb = Expr.eval row_b k.expr in
      let c = Value.compare va vb in
      let c = if k.asc then c else -c in
      if c <> 0 then c else loop rest
  in
  loop keys

(* Stable sort of row indices of [rows] by [keys]; exposed separately
   because the window operator sorts indices, not rows. *)
let sort_indices keys (rows : Row.t array) : int array =
  let idx = Array.init (Array.length rows) Fun.id in
  let cmp i j =
    let c = compare_keys keys rows.(i) rows.(j) in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  idx

let sort keys (r : Relation.t) : Relation.t =
  let rows = Relation.rows r in
  let idx = sort_indices keys rows in
  Relation.of_array (Relation.schema r) (Array.map (fun i -> rows.(i)) idx)
