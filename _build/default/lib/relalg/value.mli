(** SQL values with three-valued NULL semantics.

    Dates are stored as days since 1970-01-01 (proleptic Gregorian), so
    ordering, grouping and date-part extraction stay cheap. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since 1970-01-01 *)

exception Type_error of string

(** Raise {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val is_null : t -> bool

(** The type of a non-NULL value; [None] for NULL. *)
val dtype_of : t -> Dtype.t option

(** {1 Date arithmetic (proleptic Gregorian)} *)

val is_leap_year : int -> bool
val days_in_month : int -> int -> int

(** [date_of_ymd y m d] is the day number of the given civil date.
    @raise Type_error on invalid month/day. *)
val date_of_ymd : int -> int -> int -> int

val ymd_of_date : int -> int * int * int
val date_year : int -> int
val date_month : int -> int
val date_day : int -> int

(** Parse an ISO [yyyy-mm-dd] date. *)
val parse_date : string -> int option

val date_to_string : int -> string

(** {1 Rendering} *)

val to_string : t -> string

(** SQL-literal rendering: strings quoted and escaped, dates as
    [DATE '...']. *)
val to_sql : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Coercion}

    @raise Type_error on incompatible values. *)

val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool

(** {1 Comparison}

    {!compare} is the total order used for sorting and grouping: NULL
    sorts first, numerics compare across INT/FLOAT.  {!sql_compare}
    implements SQL comparison: any comparison with NULL is unknown
    ([None]). *)

val compare : t -> t -> int
val sql_compare : t -> t -> int option
val equal : t -> t -> bool

(** Hash consistent with {!equal} (INT and FLOAT of equal value collide). *)
val hash : t -> int

(** {1 Arithmetic (NULL-propagating)}

    INT op INT stays INT; mixed numerics widen to FLOAT; DATE supports
    [+ INT], [- INT] and DATE difference.
    @raise Type_error on incompatible operands. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** Floored modulo for integers: the result has the sign of the modulus,
    keeping residue classes consistent on negative (header) positions. *)
val modulo : t -> t -> t

(** [floored_mod x m] on raw integers. @raise Type_error if [m = 0]. *)
val floored_mod : int -> int -> int

val neg : t -> t
