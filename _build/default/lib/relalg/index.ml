(* Secondary indexes over a row array.

   Two flavours, mirroring what the paper's evaluation needs (Table 1
   contrasts the self-join simulation with and without an index on the
   sequence position):

   - [Hash]: equality lookups, O(1) expected.
   - [Ordered]: a sorted (key, row-id) array answering point and range
     lookups by binary search, standing in for DB2's B-tree. *)

type kind =
  | Hash
  | Ordered

type t =
  | Hash_index of (Value.t, int list) Hashtbl.t
  | Ordered_index of (Value.t * int) array

let kind_of = function
  | Hash_index _ -> Hash
  | Ordered_index _ -> Ordered

let kind_name = function
  | Hash -> "HASH"
  | Ordered -> "ORDERED"

(* NULL keys are not indexed: SQL equality/range predicates never match
   NULL, so lookups could never return them anyway. *)
let build kind (rows : Row.t array) ~key_col : t =
  match kind with
  | Hash ->
    let tbl = Hashtbl.create (max 16 (Array.length rows)) in
    Array.iteri
      (fun i row ->
        let k = Row.get row key_col in
        if not (Value.is_null k) then
          Hashtbl.replace tbl k
            (i :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
      rows;
    Hash_index tbl
  | Ordered ->
    let entries =
      Array.to_list rows
      |> List.mapi (fun i row -> (Row.get row key_col, i))
      |> List.filter (fun (k, _) -> not (Value.is_null k))
      |> Array.of_list
    in
    Array.sort
      (fun (a, i) (b, j) ->
        let c = Value.compare a b in
        if c <> 0 then c else Int.compare i j)
      entries;
    Ordered_index entries

(* First position with key >= k. *)
let lower_bound entries k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Value.compare (fst entries.(mid)) k < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length entries)

(* First position with key > k. *)
let upper_bound entries k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Value.compare (fst entries.(mid)) k <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length entries)

let collect_ids entries ~start ~stop =
  let rec collect i acc =
    if i < start then acc else collect (i - 1) (snd entries.(i) :: acc)
  in
  if start >= stop then [] else collect (stop - 1) []

(* Row ids whose key equals [k]. *)
let lookup_eq t k =
  if Value.is_null k then []
  else
    match t with
    | Hash_index tbl -> Option.value ~default:[] (Hashtbl.find_opt tbl k)
    | Ordered_index entries ->
      collect_ids entries ~start:(lower_bound entries k) ~stop:(upper_bound entries k)

(* Row ids whose key lies in [lo, hi] (inclusive; either bound optional). *)
let lookup_range t ?lo ?hi () =
  match t with
  | Hash_index _ -> invalid_arg "Index.lookup_range: hash indexes answer equality only"
  | Ordered_index entries ->
    let start = match lo with None -> 0 | Some v -> lower_bound entries v in
    let stop = match hi with None -> Array.length entries | Some v -> upper_bound entries v in
    collect_ids entries ~start ~stop

let supports_range t =
  match t with Ordered_index _ -> true | Hash_index _ -> false
