lib/relalg/sortop.ml: Array Expr Fun Int Relation Row Value
