lib/relalg/relation.mli: Row Schema Value
