lib/relalg/groupop.mli: Aggregate Expr Relation Schema
