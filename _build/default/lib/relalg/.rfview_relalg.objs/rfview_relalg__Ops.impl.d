lib/relalg/ops.ml: Array Dtype Expr Hashtbl List Relation Schema Seq Value
