lib/relalg/window.ml: Aggregate Array Dtype Expr Float Fun Int List Option Relation Row Schema Sortop String Value
