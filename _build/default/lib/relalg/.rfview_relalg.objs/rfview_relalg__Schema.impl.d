lib/relalg/schema.ml: Array Dtype Format String
