lib/relalg/dtype.ml: Format String
