lib/relalg/joinop.mli: Expr Index Relation
