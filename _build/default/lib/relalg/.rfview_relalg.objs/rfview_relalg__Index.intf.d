lib/relalg/index.mli: Row Value
