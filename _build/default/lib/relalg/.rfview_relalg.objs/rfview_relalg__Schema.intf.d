lib/relalg/schema.mli: Dtype Format
