lib/relalg/window.mli: Aggregate Expr Relation Schema Sortop
