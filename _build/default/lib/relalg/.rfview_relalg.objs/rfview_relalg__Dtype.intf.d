lib/relalg/dtype.mli: Format
