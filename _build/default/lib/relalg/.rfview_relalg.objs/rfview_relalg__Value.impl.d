lib/relalg/value.ml: Bool Buffer Dtype Float Format Hashtbl Int Printf String
