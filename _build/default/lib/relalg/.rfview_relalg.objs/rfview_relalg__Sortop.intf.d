lib/relalg/sortop.mli: Expr Relation Row
