lib/relalg/row.ml: Array Format Int Value
