lib/relalg/ops.mli: Expr Relation
