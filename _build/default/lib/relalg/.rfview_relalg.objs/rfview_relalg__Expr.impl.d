lib/relalg/expr.ml: Dtype Float Format Int List Option Printf Row Schema String Value
