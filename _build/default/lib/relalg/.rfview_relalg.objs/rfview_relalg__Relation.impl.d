lib/relalg/relation.ml: Array Buffer Printf Row Schema String Value
