lib/relalg/value.mli: Dtype Format
