lib/relalg/aggregate.ml: Dtype List Seq String Value
