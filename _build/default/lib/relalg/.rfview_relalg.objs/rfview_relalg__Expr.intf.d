lib/relalg/expr.mli: Dtype Format Row Schema Value
