lib/relalg/index.ml: Array Hashtbl Int List Option Row Value
