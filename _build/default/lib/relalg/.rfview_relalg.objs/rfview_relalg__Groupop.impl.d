lib/relalg/groupop.ml: Aggregate Array Dtype Expr Hashtbl List Option Printf Relation Row Schema Value
