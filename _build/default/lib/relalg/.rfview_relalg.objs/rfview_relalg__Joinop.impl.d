lib/relalg/joinop.ml: Array Expr Hashtbl Index List Option Relation Row Schema Value
