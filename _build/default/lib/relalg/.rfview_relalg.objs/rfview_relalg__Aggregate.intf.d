lib/relalg/aggregate.mli: Dtype Seq Value
