lib/relalg/row.mli: Format Value
