(* SQL values with three-valued NULL semantics.

   Dates are stored as days since 1970-01-01 (proleptic Gregorian), which
   keeps ordering, grouping and date-part extraction cheap. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let is_null = function Null -> true | _ -> false

let dtype_of = function
  | Null -> None
  | Bool _ -> Some Dtype.Bool
  | Int _ -> Some Dtype.Int
  | Float _ -> Some Dtype.Float
  | String _ -> Some Dtype.String
  | Date _ -> Some Dtype.Date

(* ---- Date arithmetic (proleptic Gregorian calendar) ---- *)

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> type_error "invalid month %d" m

(* Days since 1970-01-01 using the civil-from-days algorithm. *)
let date_of_ymd y m d =
  if m < 1 || m > 12 then type_error "invalid month %d" m;
  if d < 1 || d > days_in_month y m then type_error "invalid day %d" d;
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let ymd_of_date days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let date_year days = let y, _, _ = ymd_of_date days in y
let date_month days = let _, m, _ = ymd_of_date days in m
let date_day days = let _, _, d = ymd_of_date days in d

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] ->
    (try Some (date_of_ymd (int_of_string y) (int_of_string m) (int_of_string d))
     with _ -> None)
  | _ -> None

let date_to_string days =
  let y, m, d = ymd_of_date days in
  Printf.sprintf "%04d-%02d-%02d" y m d

(* ---- Rendering ---- *)

let to_string = function
  | Null -> "NULL"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | String s -> s
  | Date d -> date_to_string d

(* SQL-literal rendering: strings quoted, dates as DATE '...'. *)
let to_sql = function
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Date d -> Printf.sprintf "DATE '%s'" (date_to_string d)
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ---- Coercion ---- *)

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected numeric value, got %s" (to_string v)

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> type_error "expected integer value, got %s" (to_string v)

let to_bool = function
  | Bool b -> b
  | v -> type_error "expected boolean value, got %s" (to_string v)

(* ---- Comparison ----

   [compare] is a total order used for sorting and grouping: NULL sorts
   first; numerics compare across INT/FLOAT. [sql_compare] implements SQL
   comparison semantics: any comparison with NULL is unknown (None). *)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Date _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | a, b -> Int.compare (rank a) (rank b)

let sql_compare a b =
  match a, b with
  | Null, _ | _, Null -> None
  | _ -> Some (compare a b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d, 'd')

(* ---- Arithmetic (NULL-propagating) ---- *)

let arith name int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | Date d, Int i when name = "+" -> Date (d + i)
  | Date d, Int i when name = "-" -> Date (d - i)
  | Date x, Date y when name = "-" -> Int (x - y)
  | _ -> type_error "cannot apply %s to %s and %s" name (to_string a) (to_string b)

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> type_error "division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a /. to_float b)
  | _ -> type_error "cannot divide %s by %s" (to_string a) (to_string b)

(* Floored modulo: the result has the sign of the modulus, so residue
   classes stay consistent on negative (header) positions. *)
let floored_mod x m =
  if m = 0 then type_error "MOD by zero";
  let r = x mod m in
  if (r < 0 && m > 0) || (r > 0 && m < 0) then r + m else r

let modulo a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (floored_mod x y)
  | (Int _ | Float _), (Int _ | Float _) ->
    Float (Float.rem (to_float a) (to_float b))
  | _ -> type_error "cannot apply MOD to %s and %s" (to_string a) (to_string b)

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> type_error "cannot negate %s" (to_string v)
