(** Basic relational operators. *)

(** Keep rows for which the predicate is TRUE (SQL filter semantics). *)
val filter : Expr.t -> Relation.t -> Relation.t

(** Project to (expression, output name) pairs; output types inferred
    from the input schema. *)
val project : (Expr.t * string) list -> Relation.t -> Relation.t

(** Duplicate elimination, preserving first-occurrence order. *)
val distinct : Relation.t -> Relation.t

val limit : int -> Relation.t -> Relation.t

(** Bag union; schemas must have equal arity (left names win).
    @raise Value.Type_error on arity mismatch. *)
val union_all : Relation.t -> Relation.t -> Relation.t

(** Set union: {!union_all} followed by {!distinct}. *)
val union : Relation.t -> Relation.t -> Relation.t
