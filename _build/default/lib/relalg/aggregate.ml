(* Aggregation functions over SQL values.

   Besides one-shot folding over a value sequence, each aggregate exposes
   an accumulator interface.  SUM/COUNT/AVG accumulators are *invertible*
   ([remove] undoes [add]), which is what makes the paper's pipelined
   window computation (§2.2) possible; MIN/MAX are only semi-invertible
   and fall back to other strategies in the window operator. *)

type kind =
  | Sum
  | Count
  | Avg
  | Min
  | Max

let kind_name = function
  | Sum -> "SUM"
  | Count -> "COUNT"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let kind_of_name s =
  match String.uppercase_ascii s with
  | "SUM" -> Some Sum
  | "COUNT" -> Some Count
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let invertible = function
  | Sum | Count | Avg -> true
  | Min | Max -> false

(* SQL semantics: NULL inputs are ignored; an aggregate over an empty (or
   all-NULL) input is NULL, except COUNT which is 0. *)

type state = {
  kind : kind;
  mutable count : int;          (* non-NULL inputs seen *)
  mutable sum_i : int;          (* integer sum while all inputs are Int *)
  mutable sum_f : float;
  mutable all_int : bool;
  mutable extremum : Value.t;   (* Null until the first non-NULL input *)
}

let create kind =
  { kind; count = 0; sum_i = 0; sum_f = 0.; all_int = true; extremum = Value.Null }

let add st (v : Value.t) =
  match v with
  | Value.Null -> ()
  | v ->
    st.count <- st.count + 1;
    (match st.kind with
     | Count -> ()
     | Sum | Avg ->
       (match v with
        | Value.Int i ->
          st.sum_i <- st.sum_i + i;
          st.sum_f <- st.sum_f +. float_of_int i
        | Value.Float f ->
          st.all_int <- false;
          st.sum_f <- st.sum_f +. f
        | v -> Value.type_error "%s over non-numeric %s" (kind_name st.kind) (Value.to_string v))
     | Min ->
       if Value.is_null st.extremum || Value.compare v st.extremum < 0 then
         st.extremum <- v
     | Max ->
       if Value.is_null st.extremum || Value.compare v st.extremum > 0 then
         st.extremum <- v)

let remove st (v : Value.t) =
  match v with
  | Value.Null -> ()
  | v ->
    (match st.kind with
     | Min | Max -> invalid_arg "Aggregate.remove: MIN/MAX are not invertible"
     | Count -> st.count <- st.count - 1
     | Sum | Avg ->
       st.count <- st.count - 1;
       (match v with
        | Value.Int i ->
          st.sum_i <- st.sum_i - i;
          st.sum_f <- st.sum_f -. float_of_int i
        | Value.Float f -> st.sum_f <- st.sum_f -. f
        | v -> Value.type_error "%s over non-numeric %s" (kind_name st.kind) (Value.to_string v)))

let result st : Value.t =
  match st.kind with
  | Count -> Value.Int st.count
  | Sum ->
    if st.count = 0 then Value.Null
    else if st.all_int then Value.Int st.sum_i
    else Value.Float st.sum_f
  | Avg -> if st.count = 0 then Value.Null else Value.Float (st.sum_f /. float_of_int st.count)
  | Min | Max -> st.extremum

let of_seq kind vs =
  let st = create kind in
  Seq.iter (add st) vs;
  result st

let of_list kind vs = of_seq kind (List.to_seq vs)

(* Result type of an aggregate given its input type. *)
let result_type kind (input : Dtype.t option) : Dtype.t option =
  match kind with
  | Count -> Some Dtype.Int
  | Avg -> Some Dtype.Float
  | Sum | Min | Max -> input
