(** Sorting.  A key is an expression plus direction; NULLs sort first on
    ascending keys (and last on descending), following {!Value.compare}. *)

type key = {
  expr : Expr.t;
  asc : bool;
}

val key : ?asc:bool -> Expr.t -> key

(** Compare two rows under a key list. *)
val compare_keys : key list -> Row.t -> Row.t -> int

(** Stable sort of the row indices by the keys (used by the window
    operator, which sorts indices rather than rows). *)
val sort_indices : key list -> Row.t array -> int array

val sort : key list -> Relation.t -> Relation.t
