(* Basic relational operators not worth their own module. *)

let filter pred (r : Relation.t) : Relation.t =
  let rows =
    Array.of_seq
      (Seq.filter (fun row -> Expr.holds row pred) (Array.to_seq (Relation.rows r)))
  in
  Relation.of_array (Relation.schema r) rows

(* Project to a list of (expression, output column name).  Output types are
   inferred from the input schema. *)
let project (exprs : (Expr.t * string) list) (r : Relation.t) : Relation.t =
  let input = Relation.schema r in
  let schema =
    Schema.make
      (List.map
         (fun (e, name) ->
           let ty =
             match Expr.infer_type input e with
             | Some t -> t
             | None -> Dtype.String
             | exception Expr.Type_mismatch m -> Value.type_error "%s" m
           in
           Schema.column name ty)
         exprs)
  in
  let rows =
    Array.map
      (fun row -> Array.of_list (List.map (fun (e, _) -> Expr.eval row e) exprs))
      (Relation.rows r)
  in
  Relation.of_array schema rows

let distinct (r : Relation.t) : Relation.t =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Relation.iter
    (fun row ->
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        out := row :: !out
      end)
    r;
  Relation.of_array (Relation.schema r) (Array.of_list (List.rev !out))

let limit n (r : Relation.t) : Relation.t =
  let rows = Relation.rows r in
  let n = min n (Array.length rows) in
  Relation.of_array (Relation.schema r) (Array.sub rows 0 (max 0 n))

(* UNION ALL: schemas must be compatible (same arity and types); the left
   schema's names win. *)
let union_all (a : Relation.t) (b : Relation.t) : Relation.t =
  let sa = Relation.schema a and sb = Relation.schema b in
  if Schema.arity sa <> Schema.arity sb then
    Value.type_error "UNION: arity mismatch (%d vs %d)" (Schema.arity sa)
      (Schema.arity sb);
  Relation.of_array sa (Array.append (Relation.rows a) (Relation.rows b))

let union (a : Relation.t) (b : Relation.t) : Relation.t = distinct (union_all a b)
