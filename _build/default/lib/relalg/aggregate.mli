(** Aggregation functions over SQL values.

    Each aggregate exposes an accumulator interface besides one-shot
    folding.  SUM/COUNT/AVG accumulators are {e invertible} ({!remove}
    undoes {!add}) — the property behind the paper's pipelined window
    computation (§2.2); MIN/MAX are not and use other window strategies.

    SQL semantics: NULL inputs are ignored; an aggregate over an empty
    (or all-NULL) input is NULL, except COUNT which is 0. *)

type kind =
  | Sum
  | Count
  | Avg
  | Min
  | Max

val kind_name : kind -> string

(** Case-insensitive. *)
val kind_of_name : string -> kind option

val invertible : kind -> bool

(** A mutable accumulator. *)
type state

val create : kind -> state
val add : state -> Value.t -> unit

(** Undo a prior {!add}.
    @raise Invalid_argument for MIN/MAX. *)
val remove : state -> Value.t -> unit

val result : state -> Value.t

val of_seq : kind -> Value.t Seq.t -> Value.t
val of_list : kind -> Value.t list -> Value.t

(** Result type given the input type: COUNT yields INT, AVG yields
    FLOAT, SUM/MIN/MAX preserve the input type. *)
val result_type : kind -> Dtype.t option -> Dtype.t option
