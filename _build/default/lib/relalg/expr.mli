(** Scalar expressions over a resolved schema.

    Column references are positional ({!Col}); the planner's binder
    resolves SQL names to indices.  Boolean evaluation follows SQL
    three-valued logic: predicates evaluate to TRUE, FALSE or NULL, and
    filters keep only TRUE rows ({!holds}). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not

type func =
  | Coalesce
  | Abs
  | Least
  | Greatest
  | Year
  | Month
  | Day
  | Nullif
  | Sign

type t =
  | Const of Value.t
  | Col of int
  | Binop of binop * t * t
  | Unop of unop * t
  | Case of (t * t) list * t option  (** searched CASE: WHEN cond THEN v *)
  | Call of func * t list
  | In_list of t * t list
  | Between of t * t * t             (** [e BETWEEN lo AND hi] *)
  | Is_null of t
  | Is_not_null of t

val func_name : func -> string

(** Resolve a scalar function name (case-insensitive); MOD is a binop,
    not a [func]. *)
val func_of_name : string -> func option

(** {1 Evaluation} *)

(** Evaluate against a row.  @raise Value.Type_error on type errors. *)
val eval : Row.t -> t -> Value.t

(** SQL filter semantics: TRUE passes; FALSE and NULL do not. *)
val holds : Row.t -> t -> bool

(** {1 Static typing} *)

exception Type_mismatch of string

(** The static type against a schema; [None] means "always NULL".
    @raise Type_mismatch on ill-typed expressions. *)
val infer_type : Schema.t -> t -> Dtype.t option

(** {1 Structural helpers (used by the planner)} *)

(** Renumber all column references. *)
val map_cols : (int -> int) -> t -> t

(** Sorted, deduplicated column indices referenced by the expression. *)
val columns : t -> int list

(** Top-level AND-conjuncts. *)
val conjuncts : t -> t list

(** AND together a conjunct list ([TRUE] when empty). *)
val conjoin : t list -> t

(** {1 Pretty-printing} *)

val binop_symbol : binop -> string

(** Print with a custom column renderer (e.g. qualified names). *)
val pp_with : col:(int -> string) -> Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : ?col:(int -> string) -> t -> string
