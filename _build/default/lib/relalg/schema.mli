(** Relation schemas: an ordered list of columns, each optionally
    qualified by the relation (alias) it came from.  Join schemas
    concatenate the inputs, so an unqualified reference may be
    ambiguous. *)

type column = {
  rel : string option;
  name : string;
  ty : Dtype.t;
}

type t = column array

exception Unknown_column of string
exception Ambiguous_column of string

val make : column list -> t
val column : ?rel:string -> string -> Dtype.t -> column
val arity : t -> int
val col : t -> int -> column
val names : t -> string list
val qualified_name : column -> string

(** Resolve a (possibly qualified) column reference to its index;
    matching is case-insensitive.
    @raise Unknown_column / Ambiguous_column accordingly. *)
val find : t -> ?rel:string -> string -> int

val find_opt : t -> ?rel:string -> string -> int option

(** Concatenation for join outputs. *)
val append : t -> t -> t

(** Re-qualify every column with a new relation alias. *)
val with_rel : string -> t -> t

(** Names (case-insensitive) and types agree positionally. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
