(* An in-memory relation: a schema plus a row array.  Operators produce
   fresh relations; storage-level tables wrap a mutable version of this. *)

type t = {
  schema : Schema.t;
  rows : Row.t array;
}

let make schema rows = { schema; rows = Array.of_list rows }
let of_array schema rows = { schema; rows }
let schema r = r.schema
let rows r = r.rows
let cardinality r = Array.length r.rows
let is_empty r = cardinality r = 0
let to_list r = Array.to_list r.rows

let iter f r = Array.iter f r.rows
let map_rows f r = { r with rows = Array.map f r.rows }

let column_values r i = Array.map (fun row -> Row.get row i) r.rows

(* Order-insensitive multiset equality, used heavily in tests: two query
   results are the same if they contain the same rows the same number of
   times. *)
let equal_bag a b =
  cardinality a = cardinality b
  &&
  let sort r =
    let copy = Array.copy r.rows in
    Array.sort Row.compare copy;
    copy
  in
  let sa = sort a and sb = sort b in
  Array.for_all2 Row.equal sa sb

let equal_ordered a b =
  cardinality a = cardinality b && Array.for_all2 Row.equal a.rows b.rows

let sorted_by_all r =
  let copy = Array.copy r.rows in
  Array.sort Row.compare copy;
  { r with rows = copy }

(* ---- ASCII table rendering ---- *)

let render ?(max_rows = 40) r =
  let headers =
    Array.map (fun c -> Schema.qualified_name c) r.schema
  in
  let shown = min max_rows (cardinality r) in
  let cells =
    Array.init shown (fun i -> Array.map Value.to_string r.rows.(i))
  in
  let ncols = Array.length headers in
  let width j =
    Array.fold_left
      (fun acc row -> max acc (String.length row.(j)))
      (String.length headers.(j))
      cells
  in
  let widths = Array.init ncols width in
  let buf = Buffer.create 256 in
  let line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row_of cells =
    Buffer.add_char buf '|';
    Array.iteri
      (fun j c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(j) - String.length c + 1) ' ');
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  line ();
  row_of headers;
  line ();
  Array.iter row_of cells;
  line ();
  if shown < cardinality r then
    Buffer.add_string buf
      (Printf.sprintf "... (%d of %d rows shown)\n" shown (cardinality r));
  Buffer.contents buf

let print ?max_rows r = print_string (render ?max_rows r)
