(** Secondary indexes over a row array.

    Two flavours, mirroring the paper's Table 1 setup (self join with and
    without an index on the sequence position):
    - {!Hash}: equality lookups, O(1) expected;
    - {!Ordered}: a sorted (key, row-id) array answering point and range
      lookups by binary search — the stand-in for a B-tree.

    NULL keys are not indexed: SQL equality and range predicates never
    match NULL. *)

type kind =
  | Hash
  | Ordered

type t

val kind_of : t -> kind
val kind_name : kind -> string

(** Build an index over [rows] keyed by column [key_col]. *)
val build : kind -> Row.t array -> key_col:int -> t

(** Row ids whose key equals the value ([] for NULL). *)
val lookup_eq : t -> Value.t -> int list

(** Row ids with key in [[lo, hi]] (inclusive; either bound optional).
    @raise Invalid_argument on hash indexes. *)
val lookup_range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> int list

val supports_range : t -> bool
