(* Column data types of the relational model. *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Date

let to_string = function
  | Bool -> "BOOL"
  | Int -> "INT"
  | Float -> "FLOAT"
  | String -> "VARCHAR"
  | Date -> "DATE"

let of_string s =
  match String.uppercase_ascii s with
  | "BOOL" | "BOOLEAN" -> Some Bool
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some Int
  | "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" -> Some Float
  | "VARCHAR" | "TEXT" | "STRING" | "CHAR" -> Some String
  | "DATE" -> Some Date
  | _ -> None

let equal (a : t) (b : t) = a = b

(* Numeric types unify; the result of mixing INT and FLOAT is FLOAT. *)
let is_numeric = function
  | Int | Float -> true
  | Bool | String | Date -> false

let join a b =
  match a, b with
  | x, y when equal x y -> Some x
  | Int, Float | Float, Int -> Some Float
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
