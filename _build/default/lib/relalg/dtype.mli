(** Column data types of the relational model. *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Date

val to_string : t -> string

(** Parse a SQL type name (INT/INTEGER/FLOAT/DOUBLE/VARCHAR/...);
    case-insensitive. *)
val of_string : string -> t option

val equal : t -> t -> bool
val is_numeric : t -> bool

(** Least upper bound of two types: equal types unify and INT joins
    FLOAT to FLOAT; [None] otherwise. *)
val join : t -> t -> t option

val pp : Format.formatter -> t -> unit
