(* Rows are immutable-by-convention value arrays indexed by schema position. *)

type t = Value.t array

let make = Array.of_list
let get (r : t) i = r.(i)
let arity (r : t) = Array.length r
let append (a : t) (b : t) : t = Array.append a b
let of_array (a : Value.t array) : t = a

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let hash (r : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 r

(* Project the listed indices into a fresh row. *)
let project idxs (r : t) : t = Array.map (fun i -> r.(i)) idxs

let pp ppf (r : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (Array.to_list r)

let to_string r = Format.asprintf "%a" pp r
