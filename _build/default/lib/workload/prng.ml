(* SplitMix64: a small, fast, deterministic PRNG.  Benchmarks and examples
   must be reproducible run-to-run, so nothing in this repository uses the
   stdlib's global [Random] state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform int in [lo, hi] inclusive. *)
let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

(* Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992. (* 2^53 *)

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t items =
  match items with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth items (int t (List.length items))

(* Gaussian via Box-Muller (one value per call; simple and adequate). *)
let gaussian t ~mean ~stddev =
  let u1 = Float.max 1e-12 (float t) and u2 = float t in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
