lib/workload/seqgen.mli: Rfview_core Rfview_engine Rfview_relalg
