lib/workload/seqgen.ml: Array Dtype Printf Prng Rfview_core Rfview_engine Rfview_relalg Row Schema Value
