lib/workload/prng.mli:
