lib/workload/transactions.ml: Array Dtype Float List Printf Prng Rfview_engine Rfview_relalg Row Schema Value
