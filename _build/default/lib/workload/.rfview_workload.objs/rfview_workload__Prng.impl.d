lib/workload/prng.ml: Array Float Int64 List
