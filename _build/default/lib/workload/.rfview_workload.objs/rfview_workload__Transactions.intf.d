lib/workload/transactions.mli: Rfview_engine Rfview_relalg Schema
