(** SplitMix64: a small, fast, deterministic PRNG.

    Benchmarks and examples must be reproducible run-to-run, so nothing
    in this repository uses the stdlib's global [Random] state. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform in [[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [[lo, hi]] inclusive. *)
val int_range : t -> lo:int -> hi:int -> int

(** Uniform in [[0, 1)]. *)
val float : t -> float

val float_range : t -> lo:float -> hi:float -> float
val bool : t -> bool

(** @raise Invalid_argument on an empty list. *)
val choose : t -> 'a list -> 'a

(** Box-Muller. *)
val gaussian : t -> mean:float -> stddev:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
