(* Physical planning and execution.

   The physical planner mirrors the logical plan and picks join
   algorithms — the choice the paper's evaluation turns on:

   - equality conjuncts (including computed keys such as the MOD residue
     classes of Figs. 10/13)      → hash join;
   - bounds on an indexed column of a base-table side (BETWEEN / <= / IN,
     as in the Fig. 2 self join)  → index nested-loop join;
   - anything else (notably the disjunctive predicates of the derivation
     patterns)                    → nested-loop join.

   Joins keep the preserved (left) side as the outer side, so LEFT OUTER
   semantics are respected by every algorithm. *)

open Rfview_relalg

exception Plan_error of string

let plan_error fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

type catalog_view = {
  table_contents : string -> Relation.t;
  table_index : table:string -> column:string -> Index.t option;
}

type options = {
  window_strategy : Window.strategy;
  enable_hash_join : bool;
  enable_index_join : bool;
}

let default_options =
  { window_strategy = Window.Incremental; enable_hash_join = true; enable_index_join = true }

type join_algo =
  | Nested_loop
  | Hash of {
      left_keys : Expr.t list;   (* over left schema *)
      right_keys : Expr.t list;  (* over right schema *)
      residual : Expr.t option;  (* over combined schema *)
    }
  | Index_nl of {
      table : string;
      column : string;
      probe : probe;
      residual : Expr.t option;  (* over combined schema *)
    }

and probe =
  | P_eq of Expr.t               (* over left schema *)
  | P_in of Expr.t list
  | P_range of Expr.t option * Expr.t option

type t =
  | Scan of { table : string; schema : Schema.t }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Join of { kind : Joinop.kind; algo : join_algo; left : t; right : t; cond : Expr.t }
  | Aggregate of { input : t; group : Expr.t list; aggs : Groupop.agg_spec list }
  | Window_exec of { input : t; fns : Window.fn list; strategy : Window.strategy }
  | Number of {
      input : t;
      partition : Expr.t list;
      order : Sortop.key list;
      name : string;
    }
  | Sort of { input : t; keys : Sortop.key list }
  | Distinct of t
  | Limit of { input : t; n : int }
  | Union_all of { left : t; right : t }
  | Alias of { input : t; rel : string }

(* ---- Join analysis ---- *)

(* Does the expression only reference columns below [bound]? *)
let only_left ~bound e = List.for_all (fun c -> c < bound) (Expr.columns e)
let only_right ~bound e = List.for_all (fun c -> c >= bound) (Expr.columns e)

(* Shift column indices by [-bound] (combined schema -> right schema). *)
let to_right ~bound e = Expr.map_cols (fun c -> c - bound) e

(* The base-table Scan under Alias wrappers, if any. *)
let rec scan_of_plan (l : Logical.t) =
  match l with
  | Logical.Scan { table; schema } -> Some (table, schema)
  | Logical.Alias { input; _ } -> scan_of_plan input
  | _ -> None

type classified = {
  mutable eq_pairs : (Expr.t * Expr.t) list; (* left key, right key (right schema) *)
  mutable probes : (int * probe * bool) list;
  (* right column (right schema), probe, fully-covered-by-probe *)
  mutable residual : Expr.t list;
}

let classify_conjuncts ~bound conjuncts =
  let c = { eq_pairs = []; probes = []; residual = [] } in
  List.iter
    (fun conj ->
      let covered = ref false in
      (match conj with
       | Expr.Binop (Expr.Eq, a, b) when only_left ~bound a && only_right ~bound b ->
         c.eq_pairs <- (a, to_right ~bound b) :: c.eq_pairs;
         (match to_right ~bound b with
          | Expr.Col rc ->
            c.probes <- (rc, P_eq a, true) :: c.probes;
            covered := true
          | _ -> covered := true (* hash join covers it *))
       | Expr.Binop (Expr.Eq, b, a) when only_left ~bound a && only_right ~bound b ->
         c.eq_pairs <- (a, to_right ~bound b) :: c.eq_pairs;
         (match to_right ~bound b with
          | Expr.Col rc ->
            c.probes <- (rc, P_eq a, true) :: c.probes;
            covered := true
          | _ -> covered := true)
       | Expr.Between (b, lo, hi)
         when only_right ~bound b && only_left ~bound lo && only_left ~bound hi ->
         (match to_right ~bound b with
          | Expr.Col rc ->
            c.probes <- (rc, P_range (Some lo, Some hi), true) :: c.probes;
            covered := true
          | _ -> ())
       | Expr.In_list (b, items) when only_right ~bound b && List.for_all (only_left ~bound) items ->
         (match to_right ~bound b with
          | Expr.Col rc ->
            c.probes <- (rc, P_in items, true) :: c.probes;
            covered := true
          | _ -> ())
       | Expr.Binop ((Expr.Le | Expr.Lt | Expr.Ge | Expr.Gt) as op, x, y) ->
         (* normalize to bounds on a right column *)
         let bound_probe rc ~is_lower e ~strict =
           (* strict bounds keep the original conjunct as residual *)
           let probe =
             if is_lower then P_range (Some e, None) else P_range (None, Some e)
           in
           c.probes <- (rc, probe, not strict) :: c.probes;
           covered := not strict
         in
         (match x, y with
          | b, e when only_right ~bound b && only_left ~bound e ->
            (match to_right ~bound b with
             | Expr.Col rc ->
               (match op with
                | Expr.Ge -> bound_probe rc ~is_lower:true e ~strict:false
                | Expr.Gt -> bound_probe rc ~is_lower:true e ~strict:true
                | Expr.Le -> bound_probe rc ~is_lower:false e ~strict:false
                | Expr.Lt -> bound_probe rc ~is_lower:false e ~strict:true
                | _ -> ())
             | _ -> ())
          | e, b when only_left ~bound e && only_right ~bound b ->
            (match to_right ~bound b with
             | Expr.Col rc ->
               (* e <= b  ==  b >= e *)
               (match op with
                | Expr.Le -> bound_probe rc ~is_lower:true e ~strict:false
                | Expr.Lt -> bound_probe rc ~is_lower:true e ~strict:true
                | Expr.Ge -> bound_probe rc ~is_lower:false e ~strict:false
                | Expr.Gt -> bound_probe rc ~is_lower:false e ~strict:true
                | _ -> ())
             | _ -> ())
          | _ -> ())
       | _ -> ());
      if not !covered then c.residual <- conj :: c.residual)
    conjuncts;
  c

(* Merge single-sided range probes on the same column. *)
let merge_probes probes =
  let by_col = Hashtbl.create 8 in
  List.iter
    (fun (col, probe, _) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_col col) in
      Hashtbl.replace by_col col (probe :: existing))
    probes;
  Hashtbl.fold
    (fun col probes acc ->
      (* prefer equality, then IN, then a merged range *)
      let eq = List.find_opt (function P_eq _ -> true | _ -> false) probes in
      let inp = List.find_opt (function P_in _ -> true | _ -> false) probes in
      match eq, inp with
      | Some p, _ -> (col, p) :: acc
      | None, Some p -> (col, p) :: acc
      | None, None ->
        let lo =
          List.find_map (function P_range (Some e, _) -> Some e | _ -> None) probes
        in
        let hi =
          List.find_map (function P_range (_, Some e) -> Some e | _ -> None) probes
        in
        if lo = None && hi = None then acc else (col, P_range (lo, hi)) :: acc)
    by_col []

let choose_join_algo (opts : options) (cat : catalog_view) ~(left : Logical.t)
    ~(right : Logical.t) (cond : Expr.t) : join_algo =
  let bound = Schema.arity (Logical.schema left) in
  match cond with
  | Expr.Binop (Expr.Or, _, _) -> Nested_loop (* disjunctive predicate *)
  | _ ->
    let conjuncts = Expr.conjuncts cond in
    if List.exists (function Expr.Binop (Expr.Or, _, _) -> true | _ -> false) conjuncts
       && not (List.exists (function Expr.Binop (Expr.Eq, _, _) -> true | _ -> false) conjuncts)
    then Nested_loop
    else begin
      let c = classify_conjuncts ~bound conjuncts in
      (* index join on the base table under the right side *)
      let index_candidate =
        if not opts.enable_index_join then None
        else
          match scan_of_plan right with
          | None -> None
          | Some (table, scan_schema) ->
            let right_schema = Logical.schema right in
            merge_probes c.probes
            |> List.find_map (fun (col, probe) ->
                   (* map right-plan column position to the scan column name;
                      Alias keeps positions, so the index lines up *)
                   if col < Schema.arity right_schema then begin
                     let column = (Schema.col scan_schema col).Schema.name in
                     match cat.table_index ~table ~column with
                     | Some idx ->
                       let usable =
                         match probe, idx with
                         | (P_range _ | P_in _ | P_eq _), _ when Index.supports_range idx -> true
                         | (P_eq _ | P_in _), _ -> true
                         | P_range _, _ -> false
                       in
                       if usable then Some (table, column, probe) else None
                     | None -> None
                   end
                   else None)
      in
      let residual_of exclude_probe =
        (* conjuncts not covered by the chosen access path *)
        let covered_by_probe conj =
          match exclude_probe with
          | None -> false
          | Some (_, _, probe) ->
            (match conj, probe with
             | Expr.Between (b, lo, hi), P_range (Some lo', Some hi') ->
               (match to_right ~bound b with
                | Expr.Col _ -> lo = lo' && hi = hi' && only_right ~bound b
                | _ -> false)
             | Expr.In_list (b, items), P_in items' ->
               only_right ~bound b && items = items'
             | Expr.Binop (Expr.Eq, a, b), P_eq e ->
               (only_left ~bound a && a = e && only_right ~bound b)
               || (only_left ~bound b && b = e && only_right ~bound a)
             | Expr.Binop (Expr.Le, b, e), P_range (_, Some e')
               when only_right ~bound b -> e = e'
             | Expr.Binop (Expr.Ge, b, e), P_range (Some e', _)
               when only_right ~bound b -> e = e'
             | Expr.Binop (Expr.Le, e, b), P_range (Some e', _)
               when only_right ~bound b -> e = e'
             | Expr.Binop (Expr.Ge, e, b), P_range (_, Some e')
               when only_right ~bound b -> e = e'
             | _ -> false)
        in
        List.filter (fun conj -> not (covered_by_probe conj)) conjuncts
      in
      match index_candidate with
      | Some (table, column, probe) ->
        let rest = residual_of (Some (table, column, probe)) in
        let residual = if rest = [] then None else Some (Expr.conjoin rest) in
        Index_nl { table; column; probe; residual }
      | None ->
        if opts.enable_hash_join && c.eq_pairs <> [] then begin
          let left_keys = List.map fst c.eq_pairs in
          let right_keys = List.map snd c.eq_pairs in
          (* everything that is not one of the used equality conjuncts is
             residual; recompute from the full conjunct list *)
          let is_eq_conjunct conj =
            match conj with
            | Expr.Binop (Expr.Eq, a, b) ->
              (only_left ~bound a && only_right ~bound b)
              || (only_left ~bound b && only_right ~bound a)
            | _ -> false
          in
          let rest = List.filter (fun conj -> not (is_eq_conjunct conj)) conjuncts in
          let residual = if rest = [] then None else Some (Expr.conjoin rest) in
          Hash { left_keys; right_keys; residual }
        end
        else Nested_loop
    end

(* ---- Logical -> physical ---- *)

let rec plan ?(opts = default_options) (cat : catalog_view) (l : Logical.t) : t =
  let recur = plan ~opts cat in
  match l with
  | Logical.Scan { table; schema } -> Scan { table; schema }
  | Logical.Filter { input; pred } -> Filter { input = recur input; pred }
  | Logical.Project { input; exprs } -> Project { input = recur input; exprs }
  | Logical.Join { kind; left; right; cond } ->
    let algo = choose_join_algo opts cat ~left ~right cond in
    Join { kind; algo; left = recur left; right = recur right; cond }
  | Logical.Aggregate { input; group; aggs } ->
    Aggregate { input = recur input; group; aggs }
  | Logical.Window_op { input; fns } ->
    Window_exec
      {
        input = recur input;
        fns = List.map Logical.to_relalg_fn fns;
        strategy = opts.window_strategy;
      }
  | Logical.Number { input; partition; order; name } ->
    Number { input = recur input; partition; order; name }
  | Logical.Sort { input; keys } -> Sort { input = recur input; keys }
  | Logical.Distinct input -> Distinct (recur input)
  | Logical.Limit { input; n } -> Limit { input = recur input; n }
  | Logical.Union_all { left; right } ->
    Union_all { left = recur left; right = recur right }
  | Logical.Alias { input; rel } -> Alias { input = recur input; rel }

(* ---- Execution ---- *)

(* [observer] is called per node with the node, its output and its
   inclusive wall time; used by EXPLAIN ANALYZE. *)
let rec execute_obs observer (cat : catalog_view) (p : t) : Relation.t =
  let t0 = if observer == no_observer then 0. else Unix.gettimeofday () in
  let result =
    match p with
    | Scan { table; _ } -> cat.table_contents table
    | Filter { input; pred } -> Ops.filter pred (execute_obs observer cat input)
    | Project { input; exprs } -> Ops.project exprs (execute_obs observer cat input)
    | Join { kind; algo; left; right; cond } ->
      execute_join observer cat kind algo left right cond
    | Aggregate { input; group; aggs } ->
      Groupop.group_by ~group ~aggs (execute_obs observer cat input)
    | Window_exec { input; fns; strategy } ->
      Window.extend ~strategy (execute_obs observer cat input) fns
    | Number { input; partition; order; name } ->
      execute_number observer cat input partition order name
    | Sort { input; keys } -> Sortop.sort keys (execute_obs observer cat input)
    | Distinct input -> Ops.distinct (execute_obs observer cat input)
    | Limit { input; n } -> Ops.limit n (execute_obs observer cat input)
    | Union_all { left; right } ->
      Ops.union_all (execute_obs observer cat left) (execute_obs observer cat right)
    | Alias { input; rel } ->
      let r = execute_obs observer cat input in
      Relation.of_array (Schema.with_rel rel (Relation.schema r)) (Relation.rows r)
  in
  if observer != no_observer then
    observer p result (Unix.gettimeofday () -. t0);
  result

and no_observer : t -> Relation.t -> float -> unit = fun _ _ _ -> ()

and execute_join observer cat kind algo left right cond =
  let l = execute_obs observer cat left and r = execute_obs observer cat right in
  match algo with
  | Nested_loop -> Joinop.nested_loop kind l r cond
  | Hash { left_keys; right_keys; residual } ->
    Joinop.hash_join kind ~left:l ~right:r ~left_keys ~right_keys ?residual ()
  | Index_nl { table; column; probe; residual } ->
    let index =
      match cat.table_index ~table ~column with
      | Some idx -> idx
      | None -> plan_error "index on %s.%s disappeared during execution" table column
    in
    (match probe with
     | P_eq e ->
       Joinop.index_join kind ~left:l ~right:r ~index ~probe:(Joinop.Probe_eq e)
         ?residual ()
     | P_range (lo, hi) ->
       Joinop.index_join kind ~left:l ~right:r ~index ~probe:(Joinop.Probe_range (lo, hi))
         ?residual ()
     | P_in items ->
       Joinop.index_join kind ~left:l ~right:r ~index ~probe:(Joinop.Probe_in items)
         ?residual ())

and execute_number observer cat input partition order name =
  let r = execute_obs observer cat input in
  let rows = Relation.rows r in
  let n = Array.length rows in
  let part_keys =
    Array.map (fun row -> List.map (fun e -> Expr.eval row e) partition) rows
  in
  let idx = Array.init n Fun.id in
  let cmp i j =
    let rec cmp_keys a b =
      match a, b with
      | [], [] -> 0
      | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else cmp_keys xs ys
      | _ -> assert false
    in
    let c = cmp_keys part_keys.(i) part_keys.(j) in
    if c <> 0 then c
    else
      let c = Sortop.compare_keys order rows.(i) rows.(j) in
      if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  let numbers = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let key = part_keys.(idx.(start)) in
    let stop = ref (start + 1) in
    while
      !stop < n && List.for_all2 Value.equal part_keys.(idx.(!stop)) key
    do
      incr stop
    done;
    for k = start to !stop - 1 do
      numbers.(idx.(k)) <- k - start + 1
    done;
    i := !stop
  done;
  let schema =
    Schema.append (Relation.schema r) (Schema.make [ Schema.column name Dtype.Int ])
  in
  let out =
    Array.mapi (fun i row -> Row.append row [| Value.Int numbers.(i) |]) rows
  in
  Relation.of_array schema out

let execute (cat : catalog_view) (p : t) : Relation.t =
  execute_obs no_observer cat p

(* ---- EXPLAIN ANALYZE: instrumented execution ---- *)

type profile_entry = {
  depth : int;
  label : string;
  rows : int;
  seconds : float; (* inclusive of children *)
}

let node_label = function
  | Scan { table; _ } -> "Scan " ^ table
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Join { kind; algo; _ } ->
    Printf.sprintf "%sJoin [%s]"
      (match kind with Joinop.Inner -> "" | Joinop.Left_outer -> "LeftOuter")
      (match algo with
       | Nested_loop -> "nested-loop"
       | Hash _ -> "hash"
       | Index_nl { table; column; _ } -> Printf.sprintf "index %s.%s" table column)
  | Aggregate _ -> "Aggregate"
  | Window_exec { fns; _ } ->
    Printf.sprintf "Window [%s]"
      (String.concat ", " (List.map (fun f -> Window.func_name f.Window.func) fns))
  | Number _ -> "Number"
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Limit { n; _ } -> Printf.sprintf "Limit %d" n
  | Union_all _ -> "UnionAll"
  | Alias { rel; _ } -> "Alias " ^ rel

let children = function
  | Scan _ -> []
  | Filter { input; _ }
  | Project { input; _ }
  | Aggregate { input; _ }
  | Window_exec { input; _ }
  | Number { input; _ }
  | Sort { input; _ }
  | Distinct input
  | Limit { input; _ }
  | Alias { input; _ } -> [ input ]
  | Join { left; right; _ } | Union_all { left; right } -> [ left; right ]

(* Execute once while recording per-node inclusive wall time and output
   cardinality; entries are reported in pre-order of the plan. *)
let execute_analyze (cat : catalog_view) (p : t) : Relation.t * profile_entry list =
  let measured : (t, int * float) Hashtbl.t = Hashtbl.create 32 in
  let observer node result seconds =
    Hashtbl.replace measured node (Relation.cardinality result, seconds)
  in
  let result = execute_obs observer cat p in
  (* walk the plan in pre-order and look the measurements up *)
  let entries = ref [] in
  let rec walk depth node =
    let rows, seconds =
      match Hashtbl.find_opt measured node with
      | Some m -> m
      | None -> (0, 0.)
    in
    entries := { depth; label = node_label node; rows; seconds } :: !entries;
    List.iter (walk (depth + 1)) (children node)
  in
  walk 0 p;
  (result, List.rev !entries)

let render_profile (entries : profile_entry list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s%-40s %10d rows %10.3f ms\n"
           (String.make (e.depth * 2) ' ')
           e.label e.rows (e.seconds *. 1000.)))
    entries;
  Buffer.contents buf

(* ---- EXPLAIN ---- *)

let algo_name = function
  | Nested_loop -> "nested-loop"
  | Hash _ -> "hash"
  | Index_nl { table; column; probe; _ } ->
    Printf.sprintf "index(%s.%s%s)" table column
      (match probe with
       | P_eq _ -> " eq"
       | P_in _ -> " in"
       | P_range (Some _, Some _) -> " range"
       | P_range (Some _, None) -> " range>="
       | P_range (None, Some _) -> " range<="
       | P_range (None, None) -> "")

let rec pp ?(indent = 0) ppf (p : t) =
  let pad = String.make (indent * 2) ' ' in
  let child = pp ~indent:(indent + 1) in
  match p with
  | Scan { table; _ } -> Format.fprintf ppf "%sScan %s@." pad table
  | Filter { input; pred } ->
    Format.fprintf ppf "%sFilter %a@.%a" pad Expr.pp pred child input
  | Project { input; exprs } ->
    Format.fprintf ppf "%sProject [%s]@.%a" pad
      (String.concat ", " (List.map snd exprs))
      child input
  | Join { kind; algo; left; right; _ } ->
    Format.fprintf ppf "%s%sJoin [%s]@.%a%a" pad
      (match kind with Joinop.Inner -> "" | Joinop.Left_outer -> "LeftOuter")
      (algo_name algo) child left child right
  | Aggregate { input; group; aggs } ->
    Format.fprintf ppf "%sAggregate groups=%d aggs=%d@.%a" pad (List.length group)
      (List.length aggs) child input
  | Window_exec { input; fns; strategy } ->
    Format.fprintf ppf "%sWindow [%s] (%s)@.%a" pad
      (String.concat ", "
         (List.map (fun f -> Window.func_name f.Window.func) fns))
      (match strategy with Window.Naive -> "naive" | Window.Incremental -> "incremental")
      child input
  | Number { input; _ } -> Format.fprintf ppf "%sNumber@.%a" pad child input
  | Sort { input; keys } ->
    Format.fprintf ppf "%sSort (%d keys)@.%a" pad (List.length keys) child input
  | Distinct input -> Format.fprintf ppf "%sDistinct@.%a" pad child input
  | Limit { input; n } -> Format.fprintf ppf "%sLimit %d@.%a" pad n child input
  | Union_all { left; right } ->
    Format.fprintf ppf "%sUnionAll@.%a%a" pad child left child right
  | Alias { input; rel } -> Format.fprintf ppf "%sAlias %s@.%a" pad rel child input

let to_string p = Format.asprintf "%a" (pp ~indent:0) p
