(** Physical planning and execution.

    The physical planner mirrors the logical plan and picks join
    algorithms — the choice the paper's evaluation turns on:
    - equality conjuncts (including computed keys such as the MOD residue
      classes of Figs. 10/13) → hash join;
    - bounds on an indexed column of a base-table side (BETWEEN / <= /
      IN, as in the Fig. 2 self join) → index nested-loop join;
    - anything else (notably disjunctive predicates) → nested loop.

    Joins keep the preserved (left) side as the outer side, so LEFT OUTER
    semantics hold under every algorithm. *)

open Rfview_relalg

exception Plan_error of string

(** Storage access supplied by the engine. *)
type catalog_view = {
  table_contents : string -> Relation.t;
  table_index : table:string -> column:string -> Index.t option;
}

type options = {
  window_strategy : Window.strategy;
  enable_hash_join : bool;
  enable_index_join : bool;
}

val default_options : options

type join_algo =
  | Nested_loop
  | Hash of {
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      residual : Expr.t option;
    }
  | Index_nl of {
      table : string;
      column : string;
      probe : probe;
      residual : Expr.t option;
    }

and probe =
  | P_eq of Expr.t
  | P_in of Expr.t list
  | P_range of Expr.t option * Expr.t option

type t =
  | Scan of { table : string; schema : Schema.t }
  | Filter of { input : t; pred : Expr.t }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Join of { kind : Joinop.kind; algo : join_algo; left : t; right : t; cond : Expr.t }
  | Aggregate of { input : t; group : Expr.t list; aggs : Groupop.agg_spec list }
  | Window_exec of { input : t; fns : Window.fn list; strategy : Window.strategy }
  | Number of {
      input : t;
      partition : Expr.t list;
      order : Sortop.key list;
      name : string;
    }
  | Sort of { input : t; keys : Sortop.key list }
  | Distinct of t
  | Limit of { input : t; n : int }
  | Union_all of { left : t; right : t }
  | Alias of { input : t; rel : string }

(** Choose the join algorithm for a logical join. *)
val choose_join_algo :
  options -> catalog_view -> left:Logical.t -> right:Logical.t -> Expr.t -> join_algo

(** Lower a logical plan. *)
val plan : ?opts:options -> catalog_view -> Logical.t -> t

(** Execute bottom-up against the catalog.
    @raise Plan_error if an index disappeared since planning. *)
val execute : catalog_view -> t -> Relation.t

(** {1 EXPLAIN ANALYZE} *)

type profile_entry = {
  depth : int;
  label : string;
  rows : int;
  seconds : float;  (** inclusive of children *)
}

(** Execute once while recording per-node inclusive wall time and output
    cardinality, reported in pre-order of the plan. *)
val execute_analyze : catalog_view -> t -> Relation.t * profile_entry list

val render_profile : profile_entry list -> string

val algo_name : join_algo -> string
val pp : ?indent:int -> Format.formatter -> t -> unit
val to_string : t -> string
