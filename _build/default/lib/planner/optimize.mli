(** Logical optimization: predicate pushdown.

    Comma joins bind as a cross join with the predicate in WHERE; pushing
    the conjuncts into the join condition (and further into the join
    inputs) is what lets the physical planner pick hash and index join
    algorithms.  Only left-side conjuncts move below a LEFT OUTER join
    (the preserved side); everything else stays above it. *)

val optimize : Logical.t -> Logical.t
