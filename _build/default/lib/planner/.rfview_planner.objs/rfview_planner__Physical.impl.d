lib/planner/physical.ml: Array Buffer Dtype Expr Format Fun Groupop Hashtbl Index Int Joinop List Logical Ops Option Printf Relation Rfview_relalg Row Schema Sortop String Unix Value Window
