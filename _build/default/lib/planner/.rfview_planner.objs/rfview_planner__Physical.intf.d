lib/planner/physical.mli: Expr Format Groupop Index Joinop Logical Relation Rfview_relalg Schema Sortop Window
