lib/planner/binder.ml: Aggregate Array Expr Format Groupop Joinop List Logical Option Printf Rfview_relalg Rfview_sql Schema Sortop String Value Window
