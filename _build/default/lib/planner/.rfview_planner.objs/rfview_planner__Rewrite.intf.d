lib/planner/rewrite.mli: Logical Rfview_relalg
