lib/planner/optimize.ml: Expr Joinop List Logical Rfview_relalg Schema Value
