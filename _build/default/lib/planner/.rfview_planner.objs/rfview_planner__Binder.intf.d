lib/planner/binder.mli: Aggregate Expr Logical Rfview_relalg Rfview_sql Schema
