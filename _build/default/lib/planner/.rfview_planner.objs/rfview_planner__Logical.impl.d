lib/planner/logical.ml: Aggregate Dtype Expr Format Groupop Joinop List Rfview_relalg Schema Sortop String Window
