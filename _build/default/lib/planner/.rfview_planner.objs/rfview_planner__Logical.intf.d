lib/planner/logical.mli: Expr Format Groupop Joinop Rfview_relalg Schema Sortop Window
