lib/planner/optimize.mli: Logical
