lib/planner/rewrite.ml: Expr Groupop Joinop List Logical Rfview_relalg Schema Value Window
