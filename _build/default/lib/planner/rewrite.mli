(** Query rewriting: the paper's Fig. 2 relational mapping of reporting
    functions.

    [window_to_self_join] replaces every window operator in a plan by a
    self join on a dense per-partition row number (materialized with the
    Number operator) plus a grouped aggregation — the simulation whose
    cost Table 1 measures.

    Restriction: only framed aggregates whose frame contains the current
    row are rewritable (otherwise rows with empty frames would vanish in
    the inner join); all frames used in the paper qualify. *)

exception Not_rewritable of string

(** Does the frame contain the current row? *)
val frame_contains_current : Rfview_relalg.Window.frame -> bool

(** Rewrite all window operators.  @raise Not_rewritable per above. *)
val window_to_self_join : Logical.t -> Logical.t

val has_window_op : Logical.t -> bool
