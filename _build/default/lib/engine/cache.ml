(* A derivation-aware query cache (paper §3's motivating application).

   The paper argues that warehouse systems cache incoming user queries as
   implicit materialized views, and that this only helps sequence
   workloads if the system can *derive* new reporting-function queries
   from previously cached ones — which is exactly what MaxOA/MinOA and
   the cumulative rules provide.

   The cache intercepts queries:
   - a reporting-function query answerable from a cached entry (same
     base table, value and ordering columns; derivable frame) is answered
     by derivation, without touching the base table;
   - other queries execute normally; recognized sequence queries are
     admitted to the cache as materialized views afterwards.

   Entries are evicted FIFO beyond [capacity]. *)

open Rfview_relalg
module Ast = Rfview_sql.Ast
module Parser = Rfview_sql.Parser

type outcome =
  | Hit of Advisor.proposal  (* answered by derivation from a cache entry *)
  | Miss_cached of string    (* executed and admitted under this entry name *)
  | Bypass                   (* not a sequence query; executed directly *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
}

type t = {
  db : Database.t;
  capacity : int;
  mutable entries : string list; (* cache view names, oldest last *)
  mutable counter : int;
  stats : stats;
}

let create ?(capacity = 8) db =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { db; capacity; entries = []; counter = 0; stats = { hits = 0; misses = 0; bypasses = 0 } }

let stats t = t.stats
let entries t = List.rev t.entries

let evict_excess t =
  while List.length t.entries > t.capacity do
    match List.rev t.entries with
    | [] -> ()
    | oldest :: _ ->
      t.entries <- List.filter (fun e -> e <> oldest) t.entries;
      ignore
        (Database.exec_statement t.db
           (Ast.St_drop_view { name = oldest; if_exists = true }))
  done

(* Admit a recognized sequence query to the cache. *)
let admit t (q : Ast.query) : string =
  t.counter <- t.counter + 1;
  let name = Printf.sprintf "cache_entry_%d" t.counter in
  ignore
    (Database.exec_statement t.db
       (Ast.St_create_view { name; materialized = true; query = q }));
  (* only keep it when the engine established an incremental/derivable
     state; otherwise it cannot serve derivations *)
  if Database.is_incrementally_maintained t.db name then begin
    t.entries <- name :: t.entries;
    evict_excess t
  end
  else
    ignore
      (Database.exec_statement t.db (Ast.St_drop_view { name; if_exists = true }));
  name

let query_ast (t : t) (q : Ast.query) : Relation.t * outcome =
  match Matview.recognize q with
  | None ->
    t.stats.bypasses <- t.stats.bypasses + 1;
    (Database.run_query t.db q, Bypass)
  | Some _ ->
    (match Advisor.answer t.db q with
     | Some (result, proposal)
       when List.mem proposal.Advisor.view_name t.entries ->
       t.stats.hits <- t.stats.hits + 1;
       (result, Hit proposal)
     | _ ->
       let result = Database.run_query t.db q in
       let name = admit t q in
       t.stats.misses <- t.stats.misses + 1;
       (result, Miss_cached name))

let query t (sql : string) : Relation.t * outcome = query_ast t (Parser.query sql)

let describe_outcome = function
  | Hit p -> Printf.sprintf "HIT (%s)" (Advisor.describe p)
  | Miss_cached name -> Printf.sprintf "MISS (cached as %s)" name
  | Bypass -> "BYPASS"
