lib/engine/catalog.mli: Index Relation Rfview_relalg Rfview_sql Row Schema
