lib/engine/csv.mli: Database Relation Rfview_relalg
