lib/engine/cache.mli: Advisor Database Relation Rfview_relalg Rfview_sql
