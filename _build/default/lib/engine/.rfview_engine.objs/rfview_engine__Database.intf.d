lib/engine/database.mli: Catalog Matview Relation Rfview_planner Rfview_relalg Rfview_sql Row Window
