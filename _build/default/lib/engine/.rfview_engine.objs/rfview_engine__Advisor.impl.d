lib/engine/advisor.ml: Aggregate Array Catalog Database Dtype Float List Matview Option Printf Relation Rfview_core Rfview_relalg Rfview_sql Row Schema String Value
