lib/engine/csv.ml: Array Buffer Catalog Database Dtype Format Fun List Relation Rfview_relalg Schema String Value
