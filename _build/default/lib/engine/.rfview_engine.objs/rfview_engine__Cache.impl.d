lib/engine/cache.ml: Advisor Database List Matview Printf Relation Rfview_relalg Rfview_sql
