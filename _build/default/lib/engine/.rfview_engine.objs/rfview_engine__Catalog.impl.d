lib/engine/catalog.ml: Format Hashtbl Index List Relation Rfview_relalg Rfview_sql Row Schema String
