lib/engine/database.ml: Array Catalog Dtype Expr Float Format Fun Hashtbl Index List Matview Printf Relation Rfview_planner Rfview_relalg Rfview_sql Row Schema String Value Window
