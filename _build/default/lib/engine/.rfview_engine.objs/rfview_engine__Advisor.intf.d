lib/engine/advisor.mli: Database Matview Relation Rfview_core Rfview_relalg Rfview_sql
