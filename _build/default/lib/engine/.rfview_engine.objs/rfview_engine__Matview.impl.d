lib/engine/matview.ml: Aggregate Array Dtype Float Fun Hashtbl Int List Option Printf Relation Rfview_core Rfview_relalg Rfview_sql Row Schema Value
