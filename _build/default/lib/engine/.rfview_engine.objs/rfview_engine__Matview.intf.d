lib/engine/matview.mli: Aggregate Relation Rfview_core Rfview_relalg Rfview_sql Row Schema Value
