(** CSV import and export.

    RFC-4180-style quoting; import coerces fields to the target table's
    column types; empty fields and the literal [NULL] are NULL. *)

open Rfview_relalg

exception Csv_error of string

(** Render a relation as CSV text with a header line. *)
val to_string : ?sep:char -> Relation.t -> string

(** Write a relation to a file. *)
val export : ?sep:char -> Relation.t -> file:string -> unit

(** Split CSV text into records of fields, honouring quoting.
    @raise Csv_error on unterminated quotes. *)
val parse : ?sep:char -> string -> string list list

(** Load CSV text into an existing table; returns the row count.  With
    [header] (default), the first record names the columns (any order);
    without, records are positional.
    @raise Csv_error on unknown columns or unparsable fields. *)
val import_string : ?sep:char -> ?header:bool -> Database.t -> table:string -> string -> int

(** Like {!import_string}, reading from a file. *)
val import : ?sep:char -> ?header:bool -> Database.t -> table:string -> file:string -> int
