(** The database facade: parse → bind → (rewrite) → optimize → plan →
    execute, plus DDL/DML with materialized-view maintenance. *)

open Rfview_relalg
module Ast := Rfview_sql.Ast
module P := Rfview_planner

exception Engine_error of string

(** How reporting functions execute — the contrast of the paper's
    Table 1: the native window operator, or the Fig. 2 self-join
    simulation applied in query rewrite. *)
type window_mode =
  [ `Native
  | `Self_join
  ]

type t

type result =
  | Relation of Relation.t
  | Done of string  (** acknowledgement of a DDL/DML statement *)

val create : unit -> t

val set_window_mode : t -> window_mode -> unit
val set_window_strategy : t -> Window.strategy -> unit

(** Disabling hash joins forces nested loops for equality predicates —
    how the paper's engine executed both Table 2 variants. *)
val set_hash_join : t -> bool -> unit

(** Disabling index joins as well yields pure nested-loop plans. *)
val set_index_join : t -> bool -> unit

(** {1 Execution} *)

(** Execute one statement.
    @raise Engine_error / Binder.Bind_error / Parser.Parse_error /
           Catalog.Catalog_error on failure. *)
val exec : t -> string -> result

(** Execute a [;]-separated script. *)
val exec_script : t -> string -> result list

(** Execute a query statement.  @raise Engine_error if it is not one. *)
val query : t -> string -> Relation.t

(** Logical and physical plan text. *)
val explain : t -> string -> string

val exec_statement : t -> Ast.statement -> result
val run_query : t -> Ast.query -> Relation.t
val plan_query : t -> Ast.query -> P.Physical.t

(** Bulk-load rows, bypassing SQL parsing; materialized views on the
    table are fully refreshed. *)
val load_table : t -> table:string -> Row.t array -> unit

(** {1 Introspection} *)

val catalog : t -> Catalog.t

(** Does the view currently have an incremental maintenance state? *)
val is_incrementally_maintained : t -> string -> bool

val view_state : t -> string -> Matview.state option

(** The binder/executor adapters (exposed for the advisor and tests). *)
val binder_catalog : t -> P.Binder.catalog

val catalog_view : t -> P.Physical.catalog_view
