(** Hand-written SQL lexer.

    Comments: [-- line] and [/* block */].  String literals use single
    quotes with [''] as the quote escape.  The token stream always ends
    with {!Token.Eof}. *)

exception Lex_error of string * int  (** message, byte offset *)

type lexeme = {
  token : Token.t;
  offset : int;  (** byte offset in the source, for error reporting *)
}

(** @raise Lex_error on malformed input. *)
val tokenize : string -> lexeme list
