(** Recursive-descent parser for the SQL subset.

    Covers the paper's queries: SELECT with window functions (OVER with
    PARTITION BY / ORDER BY / ROWS frames), inner and left outer joins,
    comma joins, CASE, IN, BETWEEN, scalar functions, UNION ALL,
    subqueries in FROM, and the engine's DDL/DML (CREATE TABLE / INDEX /
    [MATERIALIZED] VIEW, INSERT, UPDATE, DELETE, DROP, REFRESH,
    EXPLAIN). *)

exception Parse_error of string

(** Parse one statement (an optional trailing [;] is accepted).
    @raise Parse_error / Lexer.Lex_error on malformed input. *)
val statement : string -> Ast.statement

(** Parse a [;]-separated script. *)
val statements : string -> Ast.statement list

(** Parse one query.  @raise Parse_error if the statement is not a query. *)
val query : string -> Ast.query

(** Parse a standalone scalar expression (used in tests). *)
val expression : string -> Ast.expr
