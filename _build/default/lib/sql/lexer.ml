(* Hand-written SQL lexer.

   Produces the token stream with positions for error reporting.
   Comments: [-- line] and [/* block */].  String literals use single
   quotes with [''] as the escape for a quote. *)

exception Lex_error of string * int (* message, offset *)

type lexeme = {
  token : Token.t;
  offset : int;
}

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : lexeme list =
  let n = String.length src in
  let toks = ref [] in
  let emit offset token = toks := { token; offset } :: !toks in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        skip_ws (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec close j =
          if j + 1 >= n then raise (Lex_error ("unterminated block comment", i))
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else close (j + 1)
        in
        skip_ws (close (i + 2))
      | _ -> i
  in
  let lex_number i =
    let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
    let j = digits i in
    let j, is_float =
      if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then
        (digits (j + 1), true)
      else (j, false)
    in
    let j, is_float =
      if j < n && (src.[j] = 'e' || src.[j] = 'E') then begin
        let k = if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2 else j + 1 in
        if k < n && is_digit src.[k] then (digits k, true) else (j, is_float)
      end
      else (j, is_float)
    in
    let text = String.sub src i (j - i) in
    let token =
      if is_float then Token.Float_lit (float_of_string text)
      else
        match int_of_string_opt text with
        | Some v -> Token.Int_lit v
        | None -> Token.Float_lit (float_of_string text)
    in
    emit i token;
    j
  in
  let lex_string i =
    let buf = Buffer.create 16 in
    let rec go j =
      if j >= n then raise (Lex_error ("unterminated string literal", i))
      else if src.[j] = '\'' then
        if j + 1 < n && src.[j + 1] = '\'' then begin
          Buffer.add_char buf '\'';
          go (j + 2)
        end
        else j + 1
      else begin
        Buffer.add_char buf src.[j];
        go (j + 1)
      end
    in
    let j = go (i + 1) in
    emit i (Token.String_lit (Buffer.contents buf));
    j
  in
  let lex_ident i =
    let rec go j = if j < n && is_ident_char src.[j] then go (j + 1) else j in
    let j = go i in
    emit i (Token.Ident (String.sub src i (j - i)));
    j
  in
  let rec loop i =
    let i = skip_ws i in
    if i >= n then emit i Token.Eof
    else begin
      let c = src.[i] in
      let next =
        if is_digit c then lex_number i
        else if is_ident_start c then lex_ident i
        else if c = '\'' then lex_string i
        else begin
          let two tok = emit i tok; i + 2 in
          let one tok = emit i tok; i + 1 in
          match c with
          | '(' -> one Token.Lparen
          | ')' -> one Token.Rparen
          | ',' -> one Token.Comma
          | '.' -> one Token.Dot
          | ';' -> one Token.Semicolon
          | '*' -> one Token.Star
          | '+' -> one Token.Plus
          | '-' -> one Token.Minus
          | '/' -> one Token.Slash
          | '%' -> one Token.Percent
          | '=' -> one Token.Eq
          | '<' when i + 1 < n && src.[i + 1] = '>' -> two Token.Neq
          | '<' when i + 1 < n && src.[i + 1] = '=' -> two Token.Le
          | '<' -> one Token.Lt
          | '>' when i + 1 < n && src.[i + 1] = '=' -> two Token.Ge
          | '>' -> one Token.Gt
          | '!' when i + 1 < n && src.[i + 1] = '=' -> two Token.Neq
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
        end
      in
      loop next
    end
  in
  loop 0;
  List.rev !toks
