(* Abstract syntax of the SQL subset.

   Names are unresolved here (qualifier + column name); the planner's
   binder resolves them against the catalog.  Window functions carry the
   full OVER() specification of the paper's Fig. 1 syntax diagram. *)

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null
  | L_date of string (* ISO yyyy-mm-dd, validated by the binder *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type frame_bound =
  | Unbounded_preceding
  | Preceding of int
  | Current_row
  | Following of int
  | Unbounded_following

type frame_mode =
  | Frame_rows
  | Frame_range

type frame_clause = {
  frame_mode : frame_mode;
  frame_lo : frame_bound;
  frame_hi : frame_bound;
}

type expr =
  | Lit of literal
  | Column of string option * string        (* qualifier, name *)
  | Star                                    (* argument of COUNT star *)
  | Binary of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Case of (expr * expr) list * expr option
  | Call of string * expr list              (* scalar function or aggregate *)
  | Window of window_fn
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Is_null of expr
  | Is_not_null of expr

and window_fn = {
  w_func : string;        (* SUM/COUNT/AVG/MIN/MAX/RANK/LAG/... *)
  w_args : expr list;     (* [Star] for COUNT star; [] for the rank family *)
  w_partition : expr list;
  w_order : order_item list;
  w_frame : frame_clause option;            (* default: cumulative *)
}

and order_item = {
  o_expr : expr;
  o_asc : bool;
}

type select_item =
  | Sel_expr of expr * string option        (* expr [AS alias] *)
  | Sel_star                                (* * *)
  | Sel_table_star of string                (* t.* *)

type join_kind =
  | Join_inner
  | Join_left

type table_ref =
  | Table of { name : string; alias : string option }
  | Subquery of { query : query; alias : string }
  | Join of { kind : join_kind; left : table_ref; right : table_ref; cond : expr }

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list;                    (* comma-separated; [] = VALUES-less select *)
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and query = {
  body : query_body;
  order_by : order_item list;
  limit : int option;
}

and query_body =
  | Select of select
  | Union of { all : bool; left : query_body; right : query_body }

type column_def = {
  col_name : string;
  col_type : Rfview_relalg.Dtype.t;
}

type statement =
  | St_query of query
  | St_create_table of { name : string; columns : column_def list }
  | St_create_index of {
      name : string;
      table : string;
      column : string;
      ordered : bool; (* true: ordered (range) index, false: hash *)
    }
  | St_create_view of { name : string; materialized : bool; query : query }
  | St_insert of { table : string; columns : string list; rows : expr list list }
  | St_update of { table : string; assignments : (string * expr) list; where : expr option }
  | St_delete of { table : string; where : expr option }
  | St_drop_table of { name : string; if_exists : bool }
  | St_drop_view of { name : string; if_exists : bool }
  | St_refresh_view of string
  | St_explain of statement
  | St_explain_analyze of statement

(* ---- Helpers ---- *)

let rec map_expr f e =
  let e =
    match e with
    | Lit _ | Column _ | Star -> e
    | Binary (op, a, b) -> Binary (op, map_expr f a, map_expr f b)
    | Neg a -> Neg (map_expr f a)
    | Not a -> Not (map_expr f a)
    | Case (whens, els) ->
      Case
        ( List.map (fun (c, v) -> (map_expr f c, map_expr f v)) whens,
          Option.map (map_expr f) els )
    | Call (name, args) -> Call (name, List.map (map_expr f) args)
    | Window w ->
      Window
        {
          w with
          w_args = List.map (map_expr f) w.w_args;
          w_partition = List.map (map_expr f) w.w_partition;
          w_order = List.map (fun o -> { o with o_expr = map_expr f o.o_expr }) w.w_order;
        }
    | In_list (a, items) -> In_list (map_expr f a, List.map (map_expr f) items)
    | Between (a, lo, hi) -> Between (map_expr f a, map_expr f lo, map_expr f hi)
    | Is_null a -> Is_null (map_expr f a)
    | Is_not_null a -> Is_not_null (map_expr f a)
  in
  f e

(* All window functions contained in an expression. *)
let rec window_fns acc = function
  | Lit _ | Column _ | Star -> acc
  | Binary (_, a, b) -> window_fns (window_fns acc a) b
  | Neg a | Not a | Is_null a | Is_not_null a -> window_fns acc a
  | Case (whens, els) ->
    let acc =
      List.fold_left (fun acc (c, v) -> window_fns (window_fns acc c) v) acc whens
    in
    (match els with None -> acc | Some e -> window_fns acc e)
  | Call (_, args) -> List.fold_left window_fns acc args
  | Window w -> w :: acc
  | In_list (a, items) -> List.fold_left window_fns (window_fns acc a) items
  | Between (a, lo, hi) -> window_fns (window_fns (window_fns acc a) lo) hi

let has_window e = window_fns [] e <> []
