(* Pretty-printing of the SQL AST back to SQL text.

   The output re-parses to an equal AST (round-trip property tested);
   used by EXPLAIN, the view catalog and error messages. *)

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"

let literal = function
  | Ast.L_int i -> string_of_int i
  | Ast.L_float f ->
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  | Ast.L_string s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Ast.L_bool true -> "TRUE"
  | Ast.L_bool false -> "FALSE"
  | Ast.L_null -> "NULL"
  | Ast.L_date s -> Printf.sprintf "DATE '%s'" s

let frame_bound = function
  | Ast.Unbounded_preceding -> "UNBOUNDED PRECEDING"
  | Ast.Preceding n -> Printf.sprintf "%d PRECEDING" n
  | Ast.Current_row -> "CURRENT ROW"
  | Ast.Following n -> Printf.sprintf "%d FOLLOWING" n
  | Ast.Unbounded_following -> "UNBOUNDED FOLLOWING"

let rec expr (e : Ast.expr) : string =
  match e with
  | Ast.Lit l -> literal l
  | Ast.Column (None, c) -> c
  | Ast.Column (Some t, c) -> t ^ "." ^ c
  | Ast.Star -> "*"
  | Ast.Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (operand a) (binop_symbol op) (operand b)
  | Ast.Neg a -> Printf.sprintf "(-%s)" (operand a)
  | Ast.Not a -> Printf.sprintf "(NOT %s)" (expr a)
  | Ast.Case (whens, els) ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    List.iter
      (fun (c, v) ->
        Buffer.add_string buf (Printf.sprintf " WHEN %s THEN %s" (expr c) (expr v)))
      whens;
    (match els with
     | None -> ()
     | Some e -> Buffer.add_string buf (Printf.sprintf " ELSE %s" (expr e)));
    Buffer.add_string buf " END";
    Buffer.contents buf
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Ast.Window w -> window w
  | Ast.In_list (a, items) ->
    Printf.sprintf "%s IN (%s)" (operand a) (String.concat ", " (List.map expr items))
  | Ast.Between (a, lo, hi) ->
    (* BETWEEN bounds parse at additive precedence: parenthesize anything
       weaker (predicates, other BETWEEN/IN/IS forms) *)
    Printf.sprintf "%s BETWEEN %s AND %s" (operand a) (operand lo) (operand hi)
  | Ast.Is_null a -> Printf.sprintf "%s IS NULL" (operand a)
  | Ast.Is_not_null a -> Printf.sprintf "%s IS NOT NULL" (operand a)

(* Operand position of a postfix predicate (IN/BETWEEN/IS NULL): binaries,
   negations and NOT already print parenthesized; other predicate forms
   need explicit parentheses to round-trip. *)
and operand (e : Ast.expr) : string =
  match e with
  | Ast.In_list _ | Ast.Between _ | Ast.Is_null _ | Ast.Is_not_null _ ->
    "(" ^ expr e ^ ")"
  | _ -> expr e

and window (w : Ast.window_fn) : string =
  let parts = ref [] in
  (match w.w_frame with
   | None -> ()
   | Some f ->
     parts :=
       Printf.sprintf "%s BETWEEN %s AND %s"
         (match f.frame_mode with Ast.Frame_rows -> "ROWS" | Ast.Frame_range -> "RANGE")
         (frame_bound f.frame_lo)
         (frame_bound f.frame_hi)
       :: !parts);
  if w.w_order <> [] then
    parts :=
      ("ORDER BY " ^ String.concat ", " (List.map order_item w.w_order)) :: !parts;
  if w.w_partition <> [] then
    parts :=
      ("PARTITION BY " ^ String.concat ", " (List.map expr w.w_partition)) :: !parts;
  Printf.sprintf "%s(%s) OVER (%s)" w.w_func
    (String.concat ", " (List.map expr w.w_args))
    (String.concat " " !parts)

and order_item (o : Ast.order_item) : string =
  expr o.o_expr ^ if o.o_asc then "" else " DESC"

let select_item = function
  | Ast.Sel_star -> "*"
  | Ast.Sel_table_star t -> t ^ ".*"
  | Ast.Sel_expr (e, None) -> expr e
  | Ast.Sel_expr (e, Some a) -> Printf.sprintf "%s AS %s" (expr e) a

let rec table_ref = function
  | Ast.Table { name; alias = None } -> name
  | Ast.Table { name; alias = Some a } -> Printf.sprintf "%s %s" name a
  | Ast.Subquery { query = q; alias } -> Printf.sprintf "(%s) %s" (query q) alias
  | Ast.Join { kind; left; right; cond } ->
    let kw = match kind with Ast.Join_inner -> "JOIN" | Ast.Join_left -> "LEFT OUTER JOIN" in
    Printf.sprintf "%s %s %s ON %s" (table_ref left) kw (table_ref right) (expr cond)

and select (s : Ast.select) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item s.items));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (String.concat ", " (List.map table_ref s.from))
  end;
  (match s.where with
   | None -> ()
   | Some e -> Buffer.add_string buf (" WHERE " ^ expr e));
  if s.group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map expr s.group_by));
  (match s.having with
   | None -> ()
   | Some e -> Buffer.add_string buf (" HAVING " ^ expr e));
  Buffer.contents buf

and query_body = function
  | Ast.Select s -> select s
  | Ast.Union { all; left; right } ->
    Printf.sprintf "%s UNION %s%s" (query_body left)
      (if all then "ALL " else "")
      (query_body right)

and query (q : Ast.query) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (query_body q.body);
  if q.order_by <> [] then
    Buffer.add_string buf
      (" ORDER BY " ^ String.concat ", " (List.map order_item q.order_by));
  (match q.limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n));
  Buffer.contents buf

let rec statement (s : Ast.statement) : string =
  match s with
  | Ast.St_query q -> query q
  | Ast.St_create_table { name; columns } ->
    Printf.sprintf "CREATE TABLE %s (%s)" name
      (String.concat ", "
         (List.map
            (fun c ->
              Printf.sprintf "%s %s" c.Ast.col_name
                (Rfview_relalg.Dtype.to_string c.Ast.col_type))
            columns))
  | Ast.St_create_index { name; table; column; ordered } ->
    Printf.sprintf "CREATE INDEX %s ON %s (%s) USING %s" name table column
      (if ordered then "ORDERED" else "HASH")
  | Ast.St_create_view { name; materialized; query = q } ->
    Printf.sprintf "CREATE %sVIEW %s AS %s"
      (if materialized then "MATERIALIZED " else "")
      name (query q)
  | Ast.St_insert { table; columns; rows } ->
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table
      (if columns = [] then "" else Printf.sprintf " (%s)" (String.concat ", " columns))
      (String.concat ", "
         (List.map
            (fun row -> Printf.sprintf "(%s)" (String.concat ", " (List.map expr row)))
            rows))
  | Ast.St_update { table; assignments; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", "
         (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (expr e)) assignments))
      (match where with None -> "" | Some e -> " WHERE " ^ expr e)
  | Ast.St_delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" table
      (match where with None -> "" | Some e -> " WHERE " ^ expr e)
  | Ast.St_drop_table { name; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") name
  | Ast.St_drop_view { name; if_exists } ->
    Printf.sprintf "DROP VIEW %s%s" (if if_exists then "IF EXISTS " else "") name
  | Ast.St_refresh_view name -> Printf.sprintf "REFRESH MATERIALIZED VIEW %s" name
  | Ast.St_explain s -> "EXPLAIN " ^ statement s
  | Ast.St_explain_analyze s -> "EXPLAIN ANALYZE " ^ statement s
